"""Tests for history, estimators, and error injection."""

import numpy as np
import pytest

from repro.estimation.errors import (
    ErrorModel,
    apply_estimation_errors,
    apply_workflow_estimation_errors,
    perturb_spec,
)
from repro.estimation.estimator import (
    estimate_job_offsets,
    estimated_makespan,
    quantile_estimate,
)
from repro.estimation.history import (
    JobObservation,
    RunHistory,
    WorkflowRun,
    synthesize_history,
)
from repro.workloads.dag_generators import chain_workflow, fork_join_workflow
from tests.conftest import spec


class TestHistoryStore:
    def test_observation_validation(self):
        with pytest.raises(ValueError):
            JobObservation("j", start_offset=5, completion_offset=5)
        with pytest.raises(ValueError):
            JobObservation("j", start_offset=-1, completion_offset=3)

    def test_run_validation(self):
        with pytest.raises(ValueError):
            WorkflowRun(observations={}, makespan=0)

    def test_add_and_query(self):
        history = RunHistory()
        run = WorkflowRun(
            observations={"j": JobObservation("j", 0, 5)}, makespan=5
        )
        history.add("daily-etl", run)
        assert history.has("daily-etl")
        assert not history.has("weekly")
        assert list(history.completion_offsets("daily-etl", "j")) == [5.0]
        assert list(history.start_offsets("daily-etl", "j")) == [0.0]
        assert list(history.makespans("daily-etl")) == [5.0]


class TestSynthesizeHistory:
    def test_deterministic_runs_have_level_structure(self, small_cluster):
        wf = chain_workflow("w", 3, 0, 90)
        history = synthesize_history(wf, small_cluster, runs=3, noise=0.0)
        runs = history.runs_for("w")
        assert len(runs) == 3
        first = runs[0]
        # Observations are keyed by instance-independent local job ids.
        # Chain: each observation starts when the previous ends.
        assert first.observations["j0"].completion_offset == first.observations[
            "j1"
        ].start_offset

    def test_parallel_jobs_share_offsets(self, small_cluster):
        wf = fork_join_workflow("w", 4, 0, 200)
        history = synthesize_history(wf, small_cluster, runs=1, noise=0.0)
        run = history.runs_for("w")[0]
        middles = [run.observations[f"j{i}"] for i in range(1, 5)]
        assert len({(o.start_offset, o.completion_offset) for o in middles}) == 1

    def test_noise_varies_runs(self, small_cluster):
        wf = chain_workflow("w", 3, 0, 90)
        history = synthesize_history(wf, small_cluster, runs=10, noise=0.3, seed=1)
        assert len(set(history.makespans("w"))) > 1

    def test_template_key_override(self, small_cluster):
        wf = chain_workflow("w", 2, 0, 50)
        history = synthesize_history(wf, small_cluster, template="nightly")
        assert history.has("nightly")

    def test_needs_at_least_one_run(self, small_cluster):
        wf = chain_workflow("w", 2, 0, 50)
        with pytest.raises(ValueError):
            synthesize_history(wf, small_cluster, runs=0)


class TestEstimators:
    def test_quantile_estimate(self):
        samples = np.arange(1, 101, dtype=float)
        assert quantile_estimate(samples, 0.95) == pytest.approx(95.05)

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            quantile_estimate(np.array([]), 0.5)
        with pytest.raises(ValueError):
            quantile_estimate(np.array([1.0]), 1.5)

    def test_estimate_job_offsets(self, small_cluster):
        wf = chain_workflow("w", 3, 0, 90)
        history = synthesize_history(wf, small_cluster, runs=5, noise=0.0)
        offsets = estimate_job_offsets(history, "w", ["j0", "j1", "j2"])
        start0, end0 = offsets["j0"]
        assert start0 == 0.0
        assert end0 > 0
        _, end2 = offsets["j2"]
        assert end2 == pytest.approx(estimated_makespan(history, "w"))

    def test_missing_history_raises(self):
        with pytest.raises(KeyError):
            estimate_job_offsets(RunHistory(), "nope", ["j"])


class TestErrorInjection:
    def test_model_validation(self):
        with pytest.raises(ValueError):
            ErrorModel(low=0.0, high=1.0)
        with pytest.raises(ValueError):
            ErrorModel(low=2.0, high=1.0)

    def test_deterministic_point(self):
        model = ErrorModel(low=1.3, high=1.3)
        rng = np.random.default_rng(0)
        assert model.draw(rng) == 1.3

    def test_perturb_spec_scales_duration(self):
        original = spec(duration=4)
        assert perturb_spec(original, 1.5).duration_slots == 6
        assert perturb_spec(original, 0.5).duration_slots == 2
        assert perturb_spec(original, 0.01).duration_slots == 1  # floor at 1

    def test_apply_keeps_estimates_untouched(self):
        jobs = [
            __import__("repro.model.job", fromlist=["Job"]).Job(
                job_id="j", tasks=spec(duration=4)
            )
        ]
        out = apply_estimation_errors(jobs, ErrorModel(low=2.0, high=2.0))
        assert out[0].tasks.duration_slots == 4
        assert out[0].true_tasks.duration_slots == 8

    def test_apply_to_workflow(self):
        wf = chain_workflow("w", 3, 0, 90)
        perturbed = apply_workflow_estimation_errors(wf, ErrorModel(low=1.5, high=1.5))
        assert perturbed.workflow_id == wf.workflow_id
        for job in perturbed.jobs:
            assert job.true_tasks is not None
            assert job.true_tasks.duration_slots > job.tasks.duration_slots

    def test_seed_reproducible(self):
        wf = chain_workflow("w", 5, 0, 90)
        a = apply_workflow_estimation_errors(wf, ErrorModel(0.5, 1.5), seed=3)
        b = apply_workflow_estimation_errors(wf, ErrorModel(0.5, 1.5), seed=3)
        assert [j.true_tasks.duration_slots for j in a.jobs] == [
            j.true_tasks.duration_slots for j in b.jobs
        ]
