"""Prometheus exposition: render/parse round-trips and strict-parser teeth."""

from __future__ import annotations

import math

import pytest

from repro.obs import parse_prometheus, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import sanitize_metric_name


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestSanitize:
    def test_dots_become_underscores_with_prefix(self):
        assert sanitize_metric_name("lp.solve") == "repro_lp_solve"
        assert (
            sanitize_metric_name("service.queue.depth")
            == "repro_service_queue_depth"
        )

    def test_illegal_chars_replaced(self):
        assert sanitize_metric_name("a-b c%d") == "repro_a_b_c_d"

    def test_no_prefix(self):
        assert sanitize_metric_name("9lives", prefix="") == "_9lives"


class TestRender:
    def test_counter_gets_total_suffix(self, registry):
        registry.counter("jobs.completed").inc(3)
        text = render_prometheus(registry)
        assert "# TYPE repro_jobs_completed_total counter" in text
        assert "repro_jobs_completed_total 3" in text

    def test_windowed_counter_exposes_all_time_total(self, registry):
        registry.windowed_counter("http.requests").inc(7)
        families = parse_prometheus(render_prometheus(registry))
        family = families["repro_http_requests_total"]
        assert family["type"] == "counter"
        assert family["samples"] == [("repro_http_requests_total", {}, 7.0)]

    def test_never_set_gauge_is_omitted(self, registry):
        registry.gauge("sim.slowest_slot")  # value stays NaN
        registry.gauge("queue.depth").set(4)
        text = render_prometheus(registry)
        assert "slowest_slot" not in text
        assert "repro_queue_depth 4" in text
        assert "NaN" not in text

    def test_windowed_histogram_is_real_histogram(self, registry):
        hist = registry.windowed_histogram(
            "req.seconds", bounds=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 2.0):
            hist.observe(value)
        families = parse_prometheus(render_prometheus(registry))
        family = families["repro_req_seconds"]
        assert family["type"] == "histogram"
        buckets = {
            labels["le"]: value
            for name, labels, value in family["samples"]
            if name.endswith("_bucket")
        }
        assert buckets == {"0.1": 1.0, "1": 2.0, "+Inf": 3.0}
        by_name = {name: value for name, _, value in family["samples"]}
        assert by_name["repro_req_seconds_count"] == 3.0
        assert by_name["repro_req_seconds_sum"] == pytest.approx(2.55)

    def test_exact_histogram_is_summary(self, registry):
        hist = registry.histogram("lp.solve")
        for i in range(100):
            hist.observe(i / 100.0)
        families = parse_prometheus(render_prometheus(registry))
        family = families["repro_lp_solve"]
        assert family["type"] == "summary"
        quantiles = {
            labels["quantile"]: value
            for name, labels, value in family["samples"]
            if labels.get("quantile")
        }
        assert set(quantiles) == {"0.5", "0.95", "0.99"}
        assert quantiles["0.5"] == pytest.approx(0.5, abs=0.02)

    def test_sanitisation_collision_raises(self, registry):
        registry.counter("a.b")
        registry.counter("a_b")
        with pytest.raises(ValueError, match="sanitise"):
            render_prometheus(registry)

    def test_empty_registry_renders_empty(self, registry):
        assert render_prometheus(registry) == ""
        assert parse_prometheus("") == {}

    def test_round_trip_of_mixed_registry(self, registry):
        registry.counter("a").inc()
        registry.gauge("b").set(1.5)
        registry.windowed_counter("c").inc(2)
        registry.windowed_histogram("d").observe(0.2)
        registry.histogram("e").observe(3.0)
        families = parse_prometheus(render_prometheus(registry))
        assert set(families) == {
            "repro_a_total", "repro_b", "repro_c_total", "repro_d", "repro_e",
        }


class TestStrictParser:
    def test_sample_without_type_rejected(self):
        with pytest.raises(ValueError, match="no TYPE"):
            parse_prometheus("orphan_metric 1\n")

    def test_malformed_label_rejected(self):
        text = '# TYPE m gauge\nm{le=0.5} 1\n'
        with pytest.raises(ValueError, match="malformed label"):
            parse_prometheus(text)

    def test_duplicate_type_rejected(self):
        text = "# TYPE m gauge\n# TYPE m counter\n"
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_prometheus(text)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown type"):
            parse_prometheus("# TYPE m fancy\n")

    def test_histogram_without_inf_bucket_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            "h_sum 0.5\nh_count 1\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_prometheus(text)

    def test_histogram_decreasing_buckets_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\nh_count 3\n"
        )
        with pytest.raises(ValueError, match="decrease"):
            parse_prometheus(text)

    def test_histogram_count_mismatch_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\nh_count 4\n"
        )
        with pytest.raises(ValueError, match="_count"):
            parse_prometheus(text)

    def test_unparseable_value_rejected(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_prometheus("# TYPE m gauge\nm banana\n")

    def test_inf_and_nan_tokens_parse(self):
        families = parse_prometheus(
            "# TYPE m gauge\nm +Inf\n# TYPE n gauge\nn NaN\n"
        )
        assert families["m"]["samples"][0][2] == math.inf
        assert math.isnan(families["n"]["samples"][0][2])

    def test_help_and_blank_lines_ignored(self):
        text = "# HELP m helpful words\n\n# TYPE m gauge\nm 1\n"
        assert parse_prometheus(text)["m"]["samples"] == [("m", {}, 1.0)]
