"""Fault-tolerance tests: solver guardrails, degraded mode, chaos harness.

The robustness layer's contract (docs/ROBUSTNESS.md): a solver fault is
retried once on the alternate backend; exhausting every attempt raises the
typed :class:`~repro.lp.solver.SolverFailure`; the FlowTime scheduler
catches it and keeps serving slots (stale plan + EDF greedy) until a solve
succeeds again.  Chaos experiments are seeded and reproducible.
"""

import numpy as np
import pytest

from repro.chaos import ChaosConfig, ChaosInjector, InjectedSolverError, chaos_solver
from repro.lp.problem import LinearProgram, LPStatus
from repro.lp.solver import SolverFailure, install_fault_injector, solve_lp
from repro.model.cluster import ClusterCapacity
from repro.model.workflow import Workflow
from repro.obs import MemorySink, Observability, use_obs
from repro.schedulers.flowtime_sched import FlowTimeScheduler
from repro.simulator.engine import Simulation, SimulationConfig
from tests.conftest import adhoc_job, deadline_job


@pytest.fixture(autouse=True)
def _clean_injector():
    """Never leak a fault injector into other tests."""
    yield
    install_fault_injector(None)


def tiny_lp() -> LinearProgram:
    # min x  s.t.  x >= 1  (as -x <= -1), 0 <= x <= 10: optimum x = 1.
    return LinearProgram(
        c=np.array([1.0]),
        a_ub=np.array([[-1.0]]),
        b_ub=np.array([-1.0]),
        ub=np.array([10.0]),
    )


def infeasible_lp() -> LinearProgram:
    # x >= 5 with ub 1: infeasible, which is an *answer*, not a failure.
    return LinearProgram(
        c=np.array([1.0]),
        a_ub=np.array([[-1.0]]),
        b_ub=np.array([-5.0]),
        ub=np.array([1.0]),
    )


def failing(backends: set):
    """An injector that faults on the named backends only."""

    def injector(backend, problem):
        if backend in backends:
            raise InjectedSolverError(f"boom on {backend}")

    return injector


class TestSolverGuardrails:
    def test_clean_solve_unaffected(self):
        solution = solve_lp(tiny_lp())
        assert solution.status is LPStatus.OPTIMAL
        assert solution.x[0] == pytest.approx(1.0)

    def test_infeasible_is_an_answer_not_a_failure(self):
        solution = solve_lp(infeasible_lp())
        assert solution.status is LPStatus.INFEASIBLE

    def test_primary_fault_retries_alternate_backend(self):
        obs = Observability()
        install_fault_injector(failing({"highs"}))
        with use_obs(obs):
            solution = solve_lp(tiny_lp(), backend="highs")
        assert solution.status is LPStatus.OPTIMAL  # simplex saved it
        snap = obs.registry.snapshot()
        assert snap["lp.solve.retry"]["value"] == 1
        assert snap["lp.solve.errors.highs"]["value"] == 1

    def test_all_backends_fail_raises_typed_failure(self):
        obs = Observability()
        install_fault_injector(failing({"highs", "simplex"}))
        with use_obs(obs), pytest.raises(SolverFailure) as excinfo:
            solve_lp(tiny_lp(), backend="highs")
        failure = excinfo.value
        assert failure.reason == "error"
        assert failure.backend == "simplex"  # the last attempt
        assert obs.registry.snapshot()["lp.solve.failures"]["value"] == 1

    def test_retry_alternate_opt_out(self):
        install_fault_injector(failing({"highs"}))
        with pytest.raises(SolverFailure):
            solve_lp(tiny_lp(), backend="highs", retry_alternate=False)

    def test_budget_exceeded_raises_budget_failure(self):
        def slow(backend, problem):
            import time

            time.sleep(0.02)

        obs = Observability()
        install_fault_injector(slow)
        with use_obs(obs), pytest.raises(SolverFailure) as excinfo:
            solve_lp(tiny_lp(), time_budget_s=0.001)
        assert excinfo.value.reason == "budget"
        assert excinfo.value.elapsed > 0.001
        snap = obs.registry.snapshot()
        assert snap["lp.solve.budget_exceeded"]["value"] == 1

    def test_no_budget_no_injector_is_default(self):
        # The zero-fault path must not depend on any of the new machinery.
        solution = solve_lp(tiny_lp(), time_budget_s=None)
        assert solution.is_optimal

    def test_unknown_backend_still_value_error(self):
        with pytest.raises(ValueError, match="unknown LP backend"):
            solve_lp(tiny_lp(), backend="cplex")


def chain(wid: str, n: int = 3, deadline: int = 60) -> Workflow:
    jobs = [deadline_job(f"{wid}-j{i}", wid) for i in range(n)]
    edges = [(f"{wid}-j{i}", f"{wid}-j{i+1}") for i in range(n - 1)]
    return Workflow.from_jobs(wid, jobs, edges, 0, deadline)


def run_flowtime(workflows, adhoc=(), injector=None, obs=None):
    if injector is not None:
        install_fault_injector(injector)
    sim = Simulation(
        cluster=ClusterCapacity.uniform(cpu=40, mem=80),
        scheduler=FlowTimeScheduler(),
        workflows=workflows,
        adhoc_jobs=adhoc,
        config=SimulationConfig(max_slots=500),
        obs=obs,
    )
    return sim, sim.run()


class TestDegradedMode:
    def test_permanent_solver_outage_still_completes_work(self):
        sink = MemorySink()
        obs = Observability(sink=sink)
        sim, result = run_flowtime(
            [chain("w")],
            adhoc=[adhoc_job("a", arrival=0)],
            injector=failing({"highs", "simplex"}),
            obs=obs,
        )
        assert result.finished  # EDF fallback carried the whole run
        assert result.workflows["w"].completion_slot is not None
        assert result.jobs["a"].completion_slot is not None
        assert sim.scheduler.degraded  # never recovered: solver still down
        assert sim.scheduler.plan_failures > 0
        snap = obs.registry.snapshot()
        assert snap["sched.degraded.slots"]["value"] > 0
        assert snap["sched.plan.failures"]["value"] > 0
        assert sink.of_type("plan_fallback")

    def test_transient_outage_recovers_automatically(self):
        calls = {"n": 0}

        def transient(backend, problem):
            calls["n"] += 1
            # The first plan attempt is 3 solves (2 shortfall-relax probes,
            # whose failures are swallowed as best-effort triage, then the
            # first lexmin rung) x 2 backend attempts each: failing all 6
            # fails exactly one whole plan, then the solver comes back.
            if calls["n"] <= 6:
                raise InjectedSolverError("transient")

        sink = MemorySink()
        obs = Observability(sink=sink)
        sim, result = run_flowtime([chain("w")], injector=transient, obs=obs)
        assert result.finished
        assert not sim.scheduler.degraded  # recovered on the next solve
        assert sim.scheduler.plan_failures == 1
        assert sink.of_type("plan_fallback")
        assert sink.of_type("plan_recovered")
        assert result.workflows["w"].met_deadline

    def test_zero_faults_means_zero_degraded_slots(self):
        obs = Observability()
        sim, result = run_flowtime([chain("w")], obs=obs)
        assert result.finished
        assert sim.scheduler.plan_failures == 0
        snap = obs.registry.snapshot()
        assert "sched.degraded.slots" not in snap
        assert "sched.plan.failures" not in snap


class TestChaosHarness:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(solver_fault_prob=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(solver_slow_s=-1)
        with pytest.raises(ValueError):
            ChaosConfig(fault_burst=0)

    def test_seeded_fault_plan_is_deterministic(self):
        config = ChaosConfig(solver_fault_prob=0.3, seed=42, fault_burst=1)
        outcomes = []
        for _ in range(2):
            injector = ChaosInjector(config)
            row = []
            for _ in range(50):
                try:
                    injector("highs", None)
                    row.append(False)
                except InjectedSolverError:
                    row.append(True)
            outcomes.append(row)
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0])

    def test_burst_fails_the_alternate_retry_too(self):
        injector = ChaosInjector(
            ChaosConfig(solver_fault_prob=1.0, fault_burst=2, seed=0)
        )
        for _ in range(4):  # every attempt faults while bursting
            with pytest.raises(InjectedSolverError):
                injector("highs", None)
        assert injector.n_faults == 4

    def test_context_manager_installs_and_removes(self):
        with chaos_solver(ChaosConfig(solver_fault_prob=1.0, seed=1)) as chaos:
            with pytest.raises(SolverFailure):
                solve_lp(tiny_lp())
            assert chaos.n_faults > 0
        # Hook removed: solves are clean again.
        assert solve_lp(tiny_lp()).is_optimal

    def test_slow_faults_trip_the_budget_path(self):
        config = ChaosConfig(solver_slow_prob=1.0, solver_slow_s=0.02, seed=0)
        with chaos_solver(config):
            with pytest.raises(SolverFailure) as excinfo:
                solve_lp(tiny_lp(), time_budget_s=0.001)
        assert excinfo.value.reason == "budget"

    def test_chaos_simulation_completes_under_faults(self):
        obs = Observability()
        with chaos_solver(ChaosConfig(solver_fault_prob=0.2, seed=7)) as chaos:
            sim, result = run_flowtime(
                [chain("w0"), chain("w1", deadline=80)], obs=obs
            )
        assert result.finished
        assert chaos.n_faults > 0
        assert result.workflows["w0"].completion_slot is not None
        assert result.workflows["w1"].completion_slot is not None
