"""The from-scratch simplex against scipy/HiGHS on a battery of LPs."""

import numpy as np
import pytest

from repro.lp import LinearProgram, LPStatus
from repro.lp.scipy_backend import solve as solve_highs
from repro.lp.simplex import solve as solve_simplex


def assert_matches_highs(lp: LinearProgram, tol: float = 1e-6):
    ours = solve_simplex(lp)
    ref = solve_highs(lp)
    assert ours.status is ref.status, (ours.message, ref.message)
    if ref.status is LPStatus.OPTIMAL:
        assert ours.objective == pytest.approx(ref.objective, abs=tol)
        # Feasibility of our x against the original constraints.
        x = ours.x
        assert np.all(x >= lp.lb - tol)
        assert np.all(x <= lp.ub + tol)
        if lp.a_ub.shape[0]:
            assert np.all(np.asarray(lp.a_ub @ x).ravel() <= lp.b_ub + tol)
        if lp.a_eq.shape[0]:
            assert np.allclose(np.asarray(lp.a_eq @ x).ravel(), lp.b_eq, atol=tol)


class TestAgainstHighs:
    def test_basic_le(self):
        lp = LinearProgram(
            c=[-3.0, -5.0],
            a_ub=[[1.0, 0.0], [0.0, 2.0], [3.0, 2.0]],
            b_ub=[4.0, 12.0, 18.0],
        )
        assert_matches_highs(lp)

    def test_equality_constraints(self):
        lp = LinearProgram(
            c=[2.0, 3.0, 1.0],
            a_eq=[[1.0, 1.0, 1.0]],
            b_eq=[10.0],
        )
        assert_matches_highs(lp)

    def test_mixed_constraints_and_bounds(self):
        lp = LinearProgram(
            c=[1.0, -2.0, 0.5],
            a_ub=[[1.0, 1.0, 0.0], [0.0, 1.0, 1.0]],
            b_ub=[5.0, 7.0],
            a_eq=[[1.0, 0.0, 1.0]],
            b_eq=[4.0],
            ub=[3.0, 4.0, 10.0],
        )
        assert_matches_highs(lp)

    def test_negative_rhs(self):
        # x + y >= 3 as -x - y <= -3.
        lp = LinearProgram(c=[2.0, 1.0], a_ub=[[-1.0, -1.0]], b_ub=[-3.0])
        assert_matches_highs(lp)

    def test_shifted_lower_bounds(self):
        lp = LinearProgram(
            c=[1.0, 1.0],
            a_ub=[[1.0, 1.0]],
            b_ub=[10.0],
            lb=[2.0, 3.0],
        )
        sol = solve_simplex(lp)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(5.0)

    def test_free_variable_split(self):
        # min x with x free and x >= -5 via constraint: optimum -5.
        lp = LinearProgram(
            c=[1.0],
            a_ub=[[-1.0]],
            b_ub=[5.0],
            lb=[-np.inf],
        )
        sol = solve_simplex(lp)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(-5.0)

    def test_degenerate_redundant_rows(self):
        lp = LinearProgram(
            c=[1.0, 1.0],
            a_eq=[[1.0, 1.0], [2.0, 2.0]],  # second row redundant
            b_eq=[4.0, 8.0],
        )
        assert_matches_highs(lp)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        n, m = 6, 4
        lp = LinearProgram(
            c=rng.normal(size=n),
            a_ub=rng.normal(size=(m, n)),
            b_ub=rng.uniform(1.0, 5.0, size=m),
            ub=np.full(n, 10.0),
        )
        assert_matches_highs(lp, tol=1e-5)


class TestVertexAndDuals:
    def test_returns_vertex_on_tu_system(self):
        # Interval (TU) system with integer rhs: vertex must be integral.
        lp = LinearProgram(
            c=[1.0, 1.0, 2.0],
            a_eq=[[1.0, 1.0, 0.0]],
            b_eq=[3.0],
            a_ub=[[1.0, 0.0, 1.0], [0.0, 1.0, 1.0]],
            b_ub=[2.0, 2.0],
        )
        sol = solve_simplex(lp)
        assert sol.is_optimal
        assert np.allclose(sol.x, np.round(sol.x), atol=1e-8)

    def test_dual_signs_match_scipy(self):
        lp = LinearProgram(
            c=[-1.0, -1.0],
            a_ub=[[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]],
            b_ub=[2.0, 3.0, 4.0],
        )
        ours = solve_simplex(lp)
        ref = solve_highs(lp)
        assert ours.duals_ub is not None and ref.duals_ub is not None
        assert np.allclose(ours.duals_ub, ref.duals_ub, atol=1e-6)
