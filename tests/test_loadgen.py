"""Tests for the load generator (``scripts/loadgen.py``).

The generator is a measurement instrument — the throughput benchmark and
the CI smoke jobs trust its tallies — so its pacing math, its mixed-
stream composition rules, its tenant-prefix spreading, and its
``accepted_workflow_ids`` ledger are pinned here against a real
in-process service behind the real HTTP frontend.
"""

from __future__ import annotations

import pytest

from repro.model.cluster import ClusterCapacity
from repro.service import SchedulerService, ServiceConfig, serve_http
from scripts.loadgen import _quantile, run_load


@pytest.fixture
def served():
    cluster = ClusterCapacity.uniform(cpu=64, mem=128)
    service = SchedulerService(
        cluster, ServiceConfig(admission=False, adhoc_queue_limit=4096)
    ).start()
    server = serve_http(service)
    yield server
    server.shutdown()
    if service.running:
        service.drain(timeout=120)


class TestQuantile:
    def test_empty_is_zero(self):
        assert _quantile([], 0.99) == 0.0

    def test_picks_by_rank(self):
        values = [float(i) for i in range(100)]
        assert _quantile(values, 0.0) == 0.0
        assert _quantile(values, 0.50) == 50.0
        assert _quantile(values, 0.99) == 99.0
        assert _quantile(values, 1.0) == 99.0  # clamped to the last rank


class TestPacing:
    def test_achieved_rate_tracks_target(self, served):
        """Submitted count ≈ rate x duration, single sender."""
        summary = run_load(
            served.url, rate=40.0, duration_s=1.5, quiet=True
        )
        expected = 40.0 * 1.5
        assert 0.5 * expected <= summary["submitted"] <= 1.2 * expected
        assert summary["achieved_rate"] <= 1.2 * 40.0
        assert summary["errors"] == 0

    def test_concurrency_shares_the_rate(self, served):
        """N senders at rate/N must not multiply the total rate."""
        summary = run_load(
            served.url, rate=40.0, duration_s=1.5, concurrency=4, quiet=True
        )
        expected = 40.0 * 1.5
        assert 0.5 * expected <= summary["submitted"] <= 1.3 * expected
        assert summary["concurrency"] == 4
        # Shared index counter: every request id minted exactly once.
        assert len(summary["request_ids"]) == (
            summary["accepted"] + summary["rejected"]
        )

    def test_tallies_are_conserved(self, served):
        summary = run_load(
            served.url, rate=60.0, duration_s=1.0, concurrency=3, quiet=True
        )
        assert summary["submitted"] == (
            summary["accepted"]
            + summary["rejected"]
            + summary["shed"]
            + summary["errors"]
        )

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="rate"):
            run_load("http://127.0.0.1:1", rate=0.0, quiet=True)
        with pytest.raises(ValueError, match="concurrency"):
            run_load("http://127.0.0.1:1", concurrency=0, quiet=True)
        with pytest.raises(ValueError, match="workflow_every"):
            run_load("http://127.0.0.1:1", workflow_every=-1, quiet=True)


class TestMixComposition:
    def test_workflow_every_zero_is_adhoc_only(self, served):
        summary = run_load(
            served.url,
            rate=30.0,
            duration_s=1.0,
            workflow_every=0,
            quiet=True,
        )
        assert summary["accepted"] > 0
        assert summary["accepted_workflow_ids"] == []
        assert set(summary["request_ids"].values()) == {"adhoc"}

    def test_workflow_every_one_is_workflows_only(self, served):
        summary = run_load(
            served.url,
            rate=20.0,
            duration_s=1.0,
            workflow_every=1,
            quiet=True,
        )
        assert summary["accepted"] > 0
        assert set(summary["request_ids"].values()) == {"workflow"}
        assert len(summary["accepted_workflow_ids"]) == summary["accepted"]

    def test_default_mix_is_one_in_five(self, served):
        summary = run_load(
            served.url, rate=50.0, duration_s=1.0, quiet=True
        )
        kinds = list(summary["request_ids"].values())
        workflows = kinds.count("workflow")
        # Index 0, 5, 10, ... are workflows: one fifth, rounded up.
        assert workflows == (len(kinds) + 4) // 5


class TestTenantSpreading:
    def test_tenant_prefixes_cycle(self, served):
        summary = run_load(
            served.url,
            rate=30.0,
            duration_s=1.5,
            workflow_every=1,
            tenants=3,
            quiet=True,
        )
        ids = summary["accepted_workflow_ids"]
        assert len(ids) >= 3
        prefixes = {wid.split("/", 1)[0] for wid in ids}
        assert prefixes == {"t0", "t1", "t2"}
        # The prefix is deterministic in the submission index.
        for wid in ids:
            prefix, rest = wid.split("/", 1)
            index = int(rest.removeprefix("lg-w"))
            assert prefix == f"t{index % 3}"

    def test_zero_tenants_leaves_ids_unprefixed(self, served):
        summary = run_load(
            served.url,
            rate=20.0,
            duration_s=0.8,
            workflow_every=1,
            quiet=True,
        )
        assert all(
            wid.startswith("lg-w") for wid in summary["accepted_workflow_ids"]
        )


class TestAcceptedLedger:
    def test_ledger_matches_service_accounting(self, served):
        """Every id in the ledger was really accepted: the service's own
        accepted-workflow counter must agree exactly."""
        summary = run_load(
            served.url,
            rate=25.0,
            duration_s=1.2,
            workflow_every=2,
            quiet=True,
        )
        ids = summary["accepted_workflow_ids"]
        assert len(ids) == len(set(ids)), "ledger must not double-count"
        from repro.service import HttpServiceClient

        status = HttpServiceClient(served.url).status()
        assert status.accepted_workflows == len(ids)

    def test_dead_server_counts_errors_not_accepts(self):
        summary = run_load(
            "http://127.0.0.1:9",  # discard port: nothing listens
            rate=20.0,
            duration_s=0.4,
            quiet=True,
        )
        assert summary["accepted"] == 0
        assert summary["errors"] == summary["submitted"] > 0
