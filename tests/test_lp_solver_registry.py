"""Tests for the pluggable SolverBackend registry (ISSUE 7 API redesign).

Covers the public protocol, registration/unregistration, the removed
bare-callable registration form, capability routing with its counters, and
the registry's fastsolve wiring.  Custom backends registered here are always
cleaned up so the process-wide registry stays pristine for other tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp import (
    DEFAULT_BACKEND,
    FunctionBackend,
    LinearProgram,
    LPStatus,
    SolverBackend,
    available_backends,
    backend_info,
    get_backend,
    register_backend,
    solve_lp,
    unregister_backend,
)
from repro.lp import scipy_backend
from repro.lp.problem import LPSolution
from repro.obs import Observability, use_obs


def tiny_lp() -> LinearProgram:
    # min x + y  s.t.  x + y >= 2  ->  objective 2.
    return LinearProgram(c=[1.0, 1.0], a_ub=[[-1.0, -1.0]], b_ub=[-2.0])


def structured_lp() -> LinearProgram:
    # min theta: one job, 4 units over 2 slots of 5 cpu -> theta* = 0.4.
    return LinearProgram(
        c=[0.0, 0.0, 1.0],
        a_ub=[
            [1.0, 0.0, -5.0],
            [0.0, 1.0, -5.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
        ],
        b_ub=[0.0, 0.0, 5.0, 5.0],
        a_eq=[[1.0, 1.0, 0.0]],
        b_eq=[4.0],
        ub=[3.0, 3.0, np.inf],
    )


class _DecliningBackend:
    """A well-formed backend that refuses every instance."""

    name = "picky-test"
    description = "declines everything (routing test double)"

    def __init__(self):
        self.solve_calls = 0

    def supports(self, problem):
        return False

    def solve(self, problem):
        self.solve_calls += 1
        raise AssertionError("a declined backend must never be asked to solve")


@pytest.fixture
def clean_registry():
    """Yield a set of names to register; they are removed afterwards."""
    names = set()
    yield names
    for name in names:
        try:
            unregister_backend(name)
        except KeyError:
            pass


class TestProtocol:
    def test_function_backend_satisfies_protocol(self):
        backend = FunctionBackend(name="x", solve_fn=scipy_backend.solve)
        assert isinstance(backend, SolverBackend)

    def test_plain_object_without_solve_is_not_a_backend(self):
        class NotABackend:
            name = "nope"
            description = ""

        assert not isinstance(NotABackend(), SolverBackend)

    def test_function_backend_claims_everything_without_probe(self):
        backend = FunctionBackend(name="x", solve_fn=scipy_backend.solve)
        assert backend.supports(tiny_lp())

    def test_function_backend_uses_probe_when_given(self):
        backend = FunctionBackend(
            name="x", solve_fn=scipy_backend.solve, supports_fn=lambda lp: False
        )
        assert not backend.supports(tiny_lp())


class TestRegistry:
    def test_builtins_are_registered(self):
        assert {"fastsolve", "highs", "simplex"} <= set(available_backends())
        assert DEFAULT_BACKEND in available_backends()

    def test_backend_info_describes_every_backend(self):
        info = backend_info()
        assert set(info) == set(available_backends())
        assert all(info[name] for name in ("fastsolve", "highs", "simplex"))

    def test_get_backend_returns_registered_object(self):
        assert get_backend("highs").name == "highs"

    def test_get_backend_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown LP backend"):
            get_backend("cplex")

    def test_register_and_unregister_round_trip(self, clean_registry):
        backend = FunctionBackend(
            name="echo-test", solve_fn=scipy_backend.solve, description="d"
        )
        clean_registry.add("echo-test")
        register_backend(backend)
        assert "echo-test" in available_backends()
        assert get_backend("echo-test") is backend
        assert solve_lp(tiny_lp(), backend="echo-test").is_optimal
        unregister_backend("echo-test")
        assert "echo-test" not in available_backends()

    def test_unregister_unknown_raises_key_error(self):
        with pytest.raises(KeyError):
            unregister_backend("never-registered")

    def test_duplicate_name_needs_overwrite(self, clean_registry):
        first = FunctionBackend(name="dup-test", solve_fn=scipy_backend.solve)
        second = FunctionBackend(name="dup-test", solve_fn=scipy_backend.solve)
        clean_registry.add("dup-test")
        register_backend(first)
        with pytest.raises(ValueError, match="already registered"):
            register_backend(second)
        register_backend(second, overwrite=True)
        assert get_backend("dup-test") is second

    def test_backend_object_plus_solve_fn_is_an_error(self):
        backend = FunctionBackend(name="x", solve_fn=scipy_backend.solve)
        with pytest.raises(TypeError):
            register_backend(backend, scipy_backend.solve)


class TestRemovedLegacyForm:
    def test_bare_callable_registration_is_an_error(self):
        with pytest.raises(TypeError):
            register_backend("legacy-test", scipy_backend.solve)
        assert "legacy-test" not in available_backends()

    def test_name_without_callable_is_an_error(self):
        with pytest.raises(TypeError, match="removed in 1.8.0"):
            register_backend("just-a-name")


class TestCapabilityRouting:
    def test_declining_backend_routes_to_alternate(self, clean_registry):
        picky = _DecliningBackend()
        clean_registry.add(picky.name)
        register_backend(picky, alternate="highs")
        obs = Observability()
        with use_obs(obs):
            solution = solve_lp(tiny_lp(), backend=picky.name)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(2.0)
        assert picky.solve_calls == 0
        snapshot = obs.registry.snapshot()
        assert snapshot[f"lp.solve.declined.{picky.name}"]["value"] == 1
        assert snapshot["lp.solve.calls.highs"]["value"] == 1

    def test_fastsolve_declines_unstructured_instances(self):
        obs = Observability()
        with use_obs(obs):
            solution = solve_lp(tiny_lp(), backend="fastsolve")
        assert solution.objective == pytest.approx(2.0)
        snapshot = obs.registry.snapshot()
        assert snapshot["lp.solve.declined.fastsolve"]["value"] == 1
        assert "lp.solve.calls.fastsolve" not in snapshot

    def test_fastsolve_claims_structured_instances(self):
        obs = Observability()
        with use_obs(obs):
            solution = solve_lp(structured_lp(), backend="fastsolve")
        assert solution.status is LPStatus.OPTIMAL
        assert solution.objective == pytest.approx(0.4, abs=1e-9)
        snapshot = obs.registry.snapshot()
        assert snapshot["lp.solve.calls.fastsolve"]["value"] == 1
        assert snapshot["lp.fastsolve.hit"]["value"] == 1

    def test_broken_probe_is_treated_as_decline(self, clean_registry):
        class BrokenProbe:
            name = "broken-probe-test"
            description = "probe raises"

            def supports(self, problem):
                raise RuntimeError("boom")

            def solve(self, problem):  # pragma: no cover - never routed here
                raise AssertionError("must not be called")

        clean_registry.add("broken-probe-test")
        register_backend(BrokenProbe(), alternate="highs")
        solution = solve_lp(tiny_lp(), backend="broken-probe-test")
        assert solution.is_optimal

    def test_error_status_retries_alternate(self, clean_registry):
        def broken(problem):
            return LPSolution(status=LPStatus.ERROR, message="synthetic")

        clean_registry.add("error-test")
        register_backend(
            FunctionBackend(name="error-test", solve_fn=broken),
            alternate="highs",
        )
        obs = Observability()
        with use_obs(obs):
            solution = solve_lp(tiny_lp(), backend="error-test")
        assert solution.is_optimal
        snapshot = obs.registry.snapshot()
        assert snapshot["lp.solve.errors.error-test"]["value"] == 1
        assert snapshot["lp.solve.retry"]["value"] == 1
