"""Service fault-tolerance tests: journal recovery, idempotency, typed
backpressure, retrying clients, and the chaos kill/restart contract.

The headline invariant (docs/ROBUSTNESS.md): **anything a client was told
was accepted survives a crash** — the journal is fsync'd before the
decision is resolved, and a new service on the same journal re-registers
every record.  Everything else here guards the edges of that contract:
idempotent retries, saturation answers, and the deadline-parity bound
under injected solver faults.
"""

import json
import urllib.request

import pytest

from repro.chaos import ChaosConfig, chaos_solver
from repro.lp.solver import install_fault_injector
from repro.model.cluster import ClusterCapacity
from repro.model.workflow import Workflow
from repro.obs import MemorySink, Observability
from repro.service import (
    HttpServiceClient,
    InProcessClient,
    QueueFullError,
    SchedulerService,
    ServiceConfig,
    ServiceSaturatedError,
    SubmissionJournal,
    serve_http,
)
from repro.service.client import ServiceUnavailableError
from repro.service.journal import read_journal
from repro.simulator.failures import FailureModel
from repro.estimation.errors import ErrorModel
from tests.conftest import adhoc_job, deadline_job


@pytest.fixture
def cluster() -> ClusterCapacity:
    return ClusterCapacity.uniform(cpu=40, mem=80)


def chain(wid: str, n: int = 3, deadline: int = 90) -> Workflow:
    jobs = [deadline_job(f"{wid}-j{i}", wid) for i in range(n)]
    edges = [(f"{wid}-j{i}", f"{wid}-j{i+1}") for i in range(n - 1)]
    return Workflow.from_jobs(wid, jobs, edges, 0, deadline)


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SubmissionJournal(path) as journal:
            journal.append_workflow(chain("w"), key="k1")
            journal.append_adhoc(adhoc_job("a", arrival=0))
        records, skipped = read_journal(path)
        assert skipped == 0
        assert [r.kind for r in records] == ["workflow", "adhoc"]
        assert records[0].key == "k1" and records[1].key is None
        assert records[0].entity.workflow_id == "w"
        assert records[1].entity.job_id == "a"

    def test_truncated_tail_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SubmissionJournal(path) as journal:
            journal.append_workflow(chain("w"))
        with open(path, "a") as handle:
            handle.write('{"v": 1, "type": "workflow", "enti')  # crash mid-append
        records, skipped = read_journal(path)
        assert len(records) == 1 and skipped == 1

    def test_unknown_version_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"v": 99, "type": "workflow"}\n')
        records, skipped = read_journal(path)
        assert records == [] and skipped == 1

    def test_missing_file_is_empty(self, tmp_path):
        records, skipped = read_journal(tmp_path / "nope.jsonl")
        assert records == [] and skipped == 0


class TestCrashRecovery:
    def test_kill_restart_loses_no_accepted_work(self, cluster, tmp_path):
        path = str(tmp_path / "j.jsonl")
        service = SchedulerService(cluster, ServiceConfig(journal_path=path))
        service.start()
        workflows = [chain(f"w{i}") for i in range(3)]
        for i, workflow in enumerate(workflows):
            assert service.submit_workflow(
                workflow, idempotency_key=f"wf-{i}"
            ).accepted
        for i in range(3):
            assert service.submit_adhoc(adhoc_job(f"a{i}", arrival=0)).accepted
        service.kill(timeout=30)
        assert not service.running
        with pytest.raises(RuntimeError, match="without a result"):
            service.drain()

        restarted = SchedulerService(cluster, ServiceConfig(journal_path=path))
        status = restarted.status()
        assert status.accepted_workflows == 3
        assert status.accepted_adhoc == 3
        restarted.start()
        result = restarted.drain(timeout=120)
        assert result.finished
        for workflow in workflows:
            assert result.workflows[workflow.workflow_id].completion_slot is not None
        for i in range(3):
            assert result.jobs[f"a{i}"].completion_slot is not None

    def test_recovery_restores_idempotency_keys(self, cluster, tmp_path):
        path = str(tmp_path / "j.jsonl")
        service = SchedulerService(cluster, ServiceConfig(journal_path=path))
        service.start()
        assert service.submit_workflow(chain("w"), idempotency_key="k").accepted
        service.kill(timeout=30)

        restarted = SchedulerService(cluster, ServiceConfig(journal_path=path))
        restarted.start()
        # The pre-crash client never saw its answer and retries the key:
        # original decision, not a duplicate-id rejection.
        retry = restarted.submit_workflow(chain("w"), idempotency_key="k")
        assert retry.accepted and retry.reason == "admitted"
        assert restarted.status().accepted_workflows == 1
        restarted.drain(timeout=120)

    def test_journal_survives_graceful_drain_too(self, cluster, tmp_path):
        path = str(tmp_path / "j.jsonl")
        service = SchedulerService(cluster, ServiceConfig(journal_path=path))
        service.start()
        assert service.submit_workflow(chain("w")).accepted
        result = service.drain(timeout=120)
        assert result.finished
        records, skipped = read_journal(path)
        assert len(records) == 1 and skipped == 0

    def test_recovered_counter(self, cluster, tmp_path):
        path = str(tmp_path / "j.jsonl")
        service = SchedulerService(cluster, ServiceConfig(journal_path=path))
        service.start()
        service.submit_workflow(chain("w"))
        service.kill(timeout=30)
        obs = Observability()
        SchedulerService(cluster, ServiceConfig(journal_path=path), obs=obs)
        snap = obs.registry.snapshot()
        assert snap["service.journal.recovered"]["value"] == 1


class TestIdempotency:
    def test_repeated_key_returns_original_decision(self, cluster):
        service = SchedulerService(cluster).start()
        first = service.submit_workflow(chain("w"), idempotency_key="k")
        second = service.submit_workflow(chain("w"), idempotency_key="k")
        assert first.accepted and second.accepted
        assert service.status().accepted_workflows == 1
        service.drain(timeout=120)

    def test_rejections_are_not_pinned(self, cluster):
        # A shed ad-hoc may succeed on retry once the queue drains: the
        # key must not freeze the rejection.
        service = SchedulerService(
            cluster,
            ServiceConfig(adhoc_queue_limit=1, realtime=True, slot_seconds=300.0),
        ).start()
        assert service.submit_adhoc(adhoc_job("a0", arrival=0)).accepted
        shed = service.submit_adhoc(adhoc_job("a1", arrival=0), idempotency_key="k")
        assert not shed.accepted and shed.reason == "queue_full"
        assert "k" not in service._idempotency
        service.drain(timeout=120)

    def test_no_key_no_dedup(self, cluster):
        service = SchedulerService(cluster).start()
        assert service.submit_workflow(chain("w")).accepted
        duplicate = service.submit_workflow(chain("w"))
        assert not duplicate.accepted and duplicate.reason == "invalid"
        service.drain(timeout=120)


class TestBackpressure:
    def test_command_queue_saturation_raises_typed_error(self, cluster):
        # Not started: commands pile up, the limit bites synchronously.
        service = SchedulerService(
            cluster, ServiceConfig(command_queue_limit=2)
        )
        service.submit_workflow(chain("w0"), wait=False)
        service.submit_workflow(chain("w1"), wait=False)
        with pytest.raises(ServiceSaturatedError) as excinfo:
            service.submit_workflow(chain("w2"), wait=False)
        assert excinfo.value.retry_after_s >= 1.0
        service.start()
        service.drain(timeout=120)

    def test_inprocess_client_raises_queue_full(self, cluster):
        service = SchedulerService(
            cluster,
            ServiceConfig(adhoc_queue_limit=1, realtime=True, slot_seconds=300.0),
        ).start()
        client = InProcessClient(service)
        assert client.submit_adhoc(adhoc_job("a0", arrival=0)).accepted
        with pytest.raises(QueueFullError) as excinfo:
            client.submit_adhoc(adhoc_job("a1", arrival=0))
        assert excinfo.value.queue_depth == 1
        service.drain(timeout=120)


class TestAdmissionUnavailable:
    def test_solver_outage_answers_unavailable_not_silent_admit(self, cluster):
        def fail_everything(backend, problem):
            raise RuntimeError("injected outage")

        service = SchedulerService(cluster, ServiceConfig(admission=True)).start()
        install_fault_injector(fail_everything)
        try:
            result = service.submit_workflow(chain("w"))
        finally:
            install_fault_injector(None)
        assert not result.accepted and result.reason == "unavailable"
        # The outage clears: the same workflow is admissible again.
        assert service.submit_workflow(chain("w")).accepted
        service.drain(timeout=120)


@pytest.fixture
def served(cluster):
    service = SchedulerService(
        cluster,
        ServiceConfig(adhoc_queue_limit=1, realtime=True, slot_seconds=300.0),
    ).start()
    server = serve_http(service)
    client = HttpServiceClient(server.url, timeout=30)
    yield service, server, client
    server.shutdown()
    if service.running:
        service.drain(timeout=120)


class TestHttpRobustness:
    def test_health_probes(self, served):
        _, _, client = served
        assert client.healthy()
        assert client.ready()

    def test_readyz_503_while_draining(self, cluster):
        service = SchedulerService(cluster).start()
        server = serve_http(service)
        try:
            client = HttpServiceClient(server.url, timeout=30)
            service.drain(timeout=120)
            assert client.healthy()  # process alive...
            assert not client.ready()  # ...but no longer admitting
        finally:
            server.shutdown()

    def test_http_client_raises_queue_full_with_retry_after(self, served):
        _, server, client = served
        assert client.submit_adhoc(adhoc_job("a0", arrival=0)).accepted
        with pytest.raises(QueueFullError):
            client.submit_adhoc(adhoc_job("a1", arrival=0))
        # Raw 429 carries Retry-After for generic clients.
        from repro.workloads.traces import job_to_dict

        request = urllib.request.Request(
            server.url + "/jobs",
            data=json.dumps(job_to_dict(adhoc_job("a2", arrival=0))).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 429
        assert excinfo.value.headers.get("Retry-After") is not None

    def test_idempotency_key_over_http(self, served):
        service, _, client = served
        first = client.submit_workflow(chain("w"), idempotency_key="k")
        second = client.submit_workflow(chain("w"), idempotency_key="k")
        assert first.accepted and second.accepted
        assert service.status().accepted_workflows == 1

    def test_retries_exhausted_raise_unavailable(self):
        # Nothing listens on a reserved port: every attempt is a
        # connection error; the client gives up after max_retries.
        client = HttpServiceClient(
            "http://127.0.0.1:9", timeout=1, max_retries=1, backoff_s=0.01
        )
        with pytest.raises(ServiceUnavailableError):
            client.status()

    def test_retry_after_floors_the_backoff(self):
        client = HttpServiceClient("http://example.invalid", backoff_s=0.01)
        assert client._backoff(0, retry_after=2.5) >= 2.5
        assert client._backoff(0, retry_after=None) <= 0.01


class TestFaultModelsInService:
    def test_setbacks_during_serving_still_drain_cleanly(self, cluster):
        sink = MemorySink()
        obs = Observability(sink=sink)
        service = SchedulerService(
            cluster,
            ServiceConfig(
                admission=False,
                failures=FailureModel(setback_prob=0.3, max_setback_units=3, seed=5),
            ),
            obs=obs,
        ).start()
        workflows = [chain(f"w{i}", deadline=200) for i in range(2)]
        for workflow in workflows:
            assert service.submit_workflow(workflow).accepted
        result = service.drain(timeout=120)
        assert result.finished
        for workflow in workflows:
            assert result.workflows[workflow.workflow_id].completion_slot is not None
        # Setbacks actually happened and triggered re-planning events.
        assert sink.of_type("job_setback")
        assert service.scheduler.replans > 1

    def test_error_model_perturbs_true_structure_deterministically(
        self, cluster, tmp_path
    ):
        config = ServiceConfig(
            admission=False,
            error_model=ErrorModel(low=2.0, high=2.0),
            fault_seed=11,
            journal_path=str(tmp_path / "j.jsonl"),
        )
        service = SchedulerService(cluster, config).start()
        assert service.submit_workflow(chain("w")).accepted
        service.kill(timeout=30)

        restarted = SchedulerService(cluster, config)
        restarted.start()
        result = restarted.drain(timeout=120)
        assert result.finished
        # factor 2.0 doubles true durations: true != believed, and the
        # journal replay re-derived the same perturbation from the seed.
        record = result.jobs["w-j0"]
        assert record.true_units == 2 * record.est_units


class TestChaosEndToEnd:
    def test_chaos_with_kill_restart_zero_loss_and_parity(self, cluster, tmp_path):
        """The CI chaos gate in miniature: 10% solver faults + SIGKILL +
        restart must lose nothing and stay deadline-comparable."""
        workflows = [chain(f"w{i}", deadline=200) for i in range(3)]
        adhoc = [adhoc_job(f"a{i}", arrival=0) for i in range(3)]

        def run(chaos_config=None, kill=False, journal=None):
            obs = Observability()
            config = ServiceConfig(admission=False, journal_path=journal)
            if chaos_config is None:
                service = SchedulerService(cluster, config, obs=obs).start()
                for workflow in workflows:
                    assert service.submit_workflow(workflow).accepted
                for job in adhoc:
                    assert service.submit_adhoc(job).accepted
                return service.drain(timeout=120), obs
            with chaos_solver(chaos_config) as chaos:
                service = SchedulerService(cluster, config, obs=obs).start()
                for workflow in workflows:
                    assert service.submit_workflow(workflow).accepted
                for job in adhoc:
                    assert service.submit_adhoc(job).accepted
                if kill:
                    service.kill(timeout=30)
                    obs = Observability()
                    service = SchedulerService(
                        cluster, config, obs=obs
                    ).start()
                result = service.drain(timeout=120)
            assert chaos.n_faults > 0
            return result, obs

        baseline, _ = run()
        chaotic, obs = run(
            ChaosConfig(solver_fault_prob=0.10, seed=3),
            kill=True,
            journal=str(tmp_path / "j.jsonl"),
        )

        assert chaotic.finished
        # Zero loss: every accepted submission completed despite the kill.
        for workflow in workflows:
            assert chaotic.workflows[workflow.workflow_id].completion_slot is not None
        for job in adhoc:
            assert chaotic.jobs[job.job_id].completion_slot is not None
        # Deadline-hit parity within bound (ISSUE: 5pp on 3 workflows -> no
        # more than one extra miss is already stricter than the bound).
        def met(result):
            return sum(r.met_deadline for r in result.workflows.values())

        assert met(baseline) - met(chaotic) <= 1


class TestServiceRunsVerified:
    """Differential verification of the service paths: journal-replayed
    and chaos-degraded runs are validator-clean, and a replayed run's
    outcome metrics equal the plain batch run (docs/VERIFICATION.md)."""

    @staticmethod
    def _validate(cluster, workflows, adhoc, result, windows=None):
        from repro.simulator.metrics import summarize
        from repro.verify import ScheduleValidator

        jobs = [job for wf in workflows for job in wf.jobs] + list(adhoc)
        validator = ScheduleValidator(
            cluster, workflows=workflows, jobs=jobs, windows=windows
        )
        report = validator.validate(result)
        if windows is not None:
            validator.check_reported(
                result, summarize(result, windows), report
            )
        assert report.ok, report.render()

    def test_journal_replay_is_clean_and_equals_batch(self, cluster, tmp_path):
        from repro.core.decomposition import decompose_deadline
        from repro.schedulers.registry import make_scheduler
        from repro.simulator.engine import Simulation, SimulationConfig
        from repro.simulator.metrics import summarize

        workflows = [chain(f"w{i}") for i in range(2)]
        adhoc = [adhoc_job(f"a{i}", arrival=0) for i in range(2)]
        windows = {}
        for workflow in workflows:
            windows.update(decompose_deadline(workflow, cluster).windows)

        config = ServiceConfig(
            admission=False,
            record_execution=True,
            journal_path=str(tmp_path / "journal.jsonl"),
        )
        service = SchedulerService(cluster, config).start()
        for workflow in workflows:
            assert service.submit_workflow(workflow).accepted
        for job in adhoc:
            assert service.submit_adhoc(job).accepted
        service.kill(timeout=30)
        replayed = SchedulerService(cluster, config).start().drain(timeout=120)
        self._validate(cluster, workflows, adhoc, replayed, windows)

        batch = Simulation(
            cluster,
            make_scheduler("FlowTime"),
            workflows=workflows,
            adhoc_jobs=adhoc,
            config=SimulationConfig(record_execution=True),
        ).run()
        self._validate(cluster, workflows, adhoc, batch, windows)

        def comparable(result):
            return {
                k: v
                for k, v in summarize(result, windows).items()
                if not k.startswith("decide_ms")
            }

        assert comparable(replayed) == comparable(batch)

    def test_chaos_degraded_run_is_validator_clean(self, cluster):
        workflows = [chain(f"w{i}") for i in range(2)]
        adhoc = [adhoc_job(f"a{i}", arrival=0) for i in range(2)]
        with chaos_solver(
            ChaosConfig(solver_fault_prob=0.30, seed=3)
        ) as chaos:
            service = SchedulerService(
                cluster, ServiceConfig(admission=False, record_execution=True)
            ).start()
            for workflow in workflows:
                assert service.submit_workflow(workflow).accepted
            for job in adhoc:
                assert service.submit_adhoc(job).accepted
            result = service.drain(timeout=120)
        assert chaos.n_faults > 0
        self._validate(cluster, workflows, adhoc, result)
