"""Tests for scheduler views and their helpers."""

import pytest

from repro.model.cluster import ClusterCapacity
from repro.model.resources import ResourceVector
from repro.simulator.view import (
    AdhocJobView,
    ClusterView,
    DeadlineJobView,
    fit_units,
    subtract_grant,
)
from tests.conftest import spec


def deadline_view(job_id="d", ready=True, completed=False, remaining=8):
    return DeadlineJobView(
        job_id=job_id,
        workflow_id="w",
        arrival_slot=0,
        ready=ready,
        completed=completed,
        est_spec=spec(),
        executed_units=0,
        believed_remaining_units=remaining,
    )


def adhoc_view(job_id="a", arrival=0, pending=3, completed=False):
    return AdhocJobView(
        job_id=job_id,
        arrival_slot=arrival,
        unit_demand=ResourceVector(cpu=1, mem=2),
        pending_units=pending,
        completed=completed,
    )


def view(deadline=(), adhoc=(), slot=0):
    return ClusterView(
        slot=slot,
        capacity=ClusterCapacity.uniform(cpu=10, mem=20),
        deadline_jobs=tuple(deadline),
        adhoc_jobs=tuple(adhoc),
        workflows={},
    )


class TestHelpers:
    def test_fit_units_caps_at_wanted(self):
        leftover = ResourceVector(cpu=10, mem=20)
        assert fit_units(leftover, ResourceVector(cpu=2, mem=4), 3) == 3

    def test_fit_units_caps_at_capacity(self):
        leftover = ResourceVector(cpu=5, mem=20)
        assert fit_units(leftover, ResourceVector(cpu=2, mem=4), 10) == 2

    def test_fit_units_zero_wanted(self):
        assert fit_units(ResourceVector(cpu=10), ResourceVector(cpu=1), 0) == 0

    def test_subtract_grant(self):
        leftover = subtract_grant(
            ResourceVector(cpu=10, mem=20), ResourceVector(cpu=2, mem=4), 3
        )
        assert leftover == ResourceVector(cpu=4, mem=8)


class TestClusterView:
    def test_capacity_now_uses_slot(self):
        cluster = ClusterCapacity(
            base=ResourceVector(cpu=10, mem=10),
            overrides={5: ResourceVector(cpu=2, mem=2)},
        )
        v = ClusterView(5, cluster, (), (), {})
        assert v.capacity_now() == ResourceVector(cpu=2, mem=2)

    def test_deadline_job_lookup(self):
        v = view(deadline=[deadline_view("d1")])
        assert v.deadline_job("d1").job_id == "d1"
        with pytest.raises(KeyError):
            v.deadline_job("nope")

    def test_live_excludes_completed(self):
        v = view(
            deadline=[deadline_view("a"), deadline_view("b", completed=True)]
        )
        assert [j.job_id for j in v.live_deadline_jobs()] == ["a"]

    def test_runnable_requires_ready(self):
        v = view(
            deadline=[
                deadline_view("a", ready=False),
                deadline_view("b"),
                deadline_view("c", completed=True),
            ]
        )
        assert [j.job_id for j in v.runnable_deadline_jobs()] == ["b"]

    def test_waiting_adhoc_sorted_fifo(self):
        v = view(
            adhoc=[
                adhoc_view("late", arrival=9),
                adhoc_view("early", arrival=1),
                adhoc_view("done", arrival=0, completed=True),
                adhoc_view("empty", arrival=0, pending=0),
            ]
        )
        assert [j.job_id for j in v.waiting_adhoc_jobs()] == ["early", "late"]

    def test_deadline_view_derived_properties(self):
        job = deadline_view()
        assert job.unit_demand == spec().demand
        assert job.max_parallel == spec().count
