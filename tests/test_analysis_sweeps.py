"""Tests for the parameter-sweep harness."""

import pytest

from repro.analysis.sweeps import sweep
from repro.model.cluster import ClusterCapacity
from repro.workloads.traces import generate_trace


@pytest.fixture(scope="module")
def looseness_sweep():
    cluster = ClusterCapacity.uniform(cpu=48, mem=96)

    def factory(looseness: float):
        trace = generate_trace(
            n_workflows=2,
            jobs_per_workflow=5,
            n_adhoc=6,
            capacity=cluster,
            looseness=(looseness, looseness + 0.5),
            seed=4,
        )
        return trace, cluster

    return sweep("looseness", [2.0, 6.0], factory, ["FlowTime", "FIFO"])


class TestSweep:
    def test_one_comparison_per_point(self, looseness_sweep):
        assert looseness_sweep.xs == (2.0, 6.0)
        assert len(looseness_sweep.comparisons) == 2

    def test_series_extraction(self, looseness_sweep):
        misses = looseness_sweep.series("jobs_missed")
        assert set(misses) == {"FlowTime", "FIFO"}
        assert all(len(vals) == 2 for vals in misses.values())

    def test_turnaround_series(self, looseness_sweep):
        turns = looseness_sweep.series("adhoc_turnaround_s")
        assert all(v >= 0 for vals in turns.values() for v in vals)

    def test_looser_deadlines_never_increase_flowtime_misses(self, looseness_sweep):
        misses = looseness_sweep.series("jobs_missed")["FlowTime"]
        assert misses[1] <= misses[0]

    def test_unknown_metric(self, looseness_sweep):
        with pytest.raises(ValueError):
            looseness_sweep.series("latency_p99")

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            sweep("x", [], lambda x: (None, None), ["FlowTime"])
