"""SLO tracker: error-budget arithmetic over engine-fed windowed metrics."""

from __future__ import annotations

import json

import pytest

from repro.obs import SLOConfig, SLOTracker, json_safe
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DECIDE_LATENCY_METRIC,
    WORKFLOWS_MISSED_METRIC,
    WORKFLOWS_TOTAL_METRIC,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def registry(clock):
    registry = MetricsRegistry()
    registry.windowed_counter(WORKFLOWS_TOTAL_METRIC, clock=clock)
    registry.windowed_counter(WORKFLOWS_MISSED_METRIC, clock=clock)
    registry.windowed_histogram(DECIDE_LATENCY_METRIC, clock=clock)
    return registry


def feed(registry, *, total=0, missed=0, decide_s=()):
    registry.get(WORKFLOWS_TOTAL_METRIC).inc(total)
    registry.get(WORKFLOWS_MISSED_METRIC).inc(missed)
    for value in decide_s:
        registry.get(DECIDE_LATENCY_METRIC).observe(value)


class TestSLOConfig:
    def test_defaults(self):
        config = SLOConfig()
        assert config.deadline_objective == 0.99
        assert config.decide_p99_s == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_objective": 0.0},
            {"deadline_objective": 1.0},
            {"decide_p99_s": 0.0},
            {"window_s": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SLOConfig(**kwargs)


class TestDeadlineStatus:
    def test_no_data_reports_unknown_not_healthy(self, registry):
        tracker = SLOTracker(registry)
        status = tracker.deadline_status()
        assert status["total"] == 0.0
        assert status["compliance"] is None
        assert status["burn_rate"] is None
        assert tracker.snapshot()["healthy"] is None

    def test_all_met_full_budget(self, registry):
        feed(registry, total=100)
        status = SLOTracker(registry).deadline_status()
        assert status["compliance"] == 1.0
        assert status["budget_remaining"] == 1.0
        assert status["burn_rate"] == 0.0

    def test_burn_rate_one_spends_exactly_on_budget(self, registry):
        # 1 miss in 100 with a 99% objective: exactly the allowed rate.
        feed(registry, total=100, missed=1)
        status = SLOTracker(
            registry, SLOConfig(deadline_objective=0.99)
        ).deadline_status()
        assert status["burn_rate"] == pytest.approx(1.0)
        assert status["budget_remaining"] == pytest.approx(0.0)

    def test_overspent_budget_goes_negative_and_unhealthy(self, registry):
        feed(registry, total=100, missed=10)
        tracker = SLOTracker(registry, SLOConfig(deadline_objective=0.99))
        status = tracker.deadline_status()
        assert status["budget_remaining"] == pytest.approx(-9.0)
        assert status["burn_rate"] == pytest.approx(10.0)
        assert tracker.snapshot()["healthy"] is False

    def test_window_excludes_old_misses(self, registry, clock):
        feed(registry, total=50, missed=50)
        clock.now += 400.0  # past the 300 s window
        feed(registry, total=10)
        status = SLOTracker(registry).deadline_status()
        # All-time stats still see the bad past...
        assert status["missed"] == 50.0
        # ...but the windowed burn rate has recovered.
        assert status["window_missed"] == 0.0
        assert status["burn_rate"] == 0.0

    def test_missing_metrics_are_zero(self):
        status = SLOTracker(MetricsRegistry()).deadline_status()
        assert status["total"] == 0.0
        assert status["compliance"] is None


class TestDecideLatency:
    def test_p99_vs_objective(self, registry):
        feed(registry, decide_s=[0.01] * 99 + [5.0])
        tracker = SLOTracker(registry, SLOConfig(decide_p99_s=1.0))
        status = tracker.decide_latency_status()
        assert status["window_count"] == 100
        assert status["p99_s"] is not None
        assert status["ok"] in (True, False)

    def test_fast_decides_are_healthy(self, registry):
        feed(registry, total=10, decide_s=[0.005] * 100)
        snapshot = SLOTracker(registry).snapshot()
        assert snapshot["decide_latency"]["ok"] is True
        assert snapshot["healthy"] is True

    def test_empty_window_is_unknown(self, registry):
        status = SLOTracker(registry).decide_latency_status()
        assert status["p99_s"] is None
        assert status["ok"] is None


class TestSnapshot:
    def test_strict_json_safe(self, registry):
        snapshot = json_safe(SLOTracker(registry).snapshot())
        json.dumps(snapshot, allow_nan=False)  # must not raise

    def test_engine_feeds_tracker_in_batch_run(self, small_cluster):
        # The integration point run_report relies on: a plain simulation
        # populates the slo.* metrics without any service in the picture.
        from repro.model.job import Job, TaskSpec
        from repro.model.resources import CPU, MEM, ResourceVector
        from repro.model.workflow import Workflow
        from repro.obs import Observability
        from repro.schedulers.registry import make_scheduler
        from repro.simulator.engine import Simulation

        spec = TaskSpec(
            count=1, duration_slots=2, demand=ResourceVector({CPU: 1, MEM: 1})
        )
        jobs = [Job(job_id="w-j0", tasks=spec, workflow_id="w")]
        workflow = Workflow.from_jobs("w", jobs, [], 0, 50)
        obs = Observability()
        Simulation(
            small_cluster, make_scheduler("FlowTime"),
            workflows=[workflow], obs=obs,
        ).run()
        status = SLOTracker(obs.registry).snapshot()
        assert status["deadline"]["total"] == 1.0
        assert status["deadline"]["missed"] == 0.0
        assert status["healthy"] is True
