"""Tests for the asyncio JSON-over-HTTP frontend (``repro.service.aio``).

The async frontend must be wire-compatible with the threaded one
(:mod:`repro.service.http`): same routes, same status codes, same
``X-Request-Id`` / ``Retry-After`` / idempotency semantics — the
:class:`~repro.service.client.HttpServiceClient` cannot tell them apart.
Each test binds an ephemeral port, drives the real socket, and shuts
down in a fixture.
"""

from __future__ import annotations

import http.client
import json
import urllib.error
import urllib.request

import pytest

from repro.model.cluster import ClusterCapacity
from repro.model.workflow import Workflow
from repro.service import (
    HttpServiceClient,
    SchedulerService,
    ServiceConfig,
    serve_http_async,
)
from repro.workloads.traces import job_to_dict, workflow_to_dict
from tests.conftest import adhoc_job, deadline_job


def chain(wid: str, n: int = 3, start: int = 0, deadline: int = 60) -> Workflow:
    jobs = [deadline_job(f"{wid}-j{i}", wid) for i in range(n)]
    edges = [(f"{wid}-j{i}", f"{wid}-j{i+1}") for i in range(n - 1)]
    return Workflow.from_jobs(wid, jobs, edges, start, deadline)


@pytest.fixture
def served():
    cluster = ClusterCapacity.uniform(cpu=40, mem=80)
    service = SchedulerService(
        cluster, ServiceConfig(adhoc_queue_limit=2)
    ).start()
    server = serve_http_async(service)
    client = HttpServiceClient(server.url, timeout=30)
    yield service, server, client
    server.shutdown()
    if service.running:
        service.drain(timeout=60)


def raw_request(url, method="GET", payload=None, headers=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    for key, value in (headers or {}).items():
        request.add_header(key, value)
    if data:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read() or b"{}"), error.headers


class TestRouteParity:
    """The client drives every route exactly as it drives the threaded
    frontend — acceptance of these calls IS the wire-compat statement."""

    def test_submit_workflow_and_job(self, served):
        _, _, client = served
        result = client.submit_workflow(chain("w"))
        assert result.accepted and result.reason == "admitted"
        result = client.submit_adhoc(adhoc_job("a", arrival=0))
        assert result.accepted and result.reason == "queued"

    def test_status_endpoint(self, served):
        _, _, client = served
        client.submit_workflow(chain("w"))
        status = client.status()
        assert status.running and not status.draining
        assert status.accepted_workflows == 1
        assert status.scheduler == "FlowTime"

    def test_plan_endpoint(self, served):
        service, _, client = served
        client.submit_workflow(chain("w"))
        service.drain(timeout=60)
        plan = client.plan()
        assert set(plan) >= {"origin_slot", "horizon", "jobs"}

    def test_metrics_endpoint(self, served):
        _, _, client = served
        client.submit_workflow(chain("w"))
        metrics = client.metrics()
        assert metrics["service.submit.workflow.accepted"]["value"] == 1.0
        # The frontend observes its own request counters, like the
        # threaded server does (the /metrics request itself is counted
        # only after its snapshot is taken — the submit is visible).
        assert metrics["http.requests"]["value"] >= 1.0

    def test_metrics_prometheus_endpoint(self, served):
        from repro.obs import parse_prometheus

        _, server, client = served
        client.submit_workflow(chain("w"))
        with urllib.request.urlopen(
            server.url + "/metrics?format=prometheus", timeout=30
        ) as r:
            assert r.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            text = r.read().decode()
        families = parse_prometheus(text)
        assert "repro_service_submit_workflow_accepted_total" in families

    def test_slo_and_health_endpoints(self, served):
        _, server, client = served
        client.submit_workflow(chain("w"))
        slo = client.slo()
        assert set(slo) == {"config", "deadline", "decide_latency", "healthy"}
        status, body, _ = raw_request(server.url + "/healthz")
        assert status == 200 and body["ok"] is True
        status, body, _ = raw_request(server.url + "/readyz")
        assert status == 200

    def test_unknown_route_404(self, served):
        _, server, _ = served
        status, body, _ = raw_request(server.url + "/nope")
        assert status == 404 and "error" in body

    def test_duplicate_workflow_400(self, served):
        _, server, client = served
        client.submit_workflow(chain("w"))
        status, body, _ = raw_request(
            server.url + "/workflows", "POST", workflow_to_dict(chain("w"))
        )
        assert status == 400
        assert body["accepted"] is False and body["reason"] == "invalid"

    def test_malformed_and_non_json_bodies_400(self, served):
        _, server, _ = served
        status, body, _ = raw_request(
            server.url + "/workflows", "POST", {"nope": 1}
        )
        assert status == 400 and "error" in body
        request = urllib.request.Request(
            server.url + "/workflows", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400


class TestBackpressure:
    def test_queue_full_429_with_retry_after(self):
        # Realtime + a long slot keeps submissions live so the bounded
        # queue really fills (virtual time would drain between requests).
        cluster = ClusterCapacity.uniform(cpu=40, mem=80)
        service = SchedulerService(
            cluster,
            ServiceConfig(
                adhoc_queue_limit=2, realtime=True, slot_seconds=300.0
            ),
        ).start()
        server = serve_http_async(service)
        try:
            outcomes = []
            for i in range(4):  # limit is 2
                status, body, headers = raw_request(
                    server.url + "/jobs",
                    "POST",
                    job_to_dict(adhoc_job(f"a{i}", arrival=0)),
                )
                outcomes.append((status, body["reason"], headers))
            assert [o[:2] for o in outcomes].count((200, "queued")) == 2
            shed = [o for o in outcomes if o[0] == 429]
            assert len(shed) == 2
            for _, reason, headers in shed:
                assert reason == "queue_full"
                assert int(headers["Retry-After"]) >= 1
        finally:
            server.shutdown()
            result = service.drain(timeout=60)
        assert result.finished


class TestRequestIds:
    def test_header_echoed_and_minted(self, served):
        _, server, _ = served
        payload = {"workflow": "nonsense"}
        status, _, headers = raw_request(
            server.url + "/workflows", "POST", payload,
            headers={"X-Request-Id": "client-id-7"},
        )
        assert status == 400
        assert headers.get("X-Request-Id") == "client-id-7"
        # No header → the server mints one.
        status, _, headers = raw_request(
            server.url + "/workflows", "POST", payload
        )
        assert status == 400
        minted = headers.get("X-Request-Id")
        assert minted and len(minted) == 32

    def test_invalid_header_replaced_not_trusted(self, served):
        _, server, _ = served
        status, _, headers = raw_request(
            server.url + "/workflows", "POST", {},
            headers={"X-Request-Id": "bad id with spaces!"},
        )
        assert status == 400
        echoed = headers.get("X-Request-Id")
        assert echoed and echoed != "bad id with spaces!"

    def test_result_body_carries_request_id(self, served):
        _, _, client = served
        result = client.submit_workflow(chain("w"), request_id="req-42")
        assert result.request_id == "req-42"


class TestIdempotency:
    def test_replayed_key_returns_first_decision(self, served):
        _, _, client = served
        first = client.submit_workflow(
            chain("w"), idempotency_key="key-1", request_id="original"
        )
        assert first.accepted
        replay = client.submit_workflow(
            chain("w"), idempotency_key="key-1", request_id="second"
        )
        assert replay.accepted
        assert replay.request_id == "original"

    def test_distinct_keys_are_distinct_submissions(self, served):
        _, _, client = served
        assert client.submit_workflow(chain("w"), idempotency_key="k1").accepted
        dup = client.submit_workflow(chain("w"), idempotency_key="k2")
        assert not dup.accepted and dup.reason == "invalid"


class TestConnectionHandling:
    def test_keep_alive_serves_many_requests_per_connection(self, served):
        _, server, _ = served
        host, port = server.url.removeprefix("http://").split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            for _ in range(5):
                conn.request("GET", "/status")
                response = conn.getresponse()
                assert response.status == 200
                json.loads(response.read())  # must drain to reuse
        finally:
            conn.close()

    def test_connection_close_honoured(self, served):
        _, server, _ = served
        host, port = server.url.removeprefix("http://").split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            conn.request("GET", "/status", headers={"Connection": "close"})
            response = conn.getresponse()
            assert response.status == 200
            assert response.headers.get("Connection") == "close"
            json.loads(response.read())
        finally:
            conn.close()

    def test_oversized_body_rejected(self, served):
        _, server, _ = served
        host, port = server.url.removeprefix("http://").split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            body = b"x" * (8 * 1024 * 1024 + 1)
            with pytest.raises((ConnectionError, http.client.HTTPException, OSError)):
                conn.request("POST", "/jobs", body=body,
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                # A 413 answer (instead of a drop) is also acceptable.
                assert response.status == 413
                raise ConnectionError("rejected with 413")
        finally:
            conn.close()


class TestLifecycle:
    def test_shutdown_is_idempotent_and_releases_port(self):
        cluster = ClusterCapacity.uniform(cpu=8, mem=16)
        service = SchedulerService(cluster, ServiceConfig()).start()
        server = serve_http_async(service)
        port = int(server.url.rsplit(":", 1)[1])
        server.shutdown()
        server.shutdown()  # second call must be a no-op
        # The port is free again: a new server can bind it.
        second = serve_http_async(service, port=port)
        try:
            status, _, _ = raw_request(second.url + "/healthz")
            assert status == 200
        finally:
            second.shutdown()
            service.drain(timeout=60)

    def test_submit_run_drain_end_to_end(self, served):
        service, server, client = served
        assert client.submit_workflow(chain("w", deadline=80)).accepted
        assert client.submit_adhoc(adhoc_job("a", arrival=0)).accepted
        server.shutdown()
        result = service.drain(timeout=60)
        assert result.finished
        assert result.workflows["w"].met_deadline
        assert result.jobs["a"].completion_slot is not None
