"""Tests for multi-seed replication statistics."""

import pytest

from repro.analysis.stats import MetricSummary, replicate
from repro.model.cluster import ClusterCapacity
from repro.workloads.traces import generate_trace


class TestMetricSummary:
    def test_of_single_value(self):
        summary = MetricSummary.of([3.0])
        assert summary.mean == 3.0
        assert summary.std == 0.0
        assert summary.n == 1

    def test_of_spread(self):
        summary = MetricSummary.of([1.0, 3.0])
        assert summary.mean == 2.0
        assert summary.std == pytest.approx(1.0)
        assert summary.minimum == 1.0 and summary.maximum == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MetricSummary.of([])

    def test_str_format(self):
        text = str(MetricSummary.of([1.0, 3.0]))
        assert "±" in text and "[1.0, 3.0]" in text


@pytest.fixture(scope="module")
def replication():
    cluster = ClusterCapacity.uniform(cpu=48, mem=96)

    def factory(seed: int):
        trace = generate_trace(
            n_workflows=2,
            jobs_per_workflow=4,
            n_adhoc=5,
            capacity=cluster,
            seed=seed,
        )
        return trace, cluster

    return replicate(factory, seeds=[1, 2, 3], algorithms=["FlowTime", "FIFO"])


class TestReplicate:
    def test_summaries_cover_all_algorithms_and_metrics(self, replication):
        assert replication.algorithms == ("FlowTime", "FIFO")
        for name in replication.algorithms:
            for metric in ("jobs_missed", "workflows_missed", "adhoc_turnaround_s"):
                assert replication.summary(name, metric).n == 3

    def test_flowtime_misses_zero_across_seeds(self, replication):
        summary = replication.summary("FlowTime", "jobs_missed")
        assert summary.maximum == 0.0

    def test_format_table(self, replication):
        table = replication.format_table("adhoc_turnaround_s")
        assert "FlowTime" in table and "FIFO" in table
        assert "±" in table

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda s: (None, None), [], ["FlowTime"])
