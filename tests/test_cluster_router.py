"""Tests for capacity slicing and the shard router.

Router behaviour (hashing, placement overrides, ad-hoc spill,
aggregation, dead-shard handling) is tested against scripted stub shards
— the router only needs the handle surface, and stubs make every failure
mode deterministic.  Integration with real services is covered by
tests/test_cluster_rebalance.py and tests/test_cluster_property.py.
"""

import pytest

from repro.cluster import ShardRouter, slice_capacity
from repro.model.cluster import ClusterCapacity
from repro.model.resources import ResourceVector
from repro.model.workflow import Workflow
from repro.service.api import ServiceStatus, SubmitResult
from tests.conftest import adhoc_job, deadline_job


def chain(wid: str, deadline: int = 60) -> Workflow:
    jobs = [deadline_job(f"{wid}-j{i}", wid) for i in range(2)]
    return Workflow.from_jobs(
        wid, jobs, [(f"{wid}-j0", f"{wid}-j1")], 0, deadline
    )


def accepted(kind: str, entity_id: str, reason: str) -> SubmitResult:
    return SubmitResult(accepted=True, kind=kind, id=entity_id, reason=reason)


def rejected(kind: str, entity_id: str, reason: str) -> SubmitResult:
    return SubmitResult(accepted=False, kind=kind, id=entity_id, reason=reason)


class StubShard:
    """Scripted shard handle: answers what it is told, records calls."""

    def __init__(
        self,
        name: str,
        *,
        adhoc_reason: str = "queued",
        workflow_reason: str = "admitted",
        depth: int = 0,
        up: bool = True,
    ):
        self.name = name
        self.adhoc_reason = adhoc_reason
        self.workflow_reason = workflow_reason
        self.depth = depth
        self.up = up
        self.workflows: list[str] = []
        self.adhocs: list[str] = []

    def _check_up(self):
        if not self.up:
            raise RuntimeError(f"{self.name} is down")

    def alive(self) -> bool:
        return self.up

    def queue_depth(self) -> int:
        self._check_up()
        return self.depth

    def submit_workflow(self, workflow, *, idempotency_key=None, request_id=None):
        self._check_up()
        self.workflows.append(workflow.workflow_id)
        if self.workflow_reason == "admitted":
            return accepted("workflow", workflow.workflow_id, "admitted")
        return rejected("workflow", workflow.workflow_id, self.workflow_reason)

    def submit_adhoc(self, job, *, idempotency_key=None, request_id=None):
        self._check_up()
        self.adhocs.append(job.job_id)
        if self.adhoc_reason == "queued":
            return accepted("adhoc", job.job_id, "queued")
        return rejected("adhoc", job.job_id, self.adhoc_reason)

    def status(self) -> ServiceStatus:
        self._check_up()
        return ServiceStatus(
            running=True,
            draining=False,
            slot=3,
            scheduler="FlowTime",
            n_workflows=len(self.workflows),
            n_jobs=len(self.adhocs),
            remaining_jobs=1,
            queue_depth=self.depth,
            accepted_workflows=len(self.workflows),
            rejected_workflows=0,
            accepted_adhoc=len(self.adhocs),
            shed_adhoc=0,
            replans=2,
        )

    def metrics(self) -> dict:
        self._check_up()
        return {"service.migrate.out": {"value": 1}, "other": {"stats": {}}}

    def slo(self) -> dict:
        self._check_up()
        return {"healthy": True}

    def workflow_ids(self) -> list[str]:
        self._check_up()
        return list(self.workflows)

    def orphans(self) -> dict:
        self._check_up()
        return {}


class TestSliceCapacity:
    def test_slices_partition_exactly(self):
        cluster = ClusterCapacity(
            base=ResourceVector(cpu=10, mem=23),
            overrides={5: ResourceVector(cpu=7, mem=23)},
        )
        slices = slice_capacity(cluster, 3)
        assert len(slices) == 3
        for slot in (0, 5):
            for resource in cluster.resources:
                assert sum(s.amount(slot, resource) for s in slices) == (
                    cluster.amount(slot, resource)
                )

    def test_slices_within_one_unit(self):
        slices = slice_capacity(ClusterCapacity.uniform(cpu=10, mem=11), 3)
        for resource in ("cpu", "mem"):
            amounts = [s.base[resource] for s in slices]
            assert max(amounts) - min(amounts) <= 1

    def test_single_shard_is_identity(self):
        cluster = ClusterCapacity.uniform(cpu=4, mem=4)
        assert slice_capacity(cluster, 1) == [cluster]

    def test_zero_share_rejected(self):
        with pytest.raises(ValueError, match="non-empty shards"):
            slice_capacity(ClusterCapacity.uniform(cpu=2, mem=100), 3)

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            slice_capacity(ClusterCapacity.uniform(cpu=4), 0)


class TestRouting:
    def make_router(self, n: int = 3) -> ShardRouter:
        return ShardRouter([StubShard(f"s{i}") for i in range(n)])

    def test_route_key_strips_tenant_suffix(self):
        assert ShardRouter.route_key("tenant-a/wf-1") == "tenant-a"
        assert ShardRouter.route_key("plain-id") == "plain-id"

    def test_same_tenant_same_shard(self):
        router = self.make_router()
        homes = {
            router.home_shard(f"tenant-x/wf-{i}").name for i in range(20)
        }
        assert len(homes) == 1

    def test_routing_is_deterministic(self):
        router = self.make_router()
        again = self.make_router()
        for i in range(20):
            wid = f"w{i}"
            assert router.home_shard(wid).name == again.home_shard(wid).name

    def test_placement_override_wins_over_hash(self):
        router = self.make_router()
        home = router.home_shard("w1").name
        other = next(n for n in router.shard_names if n != home)
        router.record_placement("w1", other)
        assert router.shard_for_workflow("w1").name == other

    def test_placement_to_unknown_shard_rejected(self):
        router = self.make_router()
        with pytest.raises(ValueError, match="unknown shard"):
            router.record_placement("w1", "nope")

    def test_duplicate_shard_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            ShardRouter([StubShard("s"), StubShard("s")])

    def test_workflow_result_stamped_with_shard(self):
        router = self.make_router()
        result = router.submit_workflow(chain("w1"))
        assert result.accepted
        assert result.shard == router.home_shard("w1").name

    def test_workflow_to_dead_shard_is_unavailable_not_spilled(self):
        router = self.make_router()
        home = router.home_shard("w1")
        home.up = False
        result = router.submit_workflow(chain("w1"))
        assert not result.accepted
        assert result.reason == "unavailable"
        assert result.shard == home.name
        for shard in router.shards:
            assert shard.workflows == []


class TestAdhocSpill:
    def test_adhoc_spills_on_queue_full(self):
        shards = [StubShard(f"s{i}") for i in range(3)]
        router = ShardRouter(shards)
        job = adhoc_job("spill-me", arrival=0)
        home = router.home_shard(job.job_id)
        home.adhoc_reason = "queue_full"
        result = router.submit_adhoc(job)
        assert result.accepted
        assert result.shard != home.name
        assert job.job_id in home.adhocs  # primary was tried first

    def test_spill_prefers_least_loaded(self):
        shards = [StubShard(f"s{i}") for i in range(3)]
        router = ShardRouter(shards)
        job = adhoc_job("spill-me", arrival=0)
        home = router.home_shard(job.job_id)
        home.adhoc_reason = "queue_full"
        others = [s for s in shards if s is not home]
        others[0].depth = 9
        others[1].depth = 1
        result = router.submit_adhoc(job)
        assert result.shard == others[1].name

    def test_adhoc_spills_off_dead_shard(self):
        shards = [StubShard(f"s{i}") for i in range(2)]
        router = ShardRouter(shards)
        job = adhoc_job("a1", arrival=0)
        router.home_shard(job.job_id).up = False
        result = router.submit_adhoc(job)
        assert result.accepted
        assert result.shard == next(s for s in shards if s.up).name

    def test_all_shards_shedding_returns_queue_full(self):
        shards = [
            StubShard(f"s{i}", adhoc_reason="queue_full") for i in range(3)
        ]
        router = ShardRouter(shards)
        result = router.submit_adhoc(adhoc_job("a1", arrival=0))
        assert not result.accepted
        assert result.reason == "queue_full"

    def test_all_shards_dead_returns_unavailable(self):
        shards = [StubShard(f"s{i}", up=False) for i in range(2)]
        router = ShardRouter(shards)
        result = router.submit_adhoc(adhoc_job("a1", arrival=0))
        assert not result.accepted
        assert result.reason == "unavailable"

    def test_definitive_rejection_does_not_spill(self):
        shards = [StubShard(f"s{i}") for i in range(3)]
        router = ShardRouter(shards)
        job = adhoc_job("a1", arrival=0)
        home = router.home_shard(job.job_id)
        home.adhoc_reason = "invalid"
        result = router.submit_adhoc(job)
        assert not result.accepted and result.reason == "invalid"
        for shard in shards:
            if shard is not home:
                assert shard.adhocs == []


class TestAggregation:
    def test_status_sums_counters_and_reports_per_shard(self):
        shards = [StubShard(f"s{i}") for i in range(3)]
        shards[0].workflows = ["a", "b"]
        shards[1].workflows = ["c"]
        router = ShardRouter(shards)
        status = router.status()
        assert status["n_shards"] == 3
        assert status["running_shards"] == 3
        assert status["aggregate"]["accepted_workflows"] == 3
        assert status["shards"]["s0"]["accepted_workflows"] == 2
        assert status["slot"] == 3

    def test_status_marks_dead_shards(self):
        shards = [StubShard("s0"), StubShard("s1", up=False)]
        status = ShardRouter(shards).status()
        assert status["running_shards"] == 1
        assert status["shards"]["s1"]["alive"] is False
        assert "error" in status["shards"]["s1"]

    def test_metrics_aggregate_sums_counter_values(self):
        router = ShardRouter([StubShard("s0"), StubShard("s1")])
        metrics = router.metrics()
        assert metrics["aggregate"]["service.migrate.out"] == 2
        assert "other" not in metrics["aggregate"]  # non-scalar skipped

    def test_slo_unhealthy_when_any_shard_unhealthy(self):
        shards = [StubShard("s0"), StubShard("s1")]
        router = ShardRouter(shards)
        assert router.slo()["aggregate"]["healthy"] is True
        shards[1].slo = lambda: {"healthy": False}
        assert router.slo()["aggregate"]["healthy"] is False

    def test_slo_counts_unreachable_shards(self):
        shards = [StubShard("s0"), StubShard("s1", up=False)]
        slo = ShardRouter(shards).slo()
        assert slo["aggregate"]["unreachable_shards"] == 1
