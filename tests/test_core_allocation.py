"""Tests for integral quantisation and allocation plans."""

import numpy as np
import pytest

from repro.core.allocation import (
    AllocationPlan,
    IntegralizationError,
    greedy_fill,
    quantize_coupled,
)
from repro.core.lexmin import lexmin_schedule
from repro.core.lp_formulation import ScheduleEntry, build_schedule_problem
from repro.model.resources import CPU, MEM, ResourceVector

RES = (CPU, MEM)


def entry(job_id="j", release=0, deadline=4, units=4, cores=1, mem=2, parallel=10):
    return ScheduleEntry(
        job_id=job_id,
        release=release,
        deadline=deadline,
        units=units,
        unit_demand=ResourceVector({CPU: cores, MEM: mem}),
        max_parallel=parallel,
    )


def caps(horizon, cpu=10, mem=20):
    arr = np.zeros((horizon, 2))
    arr[:, 0] = cpu
    arr[:, 1] = mem
    return arr


def check_feasible(problem, grants):
    """Grants meet each job's demand, its window, its parallelism, and caps."""
    load = np.zeros_like(problem.caps)
    r_index = {name: k for k, name in enumerate(problem.resources)}
    for e in problem.entries:
        g = grants[e.job_id]
        assert g.sum() == e.units
        assert np.all(g >= 0)
        assert np.all(g <= min(e.max_parallel, e.units))
        for slot in range(problem.horizon):
            if g[slot] and not (e.release <= slot < e.deadline):
                raise AssertionError(f"{e.job_id} granted outside window at {slot}")
            for name, amount in e.unit_demand.items():
                load[slot, r_index[name]] += g[slot] * amount
    assert np.all(load <= problem.caps + 1e-9)


class TestQuantizeCoupled:
    def test_integral_and_feasible_on_fractional_input(self):
        entries = [
            entry(job_id="a", units=7, deadline=3),
            entry(job_id="b", units=5, release=1, deadline=4),
        ]
        problem = build_schedule_problem(entries, caps(4), RES)
        x = lexmin_schedule(problem).x
        grants = quantize_coupled(problem, x)
        check_feasible(problem, grants)

    def test_already_integral_passthrough(self):
        problem = build_schedule_problem([entry(units=4, deadline=4)], caps(4), RES)
        x = np.array([1.0, 1.0, 1.0, 1.0])
        grants = quantize_coupled(problem, x)
        assert list(grants["j"]) == [1, 1, 1, 1]

    def test_keeps_shape_of_fractional_solution(self):
        # 6 units over 4 slots fractional 1.5 each -> rounding gives 1s and
        # 2s, never 0s or 6s.
        problem = build_schedule_problem([entry(units=6, deadline=4)], caps(4), RES)
        x = np.full(4, 1.5)
        grants = quantize_coupled(problem, x)
        assert grants["j"].sum() == 6
        assert set(grants["j"]) <= {1, 2}

    def test_tight_capacity_relocation(self):
        # Two jobs whose fractional halves must be shuffled to fit integral
        # capacity: cpu cap 3 per slot, both jobs want 1.5/slot.
        entries = [
            entry(job_id="a", units=3, deadline=2, cores=1, mem=1, parallel=3),
            entry(job_id="b", units=3, deadline=2, cores=1, mem=1, parallel=3),
        ]
        problem = build_schedule_problem(entries, caps(2, cpu=3, mem=6), RES)
        x = np.array([1.5, 1.5, 1.5, 1.5])
        grants = quantize_coupled(problem, x)
        check_feasible(problem, grants)

    def test_impossible_raises(self):
        # One unit too many for total capacity: floor pass is fine but the
        # remainder cannot be placed anywhere.
        entries = [entry(units=5, deadline=2, cores=2, mem=2, parallel=5)]
        problem = build_schedule_problem(entries, caps(2, cpu=4, mem=4), RES)
        x = np.array([2.5, 2.5])
        with pytest.raises(IntegralizationError):
            quantize_coupled(problem, x)

    def test_wrong_mode_rejected(self):
        problem = build_schedule_problem([entry()], caps(4), RES, mode="paper")
        with pytest.raises(ValueError):
            quantize_coupled(problem, np.zeros(problem.n_vars))

    @pytest.mark.parametrize("seed", range(5))
    def test_random_lexmin_solutions_quantize(self, seed):
        rng = np.random.default_rng(seed)
        entries = []
        for i in range(6):
            release = int(rng.integers(0, 4))
            deadline = release + int(rng.integers(2, 6))
            parallel = int(rng.integers(2, 6))
            # Keep each window individually feasible (units fit parallelism).
            units = int(rng.integers(2, min(8, (deadline - release) * parallel) + 1))
            entries.append(
                entry(
                    job_id=f"j{i}",
                    release=release,
                    deadline=deadline,
                    units=units,
                    cores=int(rng.integers(1, 3)),
                    mem=int(rng.integers(1, 4)),
                    parallel=parallel,
                )
            )
        horizon = max(e.deadline for e in entries)
        problem = build_schedule_problem(entries, caps(horizon, cpu=30, mem=60), RES)
        result = lexmin_schedule(problem)
        assert result.is_optimal
        grants = quantize_coupled(problem, result.x)
        check_feasible(problem, grants)


class TestGreedyFill:
    def test_fills_in_deadline_order(self):
        entries = [
            entry(job_id="late", units=4, deadline=8, parallel=4),
            entry(job_id="soon", units=4, deadline=2, parallel=4),
        ]
        grants = greedy_fill(entries, caps(8, cpu=4, mem=8), RES)
        # 'soon' monopolises the first slot (4 units of 1 core on 4 cores).
        assert grants["soon"][0] == 4
        assert grants["late"][0] == 0

    def test_respects_capacity(self):
        entries = [
            entry(job_id=f"j{i}", units=6, deadline=6, cores=2, mem=2, parallel=6)
            for i in range(3)
        ]
        capacity = caps(6, cpu=8, mem=24)
        grants = greedy_fill(entries, capacity, RES)
        load = np.zeros(6)
        for e in entries:
            load += grants[e.job_id] * 2
        assert np.all(load <= 8)

    def test_overload_leaves_demand_unplanned(self):
        entries = [entry(units=100, deadline=2, parallel=100)]
        grants = greedy_fill(entries, caps(2, cpu=5, mem=10), RES)
        assert grants["j"].sum() == 10  # 5 cores x 2 slots

    def test_extends_past_deadline_when_allowed(self):
        entries = [entry(units=10, deadline=2, parallel=5)]
        grants = greedy_fill(entries, caps(4, cpu=3, mem=6), RES)
        assert grants["j"][2:].sum() > 0

    def test_no_extension_when_disabled(self):
        entries = [entry(units=10, deadline=2, parallel=5)]
        grants = greedy_fill(
            entries, caps(4, cpu=3, mem=6), RES, extend_past_deadline=False
        )
        assert grants["j"][2:].sum() == 0


class TestAllocationPlan:
    def make_plan(self):
        return AllocationPlan(
            origin_slot=10,
            horizon=3,
            resources=RES,
            grants={"a": np.array([2, 0, 1])},
            unit_demands={"a": ResourceVector({CPU: 2, MEM: 4})},
        )

    def test_units_for(self):
        plan = self.make_plan()
        assert plan.units_for("a", 10) == 2
        assert plan.units_for("a", 12) == 1
        assert plan.units_for("a", 13) == 0  # beyond horizon
        assert plan.units_for("a", 9) == 0  # before origin
        assert plan.units_for("missing", 10) == 0

    def test_resources_for(self):
        plan = self.make_plan()
        assert plan.resources_for("a", 10) == ResourceVector(cpu=4, mem=8)
        assert plan.resources_for("a", 11).is_zero()

    def test_load(self):
        plan = self.make_plan()
        assert plan.load(10) == ResourceVector(cpu=4, mem=8)

    def test_total_units(self):
        assert self.make_plan().total_units("a") == 3

    def test_empty(self):
        plan = AllocationPlan.empty(5, 4, RES)
        assert plan.units_for("x", 5) == 0
        assert plan.load(5).is_zero()
