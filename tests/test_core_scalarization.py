"""Tests for Lemma 1 and the λ-representation scalarisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lexmin import lexmin_schedule
from repro.core.lp_formulation import ScheduleEntry, build_schedule_problem
from repro.core.scalarization import g_scalarization, lex_leq, scalarized_schedule
from repro.model.resources import CPU, MEM, ResourceVector

RES = (CPU, MEM)


def entry(job_id="j", release=0, deadline=4, units=4, cores=1, mem=1, parallel=4):
    return ScheduleEntry(
        job_id=job_id,
        release=release,
        deadline=deadline,
        units=units,
        unit_demand=ResourceVector({CPU: cores, MEM: mem}),
        max_parallel=parallel,
    )


def tiny_caps(horizon, cpu=6, mem=6):
    caps = np.zeros((horizon, 2))
    caps[:, 0], caps[:, 1] = cpu, mem
    return caps


class TestLemma1:
    """g(u) <= g(v) iff sorted-descending u is lexicographically <= v."""

    @settings(deadline=None, max_examples=200)
    @given(
        st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=5),
        st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=5),
    )
    def test_equivalence_on_integer_vectors(self, u, v):
        # Lemma 1 is stated for integer vectors u, v in Z^k with k = dim.
        if len(u) != len(v):
            v = (v * len(u))[: len(u)]
        k = max(len(u), 2)
        gu, gv = g_scalarization(u, k), g_scalarization(v, k)
        if gu < gv - 1e-9:
            assert lex_leq(u, v)
        if lex_leq(u, v) and not lex_leq(v, u):  # strict domination
            assert gu < gv + 1e-9

    def test_examples_from_the_ordering(self):
        # max component dominates: [2, 0] > [1, 1] in minimax terms.
        assert lex_leq([1, 1], [2, 0])
        assert not lex_leq([2, 0], [1, 1])
        assert g_scalarization([1, 1], 2) < g_scalarization([2, 0], 2)

    def test_lex_leq_reflexive(self):
        assert lex_leq([3, 1, 2], [2, 1, 3])  # same multiset

    def test_lex_leq_length_mismatch(self):
        with pytest.raises(ValueError):
            lex_leq([1], [1, 2])


class TestScalarizedSchedule:
    def test_matches_iterative_lexmin_minimax(self):
        entries = [entry(units=4, deadline=4)]
        problem = build_schedule_problem(entries, tiny_caps(4), RES)
        x_scalar = scalarized_schedule(problem)
        assert x_scalar is not None
        result = lexmin_schedule(problem, front_load=False)
        util_scalar = np.sort(problem.utilisation(x_scalar))[::-1]
        util_lexmin = np.sort(result.utilisation)[::-1]
        # Both are lexicographic minimax optima of the same problem.
        assert np.allclose(util_scalar, util_lexmin, atol=1e-6)

    def test_two_jobs_flat_skyline(self):
        entries = [
            entry(job_id="a", units=4, deadline=4),
            entry(job_id="b", units=4, deadline=4),
        ]
        problem = build_schedule_problem(entries, tiny_caps(4, cpu=4, mem=4), RES)
        x = scalarized_schedule(problem)
        util = problem.utilisation(x)
        # 8 units over 4 slots on 4 cores: perfectly flat at 0.5.
        assert util.max() == pytest.approx(0.5, abs=1e-6)
        assert util.min() == pytest.approx(0.5, abs=1e-6)

    def test_demands_met(self):
        entries = [entry(units=5, deadline=3, parallel=3)]
        problem = build_schedule_problem(entries, tiny_caps(3), RES)
        x = scalarized_schedule(problem)
        assert float(x.sum()) == pytest.approx(5.0, abs=1e-6)

    def test_infeasible_returns_none(self):
        entries = [entry(units=30, deadline=2, parallel=30)]
        problem = build_schedule_problem(entries, tiny_caps(2), RES)
        assert scalarized_schedule(problem) is None

    def test_large_instance_rejected(self):
        entries = [entry(units=50, deadline=60, parallel=4)]
        caps = np.zeros((60, 2))
        caps[:, 0], caps[:, 1] = 500, 1000
        problem = build_schedule_problem(entries, caps, RES)
        with pytest.raises(ValueError, match="too large"):
            scalarized_schedule(problem)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_tiny_instances_agree_with_lexmin(self, seed):
        rng = np.random.default_rng(seed)
        entries = []
        for i in range(int(rng.integers(1, 4))):
            release = int(rng.integers(0, 2))
            length = int(rng.integers(2, 4))
            parallel = int(rng.integers(1, 4))
            units = int(rng.integers(1, length * parallel + 1))
            entries.append(
                entry(
                    job_id=f"j{i}",
                    release=release,
                    deadline=release + length,
                    units=units,
                    parallel=parallel,
                )
            )
        horizon = max(e.deadline for e in entries)
        problem = build_schedule_problem(entries, tiny_caps(horizon), RES)
        x_scalar = scalarized_schedule(problem)
        result = lexmin_schedule(problem, front_load=False)
        assert (x_scalar is None) == (not result.is_optimal)
        if x_scalar is None:
            return
        util_scalar = np.sort(problem.utilisation(x_scalar))[::-1]
        util_lexmin = np.sort(result.utilisation)[::-1]
        # The scalarised LP solves the paper's *integer* program (Lemma 1 is
        # stated for integer vectors; the λ-breakpoints are integer loads),
        # while the iterative lexmin solves the continuous relaxation — so
        # its minimax can only be lower, and by less than one integral step
        # of the tightest cell.
        min_cap = min(problem.cap_of_cell(c) for c in range(len(problem.util_cells)))
        assert util_scalar[0] >= util_lexmin[0] - 1e-6
        assert util_scalar[0] <= util_lexmin[0] + 1.0 / min_cap + 1e-6
