"""Golden-trace corpus tests: the pinned runs still reproduce exactly."""

from __future__ import annotations

import json

import pytest

from repro.verify.golden import (
    GOLDEN_CASES,
    check_corpus,
    default_corpus_dir,
    load_workload,
    run_golden,
    write_corpus,
)


class TestCorpusPinned:
    def test_corpus_directory_is_complete(self):
        root = default_corpus_dir()
        for name in GOLDEN_CASES:
            for filename in ("workload.json", "run.jsonl", "summary.json"):
                assert (root / name / filename).is_file(), f"{name}/{filename}"

    def test_seed_corpus_parses(self):
        data = json.loads(
            (default_corpus_dir() / "seeds.json").read_text(encoding="utf-8")
        )
        assert data["seeds"] and all(
            isinstance(seed, int) for seed in data["seeds"]
        )

    @pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
    def test_pinned_case_still_reproduces(self, name):
        problems = check_corpus(names=[name])
        assert not problems, problems

    @pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
    def test_pinned_case_reproduces_under_fastsolve(self, name):
        """The combinatorial backend must not move a single pinned byte."""
        problems = check_corpus(names=[name], lp_backend="fastsolve")
        assert not problems, problems

    @pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
    def test_pinned_workload_reloads(self, name):
        trace, capacity = load_workload(
            default_corpus_dir() / name / "workload.json"
        )
        built_trace, built_capacity = GOLDEN_CASES[name].build()
        assert len(trace.workflows) == len(built_trace.workflows)
        assert len(trace.adhoc_jobs) == len(built_trace.adhoc_jobs)
        assert dict(capacity.base) == dict(built_capacity.base)


class TestDriftDetection:
    def test_tampered_corpus_is_caught(self, tmp_path):
        """Drift detection end to end: regenerate into a sandbox, tamper
        with one pinned event, and the check must name the divergence."""
        write_corpus(tmp_path, names=["diamond"])
        assert check_corpus(tmp_path, names=["diamond"]) == []

        run_file = tmp_path / "diamond" / "run.jsonl"
        lines = run_file.read_text(encoding="utf-8").splitlines()
        event = json.loads(lines[5])
        event["slot"] = event.get("slot", 0) + 7
        lines[5] = json.dumps(event)
        run_file.write_text("\n".join(lines) + "\n", encoding="utf-8")

        problems = check_corpus(tmp_path, names=["diamond"])
        assert problems and "diamond" in problems[0]

    def test_missing_case_is_reported(self, tmp_path):
        problems = check_corpus(tmp_path, names=["mixed"])
        assert problems and "no pinned corpus" in problems[0]

    def test_golden_runs_are_validator_clean(self):
        # run_golden raises VerificationError if the pinned schedule is
        # ever invalid; reaching here means all three validate.
        events, summary = run_golden(GOLDEN_CASES["diamond"])
        assert events and "jobs_missed" in summary
        assert all("ts" not in event for event in events)
