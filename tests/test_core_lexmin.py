"""Tests for the lexicographic minimax schedule solver (Sec. V-B)."""

import numpy as np
import pytest

from repro.core.lexmin import lexmin_schedule
from repro.core.lp_formulation import ScheduleEntry, build_schedule_problem
from repro.model.resources import CPU, MEM, ResourceVector

RES = (CPU, MEM)


def entry(job_id="j", release=0, deadline=4, units=4, cores=1, mem=2, parallel=10):
    return ScheduleEntry(
        job_id=job_id,
        release=release,
        deadline=deadline,
        units=units,
        unit_demand=ResourceVector({CPU: cores, MEM: mem}),
        max_parallel=parallel,
    )


def caps(horizon, cpu=10, mem=20):
    arr = np.zeros((horizon, 2))
    arr[:, 0] = cpu
    arr[:, 1] = mem
    return arr


class TestMinimaxValue:
    def test_single_job_spreads_flat(self):
        # 8 units over 4 slots on a 10-core cluster: flat optimum is 2/slot
        # -> minimax utilisation 2/10.
        problem = build_schedule_problem(
            [entry(units=8, deadline=4)], caps(4), RES
        )
        result = lexmin_schedule(problem)
        assert result.is_optimal
        assert result.minimax == pytest.approx(0.2, abs=1e-6)
        x = result.x
        assert np.allclose(x, 2.0, atol=1e-6)

    def test_demand_met_exactly(self):
        problem = build_schedule_problem(
            [entry(units=7, deadline=5)], caps(5), RES
        )
        x = lexmin_schedule(problem).x
        assert x.sum() == pytest.approx(7.0, abs=1e-6)

    def test_two_jobs_share_evenly(self):
        entries = [
            entry(job_id="a", units=6, deadline=6),
            entry(job_id="b", units=6, deadline=6),
        ]
        problem = build_schedule_problem(entries, caps(6), RES)
        result = lexmin_schedule(problem)
        # Total 12 units over 6 slots -> 2 units/slot -> 0.2 of 10 cores.
        assert result.minimax == pytest.approx(0.2, abs=1e-6)

    def test_staggered_windows_lexmin_balances(self):
        # Job a can only run in slots [0, 2); job b anywhere in [0, 4).
        # Minimax forces b out of a's busy slots where possible.
        entries = [
            entry(job_id="a", units=8, release=0, deadline=2, parallel=8),
            entry(job_id="b", units=8, release=0, deadline=4, parallel=8),
        ]
        problem = build_schedule_problem(entries, caps(4), RES)
        result = lexmin_schedule(problem)
        assert result.is_optimal
        util = result.utilisation
        # a needs 4/slot in its 2 slots = 0.4; b then fills the remaining
        # two slots at 4/slot = 0.4 -> a perfectly flat 0.4 skyline.
        assert result.minimax == pytest.approx(0.4, abs=1e-6)
        assert util.max() <= 0.4 + 1e-6

    def test_minimax_equals_first_theta_and_thetas_non_increasing(self):
        entries = [
            entry(job_id="a", units=10, deadline=3, parallel=10),
            entry(job_id="b", units=4, deadline=6, parallel=10),
        ]
        problem = build_schedule_problem(entries, caps(6), RES)
        result = lexmin_schedule(problem)
        assert result.minimax == pytest.approx(result.thetas[0])
        assert all(
            result.thetas[i] >= result.thetas[i + 1] - 1e-9
            for i in range(len(result.thetas) - 1)
        )


class TestConstraints:
    def test_respects_parallelism_bounds(self):
        problem = build_schedule_problem(
            [entry(units=8, deadline=8, parallel=1)], caps(8), RES
        )
        x = lexmin_schedule(problem).x
        assert np.all(x <= 1.0 + 1e-9)

    def test_respects_capacity(self):
        # Two heavy jobs forced into overlapping tight windows.
        entries = [
            entry(job_id="a", units=16, release=0, deadline=2, cores=1, parallel=8),
            entry(job_id="b", units=4, release=0, deadline=2, cores=1, parallel=8),
        ]
        problem = build_schedule_problem(entries, caps(2, cpu=10, mem=40), RES)
        result = lexmin_schedule(problem)
        assert result.is_optimal
        loads = np.asarray(problem.a_util @ result.x).ravel()
        for k, load in enumerate(loads):
            assert load <= problem.cap_of_cell(k) + 1e-6

    def test_infeasible_window_reported(self):
        # 30 units with parallelism 10 in 2 slots = max 20 -> infeasible.
        problem = build_schedule_problem(
            [entry(units=30, deadline=2, parallel=10)], caps(2, cpu=100, mem=200), RES
        )
        result = lexmin_schedule(problem)
        assert result.status == "infeasible"
        assert result.x is None

    def test_over_capacity_infeasible(self):
        # Demand exceeds total cluster capacity over the window.
        problem = build_schedule_problem(
            [entry(units=50, deadline=2, cores=1, parallel=50)],
            caps(2, cpu=10, mem=200),
            RES,
        )
        assert lexmin_schedule(problem).status == "infeasible"


class TestRoundsAndBackends:
    def test_max_rounds_caps_iterations(self):
        entries = [
            entry(job_id=f"j{i}", units=4, release=i, deadline=i + 4)
            for i in range(4)
        ]
        problem = build_schedule_problem(entries, caps(8), RES)
        result = lexmin_schedule(problem, max_rounds=1)
        assert result.rounds == 1
        assert result.is_optimal

    def test_exact_lexmin_terminates(self):
        entries = [
            entry(job_id="a", units=6, deadline=3),
            entry(job_id="b", units=6, release=1, deadline=5),
        ]
        problem = build_schedule_problem(entries, caps(5), RES)
        result = lexmin_schedule(problem, max_rounds=None)
        assert result.is_optimal

    def test_simplex_backend_agrees_on_minimax(self):
        entries = [entry(units=6, deadline=3)]
        problem = build_schedule_problem(entries, caps(3), RES)
        highs = lexmin_schedule(problem, backend="highs")
        simplex = lexmin_schedule(problem, backend="simplex")
        assert highs.minimax == pytest.approx(simplex.minimax, abs=1e-6)

    def test_paper_mode_also_solves(self):
        problem = build_schedule_problem(
            [entry(units=6, deadline=3)], caps(3), RES, mode="paper"
        )
        result = lexmin_schedule(problem)
        assert result.is_optimal
        # Demand equalities hold per resource.
        resid = np.asarray(problem.a_eq @ result.x).ravel() - problem.b_eq
        assert np.allclose(resid, 0.0, atol=1e-6)
