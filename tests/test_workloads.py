"""Tests for the workload generators (DAGs, PUMA, scientific, arrivals)."""

import numpy as np
import pytest

from repro.model.job import JobKind
from repro.workloads.arrivals import (
    adhoc_stream,
    bursty_arrival_slots,
    poisson_arrival_slots,
)
from repro.workloads.dag_generators import (
    chain_workflow,
    diamond_workflow,
    fork_join_workflow,
    layered_random_workflow,
    random_dag_edges,
)
from repro.workloads.puma import PUMA_TEMPLATES, make_puma_job, puma_task_spec
from repro.workloads.scientific import SCIENTIFIC_SHAPES, make_scientific_workflow


class TestDagGenerators:
    def test_chain(self):
        wf = chain_workflow("c", 4, 0, 100)
        assert len(wf) == 4
        assert len(wf.edges) == 3
        assert wf.roots() == ("c-j0",)
        assert wf.sinks() == ("c-j3",)

    def test_chain_length_one(self):
        wf = chain_workflow("c", 1, 0, 10)
        assert len(wf) == 1 and not wf.edges

    def test_fork_join(self):
        wf = fork_join_workflow("f", 5, 0, 100)
        assert len(wf) == 7
        assert len(wf.dependents_of("f-j0")) == 5
        assert len(wf.parents_of("f-j6")) == 5

    def test_diamond(self):
        wf = diamond_workflow("d", 0, 100)
        assert len(wf) == 4

    def test_random_dag_edges_acyclic_by_construction(self):
        rng = np.random.default_rng(0)
        edges = random_dag_edges(50, 300, rng)
        assert all(a < b for a, b in edges)
        assert len(edges) == 300

    def test_random_dag_edges_capped_at_max(self):
        rng = np.random.default_rng(0)
        edges = random_dag_edges(5, 1000, rng)
        assert len(edges) == 10  # 5*4/2

    def test_layered_random_workflow_valid(self):
        rng = np.random.default_rng(1)
        wf = layered_random_workflow("w", 20, 4, 0, 200, rng)
        assert len(wf) == 20
        # Every non-root has at least one parent by construction.
        roots = set(wf.roots())
        for job_id in wf.job_ids:
            if job_id not in roots:
                assert wf.parents_of(job_id)

    def test_layered_validation(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            layered_random_workflow("w", 3, 5, 0, 100, rng)


class TestPuma:
    def test_templates_cover_paper_benchmarks(self):
        assert {"wordcount", "inverted-index", "sequence-count", "self-join"} <= set(
            PUMA_TEMPLATES
        )

    def test_task_count_scales_with_input(self):
        small = puma_task_spec("wordcount", 10)
        big = puma_task_spec("wordcount", 40)
        assert big.count == 4 * small.count

    def test_unknown_template(self):
        with pytest.raises(ValueError):
            puma_task_spec("pagerank", 10)

    def test_bad_input_size(self):
        with pytest.raises(ValueError):
            puma_task_spec("wordcount", 0)

    def test_make_puma_job(self):
        job = make_puma_job("j1", "self-join", 20, workflow_id="w")
        assert job.kind is JobKind.DEADLINE
        assert job.name == "self-join"
        assert job.tasks.demand["mem"] == 8


class TestScientific:
    @pytest.mark.parametrize("shape", sorted(SCIENTIFIC_SHAPES))
    def test_all_shapes_build_valid_workflows(self, shape):
        wf = make_scientific_workflow(shape, f"{shape}-1", 0, 500, width=4)
        assert len(wf) >= 5
        assert wf.roots() and wf.sinks()
        assert wf.name == shape

    def test_width_scales_parallel_stages(self):
        narrow = make_scientific_workflow("montage", "m1", 0, 500, width=2)
        wide = make_scientific_workflow("montage", "m2", 0, 500, width=8)
        assert len(wide) > len(narrow)

    def test_unknown_shape(self):
        with pytest.raises(ValueError):
            make_scientific_workflow("blast", "b1", 0, 100)

    def test_bad_width(self):
        with pytest.raises(ValueError):
            make_scientific_workflow("montage", "m1", 0, 100, width=0)


class TestArrivals:
    def test_poisson_sorted_within_horizon(self):
        rng = np.random.default_rng(0)
        slots = poisson_arrival_slots(0.5, 100, rng)
        assert slots == sorted(slots)
        assert all(0 <= s < 100 for s in slots)

    def test_poisson_rate_roughly_matches(self):
        rng = np.random.default_rng(42)
        slots = poisson_arrival_slots(0.5, 10_000, rng)
        assert len(slots) == pytest.approx(5000, rel=0.1)

    def test_zero_rate_empty(self):
        rng = np.random.default_rng(0)
        assert poisson_arrival_slots(0.0, 100, rng) == []

    def test_negative_rate_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_arrival_slots(-1.0, 100, rng)

    def test_bursty_mean_size(self):
        rng = np.random.default_rng(7)
        slots = bursty_arrival_slots(0.05, 4.0, 10_000, rng)
        bursts = len(set(slots))
        assert len(slots) / bursts == pytest.approx(4.0, rel=0.25)

    def test_adhoc_stream_jobs(self):
        jobs = adhoc_stream(10, rate_per_slot=1.0, horizon_slots=100, seed=3)
        assert len(jobs) == 10
        assert all(j.kind is JobKind.ADHOC for j in jobs)
        arrivals = [j.arrival_slot for j in jobs]
        assert arrivals == sorted(arrivals)

    def test_adhoc_stream_deterministic(self):
        a = adhoc_stream(5, seed=9)
        b = adhoc_stream(5, seed=9)
        assert [j.job_id for j in a] == [j.job_id for j in b]
        assert [j.tasks for j in a] == [j.tasks for j in b]


class TestMapReduceSplit:
    def test_two_stages_with_edge(self):
        from repro.workloads.puma import make_mapreduce_jobs

        jobs, edges = make_mapreduce_jobs("j1", "wordcount", 20, workflow_id="w")
        assert [j.job_id for j in jobs] == ["j1-map", "j1-reduce"]
        assert edges == [("j1-map", "j1-reduce")]
        assert all(j.workflow_id == "w" for j in jobs)

    def test_reduce_side_is_smaller_and_longer(self):
        from repro.workloads.puma import make_mapreduce_jobs

        (map_job, reduce_job), _ = make_mapreduce_jobs(
            "j1", "self-join", 20, workflow_id="w"
        )
        assert reduce_job.tasks.count < map_job.tasks.count
        assert reduce_job.tasks.duration_slots > map_job.tasks.duration_slots

    def test_reduce_fraction_validation(self):
        from repro.workloads.puma import make_mapreduce_jobs

        with pytest.raises(ValueError):
            make_mapreduce_jobs("j", "grep", 10, workflow_id="w", reduce_fraction=0.0)

    def test_splices_into_workflow(self):
        from repro.model.workflow import Workflow
        from repro.workloads.puma import make_mapreduce_jobs

        jobs, edges = make_mapreduce_jobs("j1", "terasort", 15, workflow_id="w")
        wf = Workflow.from_jobs("w", jobs, edges, 0, 100)
        assert wf.roots() == ("j1-map",)
        assert wf.sinks() == ("j1-reduce",)
