"""Unit tests for ResourceVector."""

import pytest

from repro.model.resources import CPU, MEM, ResourceVector


class TestConstruction:
    def test_from_kwargs(self):
        vec = ResourceVector(cpu=4, mem=8)
        assert vec[CPU] == 4
        assert vec[MEM] == 8

    def test_from_mapping(self):
        vec = ResourceVector({"cpu": 2})
        assert vec["cpu"] == 2

    def test_missing_resource_is_zero(self):
        assert ResourceVector(cpu=1)["gpu"] == 0

    def test_zero_entries_dropped(self):
        assert ResourceVector(cpu=0) == ResourceVector()
        assert len(ResourceVector(cpu=0, mem=1)) == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ResourceVector(cpu=-1)

    def test_rejects_fractional(self):
        with pytest.raises(ValueError):
            ResourceVector(cpu=1.5)

    def test_accepts_integral_float(self):
        assert ResourceVector(cpu=2.0)[CPU] == 2

    def test_immutable(self):
        vec = ResourceVector(cpu=1)
        with pytest.raises(AttributeError):
            vec.anything = 3


class TestEquality:
    def test_equal_ignores_order(self):
        assert ResourceVector(cpu=1, mem=2) == ResourceVector(mem=2, cpu=1)

    def test_equal_to_plain_mapping(self):
        assert ResourceVector(cpu=1) == {"cpu": 1}

    def test_hashable(self):
        assert hash(ResourceVector(cpu=1)) == hash(ResourceVector(cpu=1, mem=0))

    def test_repr_is_stable(self):
        assert repr(ResourceVector(mem=2, cpu=1)) == "ResourceVector(cpu=1, mem=2)"


class TestArithmetic:
    def test_add_unions_resources(self):
        total = ResourceVector(cpu=4, mem=8) + ResourceVector(cpu=1)
        assert total == ResourceVector(cpu=5, mem=8)

    def test_sub(self):
        assert ResourceVector(cpu=4) - ResourceVector(cpu=1) == ResourceVector(cpu=3)

    def test_sub_below_zero_raises(self):
        with pytest.raises(ValueError):
            ResourceVector(cpu=1) - ResourceVector(cpu=2)

    def test_saturating_sub_clamps(self):
        out = ResourceVector(cpu=1, mem=5).saturating_sub(ResourceVector(cpu=2, mem=3))
        assert out == ResourceVector(mem=2)

    def test_scalar_multiply(self):
        assert ResourceVector(cpu=2) * 3 == ResourceVector(cpu=6)
        assert 3 * ResourceVector(cpu=2) == ResourceVector(cpu=6)

    def test_multiply_requires_int(self):
        with pytest.raises(TypeError):
            ResourceVector(cpu=2) * 1.5

    def test_elementwise_min(self):
        out = ResourceVector(cpu=3, mem=1).elementwise_min(ResourceVector(cpu=1, mem=5))
        assert out == ResourceVector(cpu=1, mem=1)

    def test_sum(self):
        vecs = [ResourceVector(cpu=1), ResourceVector(mem=2), ResourceVector(cpu=3)]
        assert ResourceVector.sum(vecs) == ResourceVector(cpu=4, mem=2)


class TestComparisons:
    def test_fits_in(self):
        assert ResourceVector(cpu=2, mem=4).fits_in(ResourceVector(cpu=2, mem=8))
        assert not ResourceVector(cpu=3).fits_in(ResourceVector(cpu=2, mem=8))

    def test_empty_fits_everywhere(self):
        assert ResourceVector().fits_in(ResourceVector())

    def test_is_zero(self):
        assert ResourceVector().is_zero()
        assert not ResourceVector(cpu=1).is_zero()


class TestDerived:
    def test_units_fitting_limited_by_scarcest(self):
        demand = ResourceVector(cpu=2, mem=4)
        capacity = ResourceVector(cpu=10, mem=8)
        assert demand.units_fitting(capacity) == 2  # mem limits

    def test_units_fitting_zero_vector_raises(self):
        with pytest.raises(ValueError):
            ResourceVector().units_fitting(ResourceVector(cpu=1))

    def test_dominant_share(self):
        demand = ResourceVector(cpu=5, mem=2)
        capacity = ResourceVector(cpu=10, mem=100)
        assert demand.dominant_share(capacity) == pytest.approx(0.5)

    def test_dominant_share_zero_capacity_raises(self):
        with pytest.raises(ValueError):
            ResourceVector(gpu=1).dominant_share(ResourceVector(cpu=10))

    def test_dominant_share_empty_is_zero(self):
        assert ResourceVector().dominant_share(ResourceVector(cpu=1)) == 0.0
