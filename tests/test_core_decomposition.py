"""Tests for the resource-demand-based deadline decomposition (Sec. IV-B)."""

import pytest

from repro.core.decomposition import decompose_deadline
from repro.core.toposort import grouped_topological_sets
from repro.model.cluster import ClusterCapacity
from repro.model.job import Job, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.model.workflow import Workflow
from repro.workloads.dag_generators import fork_join_workflow
from tests.conftest import deadline_job


@pytest.fixture
def big_cluster() -> ClusterCapacity:
    return ClusterCapacity.uniform(cpu=1000, mem=2000)


def window_invariants(workflow, result):
    """Invariants every decomposition must satisfy."""
    windows = result.windows
    assert set(windows) == set(workflow.job_ids)
    for job_id, window in windows.items():
        assert window.release_slot < window.deadline_slot
        assert window.release_slot >= workflow.start_slot
    for parent, child in workflow.edges:
        assert windows[parent].deadline_slot <= windows[child].release_slot


class TestBasicProperties:
    def test_chain_windows_partition_the_window(self, chain3, small_cluster):
        result = decompose_deadline(chain3, small_cluster)
        assert not result.used_fallback
        window_invariants(chain3, result)
        # Chain levels are consecutive; the last ends at the deadline.
        assert result.windows["c-j0"].release_slot == 0
        assert result.windows["c-j2"].deadline_slot == chain3.deadline_slot
        assert (
            result.windows["c-j0"].deadline_slot
            == result.windows["c-j1"].release_slot
        )

    def test_jobs_in_one_level_share_a_window(self, fork4, small_cluster):
        result = decompose_deadline(fork4, small_cluster)
        middles = [result.windows[f"f-j{i}"] for i in range(1, 5)]
        assert len({(w.release_slot, w.deadline_slot) for w in middles}) == 1

    def test_equal_demand_levels_split_evenly(self, big_cluster):
        # Chain of 3 identical jobs with a roomy deadline and a huge
        # cluster: every level has equal weight, so windows are equal.
        jobs = [deadline_job(f"c-j{i}", "c") for i in range(3)]
        wf = Workflow.from_jobs(
            "c", jobs, [("c-j0", "c-j1"), ("c-j1", "c-j2")], 0, 90
        )
        result = decompose_deadline(wf, big_cluster)
        lengths = [result.windows[f"c-j{i}"].length_slots for i in range(3)]
        assert lengths == [30, 30, 30]


class TestPaperFig3Example:
    def test_parallel_level_gets_demand_proportional_share(self, big_cluster):
        """Fig. 3: the (n-1) parallel middle jobs together get ~(n-1)/(n+1)
        of the deadline, not the 1/3 the critical-path method gives."""
        n = 9  # 1 source + 8 middles + 1 sink = 10 jobs
        wf = fork_join_workflow(
            "f",
            n - 1,
            0,
            300,
            spec_of=TaskSpec(
                count=4, duration_slots=2, demand=ResourceVector({CPU: 2, MEM: 4})
            ),
        )
        result = decompose_deadline(wf, big_cluster, cluster_aware=False)
        assert not result.used_fallback
        middle = result.windows["f-j1"]
        share = middle.length_slots / wf.window_slots
        expected = (n - 1) / (n + 1)
        assert share == pytest.approx(expected, abs=0.05)
        # And the critical-path share of 1/3 is clearly excluded.
        assert share > 0.5

    def test_all_same_arrival_and_deadline_within_the_parallel_set(self, big_cluster):
        wf = fork_join_workflow("f", 6, 0, 200)
        result = decompose_deadline(wf, big_cluster)
        releases = {result.windows[f"f-j{i}"].release_slot for i in range(1, 7)}
        deadlines = {result.windows[f"f-j{i}"].deadline_slot for i in range(1, 7)}
        assert len(releases) == 1 and len(deadlines) == 1


class TestMinimumRuntimeGuarantee:
    def test_every_level_keeps_its_minimum(self, small_cluster):
        # Tight-ish window: slack exists but is small; rounding must never
        # shrink a level below its minimum runtime.
        jobs = [
            Job(
                job_id=f"w-j{i}",
                tasks=TaskSpec(
                    count=10,
                    duration_slots=4,
                    demand=ResourceVector({CPU: 2, MEM: 4}),
                ),
                workflow_id="w",
            )
            for i in range(3)
        ]
        wf = Workflow.from_jobs(
            "w", jobs, [("w-j0", "w-j1"), ("w-j1", "w-j2")], 0, 40
        )
        result = decompose_deadline(wf, small_cluster)
        levels = grouped_topological_sets(wf)
        for level in levels:
            window = result.windows[level[0]]
            min_runtime = max(
                wf.job(j).min_runtime_slots(small_cluster.base) for j in level
            )
            assert window.length_slots >= min_runtime

    def test_cluster_aware_accounts_for_waves(self, tiny_cluster):
        # 8 tasks x 2 cores on a 4-core cluster: 2 tasks per wave -> the
        # cluster-aware minimum is 4 waves x 2 slots = 8 slots.
        job = Job(
            job_id="w-j0",
            tasks=TaskSpec(
                count=8, duration_slots=2, demand=ResourceVector({CPU: 2, MEM: 2})
            ),
            workflow_id="w",
        )
        wf = Workflow.from_jobs("w", [job], [], 0, 100)
        aware = decompose_deadline(wf, tiny_cluster, cluster_aware=True)
        naive = decompose_deadline(wf, tiny_cluster, cluster_aware=False)
        # Both give the whole window to the single level; the difference
        # shows in the fallback decision under tight windows instead.
        assert aware.windows["w-j0"].length_slots == 100
        assert naive.windows["w-j0"].length_slots == 100


class TestFallback:
    def test_negative_remaining_uses_critical_path(self, small_cluster):
        # Window shorter than the sum of level minimum runtimes.
        jobs = [deadline_job(f"c-j{i}", "c", duration=10) for i in range(3)]
        wf = Workflow.from_jobs(
            "c", jobs, [("c-j0", "c-j1"), ("c-j1", "c-j2")], 0, 12
        )
        result = decompose_deadline(wf, small_cluster)
        assert result.used_fallback
        assert result.slack_ratio == 0.0
        # Precedence still holds even in the squeezed fallback windows.
        windows = result.windows
        assert (
            windows["c-j0"].deadline_slot <= windows["c-j1"].release_slot
        )

    def test_loose_window_does_not_fall_back(self, chain3, small_cluster):
        result = decompose_deadline(chain3, small_cluster)
        assert not result.used_fallback
        assert result.slack_ratio > 0


class TestResultMetadata:
    def test_node_sets_reported(self, fork4, small_cluster):
        result = decompose_deadline(fork4, small_cluster)
        assert len(result.node_sets) == 3

    def test_window_accessor(self, chain3, small_cluster):
        result = decompose_deadline(chain3, small_cluster)
        assert result.window("c-j1") is result.windows["c-j1"]
