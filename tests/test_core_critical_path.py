"""Tests for the critical-path decomposition (the Sec. IV-B fallback)."""

import pytest

from repro.core.critical_path import critical_path_length, critical_path_windows
from repro.model.job import Job, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.model.workflow import Workflow
from repro.workloads.dag_generators import fork_join_workflow


def job_with_duration(job_id, wid, duration):
    return Job(
        job_id=job_id,
        tasks=TaskSpec(
            count=4, duration_slots=duration, demand=ResourceVector({CPU: 1, MEM: 2})
        ),
        workflow_id=wid,
    )


class TestCriticalPathLength:
    def test_chain_sums_durations(self):
        jobs = [job_with_duration(f"c-j{i}", "c", d) for i, d in enumerate([2, 3, 5])]
        wf = Workflow.from_jobs(
            "c", jobs, [("c-j0", "c-j1"), ("c-j1", "c-j2")], 0, 100
        )
        assert critical_path_length(wf) == 10

    def test_takes_longest_branch(self):
        jobs = [
            job_with_duration("w-a", "w", 2),
            job_with_duration("w-b", "w", 9),
            job_with_duration("w-c", "w", 1),
            job_with_duration("w-d", "w", 2),
        ]
        edges = [("w-a", "w-b"), ("w-a", "w-c"), ("w-b", "w-d"), ("w-c", "w-d")]
        wf = Workflow.from_jobs("w", jobs, edges, 0, 100)
        assert critical_path_length(wf) == 2 + 9 + 2

    def test_parallel_jobs_do_not_add(self):
        wf = fork_join_workflow("f", 10, 0, 100)
        # chain depth is 3 levels x 3 slots (default spec duration).
        assert critical_path_length(wf) == 9


class TestCriticalPathWindows:
    def test_fig3_middle_gets_one_third(self):
        """The paper: critical-path decomposition gives job 2 one third of
        the deadline on the fork-join DAG regardless of fan-out."""
        wf = fork_join_workflow("f", 20, 0, 90)
        windows = critical_path_windows(wf)
        middle = windows["f-j1"]
        assert middle.length_slots == pytest.approx(30, abs=1)

    def test_precedence_respected(self):
        jobs = [job_with_duration(f"w-{x}", "w", d) for x, d in zip("abcd", [1, 4, 2, 1])]
        edges = [("w-a", "w-b"), ("w-a", "w-c"), ("w-b", "w-d"), ("w-c", "w-d")]
        wf = Workflow.from_jobs("w", jobs, edges, 0, 60)
        windows = critical_path_windows(wf)
        for parent, child in wf.edges:
            assert windows[parent].deadline_slot <= windows[child].release_slot

    def test_covers_whole_window_on_chain(self):
        jobs = [job_with_duration(f"c-j{i}", "c", 2) for i in range(3)]
        wf = Workflow.from_jobs(
            "c", jobs, [("c-j0", "c-j1"), ("c-j1", "c-j2")], 0, 60
        )
        windows = critical_path_windows(wf)
        assert windows["c-j0"].release_slot == 0
        assert windows["c-j2"].deadline_slot == 60
        # Equal runtimes -> equal thirds.
        assert windows["c-j0"].deadline_slot == 20
        assert windows["c-j1"].deadline_slot == 40

    def test_unequal_runtimes_split_proportionally(self):
        jobs = [job_with_duration(f"c-j{i}", "c", d) for i, d in enumerate([1, 3])]
        wf = Workflow.from_jobs("c", jobs, [("c-j0", "c-j1")], 0, 80)
        windows = critical_path_windows(wf)
        assert windows["c-j0"].deadline_slot == 20
        assert windows["c-j1"].deadline_slot == 80

    def test_squeezed_window_still_produces_valid_windows(self):
        # Window (5) < critical path (9): windows are squeezed but stay
        # non-empty and ordered.
        jobs = [job_with_duration(f"c-j{i}", "c", 3) for i in range(3)]
        wf = Workflow.from_jobs(
            "c", jobs, [("c-j0", "c-j1"), ("c-j1", "c-j2")], 0, 5
        )
        windows = critical_path_windows(wf)
        for parent, child in wf.edges:
            assert windows[parent].deadline_slot <= windows[child].release_slot
        for window in windows.values():
            assert window.length_slots >= 1

    def test_start_slot_offsets_everything(self):
        jobs = [job_with_duration("c-j0", "c", 2)]
        wf = Workflow.from_jobs("c", jobs, [], 50, 110)
        windows = critical_path_windows(wf)
        assert windows["c-j0"].release_slot == 50
        assert windows["c-j0"].deadline_slot == 110
