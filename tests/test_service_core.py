"""Tests for the online scheduler service core (no HTTP).

Determinism notes: submissions enqueued with ``wait=False`` *before*
``start()`` are all processed, in order, before the event loop's first
step — the virtual clock is still at slot 0, so the whole burst lands in
one arrival slot regardless of wall-clock timing.  That is how these tests
exercise batching without sleeping.
"""

import math

import pytest

from repro.model.cluster import ClusterCapacity
from repro.model.job import Job, TaskSpec
from repro.model.resources import ResourceVector
from repro.model.workflow import Workflow
from repro.obs import MemorySink, Observability
from repro.service import SchedulerService, ServiceConfig
from repro.simulator.engine import Simulation
from tests.conftest import adhoc_job, deadline_job


@pytest.fixture
def cluster() -> ClusterCapacity:
    return ClusterCapacity.uniform(cpu=40, mem=80)


def chain(wid: str, n: int = 3, start: int = 0, deadline: int = 60) -> Workflow:
    jobs = [deadline_job(f"{wid}-j{i}", wid) for i in range(n)]
    edges = [(f"{wid}-j{i}", f"{wid}-j{i+1}") for i in range(n - 1)]
    return Workflow.from_jobs(wid, jobs, edges, start, deadline)


def impossible_workflow(wid: str) -> Workflow:
    # 10 serial slots of work in a 5-slot window: infeasible even alone.
    job = Job(
        job_id=f"{wid}-big",
        tasks=TaskSpec(
            count=2, duration_slots=10, demand=ResourceVector(cpu=2, mem=4)
        ),
        workflow_id=wid,
    )
    return Workflow.from_jobs(wid, [job], [], 0, 5)


def run_service(cluster, submissions, config=None, obs=None):
    """Enqueue everything before start, then run to drain."""
    service = SchedulerService(cluster, config or ServiceConfig(), obs=obs)
    futures = []
    for kind, payload in submissions:
        submit = (
            service.submit_workflow if kind == "wf" else service.submit_adhoc
        )
        futures.append(submit(payload, wait=False))
    service.start()
    results = [f.result(timeout=30) for f in futures]
    final = service.drain(timeout=60)
    return service, results, final


class TestSubmitAndDrain:
    def test_workflow_runs_to_completion(self, cluster):
        service, results, final = run_service(
            cluster, [("wf", chain("c"))]
        )
        assert results[0].accepted and results[0].reason == "admitted"
        assert final.finished
        assert final.workflows["c"].met_deadline

    def test_adhoc_job_queued_and_completed(self, cluster):
        service, results, final = run_service(
            cluster, [("adhoc", adhoc_job("a", arrival=0))]
        )
        assert results[0].accepted and results[0].reason == "queued"
        assert final.jobs["a"].completion_slot is not None

    def test_drain_loses_no_accepted_work(self, cluster):
        submissions = [("wf", chain(f"w{i}", deadline=80)) for i in range(3)]
        submissions += [("adhoc", adhoc_job(f"a{i}", arrival=0)) for i in range(4)]
        service, results, final = run_service(cluster, submissions)
        assert all(r.accepted for r in results)
        assert final.finished
        # Every accepted submission appears, completed, in the final result.
        for i in range(3):
            assert final.workflows[f"w{i}"].met_deadline
        for i in range(4):
            assert final.jobs[f"a{i}"].completion_slot is not None

    def test_drain_is_idempotent(self, cluster):
        service, _, final = run_service(cluster, [("wf", chain("c"))])
        assert service.drain() is final
        assert service.result() is final

    def test_submit_after_stop_raises(self, cluster):
        service, _, _ = run_service(cluster, [])
        with pytest.raises(RuntimeError):
            service.submit_workflow(chain("late"))

    def test_status_reflects_counts(self, cluster):
        service, _, _ = run_service(
            cluster,
            [("wf", chain("c")), ("adhoc", adhoc_job("a", arrival=0))],
        )
        status = service.status()
        assert not status.running and status.draining
        assert status.accepted_workflows == 1
        assert status.accepted_adhoc == 1
        assert status.remaining_jobs == 0
        assert status.scheduler == "FlowTime"


class TestAdmission:
    def test_infeasible_workflow_rejected(self, cluster):
        service, results, final = run_service(
            cluster, [("wf", impossible_workflow("x"))]
        )
        assert not results[0].accepted
        assert results[0].reason == "infeasible"
        assert results[0].shortfall_units
        assert "x" not in final.workflows

    def test_rejected_workflow_consumes_no_capacity(self, cluster):
        # Reject x, then admit a feasible one: x must not haunt the books.
        service, results, _ = run_service(
            cluster,
            [("wf", impossible_workflow("x")), ("wf", chain("c"))],
        )
        assert not results[0].accepted
        assert results[1].accepted

    def test_admission_off_admits_everything(self, cluster):
        service, results, final = run_service(
            cluster,
            [("wf", impossible_workflow("x"))],
            config=ServiceConfig(admission=False),
        )
        assert results[0].accepted
        # It was admitted, ran, and (necessarily) missed its deadline.
        assert not final.workflows["x"].met_deadline

    def test_duplicate_workflow_invalid(self, cluster):
        service, results, _ = run_service(
            cluster, [("wf", chain("c")), ("wf", chain("c"))]
        )
        assert results[0].accepted
        assert not results[1].accepted and results[1].reason == "invalid"

    def test_admitted_set_is_jointly_feasible(self, cluster):
        # Saturating stream: whatever subset gets in must all meet its
        # deadline (admission promised feasibility; the planner delivers).
        tight = [
            ("wf", chain(f"t{i}", n=4, deadline=14)) for i in range(8)
        ]
        service, results, final = run_service(cluster, tight)
        accepted = [r.id for r in results if r.accepted]
        assert accepted  # the first one always fits an empty cluster
        assert final.finished
        for wid in accepted:
            assert final.workflows[wid].met_deadline, wid


class TestBackpressure:
    def test_adhoc_shed_beyond_queue_limit(self, cluster):
        submissions = [("adhoc", adhoc_job(f"a{i}", arrival=0)) for i in range(6)]
        service, results, _ = run_service(
            cluster,
            submissions,
            config=ServiceConfig(adhoc_queue_limit=4),
        )
        accepted = [r for r in results if r.accepted]
        shed = [r for r in results if r.reason == "queue_full"]
        assert len(accepted) == 4
        assert len(shed) == 2
        status = service.status()
        assert status.accepted_adhoc == 4
        assert status.shed_adhoc == 2

    def test_queue_depth_reported_on_accept(self, cluster):
        submissions = [("adhoc", adhoc_job(f"a{i}", arrival=0)) for i in range(3)]
        _, results, _ = run_service(cluster, submissions)
        assert [r.queue_depth for r in results] == [1, 2, 3]

    def test_shed_counter_in_metrics(self, cluster):
        submissions = [("adhoc", adhoc_job(f"a{i}", arrival=0)) for i in range(3)]
        service, _, _ = run_service(
            cluster, submissions, config=ServiceConfig(adhoc_queue_limit=1)
        )
        metrics = service.metrics_snapshot()
        assert metrics["service.queue.shed"]["value"] == 2.0


class TestBatchedReplanning:
    def test_burst_coalesces_into_one_replan(self, cluster):
        # 5 workflows submitted as a burst: all arrive in slot 0, so the
        # scheduler sees ONE arrival batch -> one plan ladder, not five.
        submissions = [("wf", chain(f"w{i}", deadline=90)) for i in range(5)]
        service, results, final = run_service(cluster, submissions)
        assert all(r.accepted for r in results)
        metrics = service.metrics_snapshot()
        hist = metrics["service.replan.batch_size"]
        assert hist["p50"] > 1  # acceptance criterion: p50 batch size > 1
        assert hist["max"] == 5.0
        # Fewer plan calls than submissions.
        assert service.status().replans < len(submissions)

    def test_spread_arrivals_batch_of_one(self, cluster):
        # Start slots 10 slots apart: each arrival is its own batch.
        submissions = [
            ("wf", chain(f"w{i}", start=10 * i, deadline=60 + 10 * i))
            for i in range(3)
        ]
        service, _, _ = run_service(cluster, submissions)
        hist = service.metrics_snapshot()["service.replan.batch_size"]
        assert hist["count"] == 3.0
        assert hist["max"] == 1.0

    def test_batch_window_validates(self):
        with pytest.raises(ValueError):
            ServiceConfig(batch_window_s=-1.0)

    def test_live_batch_window_coalesces_sequential_submits(self, cluster):
        # Submissions arriving while the service runs, each well inside the
        # 2 s window of the previous one: the window holds the virtual
        # clock, so all three land in one arrival slot -> one re-plan.
        service = SchedulerService(
            cluster, ServiceConfig(batch_window_s=2.0)
        ).start()
        try:
            for i in range(3):
                assert service.submit_workflow(chain(f"w{i}", deadline=90)).accepted
        finally:
            final = service.drain(timeout=60)
        assert final.finished
        hist = service.metrics_snapshot()["service.replan.batch_size"]
        assert hist["max"] == 3.0
        assert hist["count"] == 1.0


class TestOutcomeEquivalence:
    def test_service_matches_batch_simulator(self, cluster):
        # The same workload through the service and through the batch
        # Simulation must complete identically: same completion slots,
        # same deadline outcomes.  Both paths drive the same EngineCore.
        def workload():
            wfs = [chain(f"w{i}", start=5 * i, deadline=70 + 5 * i) for i in range(3)]
            jobs = [adhoc_job(f"a{i}", arrival=2 * i) for i in range(5)]
            return wfs, jobs

        from repro.schedulers.registry import make_scheduler

        wfs, jobs = workload()
        batch = Simulation(
            cluster, make_scheduler("FlowTime"), workflows=wfs, adhoc_jobs=jobs
        ).run()

        wfs, jobs = workload()
        submissions = [("wf", w) for w in wfs] + [("adhoc", j) for j in jobs]
        _, results, served = run_service(cluster, submissions)

        assert all(r.accepted for r in results)
        assert served.finished and batch.finished
        assert served.n_slots == batch.n_slots
        for wid, record in batch.workflows.items():
            assert served.workflows[wid].completion_slot == record.completion_slot
            assert served.workflows[wid].met_deadline == record.met_deadline
        for job_id, record in batch.jobs.items():
            assert served.jobs[job_id].completion_slot == record.completion_slot


class TestObservability:
    def test_trace_flushed_on_drain(self, cluster):
        sink = MemorySink()
        obs = Observability(sink=sink)
        run_service(cluster, [("wf", chain("c"))], obs=obs)
        types = {event["type"] for event in sink.events}
        assert "service_start" in types
        assert "service_drain_start" in types
        assert "run_end" in types
        assert "workflow_completed" in types
        assert "service_stop" in types

    def test_queue_depth_gauge_exists(self, cluster):
        service, _, _ = run_service(
            cluster, [("adhoc", adhoc_job("a", arrival=0))]
        )
        metrics = service.metrics_snapshot()
        assert metrics["service.queue.depth"]["value"] == 0.0  # drained

    def test_plan_snapshot_shape(self, cluster):
        service, _, _ = run_service(cluster, [("wf", chain("c"))])
        plan = service.plan_snapshot()
        assert set(plan) >= {"origin_slot", "horizon", "jobs"}

    def test_utilisation_survives_json_round_trip(self, cluster):
        _, results, _ = run_service(cluster, [("wf", chain("c"))])
        from repro.service import SubmitResult

        again = SubmitResult.from_dict(results[0].to_dict())
        assert again.utilisation == pytest.approx(results[0].utilisation)
        nan_round = SubmitResult.from_dict(
            SubmitResult(accepted=True, kind="adhoc", id="a", reason="queued").to_dict()
        )
        assert math.isnan(nan_round.utilisation)
