"""Tests for failure injection (progress setbacks)."""

import pytest

from repro.model.events import EventKind
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.flowtime_sched import FlowTimeScheduler
from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.failures import FailureModel
from repro.simulator.metrics import missed_workflows
from repro.workloads.dag_generators import chain_workflow
from tests.conftest import adhoc_job


class TestFailureModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FailureModel(setback_prob=1.5)
        with pytest.raises(ValueError):
            FailureModel(setback_prob=0.5, max_setback_units=0)

    def test_zero_probability_never_fails(self):
        model = FailureModel(setback_prob=0.0)
        rng = model.rng()
        assert all(model.roll(rng, 10) == 0 for _ in range(100))

    def test_roll_bounded_by_executed(self):
        model = FailureModel(setback_prob=1.0, max_setback_units=100, seed=1)
        rng = model.rng()
        for _ in range(50):
            assert 0 <= model.roll(rng, 3) <= 3

    def test_roll_zero_executed(self):
        model = FailureModel(setback_prob=1.0)
        assert model.roll(model.rng(), 0) == 0

    def test_deterministic_per_seed(self):
        model = FailureModel(setback_prob=0.5, seed=7)
        a = [model.roll(model.rng(), 10) for _ in range(1)]
        b = [model.roll(model.rng(), 10) for _ in range(1)]
        assert a == b


class TestEngineWithFailures:
    def run(self, scheduler, prob, max_slots=2000):
        config = SimulationConfig(
            failures=FailureModel(setback_prob=prob, max_setback_units=3, seed=3),
            max_slots=max_slots,
        )
        wf = chain_workflow("w", 3, 0, 300)
        adhocs = [adhoc_job("a0", 0, count=4, duration=2)]
        sim = Simulation(
            self.cluster, scheduler, workflows=[wf], adhoc_jobs=adhocs, config=config
        )
        return sim.run()

    @pytest.fixture(autouse=True)
    def _cluster(self, small_cluster):
        self.cluster = small_cluster

    def test_everything_still_completes(self):
        result = self.run(FifoScheduler(), prob=0.3)
        assert result.finished

    def test_failures_delay_completion(self):
        clean = self.run(FifoScheduler(), prob=0.0)
        faulty = self.run(FifoScheduler(), prob=0.5)
        assert faulty.n_slots >= clean.n_slots

    def test_flowtime_replans_after_setbacks(self):
        scheduler = FlowTimeScheduler()
        result = self.run(scheduler, prob=0.4)
        assert result.finished
        # Loose 300-slot deadline absorbs the setbacks.
        assert missed_workflows(result) == []

    def test_setback_events_delivered(self):
        seen = []

        class Recorder(FifoScheduler):
            def on_events(self, events, view):
                seen.extend(e for e in events if e.kind is EventKind.JOB_SETBACK)

        self.run(Recorder(), prob=0.8)
        assert seen
        assert all(e.lost_units >= 1 for e in seen)

    def test_completed_jobs_never_regress(self):
        result = self.run(FifoScheduler(), prob=0.9)
        assert result.finished
        for record in result.jobs.values():
            assert record.completion_slot is not None
