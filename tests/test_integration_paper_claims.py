"""Integration tests pinning the paper's qualitative claims.

These run full simulations and check the *shape* of the paper's results:
the Fig. 1 motivating example exactly (150 vs 100 average turnaround), the
Fig. 4 ordering (FlowTime misses no deadlines and beats EDF on ad-hoc
turnaround), and the Fig. 5 slack story.
"""

import pytest

from repro.analysis.experiments import run_comparison
from repro.core.flowtime import PlannerConfig
from repro.model.cluster import ClusterCapacity
from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.model.workflow import Workflow
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.flowtime_sched import FlowTimeScheduler
from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.metrics import adhoc_turnaround_seconds, missed_workflows
from repro.workloads.traces import generate_trace


def fig1_workload():
    """The exact Fig. 1 scenario in slot units.

    Cluster: 4 cores / 8 GB.  Workflow W1 = J1 -> J2, each job 2 tasks x 50
    slots x (2 cores, 2 GB): at full cluster each takes 50 slots, and the
    deadline (200) is loose.  Ad-hoc jobs A1 (arrives 0) and A2 (arrives
    100) each are 2 tasks x 100 slots x (1 core, 1 GB).
    """
    cluster = ClusterCapacity.uniform(cpu=4, mem=8)
    w_spec = TaskSpec(
        count=2, duration_slots=50, demand=ResourceVector({CPU: 2, MEM: 2})
    )
    jobs = [
        Job(job_id=f"W1-J{i}", tasks=w_spec, workflow_id="W1") for i in (1, 2)
    ]
    workflow = Workflow.from_jobs("W1", jobs, [("W1-J1", "W1-J2")], 0, 200)
    a_spec = TaskSpec(
        count=2, duration_slots=100, demand=ResourceVector({CPU: 1, MEM: 1})
    )
    adhoc = [
        Job(job_id="A1", tasks=a_spec, kind=JobKind.ADHOC, arrival_slot=0),
        Job(job_id="A2", tasks=a_spec, kind=JobKind.ADHOC, arrival_slot=100),
    ]
    return cluster, workflow, adhoc


class TestFig1MotivatingExample:
    """Paper: EDF averages 150 = (200+100)/2; FlowTime 100 = (100+100)/2."""

    def run(self, scheduler):
        cluster, workflow, adhoc = fig1_workload()
        config = SimulationConfig(slot_seconds=1.0)
        result = Simulation(
            cluster, scheduler, workflows=[workflow], adhoc_jobs=adhoc, config=config
        ).run()
        assert result.finished
        return result

    def test_edf_turnaround_is_150(self):
        result = self.run(EdfScheduler())
        assert missed_workflows(result) == []
        assert result.jobs["A1"].turnaround_slots() == 200
        assert result.jobs["A2"].turnaround_slots() == 100
        assert adhoc_turnaround_seconds(result) == pytest.approx(150.0)

    def test_flowtime_turnaround_is_100(self):
        scheduler = FlowTimeScheduler(PlannerConfig(slack_slots=0))
        result = self.run(scheduler)
        assert missed_workflows(result) == []
        assert result.jobs["A1"].turnaround_slots() == 100
        assert result.jobs["A2"].turnaround_slots() == 100
        assert adhoc_turnaround_seconds(result) == pytest.approx(100.0)

    def test_flowtime_decomposition_splits_window_in_half(self):
        scheduler = FlowTimeScheduler(PlannerConfig(slack_slots=0))
        self.run(scheduler)
        windows = scheduler.windows
        assert windows["W1-J1"].deadline_slot == 100
        assert windows["W1-J2"].release_slot == 100
        assert windows["W1-J2"].deadline_slot == 200


@pytest.fixture(scope="module")
def contended_setup():
    """A contended mixed cluster: the Fig. 4 regime at test scale."""
    cluster = ClusterCapacity.uniform(cpu=48, mem=96)
    trace = generate_trace(
        n_workflows=3,
        jobs_per_workflow=8,
        n_adhoc=15,
        capacity=cluster,
        looseness=(2.0, 4.0),
        adhoc_rate_per_slot=0.3,
        workflow_spread_slots=20,
        seed=42,
    )
    return cluster, trace


class TestFig4Shape:
    @pytest.fixture(scope="class")
    def comparison(self, contended_setup):
        cluster, trace = contended_setup
        return run_comparison(
            trace, cluster, ["FlowTime", "EDF", "Fair", "FIFO"]
        )

    def test_everyone_finishes(self, comparison):
        for outcome in comparison.outcomes:
            assert outcome.result.finished, outcome.name

    def test_flowtime_misses_fewest_jobs(self, comparison):
        flowtime = comparison.outcome("FlowTime").n_missed_jobs
        for name in ("EDF", "Fair", "FIFO"):
            assert flowtime <= comparison.outcome(name).n_missed_jobs

    def test_flowtime_meets_all_workflow_deadlines(self, comparison):
        assert comparison.outcome("FlowTime").n_missed_workflows == 0

    def test_flowtime_adhoc_beats_edf(self, comparison):
        flowtime = comparison.outcome("FlowTime").adhoc_turnaround_s
        edf = comparison.outcome("EDF").adhoc_turnaround_s
        assert flowtime < edf


class TestDeadlineSlackStory:
    def test_slack_does_not_hurt_turnaround_much(self, contended_setup):
        """Fig. 5(c): slack changes ad-hoc turnaround only marginally."""
        cluster, trace = contended_setup
        comparison = run_comparison(trace, cluster, ["FlowTime", "FlowTime_no_ds"])
        with_ds = comparison.outcome("FlowTime").adhoc_turnaround_s
        without = comparison.outcome("FlowTime_no_ds").adhoc_turnaround_s
        assert with_ds <= without * 1.5 + 30.0
