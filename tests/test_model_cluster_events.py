"""Unit tests for ClusterCapacity and the event types."""

import pytest

from repro.model.cluster import ClusterCapacity
from repro.model.events import (
    EventKind,
    JobArrived,
    JobCompleted,
    JobReady,
    WorkflowArrived,
    WorkflowCompleted,
)
from repro.model.resources import ResourceVector


class TestClusterCapacity:
    def test_uniform(self):
        cluster = ClusterCapacity.uniform(cpu=500, mem=1024)
        assert cluster.amount(0, "cpu") == 500
        assert cluster.amount(9999, "mem") == 1024

    def test_resources_sorted(self):
        cluster = ClusterCapacity.uniform(mem=1, cpu=2)
        assert cluster.resources == ("cpu", "mem")

    def test_override_applies_to_one_slot(self):
        cluster = ClusterCapacity(
            base=ResourceVector(cpu=10),
            overrides={5: ResourceVector(cpu=4)},
        )
        assert cluster.amount(4, "cpu") == 10
        assert cluster.amount(5, "cpu") == 4
        assert cluster.amount(6, "cpu") == 10

    def test_rejects_zero_base(self):
        with pytest.raises(ValueError):
            ClusterCapacity(base=ResourceVector())

    def test_rejects_negative_override_slot(self):
        with pytest.raises(ValueError):
            ClusterCapacity(
                base=ResourceVector(cpu=1), overrides={-1: ResourceVector(cpu=1)}
            )

    def test_rejects_unknown_override_resource(self):
        with pytest.raises(ValueError):
            ClusterCapacity(
                base=ResourceVector(cpu=1), overrides={0: ResourceVector(gpu=1)}
            )


class TestEvents:
    def test_kinds(self):
        assert WorkflowArrived(0, "w").kind is EventKind.WORKFLOW_ARRIVED
        assert JobArrived(0, "j").kind is EventKind.JOB_ARRIVED
        assert JobReady(0, "j", "w").kind is EventKind.JOB_READY
        assert JobCompleted(0, "j").kind is EventKind.JOB_COMPLETED
        assert WorkflowCompleted(0, "w").kind is EventKind.WORKFLOW_COMPLETED

    def test_events_are_frozen(self):
        event = JobReady(3, "j")
        with pytest.raises(AttributeError):
            event.slot = 4

    def test_job_ready_defaults_workflow_none(self):
        assert JobReady(0, "j").workflow_id is None
