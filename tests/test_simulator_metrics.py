"""Tests for the evaluation metrics (Sec. VII-A)."""

import numpy as np
import pytest

from repro.core.decomposition_types import JobWindow
from repro.model.cluster import ClusterCapacity
from repro.model.job import JobKind
from repro.simulator.metrics import (
    adhoc_turnaround_seconds,
    deadline_deltas_seconds,
    missed_jobs,
    missed_workflows,
    summarize,
    utilization_timeline,
)
from repro.simulator.result import JobRecord, SimulationResult, WorkflowRecord


def record(job_id, kind, arrival, completion, workflow=None):
    return JobRecord(
        job_id=job_id,
        kind=kind,
        workflow_id=workflow,
        arrival_slot=arrival,
        ready_slot=arrival,
        completion_slot=completion,
        true_units=4,
        est_units=4,
    )


def result_with(jobs, workflows=None, n_slots=100, slot_seconds=10.0):
    return SimulationResult(
        slot_seconds=slot_seconds,
        n_slots=n_slots,
        finished=all(r.completion_slot is not None for r in jobs.values()),
        jobs=jobs,
        workflows=workflows or {},
        usage=np.zeros((n_slots, 2)),
        granted=np.zeros((n_slots, 2)),
        resources=("cpu", "mem"),
    )


class TestTurnaround:
    def test_average_in_seconds(self):
        jobs = {
            "a": record("a", JobKind.ADHOC, arrival=0, completion=4),  # 5 slots
            "b": record("b", JobKind.ADHOC, arrival=10, completion=12),  # 3 slots
        }
        result = result_with(jobs)
        assert adhoc_turnaround_seconds(result) == pytest.approx(40.0)

    def test_deadline_jobs_excluded(self):
        jobs = {
            "a": record("a", JobKind.ADHOC, 0, 0),
            "w": record("w", JobKind.DEADLINE, 0, 50, workflow="wf"),
        }
        assert adhoc_turnaround_seconds(result_with(jobs)) == pytest.approx(10.0)

    def test_unfinished_counts_to_sim_end(self):
        jobs = {"a": record("a", JobKind.ADHOC, 90, None)}
        result = result_with(jobs, n_slots=100)
        assert adhoc_turnaround_seconds(result) == pytest.approx(100.0)

    def test_no_adhoc_jobs_is_nan(self):
        # 0.0 would read as "perfect turnaround" in reports; the metric is
        # undefined without ad-hoc jobs.
        assert np.isnan(adhoc_turnaround_seconds(result_with({})))


class TestDeadlineMetrics:
    @pytest.fixture
    def windows(self):
        return {
            "early": JobWindow("early", 0, 10),
            "late": JobWindow("late", 0, 10),
            "never": JobWindow("never", 0, 10),
        }

    @pytest.fixture
    def result(self):
        jobs = {
            "early": record("early", JobKind.DEADLINE, 0, 5, workflow="wf"),
            "late": record("late", JobKind.DEADLINE, 0, 15, workflow="wf"),
            "never": record("never", JobKind.DEADLINE, 0, None, workflow="wf"),
            "adhoc": record("adhoc", JobKind.ADHOC, 0, 3),
        }
        return result_with(jobs, n_slots=50)

    def test_deltas(self, result, windows):
        deltas = deadline_deltas_seconds(result, windows)
        assert deltas["early"] == pytest.approx(-40.0)  # finished slot 5, end 6
        assert deltas["late"] == pytest.approx(60.0)
        # Lower bound: the earliest an unfinished job can complete is slot
        # n_slots, whose end boundary is n_slots + 1 (same convention as
        # finished jobs — see test_delta_and_missed_agree_on_zero).
        assert deltas["never"] == pytest.approx(410.0)
        assert "adhoc" not in deltas

    def test_missed_jobs(self, result, windows):
        assert missed_jobs(result, windows) == ["late", "never"]

    def test_boundary_is_exclusive(self):
        # Completion in slot 9 with deadline 10 meets it; slot 10 misses.
        windows = {"j": JobWindow("j", 0, 10)}
        ok = result_with({"j": record("j", JobKind.DEADLINE, 0, 9, "wf")})
        bad = result_with({"j": record("j", JobKind.DEADLINE, 0, 10, "wf")})
        assert missed_jobs(ok, windows) == []
        assert missed_jobs(bad, windows) == ["j"]

    def test_missing_record_skipped(self, windows):
        result = result_with({})
        assert missed_jobs(result, windows) == []
        assert deadline_deltas_seconds(result, windows) == {}

    def test_delta_and_missed_agree_on_zero(self):
        """Regression: a job with delta == 0.0 s must not count as missed.

        Both metrics share one end-slot convention (completion_slot + 1,
        or n_slots + 1 when unfinished): missed iff delta > 0, for
        finished and unfinished jobs alike.
        """
        windows = {"j": JobWindow("j", 0, 10)}
        # Finishes in slot 9 -> end boundary 10 == deadline -> delta 0, met.
        on_time = result_with({"j": record("j", JobKind.DEADLINE, 0, 9, "wf")})
        assert deadline_deltas_seconds(on_time, windows)["j"] == pytest.approx(0.0)
        assert missed_jobs(on_time, windows) == []
        # One slot later -> delta one slot, missed.
        late = result_with({"j": record("j", JobKind.DEADLINE, 0, 10, "wf")})
        assert deadline_deltas_seconds(late, windows)["j"] == pytest.approx(10.0)
        assert missed_jobs(late, windows) == ["j"]
        # Unfinished at n_slots == deadline: earliest end is n_slots + 1,
        # one slot past the deadline -> positive delta AND missed.
        unfinished = result_with(
            {"j": record("j", JobKind.DEADLINE, 0, None, "wf")}, n_slots=10
        )
        assert deadline_deltas_seconds(unfinished, windows)["j"] == pytest.approx(10.0)
        assert missed_jobs(unfinished, windows) == ["j"]


class TestWorkflowMetrics:
    def test_missed_workflows(self):
        workflows = {
            "ok": WorkflowRecord("ok", 0, 100, completion_slot=50),
            "late": WorkflowRecord("late", 0, 100, completion_slot=120),
            "unfinished": WorkflowRecord("unfinished", 0, 100, completion_slot=None),
        }
        result = result_with({}, workflows=workflows)
        assert missed_workflows(result) == ["late", "unfinished"]


class TestUtilization:
    def test_max_over_resources(self):
        result = result_with({}, n_slots=2)
        result.usage[0] = [10, 40]  # cpu 10/20=0.5, mem 40/50=0.8
        cluster = ClusterCapacity.uniform(cpu=20, mem=50)
        timeline = utilization_timeline(result, cluster)
        assert timeline[0] == pytest.approx(0.8)
        assert timeline[1] == 0.0


class TestSummary:
    def test_summarize_keys(self):
        windows = {"j": JobWindow("j", 0, 10)}
        result = result_with({"j": record("j", JobKind.DEADLINE, 0, 5, "wf")})
        summary = summarize(result, windows)
        assert summary["jobs_missed"] == 0.0
        assert summary["n_deadline_jobs"] == 1.0
        assert "adhoc_turnaround_s" in summary
