"""Tests for the slot-based simulation engine."""

import pytest

from repro.model.job import Job, JobKind
from repro.model.resources import CPU
from repro.model.workflow import Workflow
from repro.schedulers.base import Scheduler
from repro.schedulers.fifo import FifoScheduler
from repro.simulator.engine import Simulation, SimulationConfig
from tests.conftest import adhoc_job, deadline_job, spec


class GreedyAll(Scheduler):
    """Grants every runnable job as much as fits, in sorted order."""

    name = "greedy"

    def assign(self, view):
        leftover = view.capacity_now()
        grants = {}
        for job in sorted(view.runnable_deadline_jobs(), key=lambda j: j.job_id):
            units = self.grant_deadline_job(job, leftover)
            if units:
                grants[job.job_id] = units
                leftover = leftover.saturating_sub(job.unit_demand * units)
        self.serve_adhoc_fifo(view, leftover, grants)
        return grants


class TestBasicExecution:
    def test_single_adhoc_job_runs_to_completion(self, small_cluster):
        job = adhoc_job("a", arrival=0, count=4, duration=2)
        sim = Simulation(small_cluster, GreedyAll(), adhoc_jobs=[job])
        result = sim.run()
        assert result.finished
        record = result.jobs["a"]
        # 8 task-slots with parallelism 4 -> 2 slots.
        assert record.completion_slot == 1
        assert record.turnaround_slots() == 2

    def test_arrival_delays_start(self, small_cluster):
        job = adhoc_job("a", arrival=5, count=2, duration=1)
        result = Simulation(small_cluster, GreedyAll(), adhoc_jobs=[job]).run()
        assert result.jobs["a"].completion_slot == 5

    def test_workflow_dependencies_serialise(self, small_cluster, chain3):
        result = Simulation(small_cluster, GreedyAll(), workflows=[chain3]).run()
        assert result.finished
        j0, j1, j2 = (result.jobs[f"c-j{i}"] for i in range(3))
        # Each job: 8 task-slots, parallelism 4 -> 2 slots each, serialised.
        assert j0.completion_slot < j1.ready_slot <= j1.completion_slot
        assert j1.completion_slot < j2.ready_slot <= j2.completion_slot
        assert result.workflows["c"].completion_slot == j2.completion_slot

    def test_parallel_jobs_share_the_cluster(self, small_cluster, fork4):
        result = Simulation(small_cluster, GreedyAll(), workflows=[fork4]).run()
        assert result.finished
        middles = [result.jobs[f"f-j{i}"] for i in range(1, 5)]
        ready = {m.ready_slot for m in middles}
        assert len(ready) == 1  # all released together

    def test_workflow_start_slot_gates_arrival(self, small_cluster):
        jobs = [deadline_job("w-a", "w")]
        wf = Workflow.from_jobs("w", jobs, [], 10, 60)
        result = Simulation(small_cluster, GreedyAll(), workflows=[wf]).run()
        assert result.jobs["w-a"].ready_slot == 10


class TestEstimationErrors:
    def test_true_structure_drives_execution(self, small_cluster):
        est = spec(count=4, duration=2)
        true = spec(count=4, duration=4)  # truly twice as long
        job = Job(job_id="a", tasks=est, kind=JobKind.ADHOC, arrival_slot=0, true_tasks=true)
        result = Simulation(small_cluster, GreedyAll(), adhoc_jobs=[job]).run()
        record = result.jobs["a"]
        assert record.true_units == 16
        assert record.est_units == 8
        assert record.completion_slot == 3  # 16 units at parallelism 4


class TestValidation:
    def test_rejects_duplicate_ids(self, small_cluster):
        with pytest.raises(ValueError):
            Simulation(
                small_cluster,
                GreedyAll(),
                adhoc_jobs=[adhoc_job("a", 0), adhoc_job("a", 1)],
            )

    def test_rejects_deadline_job_in_adhoc_list(self, small_cluster):
        job = deadline_job("w-a", "w")
        with pytest.raises(ValueError):
            Simulation(small_cluster, GreedyAll(), adhoc_jobs=[job])

    def test_rejects_task_larger_than_cluster(self, tiny_cluster):
        job = adhoc_job("a", 0, cores=100)
        with pytest.raises(ValueError):
            Simulation(tiny_cluster, GreedyAll(), adhoc_jobs=[job])

    def test_strict_mode_rejects_unknown_grants(self, small_cluster):
        class Bad(Scheduler):
            name = "bad"

            def assign(self, view):
                return {"ghost": 1}

        job = adhoc_job("a", 0)
        with pytest.raises(ValueError, match="unknown job"):
            Simulation(small_cluster, Bad(), adhoc_jobs=[job]).run()

    def test_strict_mode_rejects_over_capacity(self, tiny_cluster):
        class Hog(Scheduler):
            name = "hog"

            def assign(self, view):
                return {j.job_id: 100 for j in view.adhoc_jobs}

        job = adhoc_job("a", 0, count=100, cores=1, mem=1)
        with pytest.raises(ValueError, match="exceeding capacity"):
            Simulation(tiny_cluster, Hog(), adhoc_jobs=[job]).run()

    def test_strict_mode_rejects_grant_to_unready_job(self, small_cluster, chain3):
        class Eager(Scheduler):
            name = "eager"

            def assign(self, view):
                # Grants to every deadline job, ready or not.
                return {j.job_id: 1 for j in view.deadline_jobs if not j.completed}

        with pytest.raises(ValueError, match="not ready"):
            Simulation(small_cluster, Eager(), workflows=[chain3]).run()


class TestTruncation:
    def test_max_slots_stops_unfinished(self, small_cluster):
        class Lazy(Scheduler):
            name = "lazy"

            def assign(self, view):
                return {}

        job = adhoc_job("a", 0)
        config = SimulationConfig(max_slots=5)
        result = Simulation(small_cluster, Lazy(), adhoc_jobs=[job], config=config).run()
        assert not result.finished
        assert result.n_slots == 5
        assert result.jobs["a"].completion_slot is None


class TestAccounting:
    def test_usage_tracks_true_consumption(self, small_cluster):
        job = adhoc_job("a", 0, count=4, duration=1, cores=2, mem=4)
        result = Simulation(small_cluster, GreedyAll(), adhoc_jobs=[job]).run()
        cpu_col = result.resources.index(CPU)
        assert result.usage[0, cpu_col] == 8  # 4 tasks x 2 cores

    def test_events_reach_scheduler(self, small_cluster, chain3):
        seen = []

        class Recorder(FifoScheduler):
            def on_events(self, events, view):
                seen.extend(type(e).__name__ for e in events)

        Simulation(small_cluster, Recorder(), workflows=[chain3]).run()
        assert "WorkflowArrived" in seen
        assert "JobReady" in seen
        assert "JobCompleted" in seen
        assert "WorkflowCompleted" in seen

    def test_planning_time_recorded(self, small_cluster):
        job = adhoc_job("a", 0)
        result = Simulation(small_cluster, GreedyAll(), adhoc_jobs=[job]).run()
        assert result.planning_calls == result.n_slots
        assert result.planning_seconds >= 0.0
