"""Request correlation end to end: X-Request-Id → trace → timeline query.

The acceptance path for the telemetry subsystem: an HTTP client submits a
workflow with an ``X-Request-Id``; the id is echoed in header and body,
stamped onto trace events from admission through execution, and ``repro
trace query RUN.jsonl --request <id>`` reconstructs the submission's full
timeline — admission verdict, placements, completion, deadline outcome.
"""

from __future__ import annotations

import json
import time
import urllib.request

import pytest

from repro.model.cluster import ClusterCapacity
from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.model.workflow import Workflow
from repro.obs import (
    JsonlSink,
    Observability,
    format_timeline,
    read_trace,
    request_timeline,
)
from repro.service import (
    HttpServiceClient,
    SchedulerService,
    ServiceConfig,
    serve_http,
)


def small_workflow(wid: str, deadline: int = 100) -> Workflow:
    spec = TaskSpec(
        count=1, duration_slots=2, demand=ResourceVector({CPU: 1, MEM: 1})
    )
    jobs = [Job(job_id=f"{wid}-j{i}", tasks=spec, workflow_id=wid) for i in range(2)]
    return Workflow.from_jobs(
        wid, jobs, [(f"{wid}-j0", f"{wid}-j1")], 0, deadline
    )


def wait_until(predicate, timeout_s: float = 30.0) -> None:
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError("condition not met in time")


@pytest.fixture
def traced_served(tmp_path):
    trace_path = tmp_path / "run.jsonl"
    sink = JsonlSink(trace_path)
    obs = Observability(sink=sink, level=10)
    cluster = ClusterCapacity.uniform(cpu=8, mem=16)
    service = SchedulerService(
        cluster, ServiceConfig(slot_seconds=0.02), obs=obs
    ).start()
    server = serve_http(service)
    client = HttpServiceClient(server.url, timeout=30)
    yield service, server, client, trace_path
    server.shutdown()
    if service.running:
        service.drain(timeout=60)
    sink.close()


class TestHttpRequestIds:
    def test_full_timeline_reconstruction_over_http(self, traced_served):
        """The PR's acceptance test: header in, full timeline out."""
        service, _, client, trace_path = traced_served
        result = client.submit_workflow(
            small_workflow("w1"), request_id="acceptance-req-1"
        )
        assert result.accepted
        assert result.request_id == "acceptance-req-1"
        wait_until(lambda: service.status().remaining_jobs == 0)
        service.drain(timeout=60)

        events = read_trace(trace_path)
        timeline = request_timeline(events, "acceptance-req-1")
        assert timeline.found
        assert timeline.workflow_ids == ["w1"]
        assert timeline.job_ids == ["w1-j0", "w1-j1"]
        assert timeline.admission == "accept"
        assert timeline.placement_slots, "no placements correlated"
        # 2 jobs x 1 task x 2 duration slots = 4 task-slot units.
        assert timeline.units_placed == 4.0
        assert timeline.completed_slot is not None
        assert timeline.deadline_missed is False
        kinds = [event["type"] for event in timeline.events]
        assert "admission_accept" in kinds
        assert "workflow_arrived" in kinds
        assert "task_placement" in kinds
        assert "workflow_completed" in kinds
        # The stamped subset carries the id verbatim.
        stamped = [e for e in timeline.events
                   if e.get("request_id") == "acceptance-req-1"]
        assert stamped

    def test_header_echoed_and_minted(self, traced_served):
        _, server, _, _ = traced_served
        body = json.dumps(
            {"workflow": "nonsense"}
        ).encode()
        request = urllib.request.Request(
            server.url + "/workflows", data=body,
            headers={"Content-Type": "application/json",
                     "X-Request-Id": "client-id-7"},
            method="POST",
        )
        try:
            urllib.request.urlopen(request, timeout=30)
        except urllib.error.HTTPError as error:
            assert error.code == 400
            assert error.headers.get("X-Request-Id") == "client-id-7"
        else:
            pytest.fail("malformed submission should 400")

        # No header → the server mints one.
        request = urllib.request.Request(
            server.url + "/workflows", data=body,
            headers={"Content-Type": "application/json"}, method="POST",
        )
        try:
            urllib.request.urlopen(request, timeout=30)
        except urllib.error.HTTPError as error:
            minted = error.headers.get("X-Request-Id")
            assert minted and len(minted) == 32

    def test_invalid_header_replaced_not_trusted(self, traced_served):
        _, server, _, _ = traced_served
        request = urllib.request.Request(
            server.url + "/workflows", data=b"{}",
            headers={"Content-Type": "application/json",
                     "X-Request-Id": "bad id with spaces!"},
            method="POST",
        )
        try:
            urllib.request.urlopen(request, timeout=30)
        except urllib.error.HTTPError as error:
            echoed = error.headers.get("X-Request-Id")
            assert echoed != "bad id with spaces!"
            assert echoed

    def test_idempotent_replay_returns_original_request_id(self, traced_served):
        _, _, client, _ = traced_served
        first = client.submit_workflow(
            small_workflow("w2"), idempotency_key="key-1",
            request_id="original-req",
        )
        assert first.accepted
        replay = client.submit_workflow(
            small_workflow("w2"), idempotency_key="key-1",
            request_id="retry-req",
        )
        # The replay answers with the id the submission was processed
        # under — that's the id the trace events carry.
        assert replay.request_id == "original-req"

    def test_adhoc_timeline(self, traced_served):
        service, _, client, trace_path = traced_served
        spec = TaskSpec(
            count=1, duration_slots=1, demand=ResourceVector({CPU: 1, MEM: 1})
        )
        job = Job(job_id="a1", tasks=spec, kind=JobKind.ADHOC, arrival_slot=0)
        result = client.submit_adhoc(job, request_id="adhoc-req")
        assert result.accepted and result.request_id == "adhoc-req"
        wait_until(lambda: service.status().remaining_jobs == 0)
        service.drain(timeout=60)
        timeline = request_timeline(read_trace(trace_path), "adhoc-req")
        assert timeline.found
        assert timeline.job_ids == ["a1"]
        assert timeline.completed_slot is not None


class TestInProcessRequestIds:
    def test_submit_result_carries_minted_id(self):
        cluster = ClusterCapacity.uniform(cpu=8, mem=16)
        service = SchedulerService(
            cluster, ServiceConfig(slot_seconds=0.02)
        ).start()
        try:
            result = service.submit_workflow(small_workflow("w"))
            assert result.accepted
            assert result.request_id and len(result.request_id) == 32
        finally:
            service.drain(timeout=60)


class TestCliTraceQuery:
    def _make_trace(self, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        sink = JsonlSink(trace_path)
        obs = Observability(sink=sink, level=10)
        cluster = ClusterCapacity.uniform(cpu=8, mem=16)
        service = SchedulerService(
            cluster, ServiceConfig(slot_seconds=0.02), obs=obs
        ).start()
        service.submit_workflow(small_workflow("w"), request_id="cli-req")
        wait_until(lambda: service.status().remaining_jobs == 0)
        service.drain(timeout=60)
        sink.close()
        return trace_path

    def test_query_text_and_json(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = self._make_trace(tmp_path)
        assert main(["trace", "query", str(trace_path),
                     "--request", "cli-req"]) == 0
        out = capsys.readouterr().out
        assert "request cli-req" in out
        assert "admission: accept" in out
        assert "workflow_completed" in out

        assert main(["trace", "query", str(trace_path),
                     "--request", "cli-req", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["request_id"] == "cli-req"
        assert payload["admission"] == "accept"
        assert payload["n_events"] > 0

    def test_query_unknown_id_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = self._make_trace(tmp_path)
        assert main(["trace", "query", str(trace_path),
                     "--request", "no-such"]) == 1
        assert "no events found" in capsys.readouterr().out

    def test_format_timeline_handles_missing(self):
        timeline = request_timeline([], "ghost")
        text = format_timeline(timeline)
        assert "no events found" in text


class TestJsonlRotation:
    def test_rotation_caps_disk_and_keeps_seq(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path, max_bytes=2048, backups=2)
        for i in range(200):
            sink.emit({"type": "job_arrived", "slot": i, "job_id": f"j{i}"})
        sink.close()
        assert sink.rotations > 0
        generations = [path, path.with_name("trace.jsonl.1"),
                       path.with_name("trace.jsonl.2")]
        assert all(p.exists() for p in generations)
        assert not path.with_name("trace.jsonl.3").exists()  # oldest dropped
        for p in generations:
            assert p.stat().st_size <= 2048 + 256
        # Sequence numbers keep counting across rotations: stitching the
        # surviving generations back together yields a strictly ordered,
        # gap-detectable stream.
        seqs = sorted(
            event["seq"] for p in generations for event in read_trace(p)
        )
        assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
        assert seqs[-1] == 199

    def test_no_cap_never_rotates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        for i in range(100):
            sink.emit({"type": "job_arrived", "slot": i, "job_id": f"j{i}"})
        sink.close()
        assert sink.rotations == 0
        assert len(read_trace(path)) == 100

    def test_bad_args_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            JsonlSink(tmp_path / "x.jsonl", max_bytes=0)
        with pytest.raises(ValueError, match="backups"):
            JsonlSink(tmp_path / "x.jsonl", backups=-1)
