"""Tests for the grouped topological sort (Sec. IV-A)."""

import pytest

from repro.core.toposort import grouped_topological_sets, level_of
from repro.model.workflow import Workflow
from repro.workloads.dag_generators import fork_join_workflow
from tests.conftest import deadline_job


class TestGroupedToposort:
    def test_single_job(self):
        wf = Workflow.from_jobs("w", [deadline_job("w-a", "w")], [], 0, 10)
        assert grouped_topological_sets(wf) == (("w-a",),)

    def test_chain_one_per_level(self, chain3):
        assert grouped_topological_sets(chain3) == (
            ("c-j0",),
            ("c-j1",),
            ("c-j2",),
        )

    def test_fork_join_matches_paper_example(self):
        # The paper's Fig. 3: output should be {1, {2..n}, n+1}.
        wf = fork_join_workflow("f", 5, 0, 100)
        levels = grouped_topological_sets(wf)
        assert len(levels) == 3
        assert levels[0] == ("f-j0",)
        assert set(levels[1]) == {f"f-j{i}" for i in range(1, 6)}
        assert levels[2] == ("f-j6",)

    def test_independent_jobs_share_a_level(self):
        jobs = [deadline_job(f"w-{i}", "w") for i in range(4)]
        wf = Workflow.from_jobs("w", jobs, [], 0, 10)
        levels = grouped_topological_sets(wf)
        assert len(levels) == 1
        assert set(levels[0]) == {"w-0", "w-1", "w-2", "w-3"}

    def test_level_is_longest_path_depth(self):
        # a -> c, b -> c, a -> b: c must sit at depth 2 even though one of
        # its parents is a root.
        jobs = [deadline_job(f"w-{x}", "w") for x in "abc"]
        edges = [("w-a", "w-c"), ("w-b", "w-c"), ("w-a", "w-b")]
        wf = Workflow.from_jobs("w", jobs, edges, 0, 10)
        levels = grouped_topological_sets(wf)
        assert levels == (("w-a",), ("w-b",), ("w-c",))

    def test_every_edge_crosses_levels_forward(self, fork4):
        levels = grouped_topological_sets(fork4)
        for parent, child in fork4.edges:
            assert level_of(levels, parent) < level_of(levels, child)

    def test_every_job_exactly_once(self, fork4):
        levels = grouped_topological_sets(fork4)
        flat = [job for level in levels for job in level]
        assert sorted(flat) == sorted(fork4.job_ids)

    def test_levels_sorted_for_determinism(self, fork4):
        levels = grouped_topological_sets(fork4)
        for level in levels:
            assert list(level) == sorted(level)


class TestLevelOf:
    def test_missing_raises(self):
        with pytest.raises(KeyError):
            level_of((("a",),), "b")
