"""Tests for the incremental re-planning layer (plan cache + warm starts)."""

import numpy as np
import pytest

from repro.core.flowtime import FlowTimePlanner, JobDemand, PlannerConfig
from repro.core.replan import CachedPlan, PlanCache, PlanRequest
from repro.model.cluster import ClusterCapacity
from repro.model.resources import CPU, MEM, ResourceVector
from repro.obs import Observability, use_obs


@pytest.fixture
def cluster() -> ClusterCapacity:
    return ClusterCapacity.uniform(cpu=10, mem=20)


def demand(
    job_id="j", release=0, deadline=10, units=6, cores=1, mem=2, parallel=4
) -> JobDemand:
    return JobDemand(
        job_id=job_id,
        release_slot=release,
        deadline_slot=deadline,
        units=units,
        unit_demand=ResourceVector({CPU: cores, MEM: mem}),
        max_parallel=parallel,
    )


def request(now, demands, capacity, config=None) -> PlanRequest:
    return PlanRequest(
        now_slot=now, demands=tuple(demands), capacity=capacity, config=config
    )


def shifted(d: JobDemand, by: int, job_id: str | None = None) -> JobDemand:
    return JobDemand(
        job_id=job_id or d.job_id,
        release_slot=d.release_slot + by,
        deadline_slot=d.deadline_slot + by,
        units=d.units,
        unit_demand=d.unit_demand,
        max_parallel=d.max_parallel,
    )


class TestFingerprint:
    def test_time_shift_and_job_ids_are_anonymous(self, cluster):
        config = PlannerConfig()
        base = [demand("a", 0, 10), demand("b", 2, 8, units=4)]
        later = [shifted(d, 50, job_id=f"other-{d.job_id}") for d in base]
        first = request(0, base, cluster).fingerprint(config)
        second = request(50, later, cluster).fingerprint(config)
        assert first == second

    def test_demand_order_is_canonical(self, cluster):
        config = PlannerConfig()
        demands = [demand("a", 0, 10), demand("b", 2, 8, units=4)]
        assert request(0, demands, cluster).fingerprint(config) == request(
            0, list(reversed(demands)), cluster
        ).fingerprint(config)

    def test_capacity_change_misses(self, cluster):
        config = PlannerConfig()
        smaller = ClusterCapacity.uniform(cpu=8, mem=20)
        assert request(0, [demand()], cluster).fingerprint(config) != request(
            0, [demand()], smaller
        ).fingerprint(config)

    def test_config_change_misses(self, cluster):
        req = request(0, [demand()], cluster)
        assert req.fingerprint(PlannerConfig()) != req.fingerprint(
            PlannerConfig(slack_slots=0)
        )

    def test_setback_misses(self, cluster):
        # An estimation-error setback raises believed remaining units,
        # which must re-plan rather than reuse the stale allocation.
        config = PlannerConfig()
        assert request(0, [demand(units=6)], cluster).fingerprint(
            config
        ) != request(0, [demand(units=9)], cluster).fingerprint(config)

    def test_past_capacity_overrides_are_dropped(self, cluster):
        config = PlannerConfig()
        half = ResourceVector({CPU: 5, MEM: 10})
        past = ClusterCapacity(base=cluster.base, overrides={3: half})
        future = ClusterCapacity(base=cluster.base, overrides={13: half})
        plain = request(10, [demand(release=10, deadline=20)], cluster).fingerprint(config)
        assert request(
            10, [demand(release=10, deadline=20)], past
        ).fingerprint(config) == plain
        assert request(
            10, [demand(release=10, deadline=20)], future
        ).fingerprint(config) != plain


class TestPlanCache:
    def test_miss_then_hit(self, cluster):
        cache = PlanCache(maxsize=4)
        plan = CachedPlan(
            horizon=4, grant_rows=(np.ones(4, dtype=int),),
            degraded=False, minimax=0.5,
        )
        assert cache.get("k") is None
        cache.put("k", plan)
        assert cache.get("k") is plan
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5
        assert cache.stats()["entries"] == 1.0

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        plans = {
            key: CachedPlan(1, (np.zeros(1, dtype=int),), False, 0.0)
            for key in "abc"
        }
        cache.put("a", plans["a"])
        cache.put("b", plans["b"])
        assert cache.get("a") is plans["a"]  # refresh "a": "b" is now LRU
        cache.put("c", plans["c"])
        assert cache.get("b") is None
        assert cache.get("a") is plans["a"]
        assert len(cache) == 2

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)
        with pytest.raises(ValueError):
            PlannerConfig(plan_cache_size=0)

    def test_clear(self):
        cache = PlanCache()
        cache.put("k", CachedPlan(1, (np.zeros(1, dtype=int),), False, 0.0))
        cache.clear()
        assert len(cache) == 0


class TestPlannerCache:
    def test_recurring_instance_hits_and_matches(self, cluster):
        planner = FlowTimePlanner()
        first = [demand("wf@0-a", 0, 12), demand("wf@0-b", 3, 10, units=4)]
        later = [shifted(d, 40, job_id=d.job_id.replace("@0", "@1"))
                 for d in first]
        cold = planner.plan(request(0, first, cluster))
        warm = planner.plan(request(40, later, cluster))
        assert planner.plan_cache.hits == 1
        assert warm.origin_slot == 40
        for before, after in zip(first, later):
            assert np.array_equal(
                cold.grants[before.job_id], warm.grants[after.job_id]
            )
        assert warm.minimax == cold.minimax
        assert warm.degraded == cold.degraded

    def test_capacity_and_config_changes_miss(self, cluster):
        planner = FlowTimePlanner()
        planner.plan(request(0, [demand()], cluster))
        planner.plan(
            request(0, [demand()], ClusterCapacity.uniform(cpu=8, mem=20))
        )
        planner.plan(
            request(
                0, [demand()], cluster, config=PlannerConfig(slack_slots=0)
            )
        )
        planner.plan(request(0, [demand(units=9)], cluster))
        assert planner.plan_cache.hits == 0
        assert planner.plan_cache.misses == 4

    def test_cache_disabled_never_stores(self, cluster):
        planner = FlowTimePlanner(PlannerConfig(plan_cache=False))
        planner.plan(request(0, [demand()], cluster))
        planner.plan(request(0, [demand()], cluster))
        assert len(planner.plan_cache) == 0
        assert planner.plan_cache.hits == 0

    def test_cache_size_bounds_entries(self, cluster):
        planner = FlowTimePlanner(PlannerConfig(plan_cache_size=2))
        for units in (3, 4, 5, 6):
            planner.plan(request(0, [demand(units=units)], cluster))
        assert len(planner.plan_cache) == 2


class TestWarmStart:
    def test_repeat_solve_is_warm_and_identical(self, cluster):
        obs = Observability()
        planner = FlowTimePlanner(PlannerConfig(plan_cache=False))
        demands = [demand("a", 0, 12), demand("b", 2, 10, units=4)]
        with use_obs(obs):
            cold = planner.plan(request(0, demands, cluster))
            warm = planner.plan(request(0, demands, cluster))
        assert obs.counter("sched.plan.warm").value == 1
        for d in demands:
            assert np.array_equal(cold.grants[d.job_id], warm.grants[d.job_id])
        assert warm.minimax == pytest.approx(cold.minimax)

    def test_changed_mix_falls_back_to_cold_ladder(self, cluster):
        obs = Observability()
        planner = FlowTimePlanner(PlannerConfig(plan_cache=False))
        with use_obs(obs):
            planner.plan(request(0, [demand("a", 0, 12)], cluster))
            second = planner.plan(
                request(
                    0,
                    [demand("a", 0, 12), demand("b", 0, 6, units=8, cores=4)],
                    cluster,
                )
            )
        # The skyline from the first solve cannot cover the heavier mix:
        # the planner must notice and re-run the exact ladder.
        assert obs.counter("lexmin.warm.fallback").value >= 1
        assert second.total_units("b") == 8

    def test_warm_start_disabled_records_no_warm_solves(self, cluster):
        obs = Observability()
        planner = FlowTimePlanner(
            PlannerConfig(plan_cache=False, warm_start=False)
        )
        demands = [demand("a", 0, 12)]
        with use_obs(obs):
            planner.plan(request(0, demands, cluster))
            planner.plan(request(0, demands, cluster))
        assert obs.counter("sched.plan.warm").value == 0


class TestCachedEqualsCold:
    def test_fifty_random_traces_plan_identically(self, cluster):
        """Property: cache hits and warm starts never change the plan."""
        rng = np.random.default_rng(42)
        incremental = FlowTimePlanner()
        for case in range(50):
            n_jobs = int(rng.integers(1, 5))
            now = int(rng.integers(0, 30))
            demands = []
            for j in range(n_jobs):
                release = now + int(rng.integers(0, 4))
                demands.append(
                    JobDemand(
                        job_id=f"case{case}-j{j}",
                        release_slot=release,
                        deadline_slot=release + int(rng.integers(4, 14)),
                        units=int(rng.integers(2, 12)),
                        unit_demand=ResourceVector(
                            {CPU: int(rng.integers(1, 3)),
                             MEM: int(rng.integers(1, 5))}
                        ),
                        max_parallel=int(rng.integers(1, 6)),
                    )
                )
            cold_planner = FlowTimePlanner(
                PlannerConfig(plan_cache=False, warm_start=False)
            )
            cold = cold_planner.plan(request(now, demands, cluster))
            primed = incremental.plan(request(now, demands, cluster))
            hit = incremental.plan(request(now, demands, cluster))
            for d in demands:
                assert np.array_equal(
                    cold.grants[d.job_id], primed.grants[d.job_id]
                ), f"cold vs miss diverged on case {case}"
                assert np.array_equal(
                    cold.grants[d.job_id], hit.grants[d.job_id]
                ), f"cold vs hit diverged on case {case}"
            assert hit.minimax == pytest.approx(cold.minimax)
            assert hit.degraded == cold.degraded
        assert incremental.plan_cache.hits >= 50


class TestEndToEndEquivalence:
    """Cache and warm starts change latency, never scheduling outcomes."""

    @pytest.fixture(scope="class")
    def outcomes(self):
        from repro.analysis.experiments import run_one
        from repro.workloads.arrivals import adhoc_stream
        from repro.workloads.dag_generators import chain_workflow
        from repro.workloads.recurring import RecurringWorkflow
        from repro.workloads.traces import SyntheticTrace

        capacity = ClusterCapacity.uniform(cpu=16, mem=32)
        skeleton = chain_workflow("wf", 3, 0, 15)
        trace = SyntheticTrace(
            workflows=tuple(RecurringWorkflow(skeleton, 20).instances(3)),
            adhoc_jobs=tuple(
                adhoc_stream(rate_per_slot=0.3, horizon_slots=60, seed=7)
            ),
        )
        modes = {
            "cached": {},
            "no-cache": {"plan_cache": False},
            "cold": {"plan_cache": False, "warm_start": False},
        }
        return {
            mode: run_one(
                "FlowTime",
                trace,
                capacity,
                scheduler_kwargs={"planner": opts},
            )
            for mode, opts in modes.items()
        }

    def test_missed_deadlines_match(self, outcomes):
        cold = outcomes["cold"]
        for mode in ("cached", "no-cache"):
            assert outcomes[mode].missed_jobs == cold.missed_jobs
            assert outcomes[mode].missed_workflows == cold.missed_workflows

    def test_adhoc_turnaround_matches(self, outcomes):
        cold = outcomes["cold"]
        for mode in ("cached", "no-cache"):
            assert outcomes[mode].adhoc_turnaround_s == pytest.approx(
                cold.adhoc_turnaround_s
            )

    def test_per_slot_usage_matches(self, outcomes):
        cold = outcomes["cold"].result
        cached = outcomes["cached"].result
        assert cached.n_slots == cold.n_slots
        assert np.array_equal(cached.usage, cold.usage)

    def test_cache_actually_engaged(self, outcomes):
        result = outcomes["cached"].result
        assert result.counter_value("sched.plan.cache.hit") > 0


class TestReplanPathsVerified:
    """The verification subsystem's differential check: cached and
    warm-started runs are validator-clean and identical in outcome
    metrics to a cold batch run (docs/VERIFICATION.md)."""

    @pytest.fixture(scope="class")
    def verified_outcomes(self):
        from repro.analysis.experiments import canonical_windows, run_one
        from repro.simulator.engine import SimulationConfig
        from repro.workloads.traces import generate_trace

        capacity = ClusterCapacity.uniform(cpu=32, mem=64)
        trace = generate_trace(
            n_workflows=2,
            jobs_per_workflow=6,
            n_adhoc=6,
            capacity=capacity,
            workflow_spread_slots=8,
            seed=9,
        )
        windows = canonical_windows(trace, capacity)
        modes = {
            "cold": {"plan_cache": False, "warm_start": False},
            "cached": {},
            "warm-only": {"plan_cache": False},
        }
        outcomes = {
            mode: run_one(
                "FlowTime",
                trace,
                capacity,
                windows=windows,
                config=SimulationConfig(record_execution=True),
                scheduler_kwargs={"planner": opts},
            )
            for mode, opts in modes.items()
        }
        return trace, capacity, windows, outcomes

    def test_every_mode_is_validator_clean(self, verified_outcomes):
        from repro.simulator.metrics import summarize
        from repro.verify import ScheduleValidator

        trace, capacity, windows, outcomes = verified_outcomes
        jobs = [job for wf in trace.workflows for job in wf.jobs]
        jobs += list(trace.adhoc_jobs)
        for mode, outcome in outcomes.items():
            validator = ScheduleValidator(
                capacity, workflows=trace.workflows, jobs=jobs, windows=windows
            )
            report = validator.validate(outcome.result)
            validator.check_reported(
                outcome.result, summarize(outcome.result, windows), report
            )
            assert report.ok, f"{mode}: {report.render()}"

    def test_outcome_metrics_identical_to_cold(self, verified_outcomes):
        from repro.simulator.metrics import summarize

        _trace, _capacity, windows, outcomes = verified_outcomes
        def comparable(outcome):
            summary = summarize(outcome.result, windows)
            return {
                k: v
                for k, v in summary.items()
                if not k.startswith("decide_ms")
            }

        cold = comparable(outcomes["cold"])
        for mode in ("cached", "warm-only"):
            assert comparable(outcomes[mode]) == cold, mode

    def test_per_slot_usage_identical_to_cold(self, verified_outcomes):
        *_rest, outcomes = verified_outcomes
        cold = outcomes["cold"].result
        for mode in ("cached", "warm-only"):
            result = outcomes[mode].result
            assert result.n_slots == cold.n_slots, mode
            assert np.array_equal(result.usage, cold.usage), mode
