"""Tests for node-level cluster modelling and placement."""

import pytest

from repro.model.resources import ResourceVector
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.flowtime_sched import FlowTimeScheduler
from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.nodes import NodeCluster
from repro.workloads.dag_generators import chain_workflow
from tests.conftest import adhoc_job


class TestNodeCluster:
    def test_uniform(self):
        cluster = NodeCluster.uniform(4, cpu=8, mem=16)
        assert len(cluster) == 4
        assert cluster.aggregate() == ResourceVector(cpu=32, mem=64)

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeCluster([])
        with pytest.raises(ValueError):
            NodeCluster.uniform(0, cpu=1)
        with pytest.raises(ValueError):
            NodeCluster([ResourceVector()])

    def test_heterogeneous_aggregate(self):
        cluster = NodeCluster(
            [ResourceVector(cpu=8, mem=16), ResourceVector(cpu=4, mem=32)]
        )
        assert cluster.aggregate() == ResourceVector(cpu=12, mem=48)

    def test_as_capacity(self):
        capacity = NodeCluster.uniform(2, cpu=8, mem=8).as_capacity()
        assert capacity.amount(0, "cpu") == 16


class TestPacking:
    def test_everything_fits(self):
        cluster = NodeCluster.uniform(2, cpu=8, mem=16)
        result = cluster.pack([("a", ResourceVector(cpu=2, mem=4), 4)])
        assert result.placed["a"] == 4
        assert result.total_unplaced == 0

    def test_fragmentation_blocks_large_tasks(self):
        """Aggregate capacity is enough, but no single node can host the
        big task once small ones are spread."""
        cluster = NodeCluster.uniform(2, cpu=4, mem=8)
        # 8 aggregate cores; big task needs 3 cores, small tasks 2 each.
        # 2 small + 1 big = 7 cores fits only because best-fit-decreasing
        # places the big task first and keeps a whole node for the smalls.
        result = cluster.pack(
            [
                ("small", ResourceVector(cpu=2, mem=2), 2),
                ("big", ResourceVector(cpu=3, mem=3), 1),
            ]
        )
        assert result.total_unplaced == 0
        result = cluster.pack(
            [
                ("small", ResourceVector(cpu=2, mem=2), 3),
                ("big", ResourceVector(cpu=3, mem=3), 2),
            ]
        )
        # 2 big (6 cores) + 3 small (6 cores) = 12 > 8: some units drop.
        assert result.total_unplaced >= 1

    def test_best_fit_decreasing_packs_tightly(self):
        # One node of 6 and one of 4 cores; tasks of 4 and 3 cores: BFD
        # puts the 4-core task on the 4-core node? No — best fit by
        # *residual headroom*: 4-core task -> 4-core node (residual 0),
        # 3-core task -> 6-core node.  Both place.
        cluster = NodeCluster(
            [ResourceVector(cpu=6, mem=12), ResourceVector(cpu=4, mem=12)]
        )
        result = cluster.pack(
            [
                ("four", ResourceVector(cpu=4, mem=2), 1),
                ("three", ResourceVector(cpu=3, mem=2), 1),
            ]
        )
        assert result.total_unplaced == 0

    def test_zero_units_ignored(self):
        cluster = NodeCluster.uniform(1, cpu=4, mem=4)
        result = cluster.pack([("a", ResourceVector(cpu=1, mem=1), 0)])
        assert result.placed.get("a", 0) == 0

    def test_node_loads_reported(self):
        cluster = NodeCluster.uniform(2, cpu=4, mem=8)
        result = cluster.pack([("a", ResourceVector(cpu=2, mem=2), 2)])
        total_load = ResourceVector.sum(result.node_loads)
        assert total_load == ResourceVector(cpu=4, mem=4)


class TestEngineIntegration:
    def test_validation_against_aggregate(self, small_cluster):
        # 40-core aggregate capacity but nodes only sum to 16: rejected.
        nodes = NodeCluster.uniform(2, cpu=8, mem=16)
        with pytest.raises(ValueError, match="node cluster"):
            Simulation(
                small_cluster,
                FifoScheduler(),
                adhoc_jobs=[adhoc_job("a", 0)],
                config=SimulationConfig(node_cluster=nodes),
            )

    def test_task_must_fit_some_node(self):
        nodes = NodeCluster.uniform(8, cpu=1, mem=2)
        capacity = nodes.as_capacity()
        job = adhoc_job("a", 0, cores=2, mem=2)  # 2 cores > any node
        with pytest.raises(ValueError, match="any node"):
            Simulation(
                capacity,
                FifoScheduler(),
                adhoc_jobs=[job],
                config=SimulationConfig(node_cluster=nodes),
            )

    def test_fragmentation_recorded_and_work_completes(self):
        # 3-core tasks on 8-core nodes: 2 per node, 2 cores wasted each —
        # the aggregate scheduler over-grants and packing trims it.
        nodes = NodeCluster.uniform(4, cpu=8, mem=16)
        capacity = nodes.as_capacity()
        job = adhoc_job("a", 0, count=12, duration=2, cores=3, mem=2)
        result = Simulation(
            capacity,
            FifoScheduler(),
            adhoc_jobs=[job],
            config=SimulationConfig(node_cluster=nodes),
        ).run()
        assert result.finished
        assert result.fragmentation_waste_units > 0

    def test_flowtime_still_meets_loose_deadlines_on_nodes(self):
        nodes = NodeCluster.uniform(8, cpu=8, mem=16)
        capacity = nodes.as_capacity()
        wf = chain_workflow("w", 3, 0, 200)
        result = Simulation(
            capacity,
            FlowTimeScheduler(),
            workflows=[wf],
            config=SimulationConfig(node_cluster=nodes),
        ).run()
        assert result.finished
        assert result.workflows["w"].met_deadline

    def test_no_nodes_means_no_waste(self, small_cluster):
        job = adhoc_job("a", 0)
        result = Simulation(small_cluster, FifoScheduler(), adhoc_jobs=[job]).run()
        assert result.fragmentation_waste_units == 0
