"""Failure detector + supervisor: detection, restart, journal-driven
failover, zombie fencing, and the cached-liveness router paths.

Everything runs on an injectable clock (no sleeps): the detector's
``live → suspect → dead`` arithmetic is exercised by advancing a fake
monotonic clock, and the fleet uses the frozen realtime-clock config so
workflows never start (migration of a started workflow is illegal by
design).
"""

import random

import pytest

from repro.cluster import (
    DetectorConfig,
    FailureDetector,
    LocalShard,
    Rebalancer,
    ShardRouter,
    Supervisor,
    SupervisorConfig,
    slice_capacity,
)
from repro.model.cluster import ClusterCapacity
from repro.model.workflow import Workflow
from repro.service import ServiceConfig
from repro.verify import check_cross_shard_conservation
from tests.conftest import adhoc_job, deadline_job

N_SHARDS = 3


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_fleet(tmp_path):
    cluster = ClusterCapacity.uniform(cpu=60, mem=120)
    shards = []
    for i, capacity in enumerate(slice_capacity(cluster, N_SHARDS)):
        config = ServiceConfig(
            realtime=True,
            slot_seconds=3600.0,
            journal_path=str(tmp_path / f"shard{i}.jsonl"),
            journal_fsync=False,
        )
        shards.append(LocalShard(f"s{i}", capacity, config).start())
    return shards


def workflow_of(index: int, tenant: str) -> Workflow:
    wid = f"{tenant}/w{index}"
    jobs = [deadline_job(f"{wid}-j{j}", wid) for j in range(2)]
    return Workflow.from_jobs(
        wid, jobs, [(f"{wid}-j0", f"{wid}-j1")], 0, 2000
    )


@pytest.fixture
def fleet(tmp_path):
    shards = make_fleet(tmp_path)
    yield shards
    for shard in shards:
        shard.kill()


def make_stack(shards, *, suspect_after=2, dead_after_s=5.0):
    clock = FakeClock()
    router = ShardRouter(shards)
    detector = FailureDetector(
        shards,
        DetectorConfig(suspect_after=suspect_after, dead_after_s=dead_after_s),
        obs=router.obs,
        clock=clock,
    )
    router.attach_detector(detector)
    return router, detector, clock


# -- detector state machine ------------------------------------------------------


def test_detector_live_suspect_dead_and_back(fleet):
    router, detector, clock = make_stack(fleet)
    assert detector.probe_all() == {"s0": "live", "s1": "live", "s2": "live"}
    fleet[0].kill()
    clock.advance(1.0)
    # One failed probe: not yet suspect (suspect_after=2).
    assert detector.probe(fleet[0]) == "live"
    clock.advance(1.0)
    assert detector.probe(fleet[0]) == "suspect"
    assert detector.is_live("s0")  # suspect still routes
    # The failure streak started at t=1; dead at streak age >= 5.
    clock.advance(3.9)
    assert detector.probe(fleet[0]) == "suspect"
    clock.advance(0.2)
    assert detector.probe(fleet[0]) == "dead"
    assert not detector.is_live("s0")
    clock.advance(2.0)
    assert detector.dead_for("s0") == pytest.approx(2.0)
    # Any successful probe snaps straight back to live.
    fleet[0].restart()
    assert detector.probe(fleet[0]) == "live"
    assert detector.dead_for("s0") == 0.0


def test_detector_caches_queue_depth_and_snapshot(fleet):
    _, detector, _ = make_stack(fleet)
    detector.probe_all()
    assert detector.queue_depth_hint("s1") == 0
    snapshot = detector.snapshot()
    assert set(snapshot) == {"s0", "s1", "s2"}
    assert snapshot["s0"]["state"] == "live"
    assert snapshot["s0"]["probed"] is True


def test_detector_force_state(fleet):
    _, detector, _ = make_stack(fleet)
    detector.force_state("s2", "dead")
    assert detector.state("s2") == "dead"
    assert detector.probed("s2")
    with pytest.raises(ValueError):
        detector.force_state("s2", "zombie")


def test_detector_exports_state_gauges(fleet):
    router, detector, _ = make_stack(fleet)
    detector.probe_all()
    snapshot = router.obs.registry.snapshot()
    assert snapshot["cluster.shard.state.s0"]["value"] == 0.0
    detector.force_state("s0", "dead")
    snapshot = router.obs.registry.snapshot()
    assert snapshot["cluster.shard.state.s0"]["value"] == 2.0


# -- router consumes cached verdicts ---------------------------------------------


def test_router_spill_uses_cached_state_not_inline_probes(fleet):
    router, detector, clock = make_stack(fleet, suspect_after=1, dead_after_s=0.0)
    detector.probe_all()
    fleet[1].kill()
    clock.advance(1.0)
    detector.probe_all()  # s1 -> dead in one probe (dead_after 0)
    assert detector.state("s1") == "dead"

    # An ad-hoc job homed on the dead shard spills to a live one without
    # any inline alive()/queue_depth() probing of the fleet.
    calls = {"n": 0}
    for shard in (fleet[0], fleet[2]):
        original = shard.queue_depth

        def counting_queue_depth(original=original):
            calls["n"] += 1
            return original()

        shard.queue_depth = counting_queue_depth

    job_id = next(
        f"a{i}" for i in range(200) if router.home_shard(f"a{i}") is fleet[1]
    )
    result = router.submit_adhoc(adhoc_job(job_id, 0))
    assert result.accepted
    assert result.shard in ("s0", "s2")
    assert calls["n"] == 0, "spill order probed queue_depth inline"


def test_router_reroutes_workflow_off_dead_home(fleet):
    router, detector, clock = make_stack(fleet, suspect_after=1, dead_after_s=0.0)
    detector.probe_all()
    # Find a tenant whose home is s0, then kill s0.
    tenant = next(
        f"t{i}" for i in range(100) if router.home_shard(f"t{i}/w") is fleet[0]
    )
    fleet[0].kill()
    clock.advance(1.0)
    detector.probe_all()
    assert detector.state("s0") == "dead"

    workflow = workflow_of(0, tenant)
    result = router.submit_workflow(workflow, idempotency_key="k0")
    assert result.accepted
    assert result.shard in ("s1", "s2")
    # Placement pinned: the same wid now resolves to the new owner.
    assert router.shard_for_workflow(workflow.workflow_id).name == result.shard
    registry = router.obs.registry.snapshot()
    assert registry["router.failover.rerouted"]["value"] == 1


def test_router_without_detector_behaves_as_before(fleet):
    router = ShardRouter(fleet)  # no detector attached
    workflow = workflow_of(1, "t1")
    assert router.submit_workflow(workflow).accepted
    fleet[0].kill()
    # Dead shard, no detector: workflow answer is unavailable (no reroute).
    tenant = next(
        f"t{i}" for i in range(100) if router.home_shard(f"t{i}/w") is fleet[0]
    )
    result = router.submit_workflow(workflow_of(2, tenant))
    assert not result.accepted
    assert result.reason == "unavailable"


# -- supervisor: restart + failover + fencing ------------------------------------


def submit_until_on(router, shard, n, prefix="t"):
    """Submit workflows until *n* of them land on *shard*; returns ids."""
    landed = []
    index = 0
    while len(landed) < n:
        tenant = f"{prefix}{index}"
        index += 1
        if router.home_shard(f"{tenant}/w") is not shard:
            continue
        workflow = workflow_of(index, tenant)
        result = router.submit_workflow(
            workflow, idempotency_key=f"key-{workflow.workflow_id}"
        )
        assert result.accepted, result
        landed.append(workflow.workflow_id)
        assert index < 1000
    return landed


def test_supervisor_restarts_dead_local_shard(fleet):
    router, detector, clock = make_stack(fleet, suspect_after=1, dead_after_s=0.0)
    detector.probe_all()
    supervisor = Supervisor(router, detector, SupervisorConfig())
    fleet[2].kill()
    clock.advance(1.0)
    detector.probe_all()
    assert detector.state("s2") == "dead"
    summary = supervisor.cycle()
    assert summary["restarted"] == ["s2"]
    assert fleet[2].alive()
    assert detector.state("s2") == "live"  # re-probed inside the cycle


def test_supervisor_failover_rehomes_committed_workflows(fleet):
    router, detector, clock = make_stack(fleet, suspect_after=1, dead_after_s=0.0)
    detector.probe_all()
    supervisor = Supervisor(
        router,
        detector,
        SupervisorConfig(auto_restart=False, failover_after_s=0.0),
    )
    accepted = submit_until_on(router, fleet[0], 3)
    fleet[0].kill()
    clock.advance(1.0)
    detector.probe_all()
    summary = supervisor.cycle()
    rehomed = summary["failed_over"]["s0"]["rehomed"]
    assert sorted(r["workflow_id"] for r in rehomed) == sorted(accepted)
    for wid in accepted:
        owner = router.shard_for_workflow(wid)
        assert owner is not fleet[0]
        assert owner.owns(wid)
    # Zero accepted-work loss, exactly-once, placement consistent.  The
    # dead shard is excluded from the survey: a crashed process answers
    # nothing (the in-process kill simulation leaves its memory readable,
    # which a real SIGKILL would not).
    owned = {
        name: ids
        for name, ids in router.owned_by_shard().items()
        if detector.is_live(name)
    }
    report = check_cross_shard_conservation(
        accepted,
        owned,
        {
            name: list(entries)
            for name, entries in router.orphans_by_shard().items()
            if detector.is_live(name)
        },
        placement=router.placement_overrides,
    )
    assert report.ok, report.render()


def test_supervisor_failover_is_idempotent(fleet):
    router, detector, clock = make_stack(fleet, suspect_after=1, dead_after_s=0.0)
    detector.probe_all()
    supervisor = Supervisor(
        router,
        detector,
        SupervisorConfig(auto_restart=False, failover_after_s=0.0),
    )
    accepted = submit_until_on(router, fleet[0], 2)
    fleet[0].kill()
    clock.advance(1.0)
    detector.probe_all()
    first = supervisor.fail_over(fleet[0])
    assert len(first["rehomed"]) == 2
    second = supervisor.fail_over(fleet[0])
    assert second["rehomed"] == []
    assert sorted(second["already_owned"]) == sorted(accepted)
    owned = {
        name: ids
        for name, ids in router.owned_by_shard().items()
        if detector.is_live(name)
    }
    report = check_cross_shard_conservation(accepted, owned)
    assert report.ok, report.render()


def test_zombie_return_is_fenced_durably(fleet):
    router, detector, clock = make_stack(fleet, suspect_after=1, dead_after_s=0.0)
    detector.probe_all()
    supervisor = Supervisor(
        router,
        detector,
        SupervisorConfig(auto_restart=False, failover_after_s=0.0),
    )
    accepted = submit_until_on(router, fleet[0], 2)
    fleet[0].kill()
    clock.advance(1.0)
    detector.probe_all()
    supervisor.cycle()  # fails over both workflows

    # The zombie returns: journal replay re-owns everything it had.
    fleet[0].restart()
    assert all(fleet[0].owns(wid) for wid in accepted)
    detector.probe_all()
    summary = supervisor.cycle()
    assert sorted(summary["fenced"]["s0"]) == sorted(accepted)
    assert not any(fleet[0].owns(wid) for wid in accepted)

    # Fencing is journaled on the zombie: another crash + replay must not
    # resurrect the claim.
    fleet[0].kill()
    fleet[0].restart()
    assert not any(fleet[0].owns(wid) for wid in accepted)
    report = check_cross_shard_conservation(
        accepted,
        router.owned_by_shard(),
        {
            name: list(entries)
            for name, entries in router.orphans_by_shard().items()
        },
        placement=router.placement_overrides,
    )
    assert report.ok, report.render()


def test_vetoed_shard_is_left_alone(fleet):
    router, detector, clock = make_stack(fleet, suspect_after=1, dead_after_s=0.0)
    detector.probe_all()
    supervisor = Supervisor(
        router,
        detector,
        SupervisorConfig(auto_restart=False, failover_after_s=0.0),
    )
    submit_until_on(router, fleet[0], 1)
    supervisor.veto("s0")
    fleet[0].kill()
    clock.advance(1.0)
    detector.probe_all()
    summary = supervisor.cycle()
    assert summary["failed_over"] == {} and summary["restarted"] == []
    supervisor.veto("s0", False)
    summary = supervisor.cycle()
    assert "s0" in summary["failed_over"]


def test_failover_epochs_outrank_rebalancer_epochs(fleet):
    router, detector, clock = make_stack(fleet, suspect_after=1, dead_after_s=0.0)
    detector.probe_all()
    rebalancer = Rebalancer(router)
    supervisor = Supervisor(
        router,
        detector,
        SupervisorConfig(auto_restart=False, failover_after_s=0.0),
        rebalancer=rebalancer,
    )
    # Simulate rebalance traffic having consumed epochs.
    rebalancer._epoch = 41
    accepted = submit_until_on(router, fleet[0], 1)
    fleet[0].kill()
    clock.advance(1.0)
    detector.probe_all()
    summary = supervisor.fail_over(fleet[0])
    assert summary["rehomed"][0]["epoch"] > 41
    assert accepted  # sanity


# -- stale-epoch fence at the service layer --------------------------------------


def test_migrate_in_rejects_stale_epoch(fleet):
    router, _, _ = make_stack(fleet)
    accepted = submit_until_on(router, fleet[0], 1)
    wid = accepted[0]
    handoff = fleet[0].migrate_out(wid, dest="s1", epoch=7)
    result = fleet[1].migrate_in(handoff["workflow"], key=handoff["key"], epoch=7)
    assert result.accepted
    fleet[0].confirm(wid, epoch=7)
    # s1 later hands the workflow onward at epoch 9; a zombie replaying
    # the *old* epoch-7 handoff into s1 must bounce off the watermark.
    handoff2 = fleet[1].migrate_out(wid, dest="s2", epoch=9)
    stale = fleet[1].migrate_in(handoff["workflow"], key=handoff["key"], epoch=7)
    assert not stale.accepted
    assert stale.reason == "stale_epoch"
    # The epoch-9 handoff itself still lands and settles normally.
    fresh = fleet[2].migrate_in(handoff2["workflow"], key=handoff2["key"], epoch=9)
    assert fresh.accepted
    fleet[1].confirm(wid, epoch=9)


def test_stale_epoch_watermark_survives_restart(fleet):
    router, _, _ = make_stack(fleet)
    accepted = submit_until_on(router, fleet[0], 1)
    wid = accepted[0]
    handoff = fleet[0].migrate_out(wid, dest="s1", epoch=12)
    fleet[1].migrate_in(handoff["workflow"], key=handoff["key"], epoch=12)
    fleet[0].confirm(wid, epoch=12)
    fleet[0].kill()
    fleet[0].restart()  # journal replay must rebuild the watermark
    stale = fleet[0].migrate_in(handoff["workflow"], key=handoff["key"], epoch=4)
    assert not stale.accepted
    assert stale.reason == "stale_epoch"


def test_placement_epoch_ignores_stale_writes(fleet):
    router, _, _ = make_stack(fleet)
    router.record_placement("t9/w", "s1", epoch=5)
    router.record_placement("t9/w", "s2", epoch=3)  # stale: ignored
    assert router.placement_overrides["t9/w"] == "s1"
    router.record_placement("t9/w", "s2", epoch=6)
    assert router.placement_overrides["t9/w"] == "s2"


# -- detector-driven reconcile loop ----------------------------------------------


def test_periodic_reconcile_settles_orphans(fleet):
    router, detector, _ = make_stack(fleet)
    detector.probe_all()
    accepted = submit_until_on(router, fleet[0], 1)
    wid = accepted[0]
    # Interrupted migration: tombstone only.
    fleet[0].migrate_out(wid, dest="s1", epoch=1)
    assert wid in fleet[0].orphans()
    router.start_reconcile_loop(0.05)
    try:
        deadline = 100
        import time as _time

        while wid in fleet[0].orphans() and deadline:
            _time.sleep(0.02)
            deadline -= 1
        assert wid not in fleet[0].orphans(), "loop never settled the orphan"
        assert fleet[0].owns(wid)
    finally:
        router.stop_reconcile_loop()


def test_supervisor_snapshot_shape(fleet):
    router, detector, _ = make_stack(fleet)
    supervisor = Supervisor(router, detector)
    snapshot = supervisor.snapshot()
    assert snapshot == {"vetoed": [], "failed_over": {}, "epoch": 0}


def test_random_kill_failover_conservation(fleet):
    """Randomized mini-experiment: submit, kill a random shard, fail over,
    zombie-return, fence — conservation must hold throughout."""
    rng = random.Random(99)
    router, detector, clock = make_stack(fleet, suspect_after=1, dead_after_s=0.0)
    detector.probe_all()
    supervisor = Supervisor(
        router,
        detector,
        SupervisorConfig(auto_restart=False, failover_after_s=0.0),
    )
    accepted = []
    for i in range(12):
        workflow = workflow_of(i, f"t{rng.randrange(8)}")
        result = router.submit_workflow(
            workflow, idempotency_key=f"key-{workflow.workflow_id}"
        )
        if result.accepted:
            accepted.append(workflow.workflow_id)
    victim = rng.choice(fleet)
    victim.kill()
    clock.advance(1.0)
    detector.probe_all()
    supervisor.cycle()
    victim.restart()
    detector.probe_all()
    supervisor.cycle()  # fence the zombie
    report = check_cross_shard_conservation(
        accepted,
        router.owned_by_shard(),
        {
            name: list(entries)
            for name, entries in router.orphans_by_shard().items()
        },
        placement=router.placement_overrides,
    )
    assert report.ok, report.render()
    assert accepted
