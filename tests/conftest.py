"""Shared fixtures: small clusters, canonical workflows, quick traces."""

from __future__ import annotations

import pytest

from repro.model.cluster import ClusterCapacity
from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.model.workflow import Workflow


@pytest.fixture
def small_cluster() -> ClusterCapacity:
    """A 40-core / 80-GB cluster: big enough to schedule, small enough to
    contend."""
    return ClusterCapacity.uniform(cpu=40, mem=80)


@pytest.fixture
def tiny_cluster() -> ClusterCapacity:
    return ClusterCapacity.uniform(cpu=4, mem=8)


def spec(count: int = 4, duration: int = 2, cores: int = 2, mem: int = 4) -> TaskSpec:
    return TaskSpec(
        count=count,
        duration_slots=duration,
        demand=ResourceVector({CPU: cores, MEM: mem}),
    )


def deadline_job(job_id: str, workflow_id: str, **kwargs) -> Job:
    return Job(
        job_id=job_id,
        tasks=spec(**kwargs),
        kind=JobKind.DEADLINE,
        workflow_id=workflow_id,
    )


def adhoc_job(job_id: str, arrival: int, **kwargs) -> Job:
    return Job(
        job_id=job_id,
        tasks=spec(**kwargs),
        kind=JobKind.ADHOC,
        arrival_slot=arrival,
    )


@pytest.fixture
def chain3() -> Workflow:
    """j0 -> j1 -> j2, window of 60 slots."""
    jobs = [deadline_job(f"c-j{i}", "c") for i in range(3)]
    return Workflow.from_jobs(
        "c", jobs, [("c-j0", "c-j1"), ("c-j1", "c-j2")], 0, 60
    )


@pytest.fixture
def fork4() -> Workflow:
    """The Fig. 3 shape with 4 parallel middles: j0 -> {j1..j4} -> j5."""
    jobs = [deadline_job(f"f-j{i}", "f") for i in range(6)]
    edges = [("f-j0", f"f-j{i}") for i in range(1, 5)] + [
        (f"f-j{i}", "f-j5") for i in range(1, 5)
    ]
    return Workflow.from_jobs("f", jobs, edges, 0, 80)
