"""Remaining coverage gaps: reporting edges, presolve-on-scheduling-LP,
engine ordering details, registry kwargs plumbing."""

import numpy as np
import pytest

from repro.analysis.experiments import run_comparison
from repro.analysis.reporting import turnaround_ratios
from repro.core.lp_formulation import ScheduleEntry, build_schedule_problem
from repro.lp.presolve import presolve
from repro.lp.problem import LinearProgram
from repro.model.resources import CPU, MEM, ResourceVector
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.registry import make_scheduler
from repro.simulator.engine import Simulation
from repro.workloads.dag_generators import chain_workflow
from repro.workloads.traces import generate_trace
from tests.conftest import adhoc_job


class TestPresolveOnSchedulingLP:
    def test_nearly_done_job_fixes_variables(self):
        """A job with 1 remaining unit and parallelism 1 in a 1-slot window
        has its variable squeezed to a point the presolve can exploit."""
        entries = [
            ScheduleEntry(
                job_id="tail",
                release=0,
                deadline=1,
                units=1,
                unit_demand=ResourceVector({CPU: 1, MEM: 1}),
                max_parallel=1,
            ),
            ScheduleEntry(
                job_id="big",
                release=0,
                deadline=4,
                units=6,
                unit_demand=ResourceVector({CPU: 1, MEM: 1}),
                max_parallel=2,
            ),
        ]
        caps = np.zeros((4, 2))
        caps[:, 0], caps[:, 1] = 4, 8
        problem = build_schedule_problem(entries, caps, (CPU, MEM))
        # min total load subject to eq demands and capacity rows.
        cap_rows = np.array(
            [problem.cap_of_cell(k) for k in range(len(problem.util_cells))]
        )
        lp = LinearProgram(
            c=np.ones(problem.n_vars),
            a_ub=problem.a_util,
            b_ub=cap_rows,
            a_eq=problem.a_eq,
            b_eq=problem.b_eq,
            lb=np.zeros(problem.n_vars),
            ub=problem.var_ub,
        )
        reduced, restorer = presolve(lp)
        assert reduced.n_variables <= lp.n_variables
        from repro.lp.presolve import solve_with_presolve
        from repro.lp.solver import solve_lp

        assert solve_with_presolve(lp).objective == pytest.approx(
            solve_lp(lp).objective, abs=1e-6
        )


class TestReportingEdges:
    def test_zero_baseline_rejected(self, small_cluster):
        trace = generate_trace(
            n_workflows=1, jobs_per_workflow=2, n_adhoc=0,
            capacity=small_cluster, seed=1,
        )
        comparison = run_comparison(trace, small_cluster, ["FlowTime"])
        with pytest.raises(ValueError):
            turnaround_ratios(comparison)  # no ad-hoc jobs -> zero baseline


class TestRegistryKwargs:
    def test_planner_kwargs_forwarded(self):
        scheduler = make_scheduler(
            "FlowTime", planner={"slack_slots": 2, "backend": "simplex"}
        )
        assert scheduler.planner.config.slack_slots == 2
        assert scheduler.planner.config.backend == "simplex"

    def test_scheduler_kwargs_forwarded(self):
        scheduler = make_scheduler("FlowTime", work_conserving=False)
        assert scheduler.work_conserving is False

    def test_cora_kwargs(self):
        scheduler = make_scheduler("CORA", adhoc_soft_deadline_slots=10)
        assert scheduler.adhoc_soft_deadline_slots == 10

    def test_tetrisched_kwargs(self):
        scheduler = make_scheduler("TetriSched", plan_ahead_slots=32)
        assert scheduler.plan_ahead_slots == 32


class TestEngineOrdering:
    def test_workflow_and_adhoc_same_slot(self, small_cluster):
        """Arrivals in the same slot are all visible to the scheduler."""
        seen = {}

        class Spy(FifoScheduler):
            def assign(self, view):
                seen.setdefault(view.slot, (len(view.deadline_jobs), len(view.adhoc_jobs)))
                return super().assign(view)

        wf = chain_workflow("w", 1, 2, 60)
        job = adhoc_job("a", 2)
        Simulation(small_cluster, Spy(), workflows=[wf], adhoc_jobs=[job]).run()
        assert seen[2] == (1, 1)

    def test_simplex_backend_end_to_end(self, small_cluster):
        """FlowTime driven entirely by the from-scratch simplex backend."""
        from repro.core.flowtime import PlannerConfig
        from repro.schedulers.flowtime_sched import FlowTimeScheduler
        from repro.simulator.metrics import missed_workflows

        wf = chain_workflow("w", 2, 0, 80)
        scheduler = FlowTimeScheduler(
            PlannerConfig(backend="simplex", max_lexmin_rounds=1)
        )
        result = Simulation(small_cluster, scheduler, workflows=[wf]).run()
        assert result.finished
        assert missed_workflows(result) == []
