"""Tests for the JSON-over-HTTP frontend and client.

Each test binds an ephemeral port (port=0), drives the server through the
real socket with :class:`~repro.service.client.HttpServiceClient`, and
shuts down in a fixture — no fixed ports, no leaked threads.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.model.cluster import ClusterCapacity
from repro.service import (
    HttpServiceClient,
    SchedulerService,
    ServiceConfig,
    serve_http,
)
from tests.conftest import adhoc_job, deadline_job
from repro.model.workflow import Workflow


def chain(wid: str, n: int = 3, start: int = 0, deadline: int = 60) -> Workflow:
    jobs = [deadline_job(f"{wid}-j{i}", wid) for i in range(n)]
    edges = [(f"{wid}-j{i}", f"{wid}-j{i+1}") for i in range(n - 1)]
    return Workflow.from_jobs(wid, jobs, edges, start, deadline)


@pytest.fixture
def served():
    cluster = ClusterCapacity.uniform(cpu=40, mem=80)
    service = SchedulerService(
        cluster, ServiceConfig(adhoc_queue_limit=2)
    ).start()
    server = serve_http(service)
    client = HttpServiceClient(server.url, timeout=30)
    yield service, server, client
    server.shutdown()
    if service.running:
        service.drain(timeout=60)


def raw_request(url, method="GET", payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if data:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read() or b"{}")


class TestEndpoints:
    def test_submit_workflow_and_job(self, served):
        _, _, client = served
        result = client.submit_workflow(chain("w"))
        assert result.accepted and result.reason == "admitted"
        result = client.submit_adhoc(adhoc_job("a", arrival=0))
        assert result.accepted and result.reason == "queued"

    def test_status_endpoint(self, served):
        _, _, client = served
        client.submit_workflow(chain("w"))
        status = client.status()
        assert status.running and not status.draining
        assert status.accepted_workflows == 1
        assert status.scheduler == "FlowTime"

    def test_plan_endpoint(self, served):
        service, _, client = served
        client.submit_workflow(chain("w"))
        service.drain(timeout=60)
        plan = client.plan()
        assert set(plan) >= {"origin_slot", "horizon", "jobs"}

    def test_metrics_endpoint(self, served):
        _, _, client = served
        client.submit_workflow(chain("w"))
        metrics = client.metrics()
        assert metrics["service.submit.workflow.accepted"]["value"] == 1.0

    def test_metrics_json_is_strict(self, served):
        # Never-set gauges / empty histograms hold NaN internally; the
        # endpoint must serialize them as null, not bare NaN (which
        # json.loads tolerates but strict parsers reject).
        _, server, client = served
        client.submit_workflow(chain("w"))
        with urllib.request.urlopen(server.url + "/metrics", timeout=30) as r:
            raw = r.read().decode()
        assert "NaN" not in raw
        json.loads(raw, parse_constant=lambda token: pytest.fail(
            f"non-strict JSON token {token!r} in /metrics"
        ))

    def test_metrics_prometheus_endpoint(self, served):
        from repro.obs import parse_prometheus

        _, server, client = served
        client.submit_workflow(chain("w"))
        with urllib.request.urlopen(
            server.url + "/metrics?format=prometheus", timeout=30
        ) as r:
            assert r.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            text = r.read().decode()
        families = parse_prometheus(text)  # strict: raises on violations
        assert "repro_service_submit_workflow_accepted_total" in families

    def test_slo_endpoint(self, served):
        _, _, client = served
        client.submit_workflow(chain("w"))
        slo = client.slo()
        assert set(slo) == {"config", "deadline", "decide_latency", "healthy"}
        assert slo["deadline"]["objective"] == 0.99

    def test_unknown_route_404(self, served):
        _, server, _ = served
        status, body = raw_request(server.url + "/nope")
        assert status == 404 and "error" in body


class TestRejectionStatusCodes:
    def test_duplicate_workflow_400(self, served):
        _, server, client = served
        client.submit_workflow(chain("w"))
        # Same id again through the raw socket: HTTP 400, body still a
        # fully-formed SubmitResult the client can parse.
        from repro.workloads.traces import workflow_to_dict

        status, body = raw_request(
            server.url + "/workflows", "POST", workflow_to_dict(chain("w"))
        )
        assert status == 400
        assert body["accepted"] is False and body["reason"] == "invalid"
        # The client surfaces it as a decision, not an exception.
        result = client.submit_workflow(chain("w"))
        assert not result.accepted and result.reason == "invalid"

    def test_queue_full_429(self):
        # Needs a paced clock: with virtual time the jobs would complete
        # between HTTP round trips and the queue would never fill.  A
        # realtime service with a long slot keeps all submissions live.
        from repro.workloads.traces import job_to_dict

        cluster = ClusterCapacity.uniform(cpu=40, mem=80)
        service = SchedulerService(
            cluster,
            ServiceConfig(adhoc_queue_limit=2, realtime=True, slot_seconds=300.0),
        ).start()
        server = serve_http(service)
        try:
            codes = []
            for i in range(4):  # limit is 2
                status, body = raw_request(
                    server.url + "/jobs",
                    "POST",
                    job_to_dict(adhoc_job(f"a{i}", arrival=0)),
                )
                codes.append((status, body["reason"]))
            assert codes.count((200, "queued")) == 2
            assert codes.count((429, "queue_full")) == 2
        finally:
            server.shutdown()
            result = service.drain(timeout=60)
        # Drain ignores pacing: the two accepted jobs still complete.
        assert result.finished

    def test_malformed_body_400(self, served):
        _, server, _ = served
        status, body = raw_request(server.url + "/workflows", "POST", {"nope": 1})
        assert status == 400 and "error" in body

    def test_non_json_body_400(self, served):
        _, server, _ = served
        request = urllib.request.Request(
            server.url + "/workflows", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400


class TestEndToEnd:
    def test_submit_run_drain_over_http(self, served):
        service, server, client = served
        assert client.submit_workflow(chain("w", deadline=80)).accepted
        assert client.submit_adhoc(adhoc_job("a", arrival=0)).accepted
        server.shutdown()
        result = service.drain(timeout=60)
        assert result.finished
        assert result.workflows["w"].met_deadline
        assert result.jobs["a"].completion_slot is not None

    def test_wire_format_round_trips_trace_entries(self, served):
        # Anything save_trace wrote can be replayed against a live server.
        from repro.workloads.traces import workflow_from_dict, workflow_to_dict

        _, _, client = served
        wire = json.loads(json.dumps(workflow_to_dict(chain("w"))))
        result = client.submit_workflow(workflow_from_dict(wire))
        assert result.accepted
