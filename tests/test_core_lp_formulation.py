"""Tests for the scheduling-LP builder, including Lemma 2 (TU structure)."""

import numpy as np
import pytest

from repro.core.lp_formulation import ScheduleEntry, build_schedule_problem
from repro.lp.unimodular import (
    has_consecutive_ones_columns,
    is_totally_unimodular,
)
from repro.model.resources import CPU, MEM, ResourceVector

RES = (CPU, MEM)


def entry(job_id="j", release=0, deadline=4, units=6, cores=2, mem=4, parallel=3):
    return ScheduleEntry(
        job_id=job_id,
        release=release,
        deadline=deadline,
        units=units,
        unit_demand=ResourceVector({CPU: cores, MEM: mem}),
        max_parallel=parallel,
    )


def caps(horizon=6, cpu=20, mem=40):
    arr = np.zeros((horizon, 2))
    arr[:, 0] = cpu
    arr[:, 1] = mem
    return arr


class TestScheduleEntry:
    def test_validation(self):
        with pytest.raises(ValueError):
            entry(release=-1)
        with pytest.raises(ValueError):
            entry(release=3, deadline=3)
        with pytest.raises(ValueError):
            entry(units=0)
        with pytest.raises(ValueError):
            entry(parallel=0)

    def test_total_demand_is_sri(self):
        e = entry(units=6, cores=2)
        assert e.total_demand(CPU) == 12


class TestCoupledMode:
    def test_one_variable_per_window_slot(self):
        problem = build_schedule_problem([entry(release=1, deadline=4)], caps(), RES)
        assert problem.n_vars == 3
        assert [m[1] for m in problem.var_meta] == [1, 2, 3]

    def test_demand_equality_per_job(self):
        problem = build_schedule_problem(
            [entry(units=6), entry(job_id="k", units=4)], caps(), RES
        )
        assert problem.a_eq.shape[0] == 2
        assert list(problem.b_eq) == [6.0, 4.0]

    def test_util_rows_couple_resources(self):
        problem = build_schedule_problem([entry(cores=2, mem=4)], caps(), RES)
        # Each (slot, r) row carries the per-task demand as coefficient.
        dense = problem.a_util.toarray()
        cells = problem.util_cells
        cpu_rows = [k for k, (t, r) in enumerate(cells) if r == 0]
        mem_rows = [k for k, (t, r) in enumerate(cells) if r == 1]
        assert all(set(dense[k][dense[k] != 0]) == {2.0} for k in cpu_rows)
        assert all(set(dense[k][dense[k] != 0]) == {4.0} for k in mem_rows)

    def test_per_slot_caps_bound_variables(self):
        problem = build_schedule_problem(
            [entry(units=10, parallel=3)], caps(), RES, per_slot_caps=True
        )
        assert np.all(problem.var_ub == 3.0)

    def test_caps_disabled(self):
        problem = build_schedule_problem(
            [entry()], caps(), RES, per_slot_caps=False
        )
        assert np.all(np.isinf(problem.var_ub))

    def test_deadline_beyond_horizon_rejected(self):
        with pytest.raises(ValueError):
            build_schedule_problem([entry(deadline=10)], caps(horizon=4), RES)

    def test_empty_entries_rejected(self):
        with pytest.raises(ValueError):
            build_schedule_problem([], caps(), RES)

    def test_utilisation_helper(self):
        problem = build_schedule_problem([entry(release=0, deadline=2, units=2)], caps(), RES)
        x = np.array([2.0, 0.0])  # 2 units in slot 0
        util = problem.utilisation(x)
        # slot 0: cpu 4/20, mem 8/40 -> both 0.2; other cells 0.
        assert util.max() == pytest.approx(0.2)


class TestPaperMode:
    def test_one_equality_per_job_resource(self):
        problem = build_schedule_problem(
            [entry(units=6, cores=2, mem=4)], caps(), RES, mode="paper"
        )
        assert problem.a_eq.shape[0] == 2  # (job, cpu) and (job, mem)
        assert sorted(problem.b_eq) == [12.0, 24.0]  # s_i^cpu, s_i^mem

    def test_equality_block_is_interval_matrix(self):
        entries = [
            entry(job_id="a", release=0, deadline=3),
            entry(job_id="b", release=1, deadline=5),
        ]
        problem = build_schedule_problem(entries, caps(), RES, mode="paper")
        assert has_consecutive_ones_columns(problem.a_eq.toarray())

    def test_full_constraint_matrix_is_tu_small(self):
        """Lemma 2 verified exactly on a small instance: demand equalities
        stacked with capacity rows form a totally unimodular matrix."""
        entries = [entry(job_id="a", release=0, deadline=2, units=2)]
        problem = build_schedule_problem(entries, caps(horizon=2), RES, mode="paper")
        full = np.vstack([problem.a_eq.toarray(), problem.a_util.toarray()])
        assert is_totally_unimodular(full)

    def test_paper_mode_coefficients_are_unit(self):
        problem = build_schedule_problem([entry()], caps(), RES, mode="paper")
        data = problem.a_util.toarray()
        assert set(np.unique(data)) <= {0.0, 1.0}

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            build_schedule_problem([entry()], caps(), RES, mode="magic")
