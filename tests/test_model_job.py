"""Unit tests for TaskSpec and Job."""

import pytest

from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector


def make_spec(count=6, duration=3, cores=2, mem=4) -> TaskSpec:
    return TaskSpec(
        count=count,
        duration_slots=duration,
        demand=ResourceVector({CPU: cores, MEM: mem}),
    )


class TestTaskSpec:
    def test_total_task_slots(self):
        assert make_spec(count=6, duration=3).total_task_slots == 18

    def test_total_demand_is_papers_sri(self):
        spec = make_spec(count=6, duration=3, cores=2)
        assert spec.total_demand(CPU) == 36  # 6 tasks x 3 slots x 2 cores

    def test_per_slot_cap(self):
        assert make_spec(count=6, cores=2).per_slot_cap(CPU) == 12

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            make_spec(count=0)

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            make_spec(duration=0)

    def test_rejects_zero_demand(self):
        with pytest.raises(ValueError):
            TaskSpec(count=1, duration_slots=1, demand=ResourceVector())


class TestJob:
    def test_defaults(self):
        job = Job(job_id="j", tasks=make_spec())
        assert job.kind is JobKind.DEADLINE
        assert not job.is_adhoc

    def test_rejects_empty_id(self):
        with pytest.raises(ValueError):
            Job(job_id="", tasks=make_spec())

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError):
            Job(job_id="j", tasks=make_spec(), arrival_slot=-1)

    def test_adhoc_cannot_have_workflow(self):
        with pytest.raises(ValueError):
            Job(
                job_id="j",
                tasks=make_spec(),
                kind=JobKind.ADHOC,
                workflow_id="w",
            )

    def test_execution_tasks_defaults_to_estimate(self):
        job = Job(job_id="j", tasks=make_spec())
        assert job.execution_tasks is job.tasks

    def test_execution_tasks_uses_truth_when_present(self):
        true = make_spec(duration=5)
        job = Job(job_id="j", tasks=make_spec(duration=3), true_tasks=true)
        assert job.execution_tasks is true
        assert job.tasks.duration_slots == 3  # estimate untouched


class TestMinRuntime:
    def test_unbounded_is_one_task_duration(self):
        job = Job(job_id="j", tasks=make_spec(count=100, duration=3))
        assert job.min_runtime_slots() == 3

    def test_cluster_aware_adds_waves(self):
        # 6 tasks of 2 cores on a 4-core cluster: 2 at a time -> 3 waves.
        job = Job(job_id="j", tasks=make_spec(count=6, duration=3, cores=2, mem=1))
        capacity = ResourceVector(cpu=4, mem=100)
        assert job.min_runtime_slots(capacity) == 9

    def test_cluster_aware_caps_at_task_count(self):
        job = Job(job_id="j", tasks=make_spec(count=2, duration=3, cores=1, mem=1))
        capacity = ResourceVector(cpu=100, mem=100)
        assert job.min_runtime_slots(capacity) == 3

    def test_task_not_fitting_raises(self):
        job = Job(job_id="j", tasks=make_spec(cores=8, mem=1))
        with pytest.raises(ValueError):
            job.min_runtime_slots(ResourceVector(cpu=4, mem=100))


class TestDemandHelpers:
    def test_demand_vector(self):
        job = Job(job_id="j", tasks=make_spec(count=2, duration=2, cores=3, mem=5))
        assert job.demand_vector() == ResourceVector(cpu=12, mem=20)

    def test_normalized_demand_sums_over_resources(self):
        job = Job(job_id="j", tasks=make_spec(count=2, duration=2, cores=5, mem=10))
        capacity = ResourceVector(cpu=10, mem=100)
        # cpu: 4*5/10 = 2.0 ; mem: 4*10/100 = 0.4
        assert job.normalized_demand(capacity) == pytest.approx(2.4)

    def test_normalized_demand_needs_positive_capacity(self):
        job = Job(job_id="j", tasks=make_spec())
        with pytest.raises(ValueError):
            job.normalized_demand(ResourceVector(cpu=10))  # mem capacity 0
