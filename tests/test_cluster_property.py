"""Property test: no interleaving of submit / migrate / kill+replay ever
loses or duplicates an accepted workflow.

Each case drives a real 3-shard fleet (frozen realtime clock, journaled)
through a seeded-random schedule of operations:

* submit a tenant workflow through the router;
* run a migration *partially* — stop after the tombstone, after the
  handoff landed, after an explicit restore, or run it to confirmation;
* kill a random shard and restart it on its journal (crash + replay);
* run a router reconcile pass at a random point.

After the dust settles (all shards restarted, reconcile run to a fixed
point), the cross-shard conservation check must hold: every workflow
whose submission was answered *accepted* is owned by exactly one shard,
and no migration orphans remain.  This is the sharding subsystem's core
safety claim (docs/SHARDING.md) — the point of the test is that it holds
on *every* interleaving, including the ones the happy-path tests never
compose.
"""

import random

import pytest

from repro.cluster import LocalShard, ShardRouter, slice_capacity
from repro.model.cluster import ClusterCapacity
from repro.model.workflow import Workflow
from repro.service import ServiceConfig
from repro.verify import check_cross_shard_conservation
from tests.conftest import deadline_job

N_SHARDS = 3
N_OPS = 30

_OP_ERRORS = (ValueError, RuntimeError, TimeoutError, OSError)


def make_fleet(tmp_path):
    cluster = ClusterCapacity.uniform(cpu=60, mem=120)
    shards = []
    for i, capacity in enumerate(slice_capacity(cluster, N_SHARDS)):
        config = ServiceConfig(
            realtime=True,
            slot_seconds=3600.0,
            journal_path=str(tmp_path / f"shard{i}.jsonl"),
            journal_fsync=False,
        )
        shards.append(LocalShard(f"s{i}", capacity, config).start())
    return shards


def workflow_of(index: int, tenant: int) -> Workflow:
    wid = f"t{tenant}/w{index}"
    jobs = [deadline_job(f"{wid}-j{j}", wid) for j in range(2)]
    return Workflow.from_jobs(
        wid, jobs, [(f"{wid}-j0", f"{wid}-j1")], 0, 2000
    )


class Driver:
    """One randomized schedule over a fleet; tracks the accepted ledger."""

    def __init__(self, shards, rng: random.Random):
        self.shards = shards
        self.router = ShardRouter(shards)
        self.rng = rng
        self.accepted: list[str] = []
        self.epoch = 0
        self.next_index = 0

    # -- operations (each must be safe to fail) ------------------------------

    def op_submit(self) -> None:
        workflow = workflow_of(self.next_index, self.rng.randrange(4))
        self.next_index += 1
        result = self.router.submit_workflow(
            workflow, idempotency_key=f"key-{workflow.workflow_id}"
        )
        if result.accepted:
            self.accepted.append(workflow.workflow_id)

    def _pick_move(self):
        source = self.rng.choice(self.shards)
        owned = []
        try:
            owned = source.workflow_ids()
        except _OP_ERRORS:
            return None
        if not owned:
            return None
        wid = self.rng.choice(sorted(owned))
        dest = self.rng.choice([s for s in self.shards if s is not source])
        return wid, source, dest

    def op_migrate(self) -> None:
        move = self._pick_move()
        if move is None:
            return
        wid, source, dest = move
        self.epoch += 1
        try:
            handoff = source.migrate_out(wid, dest=dest.name, epoch=self.epoch)
        except _OP_ERRORS:
            return
        # How far does this migration get before "something happens"?
        stage = self.rng.choice(
            ("tombstone_only", "landed", "confirmed", "restored")
        )
        if stage == "tombstone_only":
            return  # orphan; reconcile must settle it
        if stage == "restored":
            try:
                source.restore(handoff["workflow"], key=handoff["key"])
                self.router.record_placement(wid, source.name)
            except _OP_ERRORS:
                pass
            return
        try:
            result = dest.migrate_in(
                handoff["workflow"], key=handoff["key"], epoch=self.epoch
            )
        except _OP_ERRORS:
            return  # landed-or-not unknown: exactly what reconcile is for
        if not result.accepted:
            try:
                source.restore(handoff["workflow"], key=handoff["key"])
            except _OP_ERRORS:
                pass
            return
        self.router.record_placement(wid, dest.name)
        if stage == "confirmed":
            try:
                source.confirm(wid, epoch=self.epoch)
            except _OP_ERRORS:
                pass

    def op_kill_replay(self) -> None:
        shard = self.rng.choice(self.shards)
        shard.kill()
        if self.rng.random() < 0.8:
            shard.restart()  # else left dead until the final settle

    def op_reconcile(self) -> None:
        self.router.reconcile()

    def run(self, n_ops: int) -> None:
        operations = (
            self.op_submit,
            self.op_submit,  # submissions twice as likely as the rest
            self.op_migrate,
            self.op_kill_replay,
            self.op_reconcile,
        )
        for _ in range(n_ops):
            self.rng.choice(operations)()

    def settle(self) -> None:
        """Restart every dead shard, reconcile to a fixed point."""
        for shard in self.shards:
            if not shard.alive():
                shard.restart()
        for _ in range(N_SHARDS + 1):
            summary = self.router.reconcile()
            if summary["held"] == 0 and not any(
                self.router.orphans_by_shard().values()
            ):
                return
        raise AssertionError("reconcile did not reach a fixed point")


@pytest.mark.parametrize("seed", [7, 23, 1789])
def test_interleavings_conserve_accepted_workflows(tmp_path, seed):
    shards = make_fleet(tmp_path)
    try:
        driver = Driver(shards, random.Random(seed))
        driver.run(N_OPS)
        driver.settle()
        orphans = {
            name: list(entries)
            for name, entries in driver.router.orphans_by_shard().items()
        }
        report = check_cross_shard_conservation(
            driver.accepted, driver.router.owned_by_shard(), orphans
        )
        assert report.ok, report.render()
        # Something real must have happened: the schedule accepts work.
        assert driver.accepted
    finally:
        for shard in shards:
            shard.kill()
