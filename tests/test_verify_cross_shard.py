"""Unit tests for the cross-shard conservation check."""

from repro.verify import VerificationReport, check_cross_shard_conservation


class TestCrossShardConservation:
    def test_clean_fleet_passes(self):
        report = check_cross_shard_conservation(
            ["w1", "w2", "w3"],
            {"s0": ["w1", "w3"], "s1": ["w2"]},
            {"s0": [], "s1": []},
        )
        assert report.ok
        assert report.checks == 3

    def test_lost_workflow_detected(self):
        report = check_cross_shard_conservation(
            ["w1", "w2"], {"s0": ["w1"], "s1": []}, {"s0": [], "s1": []}
        )
        assert not report.ok
        violation = report.violations[0]
        assert violation.check == "cross_shard.no_loss"
        assert violation.subject == "w2"

    def test_duplicated_workflow_detected(self):
        report = check_cross_shard_conservation(
            ["w1"], {"s0": ["w1"], "s1": ["w1"]}, {"s0": [], "s1": []}
        )
        assert not report.ok
        violation = report.violations[0]
        assert violation.check == "cross_shard.no_duplicates"
        assert violation.subject == "w1"
        assert "s0" in violation.message and "s1" in violation.message

    def test_orphan_counts_as_held_not_lost(self):
        report = check_cross_shard_conservation(
            ["w1"], {"s0": [], "s1": []}, {"s0": ["w1"], "s1": []}
        )
        checks = {v.check for v in report.violations}
        assert "cross_shard.no_loss" not in checks
        assert "cross_shard.orphans_settled" in checks

    def test_orphan_check_skipped_without_orphan_data(self):
        report = check_cross_shard_conservation(
            ["w1"], {"s0": ["w1"]}, orphans_by_shard=None
        )
        assert report.ok
        assert report.checks == 2  # no orphans_settled check

    def test_merges_into_existing_report(self):
        existing = VerificationReport()
        existing.check("unrelated", True)
        report = check_cross_shard_conservation(
            ["w1"], {"s0": ["w1"]}, {"s0": []}, report=existing
        )
        assert report is existing
        assert report.checks == 4

    def test_unaccepted_owned_workflow_tolerated(self):
        # A shard may own workflows the caller's accepted ledger missed
        # (e.g. replayed from a journal the client never heard about) —
        # conservation is about the accepted set, not set equality.
        report = check_cross_shard_conservation(
            ["w1"], {"s0": ["w1", "w-extra"]}, {"s0": []}
        )
        assert report.ok
