"""Tests for the command-line interface."""

import json
import logging

import pytest

from repro.cli import main, verbosity_to_level
from repro.obs import count_by_type, read_trace


@pytest.fixture
def trace_path(tmp_path):
    path = tmp_path / "trace.json"
    code = main(
        [
            "generate-trace",
            "--out",
            str(path),
            "--workflows",
            "2",
            "--jobs",
            "5",
            "--adhoc",
            "6",
            "--seed",
            "11",
        ]
    )
    assert code == 0
    return path


class TestGenerateTrace:
    def test_writes_valid_json(self, trace_path, capsys):
        payload = json.loads(trace_path.read_text())
        assert len(payload["workflows"]) == 2
        assert all(len(wf["jobs"]) == 5 for wf in payload["workflows"])

    def test_reports_summary(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        main(["generate-trace", "--out", str(path), "--workflows", "1", "--jobs", "3"])
        out = capsys.readouterr().out
        assert "3 deadline jobs" in out

    def test_scientific_flag(self, tmp_path):
        path = tmp_path / "sci.json"
        code = main(
            [
                "generate-trace",
                "--out",
                str(path),
                "--workflows",
                "2",
                "--jobs",
                "10",
                "--scientific",
            ]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        names = {wf["name"] for wf in payload["workflows"]}
        assert names <= {"montage", "cybershake", "epigenomics", "inspiral", "sipht"}


class TestDecompose:
    def test_prints_windows_for_all(self, trace_path, capsys):
        assert main(["decompose", "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "wf0" in out and "wf1" in out
        assert "levels" in out

    def test_single_workflow_filter(self, trace_path, capsys):
        assert main(["decompose", "--trace", str(trace_path), "--workflow", "wf1"]) == 0
        out = capsys.readouterr().out
        assert "wf1:" in out and "wf0:" not in out

    def test_unknown_workflow_errors(self, trace_path, capsys):
        assert main(["decompose", "--trace", str(trace_path), "--workflow", "nope"]) == 2


class TestRun:
    def test_flowtime_run(self, trace_path, capsys):
        assert main(["run", "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "scheduler:            FlowTime" in out
        assert "finished:             True" in out
        assert "util |" in out

    def test_other_scheduler(self, trace_path, capsys):
        assert main(["run", "--trace", str(trace_path), "--scheduler", "FIFO"]) == 0
        assert "FIFO" in capsys.readouterr().out

    def test_gantt_flag(self, trace_path, capsys):
        assert main(["run", "--trace", str(trace_path), "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "#" in out  # execution marks

    def test_rejects_unknown_scheduler(self, trace_path):
        with pytest.raises(SystemExit):
            main(["run", "--trace", str(trace_path), "--scheduler", "SLURM"])

    def test_no_plan_cache_flags_reach_planner(self, trace_path, monkeypatch):
        import repro.cli as cli_mod

        captured = {}
        real_run_one = cli_mod.run_one

        def spy(name, trace, cluster, **kwargs):
            captured.update(kwargs)
            return real_run_one(name, trace, cluster, **kwargs)

        monkeypatch.setattr(cli_mod, "run_one", spy)
        code = main(
            ["run", "--trace", str(trace_path), "--no-plan-cache",
             "--no-warm-start"]
        )
        assert code == 0
        assert captured["scheduler_kwargs"] == {
            "planner": {"plan_cache": False, "warm_start": False}
        }

    def test_no_plan_cache_matches_default_outcome(self, trace_path, capsys):
        def summary(extra):
            assert main(["run", "--trace", str(trace_path), *extra]) == 0
            out = capsys.readouterr().out
            return [
                line for line in out.splitlines()
                if line.startswith(("jobs missed", "workflows missed",
                                    "ad-hoc turnaround"))
            ]

        assert summary(["--no-plan-cache"]) == summary([])

    def test_trace_out_writes_jsonl(self, trace_path, tmp_path, capsys):
        out_path = tmp_path / "run.jsonl"
        code = main(
            ["run", "--trace", str(trace_path), "--scheduler", "FIFO",
             "--trace-out", str(out_path)]
        )
        assert code == 0
        events = read_trace(out_path)
        counts = count_by_type(events)
        assert counts["run_start"] == 1 and counts["run_end"] == 1
        assert counts["job_completed"] >= 1
        stdout = capsys.readouterr().out
        assert f"wrote {len(events)} events to {out_path}" in stdout

    def test_metrics_flag_prints_phase_table(self, trace_path, capsys):
        assert main(["run", "--trace", str(trace_path), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "per-phase timings" in out
        assert "sched.decide" in out
        assert "sim.slot" in out
        assert "slowest slot:" in out

    def test_verbose_implies_metrics(self, trace_path, capsys):
        assert main(["-v", "run", "--trace", str(trace_path),
                     "--scheduler", "FIFO"]) == 0
        assert "per-phase timings" in capsys.readouterr().out

    def test_quiet_run_still_prints_summary(self, trace_path, capsys):
        assert main(["-q", "run", "--trace", str(trace_path),
                     "--scheduler", "FIFO"]) == 0
        out = capsys.readouterr().out
        assert "scheduler:" in out
        assert "per-phase timings" not in out


class TestGlobalFlags:
    def test_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_verbosity_mapping(self):
        assert verbosity_to_level(quiet=True, verbose=0) == logging.ERROR
        assert verbosity_to_level(quiet=False, verbose=0) == logging.WARNING
        assert verbosity_to_level(quiet=False, verbose=1) == logging.INFO
        assert verbosity_to_level(quiet=False, verbose=2) == logging.DEBUG


class TestCompare:
    def test_default_comparison_table(self, trace_path, capsys):
        assert main(
            ["compare", "--trace", str(trace_path), "--algorithms", "FlowTime", "FIFO"]
        ) == 0
        out = capsys.readouterr().out
        assert "jobs missed" in out
        assert "relative to FlowTime" in out

    def test_without_flowtime_no_ratios(self, trace_path, capsys):
        assert main(
            ["compare", "--trace", str(trace_path), "--algorithms", "FIFO", "Fair"]
        ) == 0
        out = capsys.readouterr().out
        assert "relative to FlowTime" not in out


class TestErrorHandling:
    def test_malformed_trace_reports_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main(["run", "--trace", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_trace_file(self, capsys):
        assert main(["compare", "--trace", "/nonexistent/trace.json"]) == 2
        assert "error:" in capsys.readouterr().err
