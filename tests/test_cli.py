"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def trace_path(tmp_path):
    path = tmp_path / "trace.json"
    code = main(
        [
            "generate-trace",
            "--out",
            str(path),
            "--workflows",
            "2",
            "--jobs",
            "5",
            "--adhoc",
            "6",
            "--seed",
            "11",
        ]
    )
    assert code == 0
    return path


class TestGenerateTrace:
    def test_writes_valid_json(self, trace_path, capsys):
        payload = json.loads(trace_path.read_text())
        assert len(payload["workflows"]) == 2
        assert all(len(wf["jobs"]) == 5 for wf in payload["workflows"])

    def test_reports_summary(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        main(["generate-trace", "--out", str(path), "--workflows", "1", "--jobs", "3"])
        out = capsys.readouterr().out
        assert "3 deadline jobs" in out

    def test_scientific_flag(self, tmp_path):
        path = tmp_path / "sci.json"
        code = main(
            [
                "generate-trace",
                "--out",
                str(path),
                "--workflows",
                "2",
                "--jobs",
                "10",
                "--scientific",
            ]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        names = {wf["name"] for wf in payload["workflows"]}
        assert names <= {"montage", "cybershake", "epigenomics", "inspiral", "sipht"}


class TestDecompose:
    def test_prints_windows_for_all(self, trace_path, capsys):
        assert main(["decompose", "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "wf0" in out and "wf1" in out
        assert "levels" in out

    def test_single_workflow_filter(self, trace_path, capsys):
        assert main(["decompose", "--trace", str(trace_path), "--workflow", "wf1"]) == 0
        out = capsys.readouterr().out
        assert "wf1:" in out and "wf0:" not in out

    def test_unknown_workflow_errors(self, trace_path, capsys):
        assert main(["decompose", "--trace", str(trace_path), "--workflow", "nope"]) == 2


class TestRun:
    def test_flowtime_run(self, trace_path, capsys):
        assert main(["run", "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "scheduler:            FlowTime" in out
        assert "finished:             True" in out
        assert "util |" in out

    def test_other_scheduler(self, trace_path, capsys):
        assert main(["run", "--trace", str(trace_path), "--scheduler", "FIFO"]) == 0
        assert "FIFO" in capsys.readouterr().out

    def test_gantt_flag(self, trace_path, capsys):
        assert main(["run", "--trace", str(trace_path), "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "#" in out  # execution marks

    def test_rejects_unknown_scheduler(self, trace_path):
        with pytest.raises(SystemExit):
            main(["run", "--trace", str(trace_path), "--scheduler", "SLURM"])


class TestCompare:
    def test_default_comparison_table(self, trace_path, capsys):
        assert main(
            ["compare", "--trace", str(trace_path), "--algorithms", "FlowTime", "FIFO"]
        ) == 0
        out = capsys.readouterr().out
        assert "jobs missed" in out
        assert "relative to FlowTime" in out

    def test_without_flowtime_no_ratios(self, trace_path, capsys):
        assert main(
            ["compare", "--trace", str(trace_path), "--algorithms", "FIFO", "Fair"]
        ) == 0
        out = capsys.readouterr().out
        assert "relative to FlowTime" not in out


class TestErrorHandling:
    def test_malformed_trace_reports_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main(["run", "--trace", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_trace_file(self, capsys):
        assert main(["compare", "--trace", "/nonexistent/trace.json"]) == 2
        assert "error:" in capsys.readouterr().err
