"""Tests for the TetriSched-style baseline."""

import pytest

from repro.schedulers.tetrisched import TetriSchedScheduler
from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.failures import FailureModel
from repro.simulator.metrics import missed_workflows
from repro.workloads.dag_generators import chain_workflow, fork_join_workflow
from tests.conftest import adhoc_job


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            TetriSchedScheduler(plan_ahead_slots=1)
        with pytest.raises(ValueError):
            TetriSchedScheduler(adhoc_policy="lifo")


class TestRigidBlocks:
    def test_single_job_runs_contiguously_at_full_width(self, small_cluster):
        """A rigid block: once started, the job runs at full parallelism
        until done (24 task-slots at width 8 = 3 consecutive slots)."""
        wf = chain_workflow("w", 1, 0, 100)
        scheduler = TetriSchedScheduler()
        result = Simulation(
            small_cluster,
            scheduler,
            workflows=[wf],
            config=SimulationConfig(record_execution=True),
        ).run()
        executed = [row.get("w-j0", 0) for row in result.execution]
        active = [u for u in executed if u]
        assert active == [8, 8, 8]

    def test_meets_loose_deadlines(self, small_cluster):
        workflows = [fork_join_workflow(f"w{i}", 3, 0, 150) for i in range(2)]
        scheduler = TetriSchedScheduler()
        result = Simulation(small_cluster, scheduler, workflows=workflows).run()
        assert result.finished
        assert missed_workflows(result) == []

    def test_narrower_block_when_cluster_contended(self, tiny_cluster):
        # 8 tasks of 2 cores on a 4-core cluster: full width (8) never fits;
        # the adaptive width search settles on 2 tasks at a time.
        wf = chain_workflow(
            "w",
            1,
            0,
            200,
            spec_of=__import__("tests.conftest", fromlist=["spec"]).spec(
                count=8, duration=2, cores=2, mem=2
            ),
        )
        result = Simulation(tiny_cluster, TetriSchedScheduler(), workflows=[wf]).run()
        assert result.finished


class TestIntegration:
    def test_serves_adhoc_with_leftovers(self, small_cluster):
        wf = chain_workflow("w", 2, 0, 300)
        adhoc = adhoc_job("a", 0, count=2, duration=1)
        result = Simulation(
            small_cluster, TetriSchedScheduler(), workflows=[wf], adhoc_jobs=[adhoc]
        ).run()
        assert result.jobs["a"].turnaround_slots() <= 5

    def test_survives_failures(self, small_cluster):
        wf = chain_workflow("w", 3, 0, 400)
        config = SimulationConfig(
            failures=FailureModel(setback_prob=0.4, seed=2), max_slots=3000
        )
        result = Simulation(
            small_cluster, TetriSchedScheduler(), workflows=[wf], config=config
        ).run()
        assert result.finished

    def test_plan_ahead_window_exceeded_work_still_finishes(self, small_cluster):
        # Deadline far beyond the plan-ahead window forces plan renewal.
        wf = chain_workflow("w", 2, 0, 5000)
        scheduler = TetriSchedScheduler(plan_ahead_slots=8)
        result = Simulation(small_cluster, scheduler, workflows=[wf]).run()
        assert result.finished
