"""Integration tests: migration protocol and skyline rebalancer over
real :class:`LocalShard` fleets.

Shards run in *realtime* mode with an hour-long slot, so the virtual
clock effectively never advances during a test — submitted workflows
stay un-started and migratable, making every migration scenario
deterministic.  Crash scenarios use ``LocalShard.kill`` + ``restart``
(same journal), exactly the recovery path a crashed ``repro serve``
process takes.
"""

import time

import pytest

from repro.cluster import (
    LocalShard,
    RebalanceConfig,
    Rebalancer,
    ShardRouter,
    slice_capacity,
)
from repro.model.cluster import ClusterCapacity
from repro.model.workflow import Workflow
from repro.service import ServiceConfig
from repro.verify import check_cross_shard_conservation
from tests.conftest import deadline_job


def chain(wid: str, deadline: int = 600) -> Workflow:
    jobs = [deadline_job(f"{wid}-j{i}", wid) for i in range(2)]
    return Workflow.from_jobs(
        wid, jobs, [(f"{wid}-j0", f"{wid}-j1")], 0, deadline
    )


def frozen_config(tmp_path, index: int) -> ServiceConfig:
    """Journaled service whose clock (1 slot/hour, realtime) never moves."""
    return ServiceConfig(
        realtime=True,
        slot_seconds=3600.0,
        journal_path=str(tmp_path / f"shard{index}.jsonl"),
        journal_fsync=False,
    )


@pytest.fixture
def fleet(tmp_path):
    cluster = ClusterCapacity.uniform(cpu=40, mem=80)
    shards = [
        LocalShard(f"s{i}", capacity, frozen_config(tmp_path, i)).start()
        for i, capacity in enumerate(slice_capacity(cluster, 2))
    ]
    yield shards
    for shard in shards:
        shard.kill()


def conservation(router: ShardRouter, accepted: list[str]):
    orphans = {
        name: list(entries)
        for name, entries in router.orphans_by_shard().items()
    }
    return check_cross_shard_conservation(
        accepted, router.owned_by_shard(), orphans
    )


def submit_tenant_burst(router: ShardRouter, n: int = 6) -> list[str]:
    """n workflows of one tenant — all land on one shard (skewed fleet)."""
    accepted = []
    for i in range(n):
        workflow = chain(f"t/{i}")
        result = router.submit_workflow(workflow)
        assert result.accepted, result
        accepted.append(workflow.workflow_id)
    return accepted


class TestMigrationProtocol:
    def test_happy_path_moves_ownership(self, fleet):
        router = ShardRouter(fleet)
        accepted = submit_tenant_burst(router)
        source = router.shard_for_workflow(accepted[0])
        dest = next(s for s in fleet if s is not source)

        handoff = source.migrate_out(accepted[0], dest=dest.name, epoch=1)
        result = dest.migrate_in(
            handoff["workflow"], key=handoff["key"], epoch=1
        )
        assert result.accepted
        source.confirm(accepted[0], epoch=1)

        assert not source.owns(accepted[0])
        assert dest.owns(accepted[0])
        assert source.orphans() == {}
        assert conservation(router, accepted).ok

    def test_migrate_in_reruns_admission_and_can_reject(self, fleet):
        router = ShardRouter(fleet)
        source = router.home_shard("t/x")
        dest = next(s for s in fleet if s is not source)
        # 20 serial slots of work against a 10-slot window: infeasible on
        # any slice, so the destination must refuse the handoff.
        wid = "t/heavy"
        job = deadline_job(f"{wid}-j0", wid, count=2, duration=20)
        heavy = Workflow.from_jobs(wid, [job], [], 0, 10)
        result = source.submit_workflow(heavy)
        assert not result.accepted  # admission also rejects it up front

        accepted = submit_tenant_burst(router, n=2)
        handoff = source.migrate_out(accepted[0], dest=dest.name, epoch=1)
        # Shrink the destination's view by filling it first.
        assert dest.migrate_in(
            handoff["workflow"], key=handoff["key"], epoch=1
        ).accepted

    def test_started_workflow_not_migratable(self, tmp_path):
        # Virtual-time shard: the clock races, everything starts at once.
        cluster = ClusterCapacity.uniform(cpu=20, mem=40)
        config = ServiceConfig(
            journal_path=str(tmp_path / "v.jsonl"), journal_fsync=False
        )
        shard = LocalShard("v0", cluster, config).start()
        try:
            assert shard.submit_workflow(chain("w1", deadline=60)).accepted
            deadline = time.monotonic() + 30
            while not shard.service._core.workflow_started("w1"):
                assert time.monotonic() < deadline, "workflow never started"
                time.sleep(0.01)
            with pytest.raises(ValueError, match="not withdrawable"):
                shard.service.migrate_out("w1", dest="v1", epoch=1)
        finally:
            shard.kill()

    def test_migrate_in_idempotent_on_redelivery(self, fleet):
        router = ShardRouter(fleet)
        accepted = submit_tenant_burst(router, n=2)
        source = router.shard_for_workflow(accepted[0])
        dest = next(s for s in fleet if s is not source)
        handoff = source.migrate_out(accepted[0], dest=dest.name, epoch=1)
        first = dest.migrate_in(handoff["workflow"], key=handoff["key"], epoch=1)
        second = dest.migrate_in(handoff["workflow"], key=handoff["key"], epoch=1)
        assert first.accepted and second.accepted
        assert dest.workflow_ids().count(accepted[0]) == 1

    def test_migration_preserves_idempotency_key(self, fleet):
        router = ShardRouter(fleet)
        workflow = chain("t/keyed")
        assert router.submit_workflow(
            workflow, idempotency_key="key-1"
        ).accepted
        source = router.shard_for_workflow("t/keyed")
        dest = next(s for s in fleet if s is not source)
        handoff = source.migrate_out("t/keyed", dest=dest.name, epoch=1)
        assert handoff["key"] == "key-1"
        assert dest.migrate_in(
            handoff["workflow"], key="key-1", epoch=1
        ).accepted
        # A retry of the original submission against the new owner
        # answers from the pinned key instead of double-admitting.
        replay = dest.submit_workflow(workflow, idempotency_key="key-1")
        assert replay.accepted
        assert dest.workflow_ids().count("t/keyed") == 1

    def test_counters_not_shifted_by_migration(self, fleet):
        router = ShardRouter(fleet)
        accepted = submit_tenant_burst(router, n=3)
        before = router.status()["aggregate"]["accepted_workflows"]
        source = router.shard_for_workflow(accepted[0])
        dest = next(s for s in fleet if s is not source)
        handoff = source.migrate_out(accepted[0], dest=dest.name, epoch=1)
        dest.migrate_in(handoff["workflow"], key=handoff["key"], epoch=1)
        source.confirm(accepted[0], epoch=1)
        assert router.status()["aggregate"]["accepted_workflows"] == before


class TestCrashRecovery:
    def test_unconfirmed_handoff_survives_source_crash_as_orphan(self, fleet):
        router = ShardRouter(fleet)
        accepted = submit_tenant_burst(router)
        source = router.shard_for_workflow(accepted[0])
        dest = next(s for s in fleet if s is not source)
        source.migrate_out(accepted[0], dest=dest.name, epoch=7)
        source.kill()
        source.restart()
        orphans = source.orphans()
        assert accepted[0] in orphans
        assert orphans[accepted[0]]["dest"] == dest.name
        assert orphans[accepted[0]]["epoch"] == 7
        # Never landed on the destination -> reconcile restores it home.
        summary = router.reconcile()
        assert summary == {"confirmed": 0, "restored": 1, "held": 0}
        assert source.owns(accepted[0])
        assert conservation(router, accepted).ok

    def test_landed_handoff_confirmed_after_source_crash(self, fleet):
        router = ShardRouter(fleet)
        accepted = submit_tenant_burst(router)
        source = router.shard_for_workflow(accepted[0])
        dest = next(s for s in fleet if s is not source)
        handoff = source.migrate_out(accepted[0], dest=dest.name, epoch=3)
        dest.migrate_in(handoff["workflow"], key=handoff["key"], epoch=3)
        # Crash before confirm: on replay the tombstone is an orphan, but
        # the destination owns the workflow -> reconcile must confirm,
        # NOT restore (restoring would duplicate it).
        source.kill()
        source.restart()
        summary = router.reconcile()
        assert summary == {"confirmed": 1, "restored": 0, "held": 0}
        assert not source.owns(accepted[0])
        assert dest.owns(accepted[0])
        assert router.shard_for_workflow(accepted[0]).name == dest.name
        assert conservation(router, accepted).ok

    def test_confirmed_migration_stays_gone_after_replay(self, fleet):
        router = ShardRouter(fleet)
        accepted = submit_tenant_burst(router)
        source = router.shard_for_workflow(accepted[0])
        dest = next(s for s in fleet if s is not source)
        handoff = source.migrate_out(accepted[0], dest=dest.name, epoch=1)
        dest.migrate_in(handoff["workflow"], key=handoff["key"], epoch=1)
        source.confirm(accepted[0], epoch=1)
        source.kill()
        source.restart()
        assert source.orphans() == {}
        assert not source.owns(accepted[0])
        assert conservation(router, accepted).ok

    def test_dest_crash_replays_migrated_in_workflow(self, fleet):
        router = ShardRouter(fleet)
        accepted = submit_tenant_burst(router)
        source = router.shard_for_workflow(accepted[0])
        dest = next(s for s in fleet if s is not source)
        handoff = source.migrate_out(accepted[0], dest=dest.name, epoch=1)
        dest.migrate_in(handoff["workflow"], key=handoff["key"], epoch=1)
        source.confirm(accepted[0], epoch=1)
        dest.kill()
        dest.restart()
        assert dest.owns(accepted[0])  # journaled on accept, replayed
        assert conservation(router, accepted).ok

    def test_reconcile_holds_orphan_while_dest_down(self, fleet):
        router = ShardRouter(fleet)
        accepted = submit_tenant_burst(router)
        source = router.shard_for_workflow(accepted[0])
        dest = next(s for s in fleet if s is not source)
        source.migrate_out(accepted[0], dest=dest.name, epoch=1)
        dest.kill()
        summary = router.reconcile()
        assert summary["held"] == 1
        assert accepted[0] in source.orphans()  # still in limbo, not lost
        dest.restart()
        summary = router.reconcile()
        assert summary["restored"] == 1
        assert conservation(router, accepted).ok


class TestRebalancer:
    def test_skewed_fleet_rebalances_toward_slack_shard(self, fleet):
        router = ShardRouter(fleet)
        accepted = submit_tenant_burst(router, n=6)
        rebalancer = Rebalancer(
            router,
            RebalanceConfig(
                saturation_gap=0.0, min_saturation=0.0, max_moves=3
            ),
        )
        summary = rebalancer.cycle()
        assert summary["moved"] == 3
        owned = router.owned_by_shard()
        assert sorted(len(ids) for ids in owned.values()) == [3, 3]
        # Routing follows the moved workflows to their new home.
        for move in summary["moves"]:
            assert (
                router.shard_for_workflow(move["workflow_id"]).name
                == move["to"]
            )
        assert conservation(router, accepted).ok

    def test_balanced_fleet_not_touched(self, fleet):
        router = ShardRouter(fleet)
        submit_tenant_burst(router, n=2)
        rebalancer = Rebalancer(
            router, RebalanceConfig(saturation_gap=0.9, min_saturation=0.9)
        )
        summary = rebalancer.cycle()
        assert summary["moved"] == 0
        assert summary["skipped"] == "balanced"

    def test_moves_bounded_per_cycle(self, fleet):
        router = ShardRouter(fleet)
        submit_tenant_burst(router, n=6)
        rebalancer = Rebalancer(
            router,
            RebalanceConfig(
                saturation_gap=0.0, min_saturation=0.0, max_moves=1
            ),
        )
        assert rebalancer.cycle()["moved"] == 1

    def test_epoch_monotonic_across_cycles(self, fleet):
        router = ShardRouter(fleet)
        submit_tenant_burst(router, n=4)
        rebalancer = Rebalancer(
            router,
            RebalanceConfig(
                saturation_gap=0.0, min_saturation=0.0, max_moves=2
            ),
        )
        rebalancer.cycle()
        first = rebalancer.epoch
        rebalancer.cycle()
        assert rebalancer.epoch >= first

    def test_cycle_with_one_dead_shard_skips(self, fleet):
        router = ShardRouter(fleet)
        submit_tenant_burst(router, n=2)
        fleet[1].kill()
        rebalancer = Rebalancer(
            router, RebalanceConfig(saturation_gap=0.0, min_saturation=0.0)
        )
        summary = rebalancer.cycle()
        assert summary["moved"] == 0
        assert summary["skipped"] == "fewer than two reachable shards"
