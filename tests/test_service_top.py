"""The `repro top` dashboard: pure rendering plus one live poll."""

from __future__ import annotations

import io

import pytest

from repro.model.cluster import ClusterCapacity
from repro.service import (
    SchedulerService,
    ServiceConfig,
    render_dashboard,
    run_top,
    serve_http,
)

STATUS = {
    "running": True, "draining": False, "slot": 42, "scheduler": "FlowTime",
    "n_workflows": 3, "accepted_workflows": 3, "rejected_workflows": 1,
    "accepted_adhoc": 10, "shed_adhoc": 2, "remaining_jobs": 5,
    "queue_depth": 1,
}
METRICS = {
    "service.submit.seconds": {
        "type": "windowed_histogram", "count": 14.0, "rate_1m": 0.5,
        "p50": 0.002, "p99": 0.05,
    },
    "http.request.seconds": {
        "type": "windowed_histogram", "count": 20.0, "rate_1m": 0.7,
        "p50": 0.001, "p99": 0.02,
    },
}
SLO = {
    "config": {"deadline_objective": 0.99, "decide_p99_s": 1.0,
               "window_s": 300.0},
    "deadline": {"objective": 0.99, "total": 100.0, "missed": 1.0,
                 "compliance": 0.99, "budget_remaining": 0.0,
                 "burn_rate": 1.0, "ok": True},
    "decide_latency": {"objective_p99_s": 1.0, "p99_s": 0.2,
                       "window_count": 50, "ok": True},
    "healthy": True,
}


class TestRenderDashboard:
    def test_renders_all_sections(self):
        text = render_dashboard(STATUS, METRICS, SLO, url="http://x:1")
        assert "repro top — http://x:1" in text
        assert "running" in text and "slot 42" in text
        assert "workflows 3" in text and "shed 2" in text
        assert "p99 50.0ms" in text  # submit latency
        assert "OK" in text
        assert "met 99.00%" in text
        assert "burn 1.00x" in text

    def test_no_color_by_default(self):
        text = render_dashboard(STATUS, METRICS, SLO)
        assert "\x1b[" not in text

    def test_color_paints_health(self):
        text = render_dashboard(STATUS, METRICS, SLO, color=True)
        assert "\x1b[32mOK\x1b[0m" in text

    def test_violated_and_draining(self):
        slo = {**SLO, "healthy": False}
        status = {**STATUS, "draining": True}
        text = render_dashboard(status, METRICS, slo)
        assert "VIOLATED" in text
        assert "draining" in text

    def test_empty_snapshots_render_placeholders(self):
        text = render_dashboard({}, {}, {})
        assert "stopped" in text
        assert "NO DATA" in text
        assert "p50 -" in text

    def test_handles_null_quantiles(self):
        metrics = {
            "service.submit.seconds": {"count": 0.0, "rate_1m": 0.0,
                                       "p50": None, "p99": None},
        }
        slo = {
            "deadline": {"objective": 0.99, "total": 0.0, "missed": 0.0,
                         "compliance": None, "budget_remaining": None,
                         "burn_rate": None},
            "decide_latency": {"p99_s": None, "window_count": 0},
            "healthy": None,
        }
        text = render_dashboard(STATUS, metrics, slo)
        assert "met -" in text
        assert "burn -x" in text


class TestRunTop:
    def test_one_frame_against_live_service(self):
        cluster = ClusterCapacity.uniform(cpu=8, mem=16)
        service = SchedulerService(
            cluster, ServiceConfig(slot_seconds=0.05)
        ).start()
        server = serve_http(service)
        out = io.StringIO()
        try:
            code = run_top(server.url, interval_s=0.01, iterations=1, out=out)
        finally:
            server.shutdown()
            service.drain(timeout=60)
        assert code == 0
        text = out.getvalue()
        assert "repro top" in text
        assert "running" in text

    def test_unreachable_url_exits_nonzero(self):
        out = io.StringIO()
        code = run_top(
            "http://127.0.0.1:9", interval_s=0.01, iterations=1, out=out
        )
        assert code == 1
        assert "unreachable" in out.getvalue()


class TestCliTop:
    def test_once_flag(self, capsys):
        from repro.cli import main

        cluster = ClusterCapacity.uniform(cpu=8, mem=16)
        service = SchedulerService(
            cluster, ServiceConfig(slot_seconds=0.05)
        ).start()
        server = serve_http(service)
        try:
            code = main(["top", "--url", server.url, "--once"])
        finally:
            server.shutdown()
            service.drain(timeout=60)
        assert code == 0
        assert "repro top" in capsys.readouterr().out
