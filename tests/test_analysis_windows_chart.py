"""Tests for the decomposition windows chart."""

import pytest

from repro.analysis.windows_chart import render_windows
from repro.cli import main
from repro.core.decomposition import decompose_deadline
from repro.model.cluster import ClusterCapacity
from repro.workloads.dag_generators import chain_workflow, fork_join_workflow


@pytest.fixture
def cluster():
    return ClusterCapacity.uniform(cpu=40, mem=80)


class TestRenderWindows:
    def test_one_row_per_job_plus_header(self, cluster):
        wf = chain_workflow("c", 3, 0, 60)
        windows = decompose_deadline(wf, cluster).windows
        chart = render_windows(wf, windows)
        assert len(chart.splitlines()) == 4

    def test_rows_ordered_by_release(self, cluster):
        wf = chain_workflow("c", 3, 0, 60)
        windows = decompose_deadline(wf, cluster).windows
        rows = render_windows(wf, windows).splitlines()[1:]
        assert [r.split()[0] for r in rows] == ["c-j0", "c-j1", "c-j2"]

    def test_parallel_jobs_share_bars(self, cluster):
        wf = fork_join_workflow("f", 3, 0, 90)
        windows = decompose_deadline(wf, cluster).windows
        rows = render_windows(wf, windows).splitlines()[1:]
        middles = [r for r in rows if r.startswith("f-j1") or r.startswith("f-j2")]
        bars = {r.split("[")[0].split(maxsplit=1)[1] for r in middles}
        assert len(bars) == 1  # identical spans render identically

    def test_deadline_marker_present(self, cluster):
        wf = chain_workflow("c", 2, 10, 50)
        windows = decompose_deadline(wf, cluster).windows
        chart = render_windows(wf, windows)
        # The last job's bar ends at the workflow deadline: marker collides
        # with the bar and renders '#'.
        assert "#" in chart

    def test_windows_annotated_numerically(self, cluster):
        wf = chain_workflow("c", 2, 0, 40)
        windows = decompose_deadline(wf, cluster).windows
        chart = render_windows(wf, windows)
        for window in windows.values():
            assert f"[{window.release_slot},{window.deadline_slot})" in chart


class TestCliChart:
    def test_decompose_chart_flag(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        main(["generate-trace", "--out", str(trace), "--workflows", "1", "--jobs", "4"])
        capsys.readouterr()
        assert main(["decompose", "--trace", str(trace), "--chart"]) == 0
        out = capsys.readouterr().out
        assert "=" in out
        assert "[slots" in out
