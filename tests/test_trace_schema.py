"""Trace schema contract: every emitted event type is declared, and every
emitted event carries its declared required fields.

Two directions of drift are caught:

* **Source scan** — every ``obs.event("literal", ...)`` call site in the
  source tree, and every :class:`repro.model.events.EventKind` value (they
  are emitted via ``event.kind.value``), must name a type declared in
  :data:`repro.obs.EVENT_SCHEMA`.  Adding an emission without declaring
  its schema fails here.
* **Live runs** — a traced simulation and a traced service run must emit
  only declared types, each carrying that type's required fields.
  Declaring a schema the emitters don't honour fails here.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.model.events import EventKind
from repro.obs import EVENT_SCHEMA, EVENT_TYPES, MemorySink, Observability

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: String-literal first argument of an ``.event(...)`` call.
_EVENT_CALL = re.compile(r"\.event\(\s*[\"']([a-z_]+)[\"']")


def _emission_sites() -> list[tuple[str, str]]:
    sites = []
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text()
        for match in _EVENT_CALL.finditer(text):
            sites.append((str(path.relative_to(SRC)), match.group(1)))
    return sites


class TestSchemaDeclaration:
    def test_every_literal_emission_site_is_declared(self):
        sites = _emission_sites()
        assert sites, "source scan found no emission sites — regex rotted?"
        undeclared = [
            (path, kind) for path, kind in sites if kind not in EVENT_SCHEMA
        ]
        assert not undeclared, (
            f"emission sites using undeclared event types: {undeclared}; "
            f"declare them in repro.obs.trace.EVENT_SCHEMA"
        )

    def test_every_engine_event_kind_is_declared(self):
        # Engine events are emitted as ``event.kind.value`` — dynamic, so
        # the literal scan can't see them.
        missing = [k.value for k in EventKind if k.value not in EVENT_SCHEMA]
        assert not missing, f"EventKind values missing from EVENT_SCHEMA: {missing}"

    def test_event_types_mirrors_schema(self):
        assert EVENT_TYPES == tuple(EVENT_SCHEMA)

    def test_required_fields_are_tuples_of_names(self):
        for kind, fields in EVENT_SCHEMA.items():
            assert isinstance(fields, tuple), kind
            assert all(isinstance(f, str) and f for f in fields), kind


def _check_events(events: list[dict]) -> None:
    assert events, "run emitted no events"
    for event in events:
        kind = event.get("type")
        assert kind in EVENT_SCHEMA, f"undeclared event type {kind!r}: {event}"
        missing = [f for f in EVENT_SCHEMA[kind] if f not in event]
        assert not missing, (
            f"{kind} event missing required fields {missing}: {event}"
        )
        # The envelope every sink stamps.
        assert "ts" in event and "seq" in event


class TestLiveRuns:
    def test_simulation_trace_honours_schema(self, small_cluster):
        from repro.model.job import Job, JobKind, TaskSpec
        from repro.model.resources import CPU, MEM, ResourceVector
        from repro.model.workflow import Workflow
        from repro.schedulers.registry import make_scheduler
        from repro.simulator.engine import Simulation

        spec = TaskSpec(
            count=2, duration_slots=2, demand=ResourceVector({CPU: 2, MEM: 2})
        )
        jobs = [Job(job_id=f"w-j{i}", tasks=spec, workflow_id="w") for i in range(2)]
        workflow = Workflow.from_jobs("w", jobs, [("w-j0", "w-j1")], 0, 40)
        adhoc = Job(
            job_id="a0", tasks=spec, kind=JobKind.ADHOC, arrival_slot=1
        )
        sink = MemorySink()
        obs = Observability(sink=sink, level=10, trace_spans=True)
        Simulation(
            small_cluster, make_scheduler("FlowTime"),
            workflows=[workflow], adhoc_jobs=[adhoc], obs=obs,
        ).run()
        _check_events(sink.events)
        kinds = {event["type"] for event in sink.events}
        assert {"run_start", "task_placement", "workflow_completed",
                "run_end"} <= kinds
        assert "span" in kinds  # trace_spans=True routes spans to the sink

    def test_service_trace_honours_schema(self, tiny_cluster):
        from repro.model.job import Job, TaskSpec
        from repro.model.resources import CPU, MEM, ResourceVector
        from repro.model.workflow import Workflow
        from repro.service import SchedulerService, ServiceConfig

        sink = MemorySink()
        obs = Observability(sink=sink, level=10)
        service = SchedulerService(
            tiny_cluster, ServiceConfig(slot_seconds=0.02), obs=obs
        )
        service.start()
        try:
            spec = TaskSpec(
                count=1, duration_slots=1,
                demand=ResourceVector({CPU: 1, MEM: 1}),
            )
            jobs = [Job(job_id="w-j0", tasks=spec, workflow_id="w")]
            result = service.submit_workflow(
                Workflow.from_jobs("w", jobs, [], 0, 100)
            )
            assert result.accepted
        finally:
            service.drain()
        _check_events(sink.events)
        kinds = {event["type"] for event in sink.events}
        assert {"service_start", "admission_accept",
                "service_drain_start"} <= kinds
