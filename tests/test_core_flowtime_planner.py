"""Tests for the FlowTime planner (slack, window repair, degradation)."""

import pytest

from repro.core.flowtime import FlowTimePlanner, JobDemand, PlannerConfig
from repro.core.replan import PlanRequest
from repro.model.cluster import ClusterCapacity
from repro.model.resources import CPU, MEM, ResourceVector


@pytest.fixture
def cluster() -> ClusterCapacity:
    return ClusterCapacity.uniform(cpu=10, mem=20)


def make_plan(planner, now_slot, demands, capacity):
    request = PlanRequest(
        now_slot=now_slot, demands=tuple(demands), capacity=capacity
    )
    return planner.plan(request)


def demand(
    job_id="j", release=0, deadline=10, units=6, cores=1, mem=2, parallel=4
) -> JobDemand:
    return JobDemand(
        job_id=job_id,
        release_slot=release,
        deadline_slot=deadline,
        units=units,
        unit_demand=ResourceVector({CPU: cores, MEM: mem}),
        max_parallel=parallel,
    )


class TestPlannerConfig:
    def test_defaults(self):
        config = PlannerConfig()
        assert config.slack_slots == 6
        assert config.formulation == "coupled"

    def test_validation(self):
        with pytest.raises(ValueError):
            PlannerConfig(slack_slots=-1)
        with pytest.raises(ValueError):
            PlannerConfig(horizon_slots=0)


class TestBasicPlanning:
    def test_empty_demands_empty_plan(self, cluster):
        plan = make_plan(FlowTimePlanner(), 5, [], cluster)
        assert plan.load(5).is_zero()
        assert not plan.degraded

    def test_demand_fully_planned(self, cluster):
        planner = FlowTimePlanner(PlannerConfig(slack_slots=0))
        plan = make_plan(planner, 0, [demand(units=6, deadline=6)], cluster)
        assert plan.total_units("j") == 6
        assert not plan.degraded

    def test_grants_within_window(self, cluster):
        planner = FlowTimePlanner(PlannerConfig(slack_slots=0))
        plan = make_plan(planner, 0, [demand(release=2, deadline=6, units=4)], cluster)
        grant = plan.grants["j"]
        assert grant[:2].sum() == 0
        assert grant[:6].sum() == 4

    def test_minimax_recorded(self, cluster):
        plan = make_plan(FlowTimePlanner(), 0, [demand()], cluster)
        assert 0.0 < plan.minimax <= 1.0

    def test_plan_is_flat(self, cluster):
        # 8 units over 4 slots with slack 0: expect 2/slot everywhere.
        planner = FlowTimePlanner(PlannerConfig(slack_slots=0))
        plan = make_plan(planner, 
            0, [demand(units=8, deadline=4, parallel=8)], cluster
        )
        assert list(plan.grants["j"][:4]) == [2, 2, 2, 2]


class TestDeadlineSlack:
    def test_slack_pulls_work_before_deadline(self, cluster):
        planner = FlowTimePlanner(PlannerConfig(slack_slots=3))
        plan = make_plan(planner, 0, [demand(units=4, deadline=10, parallel=4)], cluster)
        # Nothing may be planned in the slack slots [7, 10).
        assert plan.grants["j"][7:].sum() == 0
        assert plan.total_units("j") == 4

    def test_slack_skipped_when_window_too_tight(self, cluster):
        # units=8, parallel=2 -> needs 4 slots; window is 5 slots so a
        # 3-slot slack would make it infeasible and must be skipped.
        planner = FlowTimePlanner(PlannerConfig(slack_slots=3))
        plan = make_plan(planner, 0, [demand(units=8, deadline=5, parallel=2)], cluster)
        assert plan.total_units("j") == 8
        assert not plan.degraded


class TestWindowRepair:
    def test_overdue_job_gets_extended_window(self, cluster):
        # Deadline already passed at planning time.
        planner = FlowTimePlanner()
        plan = make_plan(planner, 20, [demand(release=0, deadline=10, units=4)], cluster)
        assert plan.total_units("j") == 4
        assert not plan.degraded

    def test_window_smaller_than_work_is_extended(self, cluster):
        # 10 units, parallelism 1, window 3 slots: must extend to 10 slots.
        planner = FlowTimePlanner(PlannerConfig(slack_slots=0))
        plan = make_plan(planner, 0, [demand(units=10, deadline=3, parallel=1)], cluster)
        assert plan.total_units("j") == 10
        assert plan.horizon >= 10

    def test_joint_overload_degrades_to_greedy(self, cluster):
        # Total demand impossible even with doubled horizon: every job wants
        # the full cluster for the whole (extended) window.
        demands = [
            demand(job_id=f"j{i}", units=40, deadline=2, cores=10, mem=20, parallel=4)
            for i in range(4)
        ]
        plan = make_plan(FlowTimePlanner(PlannerConfig(slack_slots=0)), 0, demands, cluster)
        assert plan.degraded
        # Greedy still fills what fits: exactly one 10-core unit per slot.
        total = sum(plan.total_units(f"j{i}") for i in range(4))
        assert total == plan.horizon  # one unit per slot saturates cpu


class TestHorizonCap:
    def test_horizon_slots_clamps(self, cluster):
        planner = FlowTimePlanner(
            PlannerConfig(slack_slots=0, horizon_slots=5)
        )
        plan = make_plan(planner, 0, [demand(units=4, deadline=50)], cluster)
        assert plan.horizon == 5
        assert plan.total_units("j") == 4


class TestPaperFormulation:
    def test_paper_mode_plans_executable_grants(self, cluster):
        planner = FlowTimePlanner(
            PlannerConfig(slack_slots=0, formulation="paper")
        )
        plan = make_plan(planner, 0, [demand(units=6, deadline=6, parallel=3)], cluster)
        # Paper mode converts per-resource allocations to task units; the
        # total may fall short only when resources decouple, which cannot
        # happen for a single job on an idle cluster.
        assert plan.total_units("j") == 6

    def test_capacity_respected_in_every_slot(self, cluster):
        demands = [
            demand(job_id=f"j{i}", units=12, deadline=6, cores=2, mem=4, parallel=6)
            for i in range(3)
        ]
        plan = make_plan(FlowTimePlanner(PlannerConfig(slack_slots=0)), 0, demands, cluster)
        for slot in range(plan.horizon):
            load = plan.load(slot)
            assert load.fits_in(cluster.at(slot))


class TestDeprecatedPositionalSignature:
    def test_positional_call_warns_and_still_plans(self, cluster):
        planner = FlowTimePlanner(PlannerConfig(slack_slots=0))
        with pytest.warns(DeprecationWarning, match="PlanRequest"):
            legacy = planner.plan(0, [demand(units=6, deadline=6)], cluster)
        assert legacy.total_units("j") == 6
        modern = make_plan(
            FlowTimePlanner(PlannerConfig(slack_slots=0)),
            0,
            [demand(units=6, deadline=6)],
            cluster,
        )
        assert (legacy.grants["j"] == modern.grants["j"]).all()

    def test_positional_call_requires_all_arguments(self, cluster):
        with pytest.raises(TypeError):
            with pytest.warns(DeprecationWarning):
                FlowTimePlanner().plan(0, [demand()])

    def test_positional_path_identical_to_request_path(self, cluster):
        # The shim must be a pure re-packaging: a contended multi-job plan
        # computed through the legacy signature matches the PlanRequest
        # path field for field, not just in totals.
        demands = [
            demand(job_id=f"j{i}", units=8, deadline=8 + 2 * i, cores=2, mem=4)
            for i in range(4)
        ]
        with pytest.warns(DeprecationWarning, match="PlanRequest"):
            legacy = FlowTimePlanner().plan(3, demands, cluster)
        modern = FlowTimePlanner().plan(
            PlanRequest(now_slot=3, demands=tuple(demands), capacity=cluster)
        )
        assert legacy.origin_slot == modern.origin_slot
        assert legacy.horizon == modern.horizon
        assert legacy.degraded == modern.degraded
        assert set(legacy.grants) == set(modern.grants)
        for job_id, grant in modern.grants.items():
            assert (legacy.grants[job_id] == grant).all(), job_id

    def test_positional_call_shares_the_plan_cache(self, cluster):
        # Same planner, same inputs: the legacy call should be answered
        # straight from the cache entry the PlanRequest call created.
        planner = FlowTimePlanner()
        demands = [demand(units=6, deadline=6)]
        planner.plan(PlanRequest(now_slot=0, demands=tuple(demands), capacity=cluster))
        assert planner.plan_cache.misses == 1
        with pytest.warns(DeprecationWarning, match="PlanRequest"):
            planner.plan(0, demands, cluster)
        assert planner.plan_cache.hits == 1
        assert planner.plan_cache.misses == 1
