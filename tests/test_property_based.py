"""Property-based tests (hypothesis) on the core data structures and the
paper's invariants: decomposition windows, lexmin feasibility, quantisation
exactness, and toposort level structure."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.allocation import IntegralizationError, quantize_coupled
from repro.core.decomposition import decompose_deadline
from repro.core.lexmin import lexmin_schedule
from repro.core.lp_formulation import ScheduleEntry, build_schedule_problem
from repro.core.toposort import grouped_topological_sets, level_of
from repro.model.cluster import ClusterCapacity
from repro.model.job import Job, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.model.workflow import Workflow

# -- strategies ---------------------------------------------------------------------

resource_vectors = st.builds(
    lambda c, m: ResourceVector({CPU: c, MEM: m}),
    st.integers(min_value=0, max_value=16),
    st.integers(min_value=0, max_value=32),
)

task_specs = st.builds(
    lambda count, dur, c, m: TaskSpec(
        count=count, duration_slots=dur, demand=ResourceVector({CPU: c, MEM: m})
    ),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=6),
)


@st.composite
def random_workflows(draw):
    """Random DAG workflows: edges always go from lower to higher index."""
    n = draw(st.integers(min_value=1, max_value=8))
    specs = [draw(task_specs) for _ in range(n)]
    jobs = [
        Job(job_id=f"w-j{i}", tasks=specs[i], workflow_id="w") for i in range(n)
    ]
    edges = []
    for child in range(1, n):
        parents = draw(
            st.sets(st.integers(min_value=0, max_value=child - 1), max_size=3)
        )
        edges.extend((f"w-j{p}", f"w-j{child}") for p in parents)
    window = draw(st.integers(min_value=n * 6, max_value=300))
    return Workflow.from_jobs("w", jobs, edges, 0, window)


CLUSTER = ClusterCapacity.uniform(cpu=24, mem=48)


# -- ResourceVector algebraic laws ---------------------------------------------------


@given(resource_vectors, resource_vectors)
def test_addition_commutes(a, b):
    assert a + b == b + a


@given(resource_vectors, resource_vectors, resource_vectors)
def test_addition_associates(a, b, c):
    assert (a + b) + c == a + (b + c)


@given(resource_vectors)
def test_zero_is_identity(a):
    assert a + ResourceVector() == a


@given(resource_vectors, st.integers(min_value=0, max_value=5))
def test_scalar_multiplication_distributes(a, k):
    total = ResourceVector()
    for _ in range(k):
        total = total + a
    assert a * k == total


@given(resource_vectors, resource_vectors)
def test_saturating_sub_never_negative(a, b):
    out = a.saturating_sub(b)
    assert all(v >= 0 for v in out.values())
    assert out.fits_in(a)


# -- grouped toposort -----------------------------------------------------------------


@given(random_workflows())
def test_toposort_partitions_jobs(workflow):
    levels = grouped_topological_sets(workflow)
    flat = [j for level in levels for j in level]
    assert sorted(flat) == sorted(workflow.job_ids)


@given(random_workflows())
def test_toposort_edges_cross_forward(workflow):
    levels = grouped_topological_sets(workflow)
    for parent, child in workflow.edges:
        assert level_of(levels, parent) < level_of(levels, child)


# -- deadline decomposition -----------------------------------------------------------


@settings(deadline=None)
@given(random_workflows())
def test_decomposition_invariants(workflow):
    result = decompose_deadline(workflow, CLUSTER)
    windows = result.windows
    assert set(windows) == set(workflow.job_ids)
    for window in windows.values():
        assert window.release_slot < window.deadline_slot
    # Precedence: a child never starts before its parent's deadline.
    for parent, child in workflow.edges:
        assert windows[parent].deadline_slot <= windows[child].release_slot
    if not result.used_fallback:
        # The non-fallback decomposition never exceeds the workflow window
        # and its last level ends exactly at the deadline.
        last = max(w.deadline_slot for w in windows.values())
        assert last == workflow.deadline_slot
        first = min(w.release_slot for w in windows.values())
        assert first == workflow.start_slot


@settings(deadline=None)
@given(random_workflows())
def test_decomposition_levels_share_windows(workflow):
    result = decompose_deadline(workflow, CLUSTER)
    if result.used_fallback:
        return
    for level in result.node_sets:
        spans = {
            (result.windows[j].release_slot, result.windows[j].deadline_slot)
            for j in level
        }
        assert len(spans) == 1


# -- lexmin + quantisation ------------------------------------------------------------


@st.composite
def feasible_entry_sets(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    entries = []
    for i in range(n):
        release = draw(st.integers(min_value=0, max_value=4))
        length = draw(st.integers(min_value=2, max_value=6))
        parallel = draw(st.integers(min_value=1, max_value=4))
        units = draw(st.integers(min_value=1, max_value=length * parallel))
        cores = draw(st.integers(min_value=1, max_value=2))
        mem = draw(st.integers(min_value=1, max_value=3))
        entries.append(
            ScheduleEntry(
                job_id=f"j{i}",
                release=release,
                deadline=release + length,
                units=units,
                unit_demand=ResourceVector({CPU: cores, MEM: mem}),
                max_parallel=parallel,
            )
        )
    return entries


@settings(deadline=None, max_examples=40)
@given(feasible_entry_sets())
def test_lexmin_feasible_solutions_satisfy_all_constraints(entries):
    horizon = max(e.deadline for e in entries)
    caps = np.zeros((horizon, 2))
    caps[:, 0], caps[:, 1] = 30, 60
    problem = build_schedule_problem(entries, caps, (CPU, MEM))
    result = lexmin_schedule(problem, max_rounds=3)
    assume(result.is_optimal)  # windows can still jointly overload capacity
    x = result.x
    # Demands met exactly.
    resid = np.asarray(problem.a_eq @ x).ravel() - problem.b_eq
    assert np.allclose(resid, 0.0, atol=1e-5)
    # Capacity respected.
    loads = np.asarray(problem.a_util @ x).ravel()
    for k, load in enumerate(loads):
        assert load <= problem.cap_of_cell(k) + 1e-5
    # Bounds respected.
    assert np.all(x >= -1e-7)
    assert np.all(x <= problem.var_ub + 1e-7)


@settings(deadline=None, max_examples=40)
@given(feasible_entry_sets())
def test_quantisation_is_exact_and_feasible(entries):
    horizon = max(e.deadline for e in entries)
    caps = np.zeros((horizon, 2))
    caps[:, 0], caps[:, 1] = 30, 60
    problem = build_schedule_problem(entries, caps, (CPU, MEM))
    result = lexmin_schedule(problem, max_rounds=3)
    assume(result.is_optimal)
    try:
        grants = quantize_coupled(problem, result.x)
    except IntegralizationError:
        raise AssertionError("quantisation failed on a feasible LP solution")
    load = np.zeros_like(caps)
    for e in problem.entries:
        g = grants[e.job_id]
        assert g.sum() == e.units
        assert np.all(g <= min(e.max_parallel, e.units))
        assert g[: e.release].sum() == 0
        assert g[e.deadline :].sum() == 0
        load[:, 0] += g * e.unit_demand[CPU]
        load[:, 1] += g * e.unit_demand[MEM]
    assert np.all(load <= caps + 1e-9)
