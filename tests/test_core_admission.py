"""Tests for the admission-control extension."""

import pytest

from repro.core.admission import check_admission
from repro.core.flowtime import JobDemand, PlannerConfig
from repro.model.cluster import ClusterCapacity
from repro.model.resources import ResourceVector
from repro.workloads.dag_generators import chain_workflow, fork_join_workflow


@pytest.fixture
def cluster():
    return ClusterCapacity.uniform(cpu=16, mem=32)


def existing(job_id="busy", release=0, deadline=20, units=40, cores=2, mem=4, parallel=8):
    return JobDemand(
        job_id=job_id,
        release_slot=release,
        deadline_slot=deadline,
        units=units,
        unit_demand=ResourceVector({"cpu": cores, "mem": mem}),
        max_parallel=parallel,
    )


class TestAdmit:
    def test_empty_cluster_admits_loose_workflow(self, cluster):
        wf = chain_workflow("w", 2, 0, 100)
        decision = check_admission(wf, [], cluster, now_slot=0)
        assert decision.admit
        assert decision.total_shortfall == 0
        assert 0.0 < decision.utilisation <= 1.0

    def test_headroom_reported(self, cluster):
        wf = chain_workflow("w", 2, 0, 400)
        loose = check_admission(wf, [], cluster, now_slot=0)
        tight = check_admission(chain_workflow("w", 2, 0, 30), [], cluster, 0)
        assert loose.admit and tight.admit
        # Max-placement packs greedily in both cases; what differs is that
        # the looser workflow keeps feasibility with more commitments.
        assert loose.utilisation <= 1.0 and tight.utilisation <= 1.0

    def test_admits_alongside_light_commitments(self, cluster):
        wf = chain_workflow("w", 2, 0, 200)
        decision = check_admission(
            wf, [existing(units=10, deadline=100)], cluster, 0
        )
        assert decision.admit


class TestReject:
    def test_rejects_over_committed_cluster(self, cluster):
        # Existing work saturates the cluster through slot 20; the new
        # workflow wants everything done by slot 12.
        commitments = [
            existing(job_id=f"busy{i}", units=80, deadline=20, parallel=8)
            for i in range(2)
        ]
        wf = fork_join_workflow("w", 4, 0, 12)
        decision = check_admission(wf, commitments, cluster, 0)
        assert not decision.admit
        assert decision.total_shortfall > 0
        assert all(units > 0 for units in decision.shortfall_units.values())

    def test_impossible_window_rejected_alone(self, cluster):
        # 6 jobs of default spec in a 4-slot window cannot fit even alone.
        wf = fork_join_workflow("w", 8, 0, 4)
        decision = check_admission(wf, [], cluster, 0)
        assert not decision.admit

    def test_shortfall_names_real_jobs(self, cluster):
        commitments = [existing(units=120, deadline=15, parallel=8)]
        wf = fork_join_workflow("w", 6, 0, 10)
        decision = check_admission(wf, commitments, cluster, 0)
        if not decision.admit:
            known = {f"w-j{i}" for i in range(8)} | {"busy"}
            assert set(decision.shortfall_units) <= known


class TestConfig:
    def test_slack_makes_admission_stricter(self, cluster):
        wf = fork_join_workflow("w", 4, 0, 16)
        no_slack = check_admission(
            wf, [], cluster, 0, config=PlannerConfig(slack_slots=0)
        )
        big_slack = check_admission(
            wf, [], cluster, 0, config=PlannerConfig(slack_slots=6)
        )
        # Tightening every window by the slack can only reduce placements.
        assert big_slack.total_shortfall >= no_slack.total_shortfall


class TestPerJobInfeasibility:
    def test_single_job_window_too_small_is_rejected(self, cluster):
        """A job whose own window cannot hold its work (even alone on the
        cluster) must be rejected — admission never repairs windows."""
        from repro.model.job import Job, TaskSpec
        from repro.model.workflow import Workflow

        job = Job(
            job_id="w-big",
            tasks=TaskSpec(
                count=2, duration_slots=10, demand=ResourceVector(cpu=2, mem=4)
            ),
            workflow_id="w",
        )
        # Serial length is 10 slots; window is 5.
        wf = Workflow.from_jobs("w", [job], [], 0, 5)
        decision = check_admission(
            wf, [], cluster, 0, config=PlannerConfig(slack_slots=0)
        )
        assert not decision.admit
        assert decision.shortfall_units.get("w-big", 0) > 0


# -- property: sequential admission never over-commits ------------------------------
#
# The online service admits workflows one at a time, folding each accepted
# workflow's decomposed demands into the "existing" set for the next check.
# The safety property of that bookkeeping: whatever subset the sequential
# process accepts must still be *jointly* feasible — identical to having
# admitted the accepted set as a single batch.  If the accounting dropped or
# double-counted demands, a later joint check would certify a shortfall.

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.decomposition import decompose_deadline  # noqa: E402


def _demands_of(workflow, capacity):
    """A workflow's demands exactly as check_admission derives them."""
    windows = decompose_deadline(workflow, capacity).windows
    return [
        JobDemand(
            job_id=job.job_id,
            release_slot=windows[job.job_id].release_slot,
            deadline_slot=windows[job.job_id].deadline_slot,
            units=job.tasks.total_task_slots,
            unit_demand=job.tasks.demand,
            max_parallel=job.tasks.count,
        )
        for job in workflow.jobs
    ]


@st.composite
def workflow_batches(draw):
    """2-4 small workflows with windows from hopeless to generous."""
    k = draw(st.integers(min_value=2, max_value=4))
    workflows = []
    for i in range(k):
        shape = draw(st.sampled_from(["chain", "fork"]))
        size = draw(st.integers(min_value=1, max_value=3))
        window = draw(st.integers(min_value=3, max_value=40))
        if shape == "chain":
            workflows.append(chain_workflow(f"w{i}", size, 0, window))
        else:
            workflows.append(fork_join_workflow(f"w{i}", size, 0, window))
    return workflows


class TestSequentialAdmissionProperty:
    @given(workflow_batches())
    @settings(deadline=None, max_examples=25)
    def test_one_at_a_time_never_over_commits(self, workflows):
        capacity = ClusterCapacity.uniform(cpu=8, mem=16)
        config = PlannerConfig(slack_slots=0)
        committed: list[JobDemand] = []
        accepted = []
        for workflow in workflows:
            decision = check_admission(
                workflow, committed, capacity, now_slot=0, config=config
            )
            if decision.admit:
                accepted.append(workflow)
                committed.extend(_demands_of(workflow, capacity))
        if not accepted:
            return
        # Joint feasibility of the accepted set, checked as one batch: the
        # first accepted workflow against everything else that got in.  One
        # max-placement over the union either places all work or refutes
        # the sequential bookkeeping.
        head, rest = accepted[0], accepted[1:]
        others: list[JobDemand] = []
        for workflow in rest:
            others.extend(_demands_of(workflow, capacity))
        joint = check_admission(head, others, capacity, now_slot=0, config=config)
        assert joint.admit, (
            f"sequential admission over-committed: accepted "
            f"{[w.workflow_id for w in accepted]} but the batch check "
            f"certifies shortfall {dict(joint.shortfall_units)}"
        )
