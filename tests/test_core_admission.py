"""Tests for the admission-control extension."""

import pytest

from repro.core.admission import check_admission
from repro.core.flowtime import JobDemand, PlannerConfig
from repro.model.cluster import ClusterCapacity
from repro.model.resources import ResourceVector
from repro.workloads.dag_generators import chain_workflow, fork_join_workflow


@pytest.fixture
def cluster():
    return ClusterCapacity.uniform(cpu=16, mem=32)


def existing(job_id="busy", release=0, deadline=20, units=40, cores=2, mem=4, parallel=8):
    return JobDemand(
        job_id=job_id,
        release_slot=release,
        deadline_slot=deadline,
        units=units,
        unit_demand=ResourceVector({"cpu": cores, "mem": mem}),
        max_parallel=parallel,
    )


class TestAdmit:
    def test_empty_cluster_admits_loose_workflow(self, cluster):
        wf = chain_workflow("w", 2, 0, 100)
        decision = check_admission(wf, [], cluster, now_slot=0)
        assert decision.admit
        assert decision.total_shortfall == 0
        assert 0.0 < decision.utilisation <= 1.0

    def test_headroom_reported(self, cluster):
        wf = chain_workflow("w", 2, 0, 400)
        loose = check_admission(wf, [], cluster, now_slot=0)
        tight = check_admission(chain_workflow("w", 2, 0, 30), [], cluster, 0)
        assert loose.admit and tight.admit
        # Max-placement packs greedily in both cases; what differs is that
        # the looser workflow keeps feasibility with more commitments.
        assert loose.utilisation <= 1.0 and tight.utilisation <= 1.0

    def test_admits_alongside_light_commitments(self, cluster):
        wf = chain_workflow("w", 2, 0, 200)
        decision = check_admission(
            wf, [existing(units=10, deadline=100)], cluster, 0
        )
        assert decision.admit


class TestReject:
    def test_rejects_over_committed_cluster(self, cluster):
        # Existing work saturates the cluster through slot 20; the new
        # workflow wants everything done by slot 12.
        commitments = [
            existing(job_id=f"busy{i}", units=80, deadline=20, parallel=8)
            for i in range(2)
        ]
        wf = fork_join_workflow("w", 4, 0, 12)
        decision = check_admission(wf, commitments, cluster, 0)
        assert not decision.admit
        assert decision.total_shortfall > 0
        assert all(units > 0 for units in decision.shortfall_units.values())

    def test_impossible_window_rejected_alone(self, cluster):
        # 6 jobs of default spec in a 4-slot window cannot fit even alone.
        wf = fork_join_workflow("w", 8, 0, 4)
        decision = check_admission(wf, [], cluster, 0)
        assert not decision.admit

    def test_shortfall_names_real_jobs(self, cluster):
        commitments = [existing(units=120, deadline=15, parallel=8)]
        wf = fork_join_workflow("w", 6, 0, 10)
        decision = check_admission(wf, commitments, cluster, 0)
        if not decision.admit:
            known = {f"w-j{i}" for i in range(8)} | {"busy"}
            assert set(decision.shortfall_units) <= known


class TestConfig:
    def test_slack_makes_admission_stricter(self, cluster):
        wf = fork_join_workflow("w", 4, 0, 16)
        no_slack = check_admission(
            wf, [], cluster, 0, config=PlannerConfig(slack_slots=0)
        )
        big_slack = check_admission(
            wf, [], cluster, 0, config=PlannerConfig(slack_slots=6)
        )
        # Tightening every window by the slack can only reduce placements.
        assert big_slack.total_shortfall >= no_slack.total_shortfall


class TestPerJobInfeasibility:
    def test_single_job_window_too_small_is_rejected(self, cluster):
        """A job whose own window cannot hold its work (even alone on the
        cluster) must be rejected — admission never repairs windows."""
        from repro.model.job import Job, TaskSpec
        from repro.model.workflow import Workflow

        job = Job(
            job_id="w-big",
            tasks=TaskSpec(
                count=2, duration_slots=10, demand=ResourceVector(cpu=2, mem=4)
            ),
            workflow_id="w",
        )
        # Serial length is 10 slots; window is 5.
        wf = Workflow.from_jobs("w", [job], [], 0, 5)
        decision = check_admission(
            wf, [], cluster, 0, config=PlannerConfig(slack_slots=0)
        )
        assert not decision.admit
        assert decision.shortfall_units.get("w-big", 0) > 0
