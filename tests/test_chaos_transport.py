"""Transport chaos + client resilience: seeded wire faults, exactly-once
under duplication, circuit breaker, retry budget.

The chaos transport's whole value is *reproducibility*: a fault schedule
is a pure function of (seed, call sequence), so any failure it provokes
can be replayed byte-for-byte.  These tests pin that property, plus the
safety claim that rides on it — duplicated submissions stay exactly-once
because admission dedupes on idempotency keys, not on transport luck.
"""

import pytest

from repro.chaos import ChaosTransport, ChaosTransportConfig
from repro.cluster import DetectorConfig, FailureDetector, LocalShard, slice_capacity
from repro.model.cluster import ClusterCapacity
from repro.model.workflow import Workflow
from repro.obs import Observability
from repro.service import ServiceConfig
from repro.service.client import (
    CircuitBreaker,
    CircuitOpenError,
    HttpServiceClient,
    RetryBudget,
    ServiceUnavailableError,
)
from tests.conftest import deadline_job


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_shard(tmp_path, name="s0"):
    config = ServiceConfig(
        realtime=True,
        slot_seconds=3600.0,
        journal_path=str(tmp_path / f"{name}.jsonl"),
        journal_fsync=False,
    )
    capacity = slice_capacity(ClusterCapacity.uniform(cpu=60, mem=120), 3)[0]
    return LocalShard(name, capacity, config).start()


def make_workflow(wid: str) -> Workflow:
    jobs = [deadline_job(f"{wid}-j{j}", wid) for j in range(2)]
    return Workflow.from_jobs(wid, jobs, [(f"{wid}-j0", f"{wid}-j1")], 0, 2000)


# -- config validation -----------------------------------------------------------


def test_chaos_config_rejects_bad_probabilities():
    with pytest.raises(ValueError):
        ChaosTransportConfig(drop_prob=1.5)
    with pytest.raises(ValueError):
        ChaosTransportConfig(duplicate_prob=-0.1)
    with pytest.raises(ValueError):
        ChaosTransportConfig(delay_s=-1.0)


# -- seeded reproducibility ------------------------------------------------------


def drive(transport, n=40):
    """A fixed call sequence; returns the resulting fault log."""
    for i in range(n):
        try:
            transport.owns(f"t/w{i}")
        except OSError:
            pass
    return list(transport.fault_log)


def test_fault_schedule_is_a_pure_function_of_seed(tmp_path):
    config = ChaosTransportConfig(
        drop_prob=0.3, delay_prob=0.2, delay_s=0.0, duplicate_prob=0.2, seed=42
    )
    log_a = drive(ChaosTransport(make_shard(tmp_path / "a"), config))
    log_b = drive(ChaosTransport(make_shard(tmp_path / "b"), config))
    assert log_a == log_b
    assert log_a, "fault plan injected nothing — probabilities too low"
    kinds = {kind for kind, _ in log_a}
    assert kinds <= {"drop", "delay", "duplicate"}

    other = ChaosTransportConfig(
        drop_prob=0.3, delay_prob=0.2, delay_s=0.0, duplicate_prob=0.2, seed=43
    )
    log_c = drive(ChaosTransport(make_shard(tmp_path / "c"), other))
    assert log_c != log_a


def test_drop_raises_and_never_reaches_the_shard(tmp_path):
    shard = make_shard(tmp_path)
    transport = ChaosTransport(shard, ChaosTransportConfig(drop_prob=1.0))
    workflow = make_workflow("t/w0")
    with pytest.raises(OSError):
        transport.submit_workflow(workflow, idempotency_key="k0")
    assert not shard.owns("t/w0")
    assert transport.fault_log == [("drop", "submit_workflow")]


def test_delay_still_delivers(tmp_path):
    shard = make_shard(tmp_path)
    transport = ChaosTransport(
        shard, ChaosTransportConfig(delay_prob=1.0, delay_s=0.0)
    )
    result = transport.submit_workflow(make_workflow("t/w1"), idempotency_key="k1")
    assert result.accepted
    assert shard.owns("t/w1")
    assert ("delay", "submit_workflow") in transport.fault_log


# -- exactly-once under duplication ----------------------------------------------


def test_duplicated_submission_stays_exactly_once(tmp_path):
    shard = make_shard(tmp_path)
    transport = ChaosTransport(shard, ChaosTransportConfig(duplicate_prob=1.0))
    workflow = make_workflow("t/w2")
    result = transport.submit_workflow(workflow, idempotency_key="k2")
    assert result.accepted  # the second (retransmitted) answer
    assert transport.fault_log == [("duplicate", "submit_workflow")]
    # The wire delivered the submission twice; admission saw it once.
    assert shard.workflow_ids().count("t/w2") == 1
    assert shard.status().accepted_workflows == 1


def test_duplicate_without_idempotency_key_is_caught_by_owner_check(tmp_path):
    # Workflows resubmitted without a key still dedupe on ownership: the
    # service refuses a second copy of a workflow id it already owns.
    shard = make_shard(tmp_path)
    transport = ChaosTransport(shard, ChaosTransportConfig(duplicate_prob=1.0))
    result = transport.submit_workflow(make_workflow("t/w3"))
    assert shard.workflow_ids().count("t/w3") == 1
    assert result is not None


# -- partition -------------------------------------------------------------------


def test_partition_cuts_and_heal_restores(tmp_path):
    shard = make_shard(tmp_path)
    transport = ChaosTransport(shard, ChaosTransportConfig())
    assert transport.alive()
    transport.partition()
    assert transport.partitioned
    with pytest.raises(OSError):
        transport.alive()
    with pytest.raises(OSError):
        transport.submit_workflow(make_workflow("t/w4"))
    assert [kind for kind, _ in transport.fault_log] == ["partition", "partition"]
    transport.heal()
    assert transport.alive()
    assert transport.submit_workflow(make_workflow("t/w4")).accepted


def test_lifecycle_and_identity_pass_through_unfaulted(tmp_path):
    shard = make_shard(tmp_path)
    transport = ChaosTransport(shard, ChaosTransportConfig(drop_prob=1.0))
    transport.partition()
    # kill/restart model walking to the machine: never faulted.
    transport.kill()
    transport.restart()
    assert shard.alive()
    assert transport.name == "s0"
    assert transport.journal_path == shard.journal_path
    assert transport.wrapped is shard


def test_partitioned_shard_reads_as_dead_then_recovers(tmp_path):
    shard = make_shard(tmp_path)
    transport = ChaosTransport(shard, ChaosTransportConfig())
    clock = FakeClock()
    detector = FailureDetector(
        [transport],
        DetectorConfig(suspect_after=1, dead_after_s=0.0),
        clock=clock,
    )
    assert detector.probe_all() == {"s0": "live"}
    transport.partition()
    clock.advance(1.0)
    assert detector.probe(transport) == "dead"
    transport.heal()
    assert detector.probe(transport) == "live"


# -- circuit breaker -------------------------------------------------------------


def test_breaker_opens_after_threshold_and_fast_fails():
    clock = FakeClock()
    obs = Observability()
    breaker = CircuitBreaker(
        failure_threshold=3, reset_timeout_s=2.0, name="s1", obs=obs, clock=clock
    )
    for _ in range(2):
        assert breaker.allow()
        breaker.record_failure()
    assert breaker.state == "closed"
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()  # fast fail, no wire call
    snapshot = obs.registry.snapshot()
    assert snapshot["router.breaker.opens.s1"]["value"] == 1.0
    assert snapshot["router.breaker.state.s1"]["value"] == 2.0
    assert snapshot["router.breaker.fast_fails.s1"]["value"] == 1.0


def test_breaker_half_open_probe_then_close():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0, clock=clock)
    breaker.record_failure()
    assert breaker.state == "open"
    clock.advance(4.9)
    assert not breaker.allow()
    clock.advance(0.2)
    assert breaker.allow()  # the half-open probe slot
    assert breaker.state == "half_open"
    assert not breaker.allow()  # one probe at a time
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow()


def test_breaker_half_open_probe_failure_reopens():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0, clock=clock)
    breaker.record_failure()
    clock.advance(1.5)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()  # timeout restarts from the re-open
    clock.advance(1.5)
    assert breaker.allow()


def test_client_fast_fails_while_breaker_is_open():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=60.0, clock=clock)
    # Nothing listens on this port: every attempt is a transport failure.
    client = HttpServiceClient(
        "http://127.0.0.1:9", timeout=0.2, max_retries=0, breaker=breaker
    )
    for _ in range(2):
        with pytest.raises(ServiceUnavailableError):
            client.status()
    assert breaker.state == "open"
    with pytest.raises(CircuitOpenError):
        client.status()
    assert not client.healthy()  # CircuitOpenError reads as unhealthy


# -- retry budget ----------------------------------------------------------------


def test_retry_budget_spends_and_refills():
    clock = FakeClock()
    budget = RetryBudget(capacity=2.0, refill_per_s=1.0, clock=clock)
    assert budget.spend()
    assert budget.spend()
    assert not budget.spend()  # empty: give up instead of retrying
    clock.advance(1.0)
    assert budget.spend()
    clock.advance(100.0)  # refill clamps at capacity...
    assert budget.spend(2.0)  # ...so exactly the full bucket is spendable
    assert not budget.spend(0.5)


def test_retry_budget_validation():
    with pytest.raises(ValueError):
        RetryBudget(capacity=0.0)
    with pytest.raises(ValueError):
        RetryBudget(refill_per_s=-1.0)
