"""Tests for the DRF mode of the Fair scheduler and the planning column."""

from repro.analysis.experiments import run_comparison
from repro.analysis.reporting import format_comparison_table
from repro.model.cluster import ClusterCapacity
from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.schedulers.fair import FairScheduler
from repro.simulator.engine import Simulation, SimulationConfig
from repro.workloads.traces import generate_trace


def job(job_id, arrival, count, duration, cores, mem):
    return Job(
        job_id=job_id,
        tasks=TaskSpec(
            count=count,
            duration_slots=duration,
            demand=ResourceVector({CPU: cores, MEM: mem}),
        ),
        kind=JobKind.ADHOC,
        arrival_slot=arrival,
    )


class TestDrfMode:
    def test_drf_equalises_dominant_shares(self):
        """A CPU-heavy and a memory-heavy job on a square cluster: DRF gives
        each roughly the same dominant share, so both finish around the same
        time, while plain unit-fairness lets the cheap-dominant job hog."""
        cluster = ClusterCapacity.uniform(cpu=12, mem=12)
        cpu_heavy = job("cpu", 0, count=12, duration=4, cores=2, mem=1)
        mem_heavy = job("mem", 0, count=12, duration=4, cores=1, mem=2)
        result = Simulation(
            cluster,
            FairScheduler(drf=True),
            adhoc_jobs=[cpu_heavy, mem_heavy],
            config=SimulationConfig(record_execution=True),
        ).run()
        assert result.finished
        # Per slot, DRF alternates so each job runs ~same number of units.
        first = result.execution[0]
        assert abs(first.get("cpu", 0) - first.get("mem", 0)) <= 1

    def test_plain_fair_unit_round_robin(self):
        cluster = ClusterCapacity.uniform(cpu=12, mem=12)
        a = job("a", 0, count=12, duration=4, cores=1, mem=1)
        b = job("b", 0, count=12, duration=4, cores=1, mem=1)
        result = Simulation(
            cluster,
            FairScheduler(drf=False),
            adhoc_jobs=[a, b],
            config=SimulationConfig(record_execution=True),
        ).run()
        first = result.execution[0]
        assert first.get("a", 0) == first.get("b", 0)

    def test_drf_completes_mixed_workload(self, small_cluster):
        trace = generate_trace(
            n_workflows=2, jobs_per_workflow=4, n_adhoc=5,
            capacity=small_cluster, seed=6,
        )
        result = Simulation(
            small_cluster,
            FairScheduler(drf=True),
            workflows=trace.workflows,
            adhoc_jobs=trace.adhoc_jobs,
        ).run()
        assert result.finished


class TestPlanningColumn:
    def test_planning_column_appended(self, small_cluster):
        trace = generate_trace(
            n_workflows=1, jobs_per_workflow=3, n_adhoc=3,
            capacity=small_cluster, seed=2,
        )
        comparison = run_comparison(trace, small_cluster, ["FlowTime", "FIFO"])
        plain = format_comparison_table(comparison)
        with_planning = format_comparison_table(comparison, planning=True)
        assert "plan (ms/call)" not in plain
        assert "plan (ms/call)" in with_planning
        # FlowTime (LP) spends more per call than FIFO (greedy).
        rows = {
            line.split()[0]: line
            for line in with_planning.splitlines()[2:]
        }
        ft_ms = float(rows["FlowTime"].split()[-1])
        fifo_ms = float(rows["FIFO"].split()[-1])
        assert ft_ms > fifo_ms
