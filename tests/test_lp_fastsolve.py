"""Differential tests for the fastsolve combinatorial backend.

The contract under test (ISSUE 7): on every round subproblem the structure
detector certifies, the parametric max-flow solve must agree with the exact
LP backends — same status, objective within 1e-9 relative — and the
detector must never claim an instance whose lowering would be wrong.  The
corpus is built from the oracle's seeded instances by replaying the lexmin
ladder, so the LPs are exactly the ones production poses, frozen rows and
all.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.analysis.experiments import canonical_windows, run_one
from repro.core.lexmin import build_round_lp
from repro.core.lp_formulation import ScheduleEntry, build_schedule_problem
from repro.lp import (
    LinearProgram,
    LPStatus,
    detect_interval_structure,
    solve_lp,
)
from repro.lp import fastsolve
from repro.model.cluster import ClusterCapacity
from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import ResourceVector
from repro.model.workflow import Workflow
from repro.obs import MemorySink, Observability, use_obs
from repro.simulator.engine import SimulationConfig
from repro.simulator.metrics import summarize
from repro.verify import ScheduleValidator
from repro.verify.oracle import generate_instance
from repro.workloads.traces import SyntheticTrace

#: Relative objective-agreement bound (ISSUE 7 acceptance criterion).
_OBJ_TOL = 1e-9
#: Freezing threshold mirrored from the lexmin ladder.
_DUAL_TOL = 1e-7
_FREEZE_RELAX = 1e-7


def _schedule_problem(instance, *, mode="coupled"):
    """Lower an oracle instance to the production ScheduleProblem."""
    resources = sorted(instance.capacity)
    caps = np.tile(
        [float(instance.capacity[name]) for name in resources],
        (instance.horizon, 1),
    )
    entries = [
        ScheduleEntry(
            job_id=job.job_id,
            release=job.release,
            deadline=job.deadline,
            units=job.units,
            unit_demand=ResourceVector(job.demand),
            max_parallel=job.max_parallel,
        )
        for job in instance.jobs
    ]
    return build_schedule_problem(entries, caps, resources, mode=mode)


def _ladder_lps(problem, max_rounds=3):
    """The round LPs the lexmin ladder would pose, via the exact backend.

    Mirrors the ladder's utilisation-threshold freezing so later rounds
    carry realistic frozen rows; stops early on infeasibility (the
    infeasible LP itself stays in the corpus — status agreement matters
    there too).
    """
    caps = problem.cell_caps()
    n_cells = len(problem.util_cells)
    frozen = np.full(n_cells, np.inf)
    active = list(range(n_cells))
    lps = []
    for _ in range(max_rounds):
        if not active:
            break
        lp = build_round_lp(problem, active, frozen, caps)
        lps.append(lp)
        solution = solve_lp(lp, backend="highs")
        if solution.status is not LPStatus.OPTIMAL:
            break
        theta = float(solution.x[-1])
        x = solution.x[: problem.n_vars]
        util = np.asarray(problem.a_util[active] @ x).ravel() / caps[active]
        tight = [
            cell
            for cell, value in zip(active, util)
            if value >= theta - _DUAL_TOL * max(theta, 1.0)
        ]
        if not tight:
            tight = list(active)
        for cell in tight:
            frozen[cell] = min(
                theta * caps[cell] * (1.0 + _FREEZE_RELAX) + _FREEZE_RELAX,
                caps[cell],
            )
        active = [cell for cell in active if not np.isfinite(frozen[cell])]
        if theta <= 1e-9:
            break
    return lps


@pytest.fixture(scope="module")
def corpus():
    """>= 200 seeded round subproblems across both structured regimes."""
    lps = []
    for seed in range(150):
        problem = _schedule_problem(generate_instance(seed, single_resource=True))
        lps.extend(
            (seed, "coupled-1r", lp) for lp in _ladder_lps(problem)
        )
    for seed in range(60):
        problem = _schedule_problem(generate_instance(seed), mode="paper")
        lps.extend((seed, "paper-2r", lp) for lp in _ladder_lps(problem))
    return lps


class TestDifferential:
    def test_corpus_is_large_enough(self, corpus):
        assert len(corpus) >= 200

    def test_round_subproblems_are_structured(self, corpus):
        # Both regimes are exactly the theta-form interval class: the
        # detector must certify every single ladder LP.
        unstructured = [
            (seed, kind, detect_interval_structure(lp).reason)
            for seed, kind, lp in corpus
            if not fastsolve.supports(lp)
        ]
        assert not unstructured, unstructured[:5]

    def test_fastsolve_agrees_with_highs_on_every_round_lp(self, corpus):
        obs = Observability()
        with use_obs(obs):
            for seed, kind, lp in corpus:
                exact = solve_lp(lp, backend="highs")
                fast = fastsolve.solve(lp)
                assert fast.status is exact.status, (seed, kind, fast.message)
                if exact.status is not LPStatus.OPTIMAL:
                    continue
                diff = abs(fast.objective - exact.objective)
                bound = _OBJ_TOL * max(1.0, abs(exact.objective))
                assert diff <= bound, (seed, kind, diff)
        # Every agreement above must come from the combinatorial path, not
        # from a silent fallback to HiGHS.
        snapshot = obs.registry.snapshot()
        assert snapshot.get("lp.fastsolve.bailout", {"value": 0})["value"] == 0
        assert snapshot.get("lp.fastsolve.miss", {"value": 0})["value"] == 0
        optimal = snapshot["lp.fastsolve.hit"]["value"]
        assert optimal >= 1

    def test_fastsolve_solutions_are_primal_feasible(self, corpus):
        for seed, kind, lp in corpus:
            fast = fastsolve.solve(lp)
            if fast.status is not LPStatus.OPTIMAL:
                continue
            x = fast.x
            assert np.all(x >= -1e-9), (seed, kind)
            assert np.all(x <= lp.ub + 1e-9), (seed, kind)
            eq_gap = np.abs(np.asarray(lp.a_eq @ x).ravel() - lp.b_eq)
            assert eq_gap.max(initial=0.0) <= 1e-6, (seed, kind)
            ub_gap = np.asarray(lp.a_ub @ x).ravel() - lp.b_ub
            assert ub_gap.max(initial=0.0) <= 1e-6, (seed, kind)

    def test_small_instances_also_agree_with_simplex(self, corpus):
        checked = 0
        for seed, kind, lp in corpus:
            if lp.n_variables > 20 or checked >= 25:
                continue
            dense = solve_lp(lp, backend="simplex")
            fast = fastsolve.solve(lp)
            assert fast.status is dense.status, (seed, kind)
            if dense.status is LPStatus.OPTIMAL:
                diff = abs(fast.objective - dense.objective)
                assert diff <= _OBJ_TOL * max(1.0, abs(dense.objective))
            checked += 1
        assert checked >= 10

    def test_joint_overcommitment_is_proved_infeasible(self):
        # Two jobs of 8 units into 2 slots x 5 cpu: every window is
        # individually feasible, the joint load is not.  The zero-slope cut
        # argument must return INFEASIBLE, exactly like the LP backends.
        entries = [
            ScheduleEntry(
                job_id=f"j{i}",
                release=0,
                deadline=2,
                units=8,
                unit_demand=ResourceVector({"cpu": 1}),
                max_parallel=8,
            )
            for i in range(2)
        ]
        problem = build_schedule_problem(entries, np.full((2, 1), 5.0), ("cpu",))
        caps = problem.cell_caps()
        lp = build_round_lp(
            problem,
            range(len(problem.util_cells)),
            np.full(len(problem.util_cells), np.inf),
            caps,
        )
        assert fastsolve.supports(lp)
        assert solve_lp(lp, backend="highs").status is LPStatus.INFEASIBLE
        assert fastsolve.solve(lp).status is LPStatus.INFEASIBLE


def _structured_round1():
    entries = [
        ScheduleEntry(
            job_id="a",
            release=0,
            deadline=3,
            units=4,
            unit_demand=ResourceVector({"cpu": 2}),
            max_parallel=2,
        ),
        ScheduleEntry(
            job_id="b",
            release=1,
            deadline=4,
            units=3,
            unit_demand=ResourceVector({"cpu": 2}),
            max_parallel=3,
        ),
    ]
    problem = build_schedule_problem(entries, np.full((4, 1), 10.0), ("cpu",))
    caps = problem.cell_caps()
    return build_round_lp(
        problem,
        range(len(problem.util_cells)),
        np.full(len(problem.util_cells), np.inf),
        caps,
    )


def _mutated(lp, **overrides):
    fields = dict(
        c=lp.c.copy(),
        a_ub=lp.a_ub.copy(),
        b_ub=lp.b_ub.copy(),
        a_eq=lp.a_eq.copy(),
        b_eq=lp.b_eq.copy(),
        lb=lp.lb.copy(),
        ub=lp.ub.copy(),
    )
    fields.update(overrides)
    return LinearProgram(**fields)


class TestDetectionNeverMisfires:
    """supports() must decline everything outside the certified class."""

    def test_baseline_is_structured(self):
        assert fastsolve.supports(_structured_round1())

    def test_multi_objective_is_declined(self):
        lp = _structured_round1()
        c = lp.c.copy()
        c[0] = 0.5  # a balancing-style weighted objective, not min theta
        assert not fastsolve.supports(_mutated(lp, c=c))

    def test_maximising_theta_is_declined(self):
        lp = _structured_round1()
        assert not fastsolve.supports(_mutated(lp, c=-lp.c))

    def test_nonzero_lower_bounds_are_declined(self):
        lp = _structured_round1()
        lb = lp.lb.copy()
        lb[0] = 0.5
        assert not fastsolve.supports(_mutated(lp, lb=lb))

    def test_positive_theta_coefficient_is_declined(self):
        lp = _structured_round1()
        a_ub = lp.a_ub.tolil()
        a_ub[0, lp.n_variables - 1] = 1.0  # theta now *relaxes* the row
        assert not fastsolve.supports(_mutated(lp, a_ub=a_ub.tocsr()))

    def test_variable_spanning_two_cells_is_declined(self):
        # The coupled two-resource regime: one variable feeds a cpu cell
        # and a mem cell at once, which breaks the transportation lowering.
        entries = [
            ScheduleEntry(
                job_id="a",
                release=0,
                deadline=3,
                units=4,
                unit_demand=ResourceVector({"cpu": 1, "mem": 2}),
                max_parallel=2,
            ),
            ScheduleEntry(
                job_id="b",
                release=0,
                deadline=3,
                units=2,
                unit_demand=ResourceVector({"cpu": 2, "mem": 1}),
                max_parallel=2,
            ),
        ]
        problem = build_schedule_problem(
            entries, np.tile([8.0, 16.0], (3, 1)), ("cpu", "mem")
        )
        caps = problem.cell_caps()
        lp = build_round_lp(
            problem,
            range(len(problem.util_cells)),
            np.full(len(problem.util_cells), np.inf),
            caps,
        )
        structure = detect_interval_structure(lp)
        assert not structure.structured
        assert structure.reason  # the decline is explained, not silent

    def test_plain_lp_without_theta_is_declined(self):
        lp = LinearProgram(
            c=[1.0, 1.0],
            a_ub=sparse.csr_matrix([[-1.0, -1.0]]),
            b_ub=[-2.0],
        )
        assert not fastsolve.supports(lp)


def _single_resource_workload():
    capacity = ClusterCapacity(base=ResourceVector({"cpu": 12}))
    jobs = [
        Job(
            job_id="wf-a",
            tasks=TaskSpec(
                count=6, duration_slots=2, demand=ResourceVector({"cpu": 2})
            ),
            workflow_id="wf",
            name="a",
        ),
        Job(
            job_id="wf-b",
            tasks=TaskSpec(
                count=4, duration_slots=3, demand=ResourceVector({"cpu": 1})
            ),
            workflow_id="wf",
            name="b",
        ),
        Job(
            job_id="wf-c",
            tasks=TaskSpec(
                count=5, duration_slots=2, demand=ResourceVector({"cpu": 2})
            ),
            workflow_id="wf",
            name="c",
        ),
    ]
    workflow = Workflow.from_jobs(
        "wf",
        jobs,
        [("wf-a", "wf-b"), ("wf-a", "wf-c")],
        start_slot=0,
        deadline_slot=40,
        name="wf",
    )
    adhoc = tuple(
        Job(
            job_id=f"q{i}",
            tasks=TaskSpec(
                count=3, duration_slots=1, demand=ResourceVector({"cpu": 1})
            ),
            kind=JobKind.ADHOC,
            arrival_slot=2 * i,
        )
        for i in range(3)
    )
    return SyntheticTrace(workflows=(workflow,), adhoc_jobs=adhoc), capacity


def _run(trace, capacity, lp_backend):
    sink = MemorySink()
    obs = Observability(sink=sink)
    outcome = run_one(
        "FlowTime",
        trace,
        capacity,
        config=SimulationConfig(record_execution=True, lp_backend=lp_backend),
        obs=obs,
    )
    return outcome, obs


class TestEndToEnd:
    def test_single_resource_run_is_validator_clean_under_fastsolve(self):
        trace, capacity = _single_resource_workload()
        outcome, obs = _run(trace, capacity, "fastsolve")
        windows = canonical_windows(trace, capacity)
        jobs = [job for wf in trace.workflows for job in wf.jobs]
        jobs += list(trace.adhoc_jobs)
        validator = ScheduleValidator(
            capacity, workflows=trace.workflows, jobs=jobs, windows=windows
        )
        report = validator.validate(outcome.result)
        report.raise_if_violations()
        summary = summarize(outcome.result, windows)
        assert summary["jobs_missed"] == 0

        # The single-resource coupled regime is the structured one: the run
        # must actually have exercised the flow path, with no bailouts.
        snapshot = obs.registry.snapshot()
        assert snapshot.get("lp.fastsolve.hit", {"value": 0})["value"] > 0
        assert snapshot.get("lp.fastsolve.bailout", {"value": 0})["value"] == 0

    def test_single_resource_run_matches_default_backend_outcome(self):
        trace, capacity = _single_resource_workload()
        windows = canonical_windows(trace, capacity)
        fast, _ = _run(trace, capacity, "fastsolve")
        base, _ = _run(trace, capacity, None)
        fast_summary = summarize(fast.result, windows)
        base_summary = summarize(base.result, windows)
        for key in ("jobs_missed", "workflows_missed", "jobs_completed"):
            if key in base_summary:
                assert fast_summary[key] == base_summary[key], key

    def test_lp_backend_reaches_directly_constructed_scheduler(self):
        # SimulationConfig.lp_backend must take effect even when the
        # scheduler object is built by hand and handed straight to
        # Simulation — not only on the build-by-name paths (CLI, run_one,
        # the service).
        from repro.schedulers.flowtime_sched import FlowTimeScheduler
        from repro.simulator.engine import Simulation

        trace, capacity = _single_resource_workload()
        obs = Observability()
        sim = Simulation(
            capacity,
            FlowTimeScheduler(),
            workflows=trace.workflows,
            adhoc_jobs=trace.adhoc_jobs,
            config=SimulationConfig(lp_backend="fastsolve"),
            obs=obs,
        )
        sim.run()
        snapshot = obs.registry.snapshot()
        assert snapshot.get("lp.fastsolve.hit", {"value": 0})["value"] > 0

    def test_explicit_planner_backend_wins_over_lp_backend(self):
        # A planner explicitly pinned to a non-default backend is not
        # overridden by SimulationConfig.lp_backend.
        from repro.core.flowtime import PlannerConfig
        from repro.schedulers.flowtime_sched import FlowTimeScheduler
        from repro.simulator.engine import Simulation

        trace, capacity = _single_resource_workload()
        scheduler = FlowTimeScheduler(PlannerConfig(backend="simplex"))
        Simulation(
            capacity,
            scheduler,
            workflows=trace.workflows,
            adhoc_jobs=trace.adhoc_jobs,
            config=SimulationConfig(lp_backend="fastsolve"),
        )
        assert scheduler.planner.config.backend == "simplex"
