"""Tests for the total-unimodularity checks (Lemma 2 machinery)."""

import numpy as np
import pytest

from repro.lp.unimodular import (
    has_consecutive_ones_columns,
    is_totally_unimodular,
    max_fractionality,
)


class TestBruteForceTU:
    def test_identity_is_tu(self):
        assert is_totally_unimodular(np.eye(4))

    def test_interval_matrix_is_tu(self):
        matrix = np.array(
            [
                [1, 1, 0, 0],
                [0, 1, 1, 0],
                [0, 0, 1, 1],
            ]
        )
        assert is_totally_unimodular(matrix)

    def test_classic_non_tu(self):
        # Incidence-like matrix with determinant 2 submatrix (odd cycle).
        matrix = np.array(
            [
                [1, 1, 0],
                [0, 1, 1],
                [1, 0, 1],
            ]
        )
        assert not is_totally_unimodular(matrix)

    def test_entries_outside_pm1_fail_fast(self):
        assert not is_totally_unimodular(np.array([[2.0]]))

    def test_max_order_truncation(self):
        matrix = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]])
        # The violating submatrix has order 3; truncating at 2 passes.
        assert is_totally_unimodular(matrix, max_order=2)
        assert not is_totally_unimodular(matrix, max_order=3)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            is_totally_unimodular(np.ones(3))


class TestIntervalMatrix:
    def test_consecutive_ones(self):
        matrix = np.array([[1, 0], [1, 1], [0, 1], [0, 1]])
        assert has_consecutive_ones_columns(matrix)

    def test_gap_fails(self):
        matrix = np.array([[1], [0], [1]])
        assert not has_consecutive_ones_columns(matrix)

    def test_non_binary_fails(self):
        assert not has_consecutive_ones_columns(np.array([[2.0]]))

    def test_empty_columns_ok(self):
        assert has_consecutive_ones_columns(np.zeros((3, 2)))


class TestFractionality:
    def test_integral_vector(self):
        assert max_fractionality(np.array([1.0, 2.0, -3.0])) == 0.0

    def test_half_is_worst(self):
        assert max_fractionality(np.array([1.5, 2.1])) == pytest.approx(0.5)

    def test_empty(self):
        assert max_fractionality(np.array([])) == 0.0
