"""Tests for the LP presolve reductions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp.presolve import PresolveError, presolve, solve_with_presolve
from repro.lp.problem import LinearProgram, LPStatus
from repro.lp.solver import solve_lp


class TestFixedVariables:
    def test_fixed_variable_substituted(self):
        # x0 fixed at 2; minimise x1 with x0 + x1 >= 5 -> x1 = 3, obj 3+2c0.
        lp = LinearProgram(
            c=[1.0, 1.0],
            a_ub=[[-1.0, -1.0]],
            b_ub=[-5.0],
            lb=[2.0, 0.0],
            ub=[2.0, np.inf],
        )
        reduced, restorer = presolve(lp)
        assert reduced.n_variables == 1
        solution = solve_with_presolve(lp)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(5.0)
        assert solution.x[0] == pytest.approx(2.0)
        assert solution.x[1] == pytest.approx(3.0)

    def test_all_fixed_falls_back(self):
        lp = LinearProgram(c=[1.0], lb=[3.0], ub=[3.0])
        solution = solve_with_presolve(lp)
        assert solution.is_optimal
        assert solution.x[0] == pytest.approx(3.0)


class TestSingletonRows:
    def test_positive_singleton_tightens_upper(self):
        # 2 x0 <= 6 -> ub 3.
        lp = LinearProgram(c=[-1.0], a_ub=[[2.0]], b_ub=[6.0])
        reduced, _ = presolve(lp)
        assert reduced.a_ub.shape[0] == 0
        assert reduced.ub[0] == pytest.approx(3.0)

    def test_negative_singleton_tightens_lower(self):
        # -x0 <= -2 -> lb 2.
        lp = LinearProgram(c=[1.0], a_ub=[[-1.0]], b_ub=[-2.0])
        reduced, _ = presolve(lp)
        assert reduced.lb[0] == pytest.approx(2.0)

    def test_crossed_bounds_detected(self):
        # x0 <= 1 and x0 >= 2.
        lp = LinearProgram(c=[1.0], a_ub=[[1.0], [-1.0]], b_ub=[1.0, -2.0])
        with pytest.raises(PresolveError):
            presolve(lp)

    def test_solve_with_presolve_reports_infeasible(self):
        lp = LinearProgram(c=[1.0], a_ub=[[1.0], [-1.0]], b_ub=[1.0, -2.0])
        assert solve_with_presolve(lp).status is LPStatus.INFEASIBLE


class TestEmptyRows:
    def test_consistent_empty_rows_dropped(self):
        lp = LinearProgram(
            c=[1.0, 1.0],
            a_ub=[[0.0, 0.0], [1.0, 1.0]],
            b_ub=[5.0, 4.0],
        )
        reduced, _ = presolve(lp)
        assert reduced.a_ub.shape[0] == 1

    def test_infeasible_empty_le_row(self):
        lp = LinearProgram(c=[1.0], a_ub=[[0.0]], b_ub=[-1.0])
        with pytest.raises(PresolveError):
            presolve(lp)

    def test_empty_eq_row_after_fixing(self):
        # x0 fixed at 1 turns the equality 2 x0 = 3 into 0 = 1: infeasible.
        lp = LinearProgram(
            c=[1.0], a_eq=[[2.0]], b_eq=[3.0], lb=[1.0], ub=[1.0]
        )
        with pytest.raises(PresolveError):
            presolve(lp)


class TestEquivalence:
    @settings(deadline=None, max_examples=30)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_presolved_objective_matches_direct(self, seed):
        rng = np.random.default_rng(seed)
        n, m = 5, 4
        lb = np.zeros(n)
        ub = rng.uniform(1.0, 6.0, size=n)
        fix = rng.random(n) < 0.3
        ub[fix] = lb[fix] = rng.uniform(0.0, 2.0, size=fix.sum())
        lp = LinearProgram(
            c=rng.normal(size=n),
            a_ub=rng.normal(size=(m, n)),
            b_ub=rng.uniform(1.0, 6.0, size=m),
            lb=lb,
            ub=ub,
        )
        direct = solve_lp(lp)
        via_presolve = solve_with_presolve(lp)
        assert direct.status is via_presolve.status
        if direct.is_optimal:
            assert via_presolve.objective == pytest.approx(
                direct.objective, abs=1e-6
            )
            # The restored point is feasible for the original program.
            x = via_presolve.x
            assert np.all(x >= lp.lb - 1e-7)
            assert np.all(x <= lp.ub + 1e-7)
            assert np.all(np.asarray(lp.a_ub @ x).ravel() <= lp.b_ub + 1e-6)
