"""Unit tests for the LinearProgram container and solver registry."""

import numpy as np
import pytest
from scipy import sparse

from repro.lp import LinearProgram, LPStatus, available_backends, solve_lp
from repro.lp.problem import LPSolution


class TestLinearProgram:
    def test_defaults(self):
        lp = LinearProgram(c=[1.0, 2.0])
        assert lp.n_variables == 2
        assert lp.n_constraints == 0
        assert np.all(lp.lb == 0)
        assert np.all(np.isinf(lp.ub))

    def test_rejects_empty_objective(self):
        with pytest.raises(ValueError):
            LinearProgram(c=[])

    def test_rejects_row_mismatch(self):
        with pytest.raises(ValueError):
            LinearProgram(c=[1.0], a_ub=[[1.0]], b_ub=[1.0, 2.0])

    def test_rejects_column_mismatch(self):
        with pytest.raises(ValueError):
            LinearProgram(c=[1.0], a_ub=[[1.0, 2.0]], b_ub=[1.0])

    def test_rejects_crossed_bounds(self):
        with pytest.raises(ValueError):
            LinearProgram(c=[1.0], lb=[2.0], ub=[1.0])

    def test_accepts_sparse(self):
        lp = LinearProgram(
            c=[1.0, 1.0],
            a_ub=sparse.csr_matrix([[1.0, 1.0]]),
            b_ub=[1.0],
        )
        assert lp.n_constraints == 1


class TestSolveRegistry:
    def test_backends_available(self):
        assert set(available_backends()) == {"fastsolve", "highs", "simplex"}

    def test_unknown_backend_raises(self):
        lp = LinearProgram(c=[1.0])
        with pytest.raises(ValueError):
            solve_lp(lp, backend="cplex")

    @pytest.mark.parametrize("backend", ["highs", "simplex"])
    def test_simple_minimum(self, backend):
        # min x + y  s.t. x + y >= 2  ->  objective 2.
        lp = LinearProgram(c=[1.0, 1.0], a_ub=[[-1.0, -1.0]], b_ub=[-2.0])
        sol = solve_lp(lp, backend=backend)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(2.0)

    @pytest.mark.parametrize("backend", ["highs", "simplex"])
    def test_infeasible(self, backend):
        # x <= 1 and x >= 2 simultaneously.
        lp = LinearProgram(c=[1.0], a_ub=[[1.0], [-1.0]], b_ub=[1.0, -2.0])
        assert solve_lp(lp, backend=backend).status is LPStatus.INFEASIBLE

    @pytest.mark.parametrize("backend", ["highs", "simplex"])
    def test_unbounded(self, backend):
        lp = LinearProgram(c=[-1.0])  # min -x, x >= 0, no upper bound
        assert solve_lp(lp, backend=backend).status is LPStatus.UNBOUNDED


class TestLPSolution:
    def test_require_optimal_raises_on_failure(self):
        sol = LPSolution(status=LPStatus.INFEASIBLE, message="nope")
        with pytest.raises(RuntimeError, match="nope"):
            sol.require_optimal()

    def test_require_optimal_returns_x(self):
        sol = LPSolution(status=LPStatus.OPTIMAL, x=np.array([1.0]))
        assert sol.require_optimal()[0] == 1.0
