"""Tests for the comparison harness and reporting."""

import pytest

from repro.analysis.experiments import canonical_windows, run_comparison, run_one
from repro.analysis.reporting import (
    format_comparison_table,
    format_series,
    turnaround_ratios,
)
from repro.model.cluster import ClusterCapacity
from repro.workloads.traces import generate_trace


@pytest.fixture(scope="module")
def cluster():
    return ClusterCapacity.uniform(cpu=40, mem=80)


@pytest.fixture(scope="module")
def trace(cluster):
    return generate_trace(
        n_workflows=2, jobs_per_workflow=5, n_adhoc=6, capacity=cluster, seed=11
    )


@pytest.fixture(scope="module")
def comparison(trace, cluster):
    return run_comparison(trace, cluster, ["FlowTime", "FIFO"])


class TestCanonicalWindows:
    def test_covers_all_deadline_jobs(self, trace, cluster):
        windows = canonical_windows(trace, cluster)
        expected = {j.job_id for wf in trace.workflows for j in wf.jobs}
        assert set(windows) == expected


class TestRunOne:
    def test_outcome_fields(self, trace, cluster):
        outcome = run_one("EDF", trace, cluster)
        assert outcome.name == "EDF"
        assert outcome.result.finished
        assert outcome.adhoc_turnaround_s > 0
        assert len(outcome.deltas_seconds) == trace.n_deadline_jobs


class TestRunComparison:
    def test_all_algorithms_present(self, comparison):
        assert comparison.names == ("FlowTime", "FIFO")

    def test_outcome_lookup(self, comparison):
        assert comparison.outcome("FIFO").name == "FIFO"
        with pytest.raises(KeyError):
            comparison.outcome("nope")

    def test_shared_ground_truth(self, comparison, trace):
        assert len(comparison.windows) == trace.n_deadline_jobs

    def test_morpheus_history_synthesised(self, trace, cluster):
        result = run_comparison(trace, cluster, ["Morpheus"])
        assert result.outcome("Morpheus").result.finished


class TestReporting:
    def test_comparison_table_contains_all_rows(self, comparison):
        table = format_comparison_table(comparison)
        assert "FlowTime" in table and "FIFO" in table
        assert "jobs missed" in table

    def test_turnaround_ratios_baseline_is_one(self, comparison):
        ratios = turnaround_ratios(comparison, baseline="FlowTime")
        assert ratios["FlowTime"] == pytest.approx(1.0)
        assert ratios["FIFO"] > 0

    def test_format_series(self):
        text = format_series(
            "Fig. X",
            [1, 2, 3],
            {"alg": [0.1, 0.2, 0.3]},
            x_label="n",
        )
        assert "Fig. X" in text
        assert text.count("\n") == 5  # title + header + rule + 3 rows
