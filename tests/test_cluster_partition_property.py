"""Partition-tolerance property: no interleaving of submits, network
partitions, crashes, failovers and reconciles ever loses or duplicates
an accepted workflow.

This composes the sharding property test with the failure machinery: the
fleet's shards sit behind :class:`~repro.chaos.ChaosTransport` wrappers,
so a *partitioned* shard is indistinguishable from a dead one at the
wire — the detector declares it dead, the router reroutes around it, the
supervisor re-homes its journal — while the shard itself keeps running
and honestly believes it owns its workflows.  When the partition heals,
the supervisor's fencing pass must strip the returned "zombie" of
everything that was re-homed, leaving exactly one owner per accepted
workflow.

Each case is a seeded-random schedule; after the dust settles (heal all
partitions, restart all crashed shards, probe, fence, reconcile to a
fixed point) the cross-shard conservation check — including the
placement-consistency check — must be violation-free.
"""

import random

import pytest

from repro.chaos import ChaosTransport, ChaosTransportConfig
from repro.cluster import (
    DetectorConfig,
    FailureDetector,
    LocalShard,
    ShardRouter,
    Supervisor,
    SupervisorConfig,
    slice_capacity,
)
from repro.model.cluster import ClusterCapacity
from repro.model.workflow import Workflow
from repro.service import ServiceConfig
from repro.verify import check_cross_shard_conservation
from tests.conftest import deadline_job

N_SHARDS = 3
N_OPS = 40

_OP_ERRORS = (ValueError, RuntimeError, TimeoutError, OSError)


def workflow_of(index: int, tenant: int) -> Workflow:
    wid = f"t{tenant}/w{index}"
    jobs = [deadline_job(f"{wid}-j{j}", wid) for j in range(2)]
    return Workflow.from_jobs(
        wid, jobs, [(f"{wid}-j0", f"{wid}-j1")], 0, 2000
    )


class Driver:
    """One seeded schedule over a chaos-wrapped 3-shard fleet."""

    def __init__(self, tmp_path, seed: int):
        self.rng = random.Random(seed)
        cluster = ClusterCapacity.uniform(cpu=60, mem=120)
        self.transports = []
        for i, capacity in enumerate(slice_capacity(cluster, N_SHARDS)):
            config = ServiceConfig(
                realtime=True,
                slot_seconds=3600.0,
                journal_path=str(tmp_path / f"shard{i}.jsonl"),
                journal_fsync=False,
            )
            shard = LocalShard(f"s{i}", capacity, config).start()
            self.transports.append(
                ChaosTransport(shard, ChaosTransportConfig(seed=seed + i))
            )
        self.router = ShardRouter(self.transports)
        self.detector = FailureDetector(
            self.transports,
            DetectorConfig(suspect_after=1, dead_after_s=0.0),
            obs=self.router.obs,
        )
        self.router.attach_detector(self.detector)
        self.supervisor = Supervisor(
            self.router,
            self.detector,
            SupervisorConfig(auto_restart=False, failover_after_s=0.0),
        )
        self.detector.probe_all()
        self.accepted: set[str] = set()
        self.next_index = 0

    # -- operations --------------------------------------------------------------

    def op_submit(self) -> None:
        workflow = workflow_of(self.next_index, self.rng.randrange(6))
        self.next_index += 1
        try:
            result = self.router.submit_workflow(
                workflow, idempotency_key=f"key-{workflow.workflow_id}"
            )
        except _OP_ERRORS:
            return
        if result.accepted:
            self.accepted.add(workflow.workflow_id)

    def op_partition(self) -> None:
        self.rng.choice(self.transports).partition()

    def op_heal(self) -> None:
        self.rng.choice(self.transports).heal()

    def op_kill_restart(self) -> None:
        transport = self.rng.choice(self.transports)
        transport.kill()
        transport.restart()

    def op_probe(self) -> None:
        self.detector.probe_all()

    def op_supervise(self) -> None:
        self.detector.probe_all()
        try:
            self.supervisor.cycle()
        except _OP_ERRORS:
            pass

    def op_reconcile(self) -> None:
        try:
            self.router.reconcile()
        except _OP_ERRORS:
            pass

    def step(self) -> None:
        op = self.rng.choices(
            [
                self.op_submit,
                self.op_partition,
                self.op_heal,
                self.op_kill_restart,
                self.op_probe,
                self.op_supervise,
                self.op_reconcile,
            ],
            weights=[8, 2, 3, 1, 2, 3, 2],
        )[0]
        op()

    # -- settling ----------------------------------------------------------------

    def settle(self) -> None:
        """Heal, revive, fence and reconcile until nothing changes."""
        for transport in self.transports:
            transport.heal()
            if not transport.wrapped.alive():
                transport.restart()
        self.detector.probe_all()
        for _ in range(10):
            summary = self.supervisor.cycle()
            outcome = self.router.reconcile()
            orphans = sum(
                len(entries)
                for entries in self.router.orphans_by_shard().values()
            )
            if (
                not summary["fenced"]
                and not summary["failed_over"]
                and outcome["confirmed"] == 0
                and outcome["restored"] == 0
                and orphans == 0
            ):
                return
        raise AssertionError("fleet did not settle in 10 rounds")


@pytest.mark.parametrize("seed", [11, 97, 2026])
def test_partition_tolerance_conserves_accepted_workflows(tmp_path, seed):
    driver = Driver(tmp_path, seed)
    for _ in range(N_OPS):
        driver.step()
    driver.settle()
    report = check_cross_shard_conservation(
        sorted(driver.accepted),
        driver.router.owned_by_shard(),
        {
            name: list(entries)
            for name, entries in driver.router.orphans_by_shard().items()
        },
        placement=driver.router.placement_overrides,
    )
    assert report.ok, report.render()
    assert driver.accepted, f"seed {seed} accepted nothing — weights broken"
