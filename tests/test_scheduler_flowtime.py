"""Tests for the full FlowTime scheduler (decomposition + LP + leftovers)."""

from repro.core.flowtime import PlannerConfig
from repro.schedulers.flowtime_sched import FlowTimeScheduler
from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.metrics import missed_jobs, missed_workflows
from tests.conftest import adhoc_job
from repro.workloads.dag_generators import chain_workflow, fork_join_workflow


def flowtime(slack=0, **kwargs):
    return FlowTimeScheduler(PlannerConfig(slack_slots=slack), **kwargs)


class TestDeadlines:
    def test_meets_loose_workflow_deadline(self, small_cluster, chain3):
        scheduler = flowtime()
        result = Simulation(small_cluster, scheduler, workflows=[chain3]).run()
        assert result.finished
        assert missed_workflows(result) == []
        assert missed_jobs(result, scheduler.windows) == []

    def test_meets_decomposed_job_deadlines_under_contention(self, small_cluster):
        workflows = [
            fork_join_workflow(f"w{i}", 4, 0, 120) for i in range(2)
        ]
        scheduler = flowtime()
        result = Simulation(small_cluster, scheduler, workflows=workflows).run()
        assert missed_jobs(result, scheduler.windows) == []

    def test_windows_published_after_arrival(self, small_cluster, chain3):
        scheduler = flowtime()
        Simulation(small_cluster, scheduler, workflows=[chain3]).run()
        assert set(scheduler.windows) == set(chain3.job_ids)


class TestAdhocBehaviour:
    def test_loose_deadline_defers_to_adhoc(self, tiny_cluster):
        """The Fig. 1 story: with a loose deadline, ad-hoc jobs are served
        immediately instead of waiting behind the workflow."""
        wf = chain_workflow("w", 2, 0, 200)
        adhoc = adhoc_job("a", 0, count=4, duration=1, cores=1, mem=2)
        scheduler = flowtime()
        result = Simulation(
            tiny_cluster, scheduler, workflows=[wf], adhoc_jobs=[adhoc]
        ).run()
        # The ad-hoc job finishes quickly despite the deadline work...
        assert result.jobs["a"].turnaround_slots() <= 4
        # ...and the workflow still meets its deadline.
        assert missed_workflows(result) == []

    def test_work_conserving_uses_idle_capacity(self, small_cluster, chain3):
        eager = flowtime(work_conserving=True)
        lazy = flowtime(work_conserving=False)
        fast = Simulation(small_cluster, eager, workflows=[chain3]).run()
        slow = Simulation(small_cluster, lazy, workflows=[chain3]).run()
        # With no ad-hoc jobs, work conservation can only speed things up.
        assert (
            fast.workflows["c"].completion_slot
            <= slow.workflows["c"].completion_slot
        )


class TestReplanning:
    def test_replans_on_deadline_events_only(self, small_cluster, chain3):
        scheduler = flowtime()
        adhocs = [adhoc_job(f"a{i}", 10 + i, count=1, duration=1) for i in range(5)]
        Simulation(
            small_cluster, scheduler, workflows=[chain3], adhoc_jobs=adhocs
        ).run()
        # 1 workflow arrival + 2 readiness + (completions) — far fewer than
        # one re-plan per slot or per ad-hoc arrival.
        assert scheduler.replans <= 8

    def test_handles_workflows_arriving_late(self, small_cluster):
        early = chain_workflow("e", 2, 0, 80)
        late = chain_workflow("l", 2, 30, 120)
        scheduler = flowtime()
        result = Simulation(small_cluster, scheduler, workflows=[early, late]).run()
        assert result.finished
        assert missed_workflows(result) == []


class TestEstimationRobustness:
    def test_underestimated_jobs_still_finish(self, small_cluster):
        from repro.estimation.errors import ErrorModel, apply_workflow_estimation_errors

        wf = chain_workflow("w", 3, 0, 150)
        wf = apply_workflow_estimation_errors(wf, ErrorModel(low=1.5, high=1.5))
        scheduler = flowtime(slack=4)
        result = Simulation(small_cluster, scheduler, workflows=[wf]).run()
        assert result.finished
        # The workflow deadline is loose enough that re-planning absorbs a
        # 1.5x underestimate.
        assert missed_workflows(result) == []

    def test_overestimated_jobs_finish_early(self, small_cluster):
        from repro.estimation.errors import ErrorModel, apply_workflow_estimation_errors

        wf = chain_workflow("w", 3, 0, 150)
        wf = apply_workflow_estimation_errors(wf, ErrorModel(low=0.5, high=0.5))
        scheduler = flowtime()
        result = Simulation(small_cluster, scheduler, workflows=[wf]).run()
        assert result.finished
        assert missed_workflows(result) == []


class TestDegradedMode:
    def test_overcommitted_cluster_still_progresses(self, tiny_cluster):
        # Workload far beyond the tiny cluster with a hopeless deadline;
        # FlowTime must degrade gracefully, not deadlock.
        wf = chain_workflow(
            "w", 2, 0, 4,
        )
        scheduler = flowtime()
        result = Simulation(
            tiny_cluster, scheduler, workflows=[wf],
            config=SimulationConfig(max_slots=500),
        ).run()
        assert result.finished  # late, but done
