"""Tests for recurring workflows and real-history extraction."""

import pytest

from repro.estimation.history import RunHistory
from repro.schedulers.fair import FairScheduler
from repro.schedulers.morpheus import MorpheusScheduler
from repro.simulator.engine import Simulation
from repro.workloads.dag_generators import chain_workflow, fork_join_workflow
from repro.workloads.recurring import RecurringWorkflow, record_run


@pytest.fixture
def daily_chain() -> RecurringWorkflow:
    skeleton = chain_workflow("etl", 3, 0, 60)
    return RecurringWorkflow(skeleton=skeleton, period_slots=100, template_name="daily-etl")


class TestInstantiation:
    def test_validation(self):
        skeleton = chain_workflow("etl", 2, 0, 30)
        with pytest.raises(ValueError):
            RecurringWorkflow(skeleton=skeleton, period_slots=0)
        shifted = chain_workflow("etl", 2, 10, 40)
        with pytest.raises(ValueError):
            RecurringWorkflow(skeleton=shifted, period_slots=50)

    def test_instance_zero_matches_skeleton_shape(self, daily_chain):
        instance = daily_chain.instance(0)
        assert instance.start_slot == 0
        assert instance.deadline_slot == 60
        assert len(instance) == 3
        assert len(instance.edges) == 2

    def test_instances_shift_by_period(self, daily_chain):
        third = daily_chain.instance(3)
        assert third.start_slot == 300
        assert third.deadline_slot == 360
        assert third.workflow_id == "etl@3"

    def test_instance_job_ids_unique_across_instances(self, daily_chain):
        ids0 = set(daily_chain.instance(0).job_ids)
        ids1 = set(daily_chain.instance(1).job_ids)
        assert not ids0 & ids1

    def test_instances_share_template_name(self, daily_chain):
        assert daily_chain.instance(0).name == "daily-etl"
        assert daily_chain.instance(5).name == "daily-etl"

    def test_edges_remapped(self, daily_chain):
        instance = daily_chain.instance(1)
        for parent, child in instance.edges:
            assert parent in instance.job_ids
            assert child in instance.job_ids

    def test_skeleton_job_id_round_trip(self, daily_chain):
        instance = daily_chain.instance(2)
        for job in instance.jobs:
            local = daily_chain.skeleton_job_id(2, job.job_id)
            assert local in daily_chain.skeleton.job_ids

    def test_skeleton_job_id_rejects_foreign(self, daily_chain):
        with pytest.raises(KeyError):
            daily_chain.skeleton_job_id(0, "other-job")

    def test_negative_index_rejected(self, daily_chain):
        with pytest.raises(ValueError):
            daily_chain.instance(-1)


class TestRecordRun:
    def test_history_from_executed_instance(self, small_cluster, daily_chain):
        instance = daily_chain.instance(0)
        result = Simulation(small_cluster, FairScheduler(), workflows=[instance]).run()
        history = RunHistory()
        run = record_run(history, daily_chain, 0, result)
        assert history.has("daily-etl")
        # Observations use skeleton ids, offsets relative to instance start.
        assert set(run.observations) == set(daily_chain.skeleton.job_ids)
        chain_ids = list(daily_chain.skeleton.job_ids)
        first = run.observations[chain_ids[0]]
        assert first.start_offset == 0
        assert run.makespan >= first.completion_offset

    def test_unfinished_instance_rejected(self, small_cluster, daily_chain):
        result = Simulation(small_cluster, FairScheduler(), workflows=[]).run()
        with pytest.raises(ValueError):
            record_run(RunHistory(), daily_chain, 0, result)

    def test_later_instance_offsets_are_relative(self, small_cluster, daily_chain):
        instance = daily_chain.instance(2)  # starts at slot 200
        result = Simulation(small_cluster, FairScheduler(), workflows=[instance]).run()
        history = RunHistory()
        run = record_run(history, daily_chain, 2, result)
        assert all(obs.start_offset < 60 for obs in run.observations.values())


class TestMorpheusLearnsFromRealRuns:
    """End-to-end: instance 0 executes, its history drives instance 1."""

    def test_second_instance_gets_observed_windows(self, small_cluster):
        skeleton = fork_join_workflow("pipe", 3, 0, 120)
        recurring = RecurringWorkflow(
            skeleton=skeleton, period_slots=200, template_name="pipe"
        )
        # Run the first occurrence cold and record what happened.
        first = recurring.instance(0)
        result = Simulation(small_cluster, FairScheduler(), workflows=[first]).run()
        assert result.finished
        history = RunHistory()
        record_run(history, recurring, 0, result)

        # Schedule the second occurrence with Morpheus on that history.
        second = recurring.instance(1)
        scheduler = MorpheusScheduler(history=history)
        result2 = Simulation(small_cluster, scheduler, workflows=[second]).run()
        assert result2.finished
        windows = scheduler.windows
        assert set(windows) == set(second.job_ids)
        # Inferred windows are real sub-windows, not the cold-start whole
        # window: the source job's deadline lands strictly inside.
        source = f"{second.workflow_id}-pipe-j0"
        assert windows[source].deadline_slot < second.deadline_slot
