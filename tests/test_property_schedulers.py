"""Property-based tests over every scheduler's assignment invariants.

Whatever the policy, an assignment must: fit the slot's capacity, grant
only to runnable deadline jobs or waiting ad-hoc jobs, respect per-job
parallelism/pending bounds, and be non-negative.  These are exactly the
checks the engine's strict mode enforces at runtime; testing them over
randomised views catches policy bugs before a simulation ever runs.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition_types import JobWindow
from repro.model.cluster import ClusterCapacity
from repro.model.job import TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.model.workflow import Workflow
from repro.schedulers.cora import CoraScheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.flowtime_sched import FlowTimeScheduler
from repro.schedulers.morpheus import MorpheusScheduler
from repro.schedulers.tetrisched import TetriSchedScheduler
from repro.simulator.view import AdhocJobView, ClusterView, DeadlineJobView
from tests.conftest import deadline_job

CLUSTER = ClusterCapacity.uniform(cpu=16, mem=32)


@st.composite
def random_views(draw):
    """A plausible mid-simulation ClusterView over one tiny workflow."""
    slot = draw(st.integers(min_value=0, max_value=20))
    n_deadline = draw(st.integers(min_value=0, max_value=4))
    n_adhoc = draw(st.integers(min_value=0, max_value=4))

    jobs = [deadline_job(f"w-j{i}", "w") for i in range(max(n_deadline, 1))]
    workflow = Workflow.from_jobs("w", jobs, [], 0, 100)

    deadline_views = []
    for i in range(n_deadline):
        count = draw(st.integers(min_value=1, max_value=6))
        duration = draw(st.integers(min_value=1, max_value=3))
        cores = draw(st.integers(min_value=1, max_value=3))
        mem = draw(st.integers(min_value=1, max_value=4))
        spec = TaskSpec(
            count=count,
            duration_slots=duration,
            demand=ResourceVector({CPU: cores, MEM: mem}),
        )
        total = spec.total_task_slots
        executed = draw(st.integers(min_value=0, max_value=total))
        completed = executed == total and draw(st.booleans())
        deadline_views.append(
            DeadlineJobView(
                job_id=f"w-j{i}",
                workflow_id="w",
                arrival_slot=0,
                ready=draw(st.booleans()),
                completed=completed,
                est_spec=spec,
                executed_units=executed,
                believed_remaining_units=0 if completed else max(total - executed, 1),
            )
        )
    adhoc_views = []
    for i in range(n_adhoc):
        cores = draw(st.integers(min_value=1, max_value=3))
        adhoc_views.append(
            AdhocJobView(
                job_id=f"a{i}",
                arrival_slot=draw(st.integers(min_value=0, max_value=slot)),
                unit_demand=ResourceVector({CPU: cores, MEM: cores * 2}),
                pending_units=draw(st.integers(min_value=0, max_value=8)),
                completed=draw(st.booleans()),
            )
        )
    return ClusterView(
        slot=slot,
        capacity=CLUSTER,
        deadline_jobs=tuple(deadline_views),
        adhoc_jobs=tuple(adhoc_views),
        workflows={"w": workflow},
    )


def make_schedulers():
    schedulers = [
        FifoScheduler(),
        FairScheduler(),
        FairScheduler(drf=True),
        EdfScheduler(),
        CoraScheduler(),
        FlowTimeScheduler(),
        MorpheusScheduler(),
        TetriSchedScheduler(),
    ]
    return schedulers


def check_assignment(view: ClusterView, grants) -> None:
    capacity = view.capacity_now()
    used = ResourceVector()
    deadline = {j.job_id: j for j in view.deadline_jobs}
    adhoc = {j.job_id: j for j in view.adhoc_jobs}
    for job_id, units in grants.items():
        assert units >= 0, f"negative grant for {job_id}"
        if units == 0:
            continue
        if job_id in deadline:
            job = deadline[job_id]
            assert job.ready and not job.completed, f"grant to unrunnable {job_id}"
            assert units <= job.max_parallel
            assert units <= job.believed_remaining_units
            used = used + job.unit_demand * units
        elif job_id in adhoc:
            job = adhoc[job_id]
            assert not job.completed
            assert units <= job.pending_units
            used = used + job.unit_demand * units
        else:
            raise AssertionError(f"grant to unknown job {job_id}")
    assert used.fits_in(capacity), f"over capacity: {dict(used)}"


@settings(deadline=None, max_examples=25)
@given(random_views())
def test_all_schedulers_produce_valid_assignments(view):
    # Windows needed by window-driven schedulers: give them directly so the
    # test does not depend on event delivery.
    windows = {
        j.job_id: JobWindow(j.job_id, 0, 100) for j in view.deadline_jobs
    }
    for scheduler in make_schedulers():
        if hasattr(scheduler, "_windows"):
            scheduler._windows.update(windows)
        grants = scheduler.assign(view)
        check_assignment(view, grants)


@settings(deadline=None, max_examples=25)
@given(random_views())
def test_schedulers_are_deterministic(view):
    windows = {
        j.job_id: JobWindow(j.job_id, 0, 100) for j in view.deadline_jobs
    }
    for make in (FifoScheduler, EdfScheduler, FairScheduler):
        a, b = make(), make()
        for scheduler in (a, b):
            if hasattr(scheduler, "_windows"):
                scheduler._windows.update(windows)
        assert dict(a.assign(view)) == dict(b.assign(view))


@settings(deadline=None, max_examples=25)
@given(random_views())
def test_work_conserving_when_capacity_allows(view):
    """If some runnable job still wants units that fit the leftover, a
    work-conserving scheduler grants them (no idle-while-hungry)."""
    scheduler = FairScheduler()
    grants = scheduler.assign(view)
    capacity = view.capacity_now()
    used = ResourceVector()
    for job_id, units in grants.items():
        job = next(
            (j for j in list(view.deadline_jobs) + list(view.adhoc_jobs) if j.job_id == job_id)
        )
        used = used + job.unit_demand * units
    leftover = capacity.saturating_sub(used)
    for job in view.runnable_deadline_jobs():
        wanted = min(job.believed_remaining_units, job.max_parallel)
        already = grants.get(job.job_id, 0)
        if already < wanted:
            # The remaining demand must not fit, or Fair would have granted.
            assert not job.unit_demand.fits_in(leftover)
