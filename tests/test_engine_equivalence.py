"""Slot engine vs event engine: outcome equivalence across the battery.

The event-queue core (:mod:`repro.simulator.events`) is a pure
*performance* substitution for the slot-stepped core — it may skip idle
slots, but every externally visible outcome must be identical: per-job
and per-workflow records, usage/granted matrices, execution rows, the
finish slot, and the trace event stream.  This battery runs the same ≥50
seeded workloads the fuzz harness draws (:func:`repro.verify.fuzz.
make_workload`) through both cores across four production families —

* ``batch``: cold batch simulation;
* ``replan``: plan cache + warm-started lexmin on;
* ``degraded``: chaos-injected solver faults (fallback ladder exercised);
* ``journal``: the online service with a write-ahead journal, a mid-run
  kill, a journal-replay restart, and a drain —

asserting byte-level equivalence where it is meaningful (the normalised
trace stream on a batch subset) and structural equivalence everywhere.
What is *excluded* from comparison — ``planning_calls``,
``planning_seconds``, ``sim.slot`` span counts — is exactly the event
core's intended saving; `TestEventCoreRegressions` pins that saving so
it cannot silently regress.

A failing seed is persisted under ``artifacts/equivalence/`` (override
with ``EQUIV_ARTIFACT_DIR``) so the CI ``throughput-smoke`` job can
upload it for offline replay.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import canonical_windows, run_one
from repro.chaos import ChaosConfig, chaos_solver
from repro.model.cluster import ClusterCapacity
from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.model.workflow import Workflow
from repro.obs import Observability
from repro.obs.trace import MemorySink
from repro.service import SchedulerService, ServiceConfig
from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.metrics import summarize
from repro.verify import ScheduleValidator
from repro.verify.fuzz import make_workload
from repro.verify.golden import normalize_events

ENGINES = ("slots", "events")

BATCH_SEEDS = list(range(0, 20))
REPLAN_SEEDS = list(range(100, 112))
DEGRADED_SEEDS = list(range(200, 212))
JOURNAL_SEEDS = list(range(300, 308))
#: Batch seeds whose normalised trace stream is compared byte-for-byte.
GOLDEN_SEEDS = BATCH_SEEDS[:6]

assert (
    len(BATCH_SEEDS + REPLAN_SEEDS + DEGRADED_SEEDS + JOURNAL_SEEDS) >= 50
), "the ISSUE requires at least 50 seeded workloads"


def _artifact_dir() -> Path:
    return Path(os.environ.get("EQUIV_ARTIFACT_DIR", "artifacts/equivalence"))


def _record_failure(family: str, seed: int, detail: str) -> None:
    """Persist a failing seed for the CI artifact upload; never raises."""
    try:
        directory = _artifact_dir()
        directory.mkdir(parents=True, exist_ok=True)
        payload = {"family": family, "seed": seed, "detail": detail}
        path = directory / f"{family}-seed{seed}.json"
        path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    except OSError:
        pass


def assert_equivalent(a, b) -> None:
    """Results of the two engines must agree on every outcome field.

    ``planning_calls``/``planning_seconds`` and the observability
    ``metrics`` snapshot are deliberately not compared: fewer executed
    slots mean fewer decide calls and fewer ``sim.slot`` spans — that
    difference *is* the event core's performance win.
    """
    assert a.n_slots == b.n_slots, f"n_slots {a.n_slots} != {b.n_slots}"
    assert a.finished == b.finished
    assert a.resources == b.resources
    assert set(a.jobs) == set(b.jobs)
    for job_id in a.jobs:
        assert a.jobs[job_id] == b.jobs[job_id], f"job {job_id} diverged"
    assert set(a.workflows) == set(b.workflows)
    for wid in a.workflows:
        assert a.workflows[wid] == b.workflows[wid], f"workflow {wid} diverged"
    assert np.array_equal(a.usage, b.usage), "usage matrices diverged"
    assert np.array_equal(a.granted, b.granted), "granted matrices diverged"
    assert a.execution == b.execution, "execution rows diverged"


def _validate(trace, capacity, result) -> None:
    windows = canonical_windows(trace, capacity)
    jobs = [job for wf in trace.workflows for job in wf.jobs] + list(
        trace.adhoc_jobs
    )
    validator = ScheduleValidator(
        capacity, workflows=trace.workflows, jobs=jobs, windows=windows
    )
    report = validator.validate(result)
    validator.check_reported(result, summarize(result, windows), report)
    assert not report.violations, [str(v) for v in report.violations]


def _run_batch_pair(seed: int, *, replan: bool = False, chaos: bool = False):
    """One fuzz workload through both engines; (trace, capacity, results,
    normalised trace streams)."""
    trace, capacity = make_workload(seed)
    kwargs = (
        {"planner": {"plan_cache": True, "warm_start": True}} if replan else None
    )
    results, streams = {}, {}
    for engine in ENGINES:
        sink = MemorySink()
        config = SimulationConfig(record_execution=True, engine=engine)
        if chaos:
            with chaos_solver(ChaosConfig(solver_fault_prob=0.25, seed=seed)):
                outcome = run_one(
                    "FlowTime", trace, capacity, config=config,
                    scheduler_kwargs=kwargs, obs=Observability(sink=sink),
                )
        else:
            outcome = run_one(
                "FlowTime", trace, capacity, config=config,
                scheduler_kwargs=kwargs, obs=Observability(sink=sink),
            )
        results[engine] = outcome.result
        streams[engine] = normalize_events(sink.events)
    return trace, capacity, results, streams


def _check_pair(family: str, seed: int, **kwargs) -> None:
    try:
        trace, capacity, results, streams = _run_batch_pair(seed, **kwargs)
        assert_equivalent(results["slots"], results["events"])
        for engine in ENGINES:
            _validate(trace, capacity, results[engine])
        if seed in GOLDEN_SEEDS and family == "batch":
            a = json.dumps(streams["slots"], sort_keys=True)
            b = json.dumps(streams["events"], sort_keys=True)
            assert a == b, "normalised trace streams diverged"
    except AssertionError as error:
        _record_failure(family, seed, str(error))
        raise


class TestBatchFamily:
    @pytest.mark.parametrize("seed", BATCH_SEEDS)
    def test_equivalent(self, seed):
        _check_pair("batch", seed)


class TestReplanFamily:
    """Plan cache + warm starts must not open an engine gap: caching is
    keyed by scheduler events, and both engines deliver the same events."""

    @pytest.mark.parametrize("seed", REPLAN_SEEDS)
    def test_equivalent(self, seed):
        _check_pair("replan", seed, replan=True)


class TestDegradedFamily:
    """Chaos faults advance a solver-call-indexed RNG; equivalence here
    proves both engines make the identical solver-call sequence."""

    @pytest.mark.parametrize("seed", DEGRADED_SEEDS)
    def test_equivalent(self, seed):
        _check_pair("degraded", seed, chaos=True)


def _run_journal(trace, capacity, engine: str):
    """Submit, kill, journal-replay restart, drain — the fuzz journal
    path — on the requested engine; the drained result."""
    with tempfile.TemporaryDirectory(prefix="equiv-journal-") as tmp:
        config = ServiceConfig(
            admission=False,
            record_execution=True,
            journal_path=str(Path(tmp) / "journal.jsonl"),
            journal_fsync=False,
            engine=engine,
        )
        service = SchedulerService(capacity, config).start()
        try:
            for workflow in trace.workflows:
                assert service.submit_workflow(workflow).accepted
            for job in trace.adhoc_jobs:
                assert service.submit_adhoc(job).accepted
            service.kill(timeout=60)
            service = SchedulerService(capacity, config).start()
            return service.drain(timeout=300)
        finally:
            if not service.draining:
                service.kill(timeout=60)


class TestJournalFamily:
    """Kill/replay/drain through the online service on either engine.

    The service's virtual clock parks while submissions trickle in, so
    arrival slots are not bit-reproducible across *runs* — but a journal
    replay resubmits everything before the clock moves, making the
    post-replay drain deterministic per engine.  Records are compared on
    the replayed drain results.
    """

    @pytest.mark.parametrize("seed", JOURNAL_SEEDS)
    def test_equivalent(self, seed):
        trace, capacity = make_workload(seed)
        try:
            a = _run_journal(trace, capacity, "slots")
            b = _run_journal(trace, capacity, "events")
            assert_equivalent(a, b)
            _validate(trace, capacity, a)
            _validate(trace, capacity, b)
        except AssertionError as error:
            _record_failure("journal", seed, str(error))
            raise


# -- tie-break determinism (property) -----------------------------------------------


def _tiny_spec(duration: int) -> TaskSpec:
    return TaskSpec(
        count=1,
        duration_slots=duration,
        demand=ResourceVector({CPU: 1, MEM: 1}),
    )


def _build_workload(wf_starts, adhoc_arrivals, durations):
    """Workflows and ad-hoc jobs engineered to collide on timestamps.

    Durations of 1–3 slots make completions land on later arrivals'
    slots, so one slot routinely carries a completion event, a workflow
    arrival, and several ad-hoc arrivals at once — the exact interleaving
    the documented tie-break order (completions, then workflow arrivals
    in registration order, then ad-hoc arrivals in registration order)
    must resolve identically on both engines.
    """
    workflows = []
    for i, start in enumerate(wf_starts):
        wid = f"pw{i}"
        jobs = [
            Job(
                job_id=f"{wid}-j{j}",
                tasks=_tiny_spec(durations[(i + j) % len(durations)]),
                workflow_id=wid,
            )
            for j in range(2)
        ]
        workflows.append(
            Workflow.from_jobs(
                wid, jobs, [(f"{wid}-j0", f"{wid}-j1")], start, start + 40
            )
        )
    adhoc = [
        Job(
            job_id=f"pa{i}",
            tasks=_tiny_spec(durations[i % len(durations)]),
            kind=JobKind.ADHOC,
            arrival_slot=arrival,
        )
        for i, arrival in enumerate(adhoc_arrivals)
    ]
    return workflows, adhoc


def _simulate(workflows, adhoc, engine: str):
    from repro.schedulers.registry import make_scheduler

    capacity = ClusterCapacity(base=ResourceVector({CPU: 4, MEM: 8}))
    sim = Simulation(
        cluster=capacity,
        scheduler=make_scheduler("FlowTime"),
        workflows=workflows,
        adhoc_jobs=adhoc,
        config=SimulationConfig(record_execution=True, engine=engine),
    )
    return sim.run()


class TestTieBreakProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        wf_starts=st.lists(st.integers(0, 4), min_size=0, max_size=2),
        adhoc_arrivals=st.lists(st.integers(0, 4), min_size=1, max_size=6),
        durations=st.lists(st.integers(1, 3), min_size=1, max_size=4),
    )
    def test_same_timestamp_interleavings_are_deterministic(
        self, wf_starts, adhoc_arrivals, durations
    ):
        """Arrivals/completions sharing a slot resolve in the documented
        order on both engines — run each engine twice and cross-compare,
        so both nondeterminism and tie-break drift fail the property."""
        workflows, adhoc = _build_workload(wf_starts, adhoc_arrivals, durations)
        runs = [
            _simulate(workflows, adhoc, engine)
            for engine in ("slots", "slots", "events", "events")
        ]
        for other in runs[1:]:
            assert_equivalent(runs[0], other)


# -- the event core's saving, pinned -------------------------------------------------


class TestEventCoreRegressions:
    def _idle_tail_workload(self):
        """One early burst, one straggler far out: a long idle gap."""
        adhoc = [
            Job(job_id=f"g{i}", tasks=_tiny_spec(2), kind=JobKind.ADHOC)
            for i in range(3)
        ]
        adhoc.append(
            Job(
                job_id="late",
                tasks=_tiny_spec(2),
                kind=JobKind.ADHOC,
                arrival_slot=90,
            )
        )
        return adhoc

    def test_idle_tail_skips_slot_spans(self):
        """The slot engine records one ``sim.slot`` span per slot; the
        event engine must jump the idle gap — far fewer spans, while
        ``n_slots`` (the modelled horizon) stays identical."""
        adhoc = self._idle_tail_workload()
        counts = {}
        for engine in ENGINES:
            result = _simulate([], list(adhoc), engine)
            counts[engine] = result.metrics["sim.slot"]["count"]
            if engine == "slots":
                baseline = result
            else:
                assert_equivalent(baseline, result)
                skipped = result.counter_value("sim.slots.skipped")
                assert skipped and skipped >= 80
        assert counts["slots"] == baseline.n_slots
        assert counts["events"] <= counts["slots"] - 80

    def test_live_adhoc_count_is_tracked_not_scanned(self):
        """``live_adhoc_count`` is an O(1) counter now; it must agree
        with a brute-force scan at every step of a mixed run."""
        from repro.schedulers.registry import make_scheduler
        from repro.simulator.runtime import EngineCore

        capacity = ClusterCapacity(base=ResourceVector({CPU: 4, MEM: 8}))
        trace, _ = make_workload(17)
        core = EngineCore(
            cluster=capacity,
            scheduler=make_scheduler("FlowTime"),
            config=SimulationConfig(record_execution=True),
            obs=Observability(),
        )
        for workflow in trace.workflows:
            core.add_workflow(workflow)
        for job in trace.adhoc_jobs:
            core.add_adhoc(job)
        while not core.finished and core.slot < 500:
            brute = sum(
                1
                for run in core.job_runs()
                if run.job.kind is JobKind.ADHOC and not run.done
            )
            assert core.live_adhoc_count() == brute
            core.step()
        assert core.live_adhoc_count() == 0
