"""Tests for the observability layer (repro.obs) and its engine wiring."""

import logging
import math
import time

import pytest

from repro.model.workflow import Workflow
from repro.obs import (
    NULL_OBS,
    Counter,
    Gauge,
    Histogram,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NullSink,
    Observability,
    count_by_type,
    current_obs,
    read_trace,
    use_obs,
)
from repro.schedulers.fifo import FifoScheduler
from repro.simulator.engine import Simulation
from tests.conftest import adhoc_job, deadline_job


class TestCounterAndGauge:
    def test_counter_increments(self):
        counter = Counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert counter.snapshot() == {"type": "counter", "value": 3.5}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge("g")
        assert math.isnan(gauge.value)
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3.0
        assert gauge.snapshot() == {"type": "gauge", "value": 3.0}


class TestHistogram:
    def test_quantiles_interpolate(self):
        hist = Histogram("h")
        for value in range(1, 101):  # 1..100
            hist.observe(value)
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 100.0
        # position q*(n-1): p50 -> index 49.5 -> (50+51)/2.
        assert hist.p50 == pytest.approx(50.5)
        assert hist.p95 == pytest.approx(95.05)
        assert hist.p99 == pytest.approx(99.01)
        assert hist.count == 100
        assert hist.sum == pytest.approx(5050.0)
        assert hist.mean == pytest.approx(50.5)
        assert hist.min == 1.0 and hist.max == 100.0

    def test_cache_invalidated_on_observe(self):
        hist = Histogram("h")
        hist.observe(1.0)
        assert hist.p50 == 1.0  # builds the sorted cache
        hist.observe(3.0)
        assert hist.p50 == pytest.approx(2.0)

    def test_empty_is_nan(self):
        hist = Histogram("h")
        assert math.isnan(hist.p50)
        assert math.isnan(hist.mean)
        assert hist.count == 0

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")
        assert len(registry) == 2
        assert "a" in registry and "missing" not in registry

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_is_plain_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.histogram("a").observe(2.0)
        snap = registry.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["b"] == {"type": "counter", "value": 1.0}
        assert snap["a"]["count"] == 1.0

    def test_registries_are_isolated(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("hits").inc(5)
        assert "hits" not in second
        assert second.snapshot() == {}


class TestContextPropagation:
    def test_default_is_null_obs(self):
        assert current_obs() is NULL_OBS

    def test_use_obs_installs_and_resets(self):
        obs = Observability()
        with use_obs(obs):
            assert current_obs() is obs
        assert current_obs() is NULL_OBS

    def test_nesting_restores_outer(self):
        outer, inner = Observability(), Observability()
        with use_obs(outer):
            with use_obs(inner):
                assert current_obs() is inner
            assert current_obs() is outer

    def test_null_obs_drops_everything(self):
        NULL_OBS.counter("c").inc()
        NULL_OBS.histogram("h").observe(1.0)
        with NULL_OBS.span("phase"):
            pass
        NULL_OBS.event("job_arrived", job_id="x")
        assert NULL_OBS.registry.snapshot() == {}

    def test_span_records_into_histogram(self):
        obs = Observability()
        with obs.span("phase") as span:
            time.sleep(0.001)
        assert span.elapsed > 0.0
        assert obs.registry.histogram("phase").count == 1


class TestSinks:
    def test_null_sink_disabled(self):
        sink = NullSink()
        assert not sink.enabled
        sink.emit({"type": "x"})
        assert sink.n_events == 0

    def test_memory_sink_stamps_ts_and_seq(self):
        sink = MemorySink()
        sink.emit({"type": "a"})
        sink.emit({"type": "b"})
        assert [e["seq"] for e in sink.events] == [0, 1]
        assert all("ts" in e for e in sink.events)
        assert [e["type"] for e in sink.of_type("a")] == ["a"]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"type": "a", "n": 1})
            sink.emit({"type": "b", "tags": ["x", "y"]})
        events = read_trace(path)
        assert [e["type"] for e in events] == ["a", "b"]
        assert events[0]["n"] == 1
        assert events[1]["tags"] == ["x", "y"]
        assert count_by_type(events) == {"a": 1, "b": 1}

    def test_read_trace_reports_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "ok"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_trace(path)

    def test_event_skips_payload_when_disabled(self):
        obs = Observability()  # NullSink
        assert not obs.tracing
        obs.event("run_start", n_jobs=1)
        assert obs.sink.n_events == 0


class TestSimulationIntegration:
    def _workload(self):
        jobs = [deadline_job("w-a", "w"), deadline_job("w-b", "w")]
        workflow = Workflow.from_jobs("w", jobs, [("w-a", "w-b")], 0, 60)
        adhoc = [adhoc_job("q1", arrival=0), adhoc_job("q2", arrival=3)]
        return workflow, adhoc

    def test_registries_isolated_between_simulations(self, small_cluster):
        results = []
        for _ in range(2):
            wf, ad = self._workload()
            sim = Simulation(
                small_cluster, FifoScheduler(), workflows=[wf], adhoc_jobs=ad
            )
            results.append(sim.run())
        first, second = results
        # Identical runs -> identical per-run counts; a shared registry
        # would double the second run's sim.slot count.
        assert first.metrics["sim.slot"]["count"] == first.n_slots
        assert second.metrics["sim.slot"]["count"] == second.n_slots
        assert first.metrics["sim.slot"]["count"] == second.metrics["sim.slot"]["count"]

    def test_run_leaves_no_context_behind(self, small_cluster):
        workflow, adhoc = self._workload()
        Simulation(
            small_cluster, FifoScheduler(), workflows=[workflow], adhoc_jobs=adhoc
        ).run()
        assert current_obs() is NULL_OBS

    def test_trace_counts_match_result(self, small_cluster, tmp_path):
        workflow, adhoc = self._workload()
        path = tmp_path / "run.jsonl"
        obs = Observability(sink=JsonlSink(path))
        sim = Simulation(
            small_cluster,
            FifoScheduler(),
            workflows=[workflow],
            adhoc_jobs=adhoc,
            obs=obs,
        )
        with obs:
            result = sim.run()
        events = read_trace(path)
        counts = count_by_type(events)
        completed = [r for r in result.jobs.values() if r.completion_slot is not None]
        assert counts["run_start"] == 1
        assert counts["run_end"] == 1
        assert counts["workflow_arrived"] == 1
        assert counts["workflow_completed"] == 1
        assert counts["job_arrived"] == 2  # the two ad-hoc jobs
        assert counts["job_completed"] == len(completed) == 4
        assert counts["job_ready"] == 2  # both deadline jobs pass through ready
        assert counts["task_placement"] >= len(completed)
        # seq is a gap-free monotonic sequence across the whole trace.
        assert [e["seq"] for e in events] == list(range(len(events)))
        placements = [e for e in events if e["type"] == "task_placement"]
        assert all({"slot", "job_id", "units"} <= e.keys() for e in placements)

    def test_phase_stats_exposed_on_result(self, small_cluster):
        workflow, adhoc = self._workload()
        result = Simulation(
            small_cluster, FifoScheduler(), workflows=[workflow], adhoc_jobs=adhoc
        ).run()
        decide = result.phase_stats("sched.decide")
        assert decide is not None and decide["count"] == result.n_slots
        assert result.phase_stats("no.such.phase") is None

    def test_null_sink_overhead_smoke(self, small_cluster):
        """The disabled path must not meaningfully slow a run down."""
        workflow, adhoc = self._workload()
        sim = Simulation(
            small_cluster, FifoScheduler(), workflows=[workflow], adhoc_jobs=adhoc
        )
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
        # ~10 slots of FIFO; generous ceiling so CI noise never trips it,
        # but a pathological per-event cost (e.g. serialising to a dropped
        # payload) would.
        assert elapsed < 2.0
        # And the inert context handle really is free of per-call state:
        span = NULL_OBS.span("sim.slot")
        assert NULL_OBS.span("lp.solve") is span


class TestAdmissionEvents:
    def test_accept_and_reject_emit_events(self, small_cluster):
        from repro.core.admission import check_admission

        feasible = Workflow.from_jobs(
            "ok", [deadline_job("ok-a", "ok")], [], 0, 60
        )
        doomed = Workflow.from_jobs(
            "doom", [deadline_job("doom-a", "doom", count=8, duration=8)], [], 0, 2
        )
        sink = MemorySink()
        obs = Observability(sink=sink)
        with use_obs(obs):
            assert check_admission(feasible, [], small_cluster, 0).admit
            assert not check_admission(doomed, [], small_cluster, 0).admit
        assert obs.registry.counter("admission.accepted").value == 1
        assert obs.registry.counter("admission.rejected").value == 1
        accept, = sink.of_type("admission_accept")
        reject, = sink.of_type("admission_reject")
        assert accept["workflow_id"] == "ok"
        assert reject["workflow_id"] == "doom"
        assert reject["shortfall_units"] > 0
        assert obs.registry.histogram("admission.check").count == 2


class TestLogging:
    def test_log_gated_by_level(self, caplog):
        obs = Observability(level=logging.WARNING)
        with caplog.at_level(logging.DEBUG, logger="repro.obs"):
            obs.log(logging.INFO, "hidden")
            obs.log(logging.WARNING, "shown %d", 1)
        assert [r.message for r in caplog.records] == ["shown 1"]
