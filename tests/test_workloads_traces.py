"""Tests for trace generation and JSON round-tripping."""

import pytest

from repro.core.critical_path import critical_path_length
from repro.model.cluster import ClusterCapacity
from repro.workloads.traces import generate_trace, load_trace, save_trace


@pytest.fixture
def cluster():
    return ClusterCapacity.uniform(cpu=100, mem=200)


class TestGenerateTrace:
    def test_shape_matches_request(self, cluster):
        trace = generate_trace(
            n_workflows=3, jobs_per_workflow=6, n_adhoc=10, capacity=cluster, seed=1
        )
        assert len(trace.workflows) == 3
        assert trace.n_deadline_jobs == 18
        assert len(trace.adhoc_jobs) <= 10

    def test_deterministic(self, cluster):
        a = generate_trace(capacity=cluster, seed=5, n_workflows=2, jobs_per_workflow=5)
        b = generate_trace(capacity=cluster, seed=5, n_workflows=2, jobs_per_workflow=5)
        assert [w.deadline_slot for w in a.workflows] == [
            w.deadline_slot for w in b.workflows
        ]

    def test_looseness_bounds_deadlines(self, cluster):
        trace = generate_trace(
            n_workflows=4,
            jobs_per_workflow=8,
            n_adhoc=0,
            capacity=cluster,
            looseness=(3.0, 8.0),
            seed=2,
        )
        for wf in trace.workflows:
            cp = critical_path_length(wf, cluster, cluster_aware=True)
            ratio = wf.window_slots / cp
            assert 2.5 <= ratio <= 9.0  # rounding tolerance around [3, 8]

    def test_scientific_variant(self, cluster):
        trace = generate_trace(
            n_workflows=5, jobs_per_workflow=15, n_adhoc=0,
            capacity=cluster, scientific=True, seed=3,
        )
        names = {wf.name for wf in trace.workflows}
        assert len(names) == 5  # one per shape


class TestRoundTrip:
    def test_json_round_trip(self, cluster, tmp_path):
        trace = generate_trace(
            n_workflows=2, jobs_per_workflow=5, n_adhoc=6, capacity=cluster, seed=4
        )
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded.workflows) == len(trace.workflows)
        for original, restored in zip(trace.workflows, loaded.workflows):
            assert original.workflow_id == restored.workflow_id
            assert original.deadline_slot == restored.deadline_slot
            assert set(original.edges) == set(restored.edges)
            for job in original.jobs:
                assert restored.job(job.job_id).tasks == job.tasks
        assert [j.job_id for j in loaded.adhoc_jobs] == [
            j.job_id for j in trace.adhoc_jobs
        ]

    def test_true_tasks_survive_round_trip(self, cluster, tmp_path):
        from repro.estimation.errors import ErrorModel, apply_estimation_errors
        from repro.workloads.traces import SyntheticTrace

        trace = generate_trace(
            n_workflows=1, jobs_per_workflow=3, n_adhoc=2, capacity=cluster, seed=5
        )
        perturbed_adhoc = apply_estimation_errors(
            trace.adhoc_jobs, ErrorModel(low=2.0, high=2.0)
        )
        trace = SyntheticTrace(
            workflows=trace.workflows, adhoc_jobs=tuple(perturbed_adhoc)
        )
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        loaded = load_trace(path)
        for job in loaded.adhoc_jobs:
            assert job.true_tasks is not None
            assert job.true_tasks.duration_slots == 2 * job.tasks.duration_slots
