"""Edge-case tests across modules: boundary conditions the main suites skip."""

import numpy as np
import pytest

from repro.core.allocation import greedy_fill, quantize_coupled
from repro.core.lexmin import lexmin_schedule
from repro.core.lp_formulation import ScheduleEntry, build_schedule_problem
from repro.model.resources import CPU, MEM, ResourceVector
from repro.schedulers.fifo import FifoScheduler
from repro.simulator.engine import Simulation, SimulationConfig
from repro.workloads.dag_generators import chain_workflow
from tests.conftest import adhoc_job

RES = (CPU, MEM)


def entry(job_id="j", release=0, deadline=4, units=4, cores=1, mem=2, parallel=4):
    return ScheduleEntry(
        job_id=job_id,
        release=release,
        deadline=deadline,
        units=units,
        unit_demand=ResourceVector({CPU: cores, MEM: mem}),
        max_parallel=parallel,
    )


def caps(horizon, cpu=10, mem=20):
    arr = np.zeros((horizon, 2))
    arr[:, 0], arr[:, 1] = cpu, mem
    return arr


class TestLexminEdges:
    def test_max_rounds_zero_still_produces_plan(self):
        """With no minimax rounds at all, the final balancing solve under
        full-capacity caps still yields a feasible allocation."""
        problem = build_schedule_problem([entry()], caps(4), RES)
        result = lexmin_schedule(problem, max_rounds=0)
        assert result.is_optimal
        assert result.rounds == 0
        assert float(result.x.sum()) == pytest.approx(4.0, abs=1e-6)

    def test_single_slot_window(self):
        problem = build_schedule_problem(
            [entry(release=2, deadline=3, units=3, parallel=3)], caps(3), RES
        )
        result = lexmin_schedule(problem)
        assert result.is_optimal
        assert result.x[-1] == pytest.approx(3.0, abs=1e-6)

    def test_front_load_false_is_still_feasible(self):
        entries = [entry(job_id="a", units=4), entry(job_id="b", units=4)]
        problem = build_schedule_problem(entries, caps(4), RES)
        result = lexmin_schedule(problem, front_load=False)
        assert result.is_optimal
        resid = np.asarray(problem.a_eq @ result.x).ravel() - problem.b_eq
        assert np.allclose(resid, 0.0, atol=1e-6)

    def test_front_load_prefers_early_slots(self):
        # One job, capacity far above the flat rate: with front-loading the
        # earliest slots carry at least as much as the latest.
        problem = build_schedule_problem(
            [entry(units=6, deadline=6, parallel=6)], caps(6, cpu=100, mem=200), RES
        )
        x = lexmin_schedule(problem, max_rounds=1, front_load=True).x
        assert x[0] >= x[-1] - 1e-6


class TestQuantizeEdges:
    def test_zero_fractional_everywhere_pass2_fills(self):
        # A deliberately terrible fractional input (all zeros): the
        # quantiser's spill pass must still place every unit.
        problem = build_schedule_problem([entry(units=4)], caps(4), RES)
        grants = quantize_coupled(problem, np.zeros(problem.n_vars))
        assert grants["j"].sum() == 4

    def test_greedy_fill_empty_entries(self):
        grants = greedy_fill([], caps(4), RES)
        assert grants == {}

    def test_greedy_fill_release_respected(self):
        grants = greedy_fill([entry(release=2, deadline=4)], caps(4), RES)
        assert grants["j"][:2].sum() == 0


class TestFormulationEdges:
    def test_utilisation_zero_allocation(self):
        problem = build_schedule_problem([entry()], caps(4), RES)
        util = problem.utilisation(np.zeros(problem.n_vars))
        assert np.all(util == 0.0)

    def test_caps_shape_validation(self):
        with pytest.raises(ValueError, match="caps"):
            build_schedule_problem([entry()], np.zeros((4, 3)), RES)


class TestEngineEdges:
    def test_empty_workload_finishes_immediately(self, small_cluster):
        result = Simulation(small_cluster, FifoScheduler()).run()
        assert result.finished
        assert result.n_slots == 0

    def test_non_strict_mode_tolerates_bad_grants(self, small_cluster, chain3):
        from repro.schedulers.base import Scheduler

        class Sloppy(Scheduler):
            name = "sloppy"

            def assign(self, view):
                # Grants to everything, ready or not; the engine should
                # drop the invalid ones instead of raising.
                grants = {
                    j.job_id: 1 for j in view.deadline_jobs if not j.completed
                }
                for j in view.waiting_adhoc_jobs():
                    grants[j.job_id] = 1
                return grants

        config = SimulationConfig(strict=False, max_slots=500)
        result = Simulation(
            small_cluster, Sloppy(), workflows=[chain3], config=config
        ).run()
        assert result.finished

    def test_workflow_never_arriving_leaves_records_incomplete(self, small_cluster):
        wf = chain_workflow("late", 2, 400, 500)
        config = SimulationConfig(max_slots=10)
        result = Simulation(small_cluster, FifoScheduler(), workflows=[wf], config=config).run()
        assert not result.finished
        assert result.jobs["late-j0"].completion_slot is None
        assert result.workflows["late"].completion_slot is None

    def test_adhoc_arriving_last_slot(self, small_cluster):
        job = adhoc_job("a", arrival=0, count=1, duration=1)
        late = adhoc_job("z", arrival=3, count=1, duration=1)
        result = Simulation(small_cluster, FifoScheduler(), adhoc_jobs=[job, late]).run()
        assert result.finished
        assert result.jobs["z"].completion_slot == 3


class TestClusterViewConsistency:
    def test_unarrived_workflow_hidden_from_view(self, small_cluster):
        seen_jobs = []

        class Spy(FifoScheduler):
            def assign(self, view):
                seen_jobs.append(len(view.deadline_jobs))
                return super().assign(view)

        early = chain_workflow("e", 1, 0, 50)
        late = chain_workflow("l", 1, 3, 60)
        Simulation(small_cluster, Spy(), workflows=[early, late]).run()
        # In the first slots only the early workflow's job is visible.
        assert seen_jobs[0] == 1
        assert max(seen_jobs) == 2
