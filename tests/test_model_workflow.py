"""Unit tests for the Workflow DAG model."""

import pytest

from repro.model.job import Job, JobKind
from repro.model.workflow import Workflow, WorkflowValidationError
from tests.conftest import deadline_job, spec


def wf(jobs, edges, start=0, deadline=100, wid="w"):
    return Workflow.from_jobs(wid, jobs, edges, start, deadline)


class TestValidation:
    def test_minimal(self):
        workflow = wf([deadline_job("w-a", "w")], [])
        assert len(workflow) == 1
        assert workflow.window_slots == 100

    def test_rejects_empty(self):
        with pytest.raises(WorkflowValidationError):
            wf([], [])

    def test_rejects_bad_window(self):
        with pytest.raises(WorkflowValidationError):
            wf([deadline_job("w-a", "w")], [], start=10, deadline=10)

    def test_rejects_duplicate_job_ids(self):
        jobs = [deadline_job("w-a", "w"), deadline_job("w-a", "w")]
        with pytest.raises(WorkflowValidationError):
            wf(jobs, [])

    def test_rejects_adhoc_member(self):
        adhoc = Job(job_id="w-a", tasks=spec(), kind=JobKind.ADHOC)
        with pytest.raises(WorkflowValidationError):
            wf([adhoc], [])

    def test_rejects_wrong_workflow_tag(self):
        job = deadline_job("x-a", "other")
        with pytest.raises(WorkflowValidationError):
            wf([job], [])

    def test_rejects_unknown_edge_endpoints(self):
        with pytest.raises(WorkflowValidationError):
            wf([deadline_job("w-a", "w")], [("w-a", "w-b")])

    def test_rejects_self_loop(self):
        with pytest.raises(WorkflowValidationError):
            wf([deadline_job("w-a", "w")], [("w-a", "w-a")])

    def test_rejects_duplicate_edges(self):
        jobs = [deadline_job("w-a", "w"), deadline_job("w-b", "w")]
        with pytest.raises(WorkflowValidationError):
            wf(jobs, [("w-a", "w-b"), ("w-a", "w-b")])

    def test_rejects_cycle(self):
        jobs = [deadline_job("w-a", "w"), deadline_job("w-b", "w")]
        with pytest.raises(WorkflowValidationError):
            wf(jobs, [("w-a", "w-b"), ("w-b", "w-a")])


class TestQueries:
    @pytest.fixture
    def diamond(self):
        jobs = [deadline_job(f"w-{name}", "w") for name in "abcd"]
        edges = [("w-a", "w-b"), ("w-a", "w-c"), ("w-b", "w-d"), ("w-c", "w-d")]
        return wf(jobs, edges)

    def test_parents_and_dependents(self, diamond):
        assert set(diamond.parents_of("w-d")) == {"w-b", "w-c"}
        assert set(diamond.dependents_of("w-a")) == {"w-b", "w-c"}
        assert diamond.parents_of("w-a") == ()

    def test_roots_and_sinks(self, diamond):
        assert diamond.roots() == ("w-a",)
        assert diamond.sinks() == ("w-d",)

    def test_job_lookup(self, diamond):
        assert diamond.job("w-b").job_id == "w-b"
        with pytest.raises(KeyError):
            diamond.job("missing")

    def test_iteration(self, diamond):
        assert sorted(job.job_id for job in diamond) == [
            "w-a",
            "w-b",
            "w-c",
            "w-d",
        ]

    def test_job_ids(self, diamond):
        assert set(diamond.job_ids) == {"w-a", "w-b", "w-c", "w-d"}
