"""Tests for the ASCII Gantt/skyline renderers."""

import pytest

from repro.analysis.gantt import render_gantt, render_utilization
from repro.schedulers.fifo import FifoScheduler
from repro.simulator.engine import Simulation, SimulationConfig
from tests.conftest import adhoc_job


@pytest.fixture
def recorded_run(small_cluster, chain3):
    adhocs = [adhoc_job("a0", 0, count=2, duration=1)]
    sim = Simulation(
        small_cluster,
        FifoScheduler(),
        workflows=[chain3],
        adhoc_jobs=adhocs,
        config=SimulationConfig(record_execution=True),
    )
    return sim.run()


class TestGantt:
    def test_requires_execution_record(self, small_cluster):
        result = Simulation(
            small_cluster, FifoScheduler(), adhoc_jobs=[adhoc_job("a", 0)]
        ).run()
        with pytest.raises(ValueError, match="record_execution"):
            render_gantt(result)

    def test_one_row_per_job(self, recorded_run):
        chart = render_gantt(recorded_run)
        lines = chart.splitlines()
        assert len(lines) == 1 + len(recorded_run.jobs)  # header + rows
        for job_id in recorded_run.jobs:
            assert any(line.startswith(job_id) for line in lines)

    def test_execution_marks_present(self, recorded_run):
        chart = render_gantt(recorded_run)
        assert "#" in chart

    def test_chain_order_visible(self, recorded_run):
        """Chain jobs appear in dependency order (sorted by first run)."""
        lines = render_gantt(recorded_run).splitlines()[1:]
        order = [line.split()[0] for line in lines]
        assert order.index("c-j0") < order.index("c-j1") < order.index("c-j2")

    def test_job_filter(self, recorded_run):
        chart = render_gantt(recorded_run, jobs=["c-j0"])
        assert len(chart.splitlines()) == 2

    def test_max_rows(self, recorded_run):
        chart = render_gantt(recorded_run, max_rows=2)
        assert len(chart.splitlines()) == 3

    def test_width_cap(self, recorded_run):
        chart = render_gantt(recorded_run, width=10)
        body = chart.splitlines()[1]
        # label + space + |..........| (10 columns at most)
        assert body.count("|") == 2
        inner = body.split("|")[1]
        assert len(inner) <= 10


class TestUtilization:
    def test_sparkline_renders(self, recorded_run, small_cluster):
        line = render_utilization(recorded_run, small_cluster)
        assert line.startswith("util |")
        assert "peak" in line

    def test_busy_run_has_nonzero_blocks(self, recorded_run, small_cluster):
        line = render_utilization(recorded_run, small_cluster)
        inner = line.split("|")[1]
        assert any(ch != " " for ch in inner)
