"""Tests for the independent verification subsystem (:mod:`repro.verify`).

The core property: a known-good schedule passes every check, and *any*
mutation of it — a capacity overflow, a precedence swap, a shifted
execution slot — is always flagged.  Plus the metric-recomputation
regression over the example workload shapes and the trace-level checker.
"""

from __future__ import annotations

import copy
import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import canonical_windows, run_one
from repro.model.cluster import ClusterCapacity
from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.model.workflow import Workflow
from repro.obs import Observability
from repro.obs.trace import MemorySink
from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.failures import FailureModel
from repro.simulator.metrics import summarize
from repro.verify import (
    ScheduleValidator,
    VerificationError,
    recompute_trace_metrics,
    validate_trace,
)
from repro.workloads.traces import SyntheticTrace, generate_trace
from tests.conftest import adhoc_job, deadline_job


def diamond(workflow_id: str = "wf", deadline: int = 40) -> Workflow:
    jobs = [
        deadline_job(f"{workflow_id}-{name}", workflow_id)
        for name in ("extract", "clean", "enrich", "report")
    ]
    edges = [
        (f"{workflow_id}-extract", f"{workflow_id}-clean"),
        (f"{workflow_id}-extract", f"{workflow_id}-enrich"),
        (f"{workflow_id}-clean", f"{workflow_id}-report"),
        (f"{workflow_id}-enrich", f"{workflow_id}-report"),
    ]
    return Workflow.from_jobs(workflow_id, jobs, edges, 0, deadline)


EDGES = [
    ("wf-extract", "wf-clean"),
    ("wf-extract", "wf-enrich"),
    ("wf-clean", "wf-report"),
    ("wf-enrich", "wf-report"),
]


@pytest.fixture(scope="module")
def good_run():
    """One known-good verified run, shared (copied) by the mutation tests."""
    capacity = ClusterCapacity.uniform(cpu=16, mem=32)
    workflow = diamond()
    adhoc = [adhoc_job("a0", arrival=0), adhoc_job("a1", arrival=3)]
    trace = SyntheticTrace(workflows=(workflow,), adhoc_jobs=tuple(adhoc))
    outcome = run_one(
        "FlowTime",
        trace,
        capacity,
        config=SimulationConfig(record_execution=True),
    )
    windows = canonical_windows(trace, capacity)
    jobs = list(workflow.jobs) + adhoc
    validator = ScheduleValidator(
        capacity, workflows=(workflow,), jobs=jobs, windows=windows
    )
    return validator, outcome.result, windows


class TestKnownGoodNeverFlagged:
    def test_unmutated_run_is_clean(self, good_run):
        validator, result, windows = good_run
        report = validator.validate(result)
        assert report.ok, report.render()
        assert report.checks > 100

    def test_reported_metrics_match_recomputation(self, good_run):
        validator, result, windows = good_run
        report = validator.check_reported(result, summarize(result, windows))
        assert report.ok, report.render()


class TestMutationsAlwaysFlagged:
    """Hypothesis: every mutation of a good schedule trips the validator."""

    @settings(deadline=None, max_examples=40)
    @given(data=st.data())
    def test_capacity_bump_is_flagged(self, good_run, data):
        validator, result, _ = good_run
        mutated = copy.deepcopy(result)
        slot = data.draw(st.integers(0, mutated.n_slots - 1), label="slot")
        r = data.draw(st.integers(0, len(mutated.resources) - 1), label="r")
        excess = data.draw(st.integers(1, 10), label="excess")
        cap = validator.cluster.at(slot)[mutated.resources[r]]
        mutated.usage[slot, r] = cap + excess
        report = validator.validate(mutated)
        assert not report.ok
        assert any(v.check == "capacity.used" for v in report.violations)

    @settings(deadline=None, max_examples=20)
    @given(edge=st.sampled_from(EDGES))
    def test_swapped_precedence_is_flagged(self, good_run, edge):
        validator, result, _ = good_run
        parent_id, child_id = edge
        mutated = copy.deepcopy(result)
        jobs = dict(mutated.jobs)
        parent, child = jobs[parent_id], jobs[child_id]
        jobs[parent_id] = dataclasses.replace(
            parent, completion_slot=child.completion_slot
        )
        jobs[child_id] = dataclasses.replace(
            child, completion_slot=parent.completion_slot
        )
        mutated.jobs = jobs
        report = validator.validate(mutated)
        assert not report.ok
        assert any(
            v.check.startswith("precedence.") for v in report.violations
        )

    @settings(deadline=None, max_examples=40)
    @given(data=st.data())
    def test_shifted_execution_slot_is_flagged(self, good_run, data):
        validator, result, _ = good_run
        mutated = copy.deepcopy(result)
        executed_slots = [
            (slot, job_id)
            for slot, row in enumerate(mutated.execution)
            for job_id in row
        ]
        slot, job_id = data.draw(
            st.sampled_from(executed_slots), label="placement"
        )
        direction = data.draw(st.sampled_from([-1, 1]), label="direction")
        target = slot + direction
        if not 0 <= target < len(mutated.execution):
            target = slot - direction
        rows = [dict(row) for row in mutated.execution]
        units = rows[slot].pop(job_id)
        rows[target][job_id] = rows[target].get(job_id, 0) + units
        mutated.execution = tuple(rows)
        report = validator.validate(mutated)
        assert not report.ok


class TestInjectedCapacityOverflow:
    def test_verify_run_raises_on_injected_overflow(self, good_run):
        """The acceptance-criterion mutation: a deliberate capacity
        overflow in the usage matrix must raise through the report."""
        validator, result, _ = good_run
        mutated = copy.deepcopy(result)
        mutated.usage[2] = mutated.usage[2] + 10_000
        report = validator.validate(mutated)
        with pytest.raises(VerificationError) as excinfo:
            report.raise_if_violations()
        assert any(
            v.check == "capacity.used" for v in excinfo.value.report.violations
        )


class TestVerifyEndToEnd:
    def test_simulation_verify_flag_is_clean(self, small_cluster):
        workflow = diamond(deadline=60)
        from repro.schedulers.registry import make_scheduler

        sim = Simulation(
            small_cluster,
            make_scheduler("FlowTime"),
            workflows=[workflow],
            adhoc_jobs=[adhoc_job("a", arrival=0)],
            config=SimulationConfig(verify=True),
        )
        result = sim.run()
        assert result.verification is not None
        assert result.verification.ok
        assert result.verification.checks > 0
        assert result.counter_value("verify.checks") > 0
        assert result.counter_value("verify.violations") == 0

    def test_runtime_verifier_counts_every_slot(self, small_cluster):
        workflow = diamond(deadline=60)
        from repro.schedulers.registry import make_scheduler

        sim = Simulation(
            small_cluster,
            make_scheduler("FlowTime"),
            workflows=[workflow],
            config=SimulationConfig(verify=True),
        )
        result = sim.run()
        # verify=True forces execution recording for the conservation
        # checks even though the caller did not ask for it.
        assert len(result.execution) == result.n_slots


def _example_workloads():
    """The example workload shapes (examples/*.py), scaled for CI."""
    quickstart_cap = ClusterCapacity.uniform(cpu=40, mem=80)
    spec = TaskSpec(
        count=6, duration_slots=3, demand=ResourceVector({CPU: 2, MEM: 4})
    )
    jobs = [
        Job(job_id=f"etl-{n}", tasks=spec, workflow_id="etl", name=n)
        for n in ("extract", "clean", "enrich", "report")
    ]
    etl = Workflow.from_jobs(
        "etl",
        jobs,
        [
            ("etl-extract", "etl-clean"),
            ("etl-extract", "etl-enrich"),
            ("etl-clean", "etl-report"),
            ("etl-enrich", "etl-report"),
        ],
        0,
        60,
        name="etl",
    )
    quickstart = SyntheticTrace(
        workflows=(etl,),
        adhoc_jobs=tuple(
            Job(
                job_id=f"query-{i}",
                tasks=TaskSpec(
                    count=4,
                    duration_slots=2,
                    demand=ResourceVector({CPU: 2, MEM: 2}),
                ),
                kind=JobKind.ADHOC,
                arrival_slot=2 * i,
            )
            for i in range(2)
        ),
    )
    mixed_cap = ClusterCapacity.uniform(cpu=64, mem=128)
    mixed = generate_trace(
        n_workflows=4,
        jobs_per_workflow=12,
        n_adhoc=30,
        capacity=mixed_cap,
        looseness=(4.0, 8.0),
        adhoc_rate_per_slot=0.7,
        workflow_spread_slots=50,
        seed=15,
    )
    online = generate_trace(
        n_workflows=6,
        jobs_per_workflow=10,
        n_adhoc=0,
        capacity=mixed_cap,
        workflow_spread_slots=1,
        seed=7,
    )
    scientific = generate_trace(
        n_workflows=3,
        jobs_per_workflow=10,
        n_adhoc=10,
        capacity=mixed_cap,
        scientific=True,
        seed=15,
    )
    return [
        pytest.param(quickstart, quickstart_cap, id="quickstart"),
        pytest.param(mixed, mixed_cap, id="mixed_cluster"),
        pytest.param(online, mixed_cap, id="online_service"),
        pytest.param(scientific, mixed_cap, id="scientific"),
    ]


class TestExampleWorkloadRegression:
    """Reported metrics == trace-recomputed metrics on the example shapes."""

    @pytest.mark.parametrize("trace,capacity", _example_workloads())
    def test_reported_equals_recomputed(self, trace, capacity):
        sink = MemorySink()
        outcome = run_one(
            "FlowTime",
            trace,
            capacity,
            config=SimulationConfig(record_execution=True),
            obs=Observability(sink=sink),
        )
        windows = canonical_windows(trace, capacity)
        jobs = [j for wf in trace.workflows for j in wf.jobs]
        jobs += list(trace.adhoc_jobs)
        validator = ScheduleValidator(
            capacity, workflows=trace.workflows, jobs=jobs, windows=windows
        )
        report = validator.validate(outcome.result)
        reported = summarize(outcome.result, windows)
        validator.check_reported(outcome.result, reported, report)
        assert report.ok, report.render()

        # And independently again from the raw event trace alone.
        trace_report = validate_trace(
            sink.events, trace=trace, capacity=capacity, windows=windows
        )
        assert trace_report.ok, trace_report.render()
        recomputed = recompute_trace_metrics(
            sink.events, trace=trace, windows=windows
        )
        for key in (
            "n_deadline_jobs",
            "jobs_missed",
            "workflows_missed",
            "max_delta_s",
            "mean_delta_s",
        ):
            assert recomputed[key] == pytest.approx(reported[key]), key
        if reported["adhoc_turnaround_s"] is None:
            assert recomputed["adhoc_turnaround_s"] is None
        else:
            assert recomputed["adhoc_turnaround_s"] == pytest.approx(
                reported["adhoc_turnaround_s"]
            )

    def test_failure_injection_shape_with_setbacks(self):
        """The failure_injection example: setbacks allowed, still clean."""
        capacity = ClusterCapacity.uniform(cpu=24, mem=48)
        workflow = diamond(deadline=80)
        trace = SyntheticTrace(workflows=(workflow,), adhoc_jobs=())
        outcome = run_one(
            "FlowTime",
            trace,
            capacity,
            config=SimulationConfig(
                record_execution=True,
                failures=FailureModel(setback_prob=0.3, seed=4),
            ),
        )
        windows = canonical_windows(trace, capacity)
        validator = ScheduleValidator(
            capacity,
            workflows=(workflow,),
            jobs=workflow.jobs,
            windows=windows,
            allow_setbacks=True,
        )
        report = validator.validate(outcome.result)
        validator.check_reported(
            outcome.result, summarize(outcome.result, windows), report
        )
        assert report.ok, report.render()


class TestTraceChecker:
    def test_tampered_trace_is_flagged(self, good_run):
        validator, result, windows = good_run
        capacity = validator.cluster
        workflow = diamond()
        adhoc = [adhoc_job("a0", arrival=0), adhoc_job("a1", arrival=3)]
        trace = SyntheticTrace(workflows=(workflow,), adhoc_jobs=tuple(adhoc))
        sink = MemorySink()
        run_one(
            "FlowTime",
            trace,
            capacity,
            config=SimulationConfig(record_execution=True),
            obs=Observability(sink=sink),
        )
        clean = validate_trace(
            sink.events, trace=trace, capacity=capacity, windows=windows
        )
        assert clean.ok, clean.render()

        # Inflate one placement so conservation and capacity both break.
        tampered = [dict(e) for e in sink.events]
        placement = next(
            e for e in tampered if e["type"] == "task_placement"
        )
        placement["units"] = placement["units"] + 10_000
        report = validate_trace(
            tampered, trace=trace, capacity=capacity, windows=windows
        )
        assert not report.ok

    def test_metrics_need_run_markers(self):
        with pytest.raises(ValueError):
            recompute_trace_metrics(
                [{"type": "job_arrived", "slot": 0, "job_id": "a", "seq": 0}]
            )


class TestFuzzHarness:
    def test_one_case_runs_clean_on_every_path(self):
        from repro.verify.fuzz import FUZZ_PATHS, make_workload, run_case

        trace, capacity = make_workload(3)
        for path in FUZZ_PATHS:
            assert run_case(trace, capacity, path, 3) == [], path

    def test_failure_persist_and_reload_roundtrip(self, tmp_path):
        from repro.verify.fuzz import (
            FuzzFailure,
            load_failure,
            make_workload,
            persist_failure,
        )

        trace, capacity = make_workload(5)
        failure = FuzzFailure(
            seed=5,
            path="batch",
            violations=["capacity.used: synthetic"],
            trace=trace,
            capacity=capacity,
            original_size=(len(trace.workflows), len(trace.adhoc_jobs)),
        )
        path = persist_failure(failure, tmp_path)
        loaded = load_failure(path)
        assert loaded.seed == 5 and loaded.path == "batch"
        assert len(loaded.trace.workflows) == len(trace.workflows)
        assert len(loaded.trace.adhoc_jobs) == len(trace.adhoc_jobs)
        assert dict(loaded.capacity.base) == dict(capacity.base)

    def test_crashing_path_counts_as_failure(self, monkeypatch):
        import repro.verify.fuzz as fuzz

        def boom(*_args, **_kwargs):
            raise RuntimeError("synthetic crash")

        monkeypatch.setattr(fuzz, "_run_batch", boom)
        trace, capacity = fuzz.make_workload(1)
        violations = fuzz.run_case(trace, capacity, "batch", 1)
        assert violations and "synthetic crash" in violations[0]
