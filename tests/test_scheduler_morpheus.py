"""Tests for the Morpheus baseline (history-inferred deadlines)."""

import pytest

from repro.estimation.history import RunHistory, synthesize_history
from repro.schedulers.morpheus import MorpheusScheduler
from repro.simulator.engine import Simulation
from repro.simulator.metrics import missed_workflows
from tests.conftest import adhoc_job
from repro.workloads.dag_generators import chain_workflow, fork_join_workflow


class TestDeadlineInference:
    def test_windows_from_history_scale_to_current_window(self, small_cluster):
        wf = chain_workflow("w", 3, 0, 90)
        history = synthesize_history(wf, small_cluster, runs=5, noise=0.0)
        scheduler = MorpheusScheduler(history=history)
        Simulation(small_cluster, scheduler, workflows=[wf]).run()
        windows = scheduler.windows
        assert set(windows) == set(wf.job_ids)
        # Noise-free chain history has equal level durations: inferred
        # deadlines split the window into thirds.
        assert windows["w-j0"].deadline_slot == pytest.approx(30, abs=2)
        assert windows["w-j2"].deadline_slot <= 90

    def test_cold_start_gives_whole_window(self, small_cluster):
        wf = chain_workflow("w", 3, 0, 90)
        scheduler = MorpheusScheduler(history=RunHistory())
        Simulation(small_cluster, scheduler, workflows=[wf]).run()
        for window in scheduler.windows.values():
            assert window.release_slot == 0
            assert window.deadline_slot == 90

    def test_inference_ignores_dag_structure(self, small_cluster):
        """Morpheus's defining limitation: two workflows with identical
        history but different DAGs get identical windows."""
        wf = fork_join_workflow("w", 3, 0, 90)
        history = synthesize_history(wf, small_cluster, runs=3, noise=0.0)
        scheduler = MorpheusScheduler(history=history)
        Simulation(small_cluster, scheduler, workflows=[wf]).run()
        # Windows derived purely from observed offsets.
        middle = [scheduler.windows[f"w-j{i}"] for i in range(1, 4)]
        assert len({(w.release_slot, w.deadline_slot) for w in middle}) == 1


class TestExecution:
    def test_completes_and_meets_loose_deadline(self, small_cluster):
        wf = chain_workflow("w", 3, 0, 120)
        history = synthesize_history(wf, small_cluster, runs=4, noise=0.1)
        result = Simulation(
            small_cluster, MorpheusScheduler(history=history), workflows=[wf]
        ).run()
        assert result.finished
        assert missed_workflows(result) == []

    def test_serves_adhoc_with_leftovers(self, small_cluster):
        wf = chain_workflow("w", 2, 0, 200)
        history = synthesize_history(wf, small_cluster, runs=3)
        adhoc = adhoc_job("a", 0, count=2, duration=1)
        result = Simulation(
            small_cluster,
            MorpheusScheduler(history=history),
            workflows=[wf],
            adhoc_jobs=[adhoc],
        ).run()
        assert result.finished
        assert result.jobs["a"].turnaround_slots() <= 5

    def test_reservation_respects_capacity(self, tiny_cluster):
        wf = fork_join_workflow("w", 4, 0, 400)
        history = synthesize_history(wf, tiny_cluster, runs=3)
        result = Simulation(
            tiny_cluster, MorpheusScheduler(history=history), workflows=[wf]
        ).run()
        assert result.finished  # strict engine would raise on over-grant
