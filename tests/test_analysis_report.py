"""Tests for the one-shot reproduction report."""

import importlib
import sys

import pytest

from repro.analysis.reporting import run_report
from repro.cli import main


@pytest.fixture(scope="module")
def report_text():
    return run_report(scale="quick", seed=15)


class TestRemovedReportModule:
    def test_old_import_path_is_gone(self):
        # The deprecated repro.analysis.report shim completed its one-release
        # grace period; repro.analysis.reporting.run_report is the sole
        # public entry point now.
        sys.modules.pop("repro.analysis.report", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.analysis.report")

    def test_reporting_is_the_public_entry(self):
        import repro.analysis

        assert repro.analysis.run_report is run_report


class TestGenerateReport:
    def test_all_sections_present(self, report_text):
        for heading in (
            "# FlowTime reproduction report",
            "## Fig. 1",
            "## Fig. 4",
            "## Fig. 5",
            "## Fig. 6 / Fig. 7",
        ):
            assert heading in report_text

    def test_fig1_exact_numbers(self, report_text):
        assert "| EDF | 150 | 150 |" in report_text
        assert "| FlowTime | 100 | 100 |" in report_text

    def test_fig4_flowtime_row(self, report_text):
        flowtime_row = next(
            line for line in report_text.splitlines()
            if line.startswith("| FlowTime |") and "1.00x" in line
        )
        assert "| 0 | 0 |" in flowtime_row  # no misses

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            run_report(scale="huge")


class TestReportCli:
    def test_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "--out", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert out.read_text().startswith("# FlowTime reproduction report")

    def test_stdout_when_no_out(self, capsys):
        assert main(["report"]) == 0
        assert "## Fig. 4" in capsys.readouterr().out
