"""Behavioural tests for the baseline schedulers (FIFO, Fair, EDF, CORA)."""

import pytest

from repro.model.workflow import Workflow
from repro.schedulers.cora import CoraScheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.registry import (
    SCHEDULER_NAMES,
    available_schedulers,
    make_scheduler,
    register_scheduler,
    unregister_scheduler,
)
from repro.simulator.engine import Simulation
from tests.conftest import adhoc_job, deadline_job


def one_job_wf(wid, start=0, deadline=60, **kwargs):
    return Workflow.from_jobs(wid, [deadline_job(f"{wid}-a", wid, **kwargs)], [], start, deadline)


class TestRegistry:
    def test_all_names_constructible(self):
        for name in SCHEDULER_NAMES:
            scheduler = make_scheduler(name)
            assert hasattr(scheduler, "assign")

    def test_names_match_paper_legend(self):
        assert {"FlowTime", "CORA", "EDF", "Fair", "FIFO"} <= set(SCHEDULER_NAMES)

    def test_flowtime_no_ds_has_zero_slack(self):
        scheduler = make_scheduler("FlowTime_no_ds")
        assert scheduler.planner.config.slack_slots == 0
        assert scheduler.name == "FlowTime_no_ds"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_scheduler("SLURM")

    def test_register_and_unregister_custom_scheduler(self):
        register_scheduler("TestFifoClone", lambda **kw: FifoScheduler())
        try:
            assert "TestFifoClone" in available_schedulers()
            scheduler = make_scheduler("TestFifoClone")
            assert hasattr(scheduler, "assign")
        finally:
            unregister_scheduler("TestFifoClone")
        assert "TestFifoClone" not in available_schedulers()

    def test_register_duplicate_requires_overwrite(self):
        with pytest.raises(ValueError):
            register_scheduler("FIFO", lambda **kw: FifoScheduler())
        with pytest.raises(ValueError):
            unregister_scheduler("NoSuchScheduler")

    def test_available_matches_frozen_names_at_import(self):
        assert set(SCHEDULER_NAMES) <= set(available_schedulers())


class TestFifo:
    def test_earlier_submission_wins(self, tiny_cluster):
        # Two ad-hoc jobs that each want the whole 4-core cluster.
        first = adhoc_job("a", 0, count=4, duration=2, cores=1, mem=2)
        second = adhoc_job("b", 1, count=4, duration=2, cores=1, mem=2)
        result = Simulation(
            tiny_cluster, FifoScheduler(), adhoc_jobs=[first, second]
        ).run()
        assert result.jobs["a"].completion_slot < result.jobs["b"].completion_slot

    def test_deadline_oblivious(self, tiny_cluster):
        # A loose-deadline workflow submitted first still hogs the cluster.
        wf = one_job_wf("w", deadline=1000, count=8, duration=2, cores=1, mem=2)
        late_adhoc = adhoc_job("a", 1, count=4, duration=1, cores=1, mem=2)
        result = Simulation(
            tiny_cluster, FifoScheduler(), workflows=[wf], adhoc_jobs=[late_adhoc]
        ).run()
        assert result.jobs["w-a"].completion_slot <= result.jobs["a"].completion_slot


class TestFair:
    def test_equal_share_between_equal_jobs(self, tiny_cluster):
        # Two identical ad-hoc jobs arriving together on 4 cores: each gets
        # 2 cores/slot and they finish together.
        a = adhoc_job("a", 0, count=4, duration=2, cores=1, mem=2)
        b = adhoc_job("b", 0, count=4, duration=2, cores=1, mem=2)
        result = Simulation(tiny_cluster, FairScheduler(), adhoc_jobs=[a, b]).run()
        assert result.jobs["a"].completion_slot == result.jobs["b"].completion_slot

    def test_adhoc_not_starved_by_workflow(self, tiny_cluster):
        wf = one_job_wf("w", deadline=1000, count=16, duration=2, cores=1, mem=2)
        adhoc = adhoc_job("a", 0, count=2, duration=1, cores=1, mem=2)
        result = Simulation(
            tiny_cluster, FairScheduler(), workflows=[wf], adhoc_jobs=[adhoc]
        ).run()
        # The ad-hoc job gets its fair share immediately and finishes long
        # before the big workflow job.
        assert result.jobs["a"].completion_slot < result.jobs["w-a"].completion_slot


class TestEdf:
    def test_earliest_workflow_deadline_first(self, tiny_cluster):
        urgent = one_job_wf("u", deadline=10, count=8, duration=1, cores=1, mem=2)
        relaxed = one_job_wf("r", deadline=500, count=8, duration=1, cores=1, mem=2)
        result = Simulation(
            tiny_cluster, EdfScheduler(), workflows=[urgent, relaxed]
        ).run()
        assert (
            result.jobs["u-a"].completion_slot < result.jobs["r-a"].completion_slot
        )

    def test_adhoc_only_gets_leftovers(self, tiny_cluster):
        # Deadline work saturates the cluster; the ad-hoc job must wait —
        # exactly the Fig. 1 pathology.
        wf = one_job_wf("w", deadline=1000, count=12, duration=2, cores=1, mem=2)
        adhoc = adhoc_job("a", 0, count=2, duration=1, cores=1, mem=2)
        result = Simulation(
            tiny_cluster, EdfScheduler(), workflows=[wf], adhoc_jobs=[adhoc]
        ).run()
        assert result.jobs["a"].completion_slot > result.jobs["w-a"].completion_slot - 1


class TestCora:
    def test_validation(self):
        with pytest.raises(ValueError):
            CoraScheduler(adhoc_soft_deadline_slots=0)

    def test_urgent_deadline_job_prioritised(self, tiny_cluster):
        urgent = one_job_wf("u", deadline=6, count=8, duration=1, cores=1, mem=2)
        relaxed = one_job_wf("r", deadline=2000, count=8, duration=1, cores=1, mem=2)
        result = Simulation(
            tiny_cluster, CoraScheduler(), workflows=[urgent, relaxed]
        ).run()
        assert (
            result.jobs["u-a"].completion_slot <= result.jobs["r-a"].completion_slot
        )

    def test_waiting_adhoc_gains_priority(self, tiny_cluster):
        # With a very loose workflow, ad-hoc work should overtake it as its
        # waiting-time utility grows.
        wf = one_job_wf("w", deadline=4000, count=20, duration=2, cores=1, mem=2)
        adhoc = adhoc_job("a", 0, count=4, duration=1, cores=1, mem=2)
        result = Simulation(
            tiny_cluster, CoraScheduler(), workflows=[wf], adhoc_jobs=[adhoc]
        ).run()
        assert result.jobs["a"].completion_slot < result.jobs["w-a"].completion_slot

    def test_completes_mixed_load(self, small_cluster, chain3):
        adhocs = [adhoc_job(f"a{i}", i, count=2, duration=1) for i in range(5)]
        result = Simulation(
            small_cluster, CoraScheduler(), workflows=[chain3], adhoc_jobs=adhocs
        ).run()
        assert result.finished
