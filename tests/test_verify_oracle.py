"""Differential-oracle tests: production lexmin vs the from-scratch LP.

The acceptance bar: over the seeded tiny-instance generator, the
production planner agrees with the independently built dense LP on at
least 200 instances with zero disagreements.  Plus sanity on the
exhaustive integral enumeration (the LP bound can only be tighter).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.verify.oracle import (
    check_instance,
    enumerate_minimax,
    generate_instance,
    integral_feasible,
    oracle_minimax,
    run_oracle,
)


@pytest.fixture(scope="module")
def sweep():
    """One shared 300-seed sweep (a few seconds, reused by every test)."""
    return run_oracle(range(300))


class TestOracleSweep:
    def test_at_least_200_agreements_and_zero_disagreements(self, sweep):
        agreements = [o for o in sweep if o.status == "agree"]
        disagreements = [o for o in sweep if o.status == "disagree"]
        assert not disagreements, [
            (o.seed, o.detail) for o in disagreements[:5]
        ]
        assert len(agreements) >= 200

    def test_agreements_carry_matching_thetas(self, sweep):
        for outcome in sweep:
            if outcome.status != "agree":
                continue
            assert outcome.oracle_theta == pytest.approx(
                outcome.production_theta, abs=1e-4
            )

    def test_skips_are_explained(self, sweep):
        for outcome in sweep:
            if outcome.status == "skipped":
                assert outcome.detail


class TestInstanceGenerator:
    def test_deterministic_per_seed(self):
        assert generate_instance(11) == generate_instance(11)
        assert generate_instance(11) != generate_instance(12)

    def test_windows_individually_feasible(self):
        for seed in range(100):
            instance = generate_instance(seed)
            for job in instance.jobs:
                window = job.deadline - job.release
                assert 0 < window
                assert job.units <= window * job.max_parallel


class TestEnumerationSanity:
    def test_lp_never_above_integral_optimum(self):
        """The fractional relaxation lower-bounds the integral optimum."""
        checked = 0
        for seed in range(120):
            instance = generate_instance(seed)
            integral = enumerate_minimax(instance, max_schedules=20_000)
            if integral is None:
                continue
            fractional = oracle_minimax(instance)
            assert fractional is not None
            assert fractional <= integral + 1e-9
            checked += 1
        assert checked >= 30

    def test_integral_feasibility_matches_enumeration(self):
        for seed in range(80):
            instance = generate_instance(seed)
            integral = enumerate_minimax(instance, max_schedules=20_000)
            feasible = integral_feasible(instance, max_schedules=20_000)
            if feasible is None:
                continue
            assert feasible == (
                integral is not None and integral <= 1.0 + 1e-9
            ), seed


class TestSingleInstance:
    def test_one_job_trivial_instance_agrees(self):
        # Find a 1-job instance and check it end to end.
        seed = next(
            s for s in range(50) if len(generate_instance(s).jobs) == 1
        )
        outcome = check_instance(seed)
        assert outcome.status in ("agree", "skipped")
        if outcome.status == "agree":
            assert np.isfinite(outcome.production_theta)
