"""Windowed metrics: deterministic slice-ring behaviour under a fake clock."""

from __future__ import annotations

import math

import pytest

from repro.obs import DEFAULT_LATENCY_BOUNDS, WindowedCounter, WindowedHistogram


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


class TestWindowedCounter:
    def test_total_is_monotonic_across_rotation(self, clock):
        counter = WindowedCounter("c", window_s=60.0, n_slices=6, clock=clock)
        for _ in range(10):
            counter.inc()
            clock.advance(30.0)
        assert counter.value == 10.0
        # Clock sits at 300 s; only the increment at t=270 is inside the
        # trailing 60 s window (t=240 is exactly on the excluded edge).
        assert counter.delta() == 1.0

    def test_delta_excludes_expired_slices(self, clock):
        counter = WindowedCounter("c", window_s=60.0, n_slices=6, clock=clock)
        counter.inc(5)
        clock.advance(61.0)
        assert counter.delta() == 0.0
        assert counter.value == 5.0

    def test_rate_is_delta_over_window(self, clock):
        counter = WindowedCounter("c", window_s=60.0, n_slices=6, clock=clock)
        for _ in range(30):
            counter.inc()
            clock.advance(1.0)
        assert counter.rate() == pytest.approx(30 / 60.0)
        # Sub-window reads resolve to whole 10 s slices: the trailing 30 s
        # covers the 3 newest slices (the current, still-empty one
        # included), i.e. the increments at t=10..29.
        assert counter.delta(30.0) == pytest.approx(20.0)

    def test_subwindow_cannot_exceed_retained(self, clock):
        counter = WindowedCounter("c", window_s=60.0, n_slices=6, clock=clock)
        with pytest.raises(ValueError, match="exceeds retained"):
            counter.delta(120.0)

    def test_negative_increment_rejected(self, clock):
        counter = WindowedCounter("c", clock=clock)
        with pytest.raises(ValueError, match="negative"):
            counter.inc(-1)

    def test_slice_reuse_zeroes_stale_data(self, clock):
        # Jump exactly one full ring ahead: the slice index repeats, but
        # its stale contents must not leak into the new window.
        counter = WindowedCounter("c", window_s=10.0, n_slices=2, clock=clock)
        counter.inc(7)
        clock.advance(10.0)  # same slot index, new tick
        counter.inc(1)
        assert counter.delta() == 1.0

    def test_snapshot_shape(self, clock):
        counter = WindowedCounter("c", window_s=300.0, n_slices=60, clock=clock)
        counter.inc(4)
        snap = counter.snapshot()
        assert snap["type"] == "windowed_counter"
        assert snap["value"] == 4.0
        assert snap["delta_1m"] == 4.0
        assert snap["rate_1m"] == pytest.approx(4 / 60.0)

    def test_memory_is_fixed(self, clock):
        counter = WindowedCounter("c", window_s=60.0, n_slices=6, clock=clock)
        for _ in range(10_000):
            counter.inc()
            clock.advance(0.25)
        assert len(counter._slices) == 6
        assert counter.value == 10_000.0


class TestWindowedHistogram:
    def test_quantile_interpolates_within_bucket(self, clock):
        hist = WindowedHistogram(
            "h", bounds=(1.0, 2.0, 4.0), window_s=60.0, n_slices=6, clock=clock
        )
        for _ in range(100):
            hist.observe(1.5)  # all in the (1, 2] bucket
        q50 = hist.quantile(0.5)
        assert 1.0 < q50 <= 2.0

    def test_quantile_empty_window_is_nan(self, clock):
        hist = WindowedHistogram("h", window_s=60.0, n_slices=6, clock=clock)
        assert math.isnan(hist.quantile(0.5))
        hist.observe(0.1)
        clock.advance(61.0)
        assert math.isnan(hist.quantile(0.5))  # sample expired
        assert hist.count == 1  # ...but the all-time total survives

    def test_quantile_inf_bucket_reports_last_finite_bound(self, clock):
        hist = WindowedHistogram(
            "h", bounds=(1.0, 2.0), window_s=60.0, n_slices=6, clock=clock
        )
        hist.observe(100.0)
        assert hist.quantile(0.99) == 2.0

    def test_quantile_bounds_validation(self, clock):
        hist = WindowedHistogram("h", clock=clock)
        with pytest.raises(ValueError, match="quantile"):
            hist.quantile(1.5)

    def test_cumulative_buckets_monotone_with_inf_total(self, clock):
        hist = WindowedHistogram(
            "h", bounds=(0.01, 0.1, 1.0), window_s=60.0, n_slices=6, clock=clock
        )
        for value in (0.005, 0.05, 0.5, 5.0, 5.0):
            hist.observe(value)
        buckets = hist.cumulative_buckets()
        assert buckets == [(0.01, 1), (0.1, 2), (1.0, 3), (math.inf, 5)]
        counts = [c for _, c in buckets]
        assert counts == sorted(counts)
        assert buckets[-1][1] == hist.count

    def test_window_count_and_rate(self, clock):
        hist = WindowedHistogram("h", window_s=60.0, n_slices=6, clock=clock)
        for _ in range(12):
            hist.observe(0.01)
            clock.advance(5.0)
        # The clock sits at 60 s: the oldest slice (observations at t=0
        # and t=5) has scrolled out of the 6-slice ring view.
        assert hist.window_count() == 10
        assert hist.rate() == pytest.approx(10 / 60.0)
        clock.advance(120.0)
        assert hist.window_count() == 0
        assert hist.count == 12

    def test_bad_bounds_rejected(self, clock):
        with pytest.raises(ValueError, match="ascending"):
            WindowedHistogram("h", bounds=(1.0, 1.0), clock=clock)
        with pytest.raises(ValueError, match="finite"):
            WindowedHistogram("h", bounds=(1.0, math.inf), clock=clock)
        with pytest.raises(ValueError, match="empty"):
            WindowedHistogram("h", bounds=(), clock=clock)

    def test_default_bounds_are_the_latency_ladder(self, clock):
        hist = WindowedHistogram("h", clock=clock)
        assert hist.bounds == DEFAULT_LATENCY_BOUNDS

    def test_snapshot_is_strict_json_safe_when_empty(self, clock):
        import json

        from repro.obs import json_safe

        hist = WindowedHistogram("h", clock=clock)
        snap = json_safe(hist.snapshot())
        text = json.dumps(snap, allow_nan=False)  # must not raise
        assert json.loads(text)["p99"] is None
