"""Property-based tests for node-level packing invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.resources import CPU, MEM, ResourceVector
from repro.simulator.nodes import NodeCluster


@st.composite
def clusters_and_requests(draw):
    n_nodes = draw(st.integers(min_value=1, max_value=6))
    nodes = []
    for _ in range(n_nodes):
        nodes.append(
            ResourceVector(
                {
                    CPU: draw(st.integers(min_value=2, max_value=8)),
                    MEM: draw(st.integers(min_value=2, max_value=16)),
                }
            )
        )
    cluster = NodeCluster(nodes)
    n_jobs = draw(st.integers(min_value=0, max_value=5))
    requests = []
    for i in range(n_jobs):
        demand = ResourceVector(
            {
                CPU: draw(st.integers(min_value=1, max_value=4)),
                MEM: draw(st.integers(min_value=1, max_value=6)),
            }
        )
        units = draw(st.integers(min_value=0, max_value=10))
        requests.append((f"j{i}", demand, units))
    return cluster, requests


@settings(deadline=None, max_examples=60)
@given(clusters_and_requests())
def test_pack_conserves_units(data):
    cluster, requests = data
    result = cluster.pack(requests)
    for job_id, _demand, units in requests:
        if units <= 0:
            continue
        placed = result.placed.get(job_id, 0)
        unplaced = result.unplaced.get(job_id, 0)
        assert placed + unplaced == units
        assert placed >= 0 and unplaced >= 0


@settings(deadline=None, max_examples=60)
@given(clusters_and_requests())
def test_pack_respects_node_capacities(data):
    cluster, requests = data
    result = cluster.pack(requests)
    for node, load in zip(cluster.nodes, result.node_loads):
        assert load.fits_in(node)


@settings(deadline=None, max_examples=60)
@given(clusters_and_requests())
def test_pack_load_accounts_for_placements(data):
    cluster, requests = data
    result = cluster.pack(requests)
    expected = ResourceVector()
    for job_id, demand, _units in requests:
        expected = expected + demand * result.placed.get(job_id, 0)
    assert ResourceVector.sum(result.node_loads) == expected


@settings(deadline=None, max_examples=60)
@given(clusters_and_requests())
def test_pack_is_work_conserving(data):
    """If a unit went unplaced, no node can still hold its demand."""
    cluster, requests = data
    result = cluster.pack(requests)
    residuals = [
        node.saturating_sub(load)
        for node, load in zip(cluster.nodes, result.node_loads)
    ]
    for job_id, demand, _units in requests:
        if result.unplaced.get(job_id, 0) > 0:
            assert not any(demand.fits_in(free) for free in residuals)
