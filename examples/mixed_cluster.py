#!/usr/bin/env python3
"""The paper's headline experiment at example scale (Fig. 4).

Generates a replayable synthetic trace (recurring workflows with loose
deadlines + a Poisson ad-hoc stream), runs all five Fig. 4 algorithms plus
Morpheus over it, and prints the comparison table and turnaround ratios.
The trace is also written to ``mixed_cluster_trace.json`` so the exact run
can be replayed or shared.

Run:  python examples/mixed_cluster.py
"""

from pathlib import Path

from repro import ClusterCapacity, generate_trace
from repro.analysis.experiments import run_comparison
from repro.analysis.reporting import format_comparison_table, turnaround_ratios
from repro.workloads.traces import save_trace


def main() -> None:
    cluster = ClusterCapacity.uniform(cpu=64, mem=128)
    trace = generate_trace(
        n_workflows=4,
        jobs_per_workflow=12,
        n_adhoc=30,
        capacity=cluster,
        looseness=(4.0, 8.0),
        adhoc_rate_per_slot=0.7,
        workflow_spread_slots=50,
        seed=15,
    )
    trace_path = Path(__file__).with_name("mixed_cluster_trace.json")
    save_trace(trace, trace_path)
    print(
        f"{trace.n_deadline_jobs} deadline jobs in {len(trace.workflows)} "
        f"workflows + {len(trace.adhoc_jobs)} ad-hoc jobs "
        f"(trace saved to {trace_path.name})\n"
    )

    comparison = run_comparison(
        trace, cluster, ("FlowTime", "CORA", "EDF", "Fair", "FIFO", "Morpheus")
    )
    print(format_comparison_table(comparison))
    print("\nad-hoc turnaround relative to FlowTime (paper: Fair 1.36x, "
          "CORA 2x, FIFO 3x, EDF 10x):")
    for name, ratio in turnaround_ratios(comparison).items():
        print(f"  {name:<10} {ratio:5.2f}x")


if __name__ == "__main__":
    main()
