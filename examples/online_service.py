#!/usr/bin/env python3
"""FlowTime as a live service: dynamic submissions, batching, backpressure.

The paper's system is online — workflows and ad-hoc jobs arrive while the
scheduler runs.  This example starts an in-process
:class:`~repro.service.core.SchedulerService` (no HTTP needed), feeds it a
Poisson mix of deadline workflows and ad-hoc jobs, drains gracefully, and
prints what the service layer measured:

* queue depth over the run (ad-hoc backpressure),
* re-plan batch sizes (how many submissions one LP ladder paid for),
* decide latency (the per-slot scheduling cost).

Run:  python examples/online_service.py
"""

import numpy as np

from repro import ClusterCapacity
from repro.service import SchedulerService, ServiceConfig
from repro.workloads import adhoc_stream, generate_trace


def main() -> None:
    cluster = ClusterCapacity.uniform(cpu=64, mem=128)
    rng = np.random.default_rng(7)

    # A replayable workload: 6 deadline workflows + a Poisson ad-hoc stream.
    # workflow_spread_slots=1 makes the workflows a genuine burst (all want
    # to start now), which is what batched re-planning is for.
    trace = generate_trace(
        n_workflows=6,
        jobs_per_workflow=10,
        n_adhoc=0,
        capacity=cluster,
        workflow_spread_slots=1,
        seed=7,
    )
    adhoc_jobs = adhoc_stream(40, rate_per_slot=0.6, horizon_slots=120, seed=8)

    # batch_window_s holds the virtual clock open after each arrival, so a
    # burst of submissions coalesces into ONE re-plan instead of one each.
    service = SchedulerService(
        cluster,
        ServiceConfig(batch_window_s=0.05, adhoc_queue_limit=16),
    ).start()

    # Interleave submissions the way a live frontend would: workflows and
    # ad-hoc jobs in random order, in small bursts.
    submissions = [("wf", wf) for wf in trace.workflows]
    submissions += [("adhoc", job) for job in adhoc_jobs]
    rng.shuffle(submissions)

    outcomes = {"admitted": 0, "queued": 0, "infeasible": 0, "queue_full": 0}
    for kind, payload in submissions:
        if kind == "wf":
            result = service.submit_workflow(payload)
        else:
            result = service.submit_adhoc(payload)
        outcomes[result.reason] = outcomes.get(result.reason, 0) + 1

    final = service.drain()
    status = service.status()
    metrics = service.metrics_snapshot()

    print("online service run")
    print(f"  scheduler:        {status.scheduler}")
    print(f"  slots simulated:  {final.n_slots} (finished={final.finished})")
    print(
        f"  workflows:        {status.accepted_workflows} admitted, "
        f"{status.rejected_workflows} rejected"
    )
    print(
        f"  ad-hoc jobs:      {status.accepted_adhoc} queued, "
        f"{status.shed_adhoc} shed (queue limit 16)"
    )
    missed = sum(not w.met_deadline for w in final.workflows.values())
    print(f"  deadline misses:  {missed} (admission only lets feasible work in)")

    batch = metrics["service.replan.batch_size"]
    print("\nre-plan batching (workflow arrivals coalesced per plan call)")
    print(
        f"  {int(batch['count'])} arrival batches for "
        f"{status.accepted_workflows} admitted workflows"
    )
    print(
        f"  batch size p50={batch['p50']:.0f}  "
        f"p95={batch['p95']:.0f}  max={batch['max']:.0f}"
    )

    decide = metrics["sched.decide"]
    print("\ndecide latency per slot")
    print(
        f"  p50={decide['p50'] * 1e3:.1f} ms  "
        f"p95={decide['p95'] * 1e3:.1f} ms  "
        f"max={decide['max'] * 1e3:.1f} ms"
    )

    depth = metrics["service.queue.depth"]
    print(f"\nad-hoc queue depth at drain: {depth['value']:.0f}")


if __name__ == "__main__":
    main()
