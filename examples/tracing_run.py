#!/usr/bin/env python3
"""Instrumented run: JSONL event trace + per-phase latency profile.

Runs FlowTime over a generated mixed workload with an Observability handle
attached, then shows the three things the obs layer gives you:

1. the per-phase timing table (where did the wall-clock go?),
2. the slowest simulated slot and how much of it was the scheduler,
3. the structured event trace, re-read from disk and summarised.

Run:  python examples/tracing_run.py
"""

import tempfile
from pathlib import Path

from repro import (
    ClusterCapacity,
    JsonlSink,
    Observability,
    generate_trace,
    read_trace,
    run_one,
)
from repro.analysis.reporting import format_phase_table, format_slowest_slot
from repro.obs import count_by_type


def main() -> None:
    cluster = ClusterCapacity.uniform(cpu=64, mem=128)
    trace = generate_trace(
        n_workflows=3, jobs_per_workflow=8, n_adhoc=15, capacity=cluster, seed=42
    )

    trace_path = Path(tempfile.gettempdir()) / "flowtime_run.jsonl"
    obs = Observability(sink=JsonlSink(trace_path))
    with obs:  # closes (flushes) the sink when the block exits
        outcome = run_one("FlowTime", trace, cluster, obs=obs)

    result = outcome.result
    print(f"finished in {result.n_slots} slots; "
          f"{outcome.n_missed_jobs} deadline jobs missed\n")

    # 1. Per-phase latencies, straight off the result.
    print(format_phase_table(result.metrics))

    # 2. The slot that cost the most wall-clock time.
    slowest = format_slowest_slot(result.metrics)
    if slowest:
        print(slowest)

    # 3. The event trace round-trips through JSONL.
    events = read_trace(trace_path)
    print(f"\ntrace: {len(events)} events in {trace_path}")
    for event_type, count in sorted(count_by_type(events).items()):
        print(f"  {event_type:<24} {count}")

    completions = [e for e in events if e["type"] == "job_completed"]
    finished_jobs = sum(
        1 for r in result.jobs.values() if r.completion_slot is not None
    )
    assert len(completions) == finished_jobs  # the trace matches the result
    last = completions[-1]
    print(f"\nlast completion: job {last['job_id']!r} at slot {last['slot']}")


if __name__ == "__main__":
    main()
