#!/usr/bin/env python3
"""Failure injection + Gantt rendering.

Runs the same workflow twice — once on a healthy cluster, once with a 30%
per-slot chance that a running job loses a few task-slots of progress — and
renders both schedules as ASCII Gantt charts so the redone work is visible.

Run:  python examples/failure_injection.py
"""

from repro import ClusterCapacity, Simulation, SimulationConfig, make_scheduler
from repro.analysis.gantt import render_gantt, render_utilization
from repro.simulator.failures import FailureModel
from repro.simulator.metrics import missed_workflows
from repro.workloads.dag_generators import diamond_workflow


def run(failures: FailureModel | None):
    cluster = ClusterCapacity.uniform(cpu=24, mem=48)
    workflow = diamond_workflow("pipeline", 0, 120)
    config = SimulationConfig(record_execution=True, failures=failures)
    scheduler = make_scheduler("FlowTime")
    result = Simulation(cluster, scheduler, workflows=[workflow], config=config).run()
    return cluster, result


def main() -> None:
    for label, failures in (
        ("healthy cluster", None),
        ("30% per-slot setback probability", FailureModel(setback_prob=0.3, seed=4)),
    ):
        cluster, result = run(failures)
        deadline = "met" if not missed_workflows(result) else "MISSED"
        print(f"=== {label} ===")
        print(f"finished in {result.n_slots} slots, workflow deadline {deadline}")
        print(render_utilization(result, cluster, width=60))
        print(render_gantt(result, width=60))
        print()


if __name__ == "__main__":
    main()
