#!/usr/bin/env python3
"""Quickstart: schedule one deadline workflow plus ad-hoc jobs with FlowTime.

Builds a small cluster, a diamond-shaped workflow with a loose deadline, and
a couple of ad-hoc jobs; runs the full FlowTime pipeline (deadline
decomposition -> lexicographic-minimax LP -> dynamic re-planning) and prints
what happened.

Run:  python examples/quickstart.py
"""

from repro import (
    CPU,
    MEM,
    ClusterCapacity,
    Job,
    JobKind,
    ResourceVector,
    Simulation,
    TaskSpec,
    Workflow,
    make_scheduler,
)
from repro.simulator.metrics import (
    adhoc_turnaround_seconds,
    missed_jobs,
    missed_workflows,
)


def main() -> None:
    # A 40-core, 80-GB cluster.
    cluster = ClusterCapacity.uniform(cpu=40, mem=80)

    # A diamond workflow: extract -> {clean, enrich} -> report.
    # Each job is a bag of identical tasks (count x duration x demand).
    spec = TaskSpec(count=6, duration_slots=3, demand=ResourceVector({CPU: 2, MEM: 4}))
    jobs = [
        Job(job_id=f"etl-{name}", tasks=spec, workflow_id="etl", name=name)
        for name in ("extract", "clean", "enrich", "report")
    ]
    workflow = Workflow.from_jobs(
        "etl",
        jobs,
        [
            ("etl-extract", "etl-clean"),
            ("etl-extract", "etl-enrich"),
            ("etl-clean", "etl-report"),
            ("etl-enrich", "etl-report"),
        ],
        start_slot=0,
        deadline_slot=60,  # loose: the critical path is ~9 slots
        name="etl",
    )

    # Two ad-hoc jobs (size unknown to the scheduler at submission).
    adhoc = [
        Job(
            job_id=f"query-{i}",
            tasks=TaskSpec(
                count=4, duration_slots=2, demand=ResourceVector({CPU: 1, MEM: 2})
            ),
            kind=JobKind.ADHOC,
            arrival_slot=arrival,
        )
        for i, arrival in enumerate((0, 5))
    ]

    scheduler = make_scheduler("FlowTime")
    result = Simulation(
        cluster, scheduler, workflows=[workflow], adhoc_jobs=adhoc
    ).run()

    print(f"simulation finished in {result.n_slots} slots "
          f"({result.seconds(result.n_slots):.0f} s simulated)")
    print("\ndecomposed job windows (slots):")
    for job_id, window in sorted(scheduler.windows.items()):
        record = result.jobs[job_id]
        print(
            f"  {job_id:<14} window [{window.release_slot:>3}, "
            f"{window.deadline_slot:>3})  completed at slot "
            f"{record.completion_slot}"
        )
    print(f"\nworkflow deadlines missed: {missed_workflows(result) or 'none'}")
    print(f"job deadlines missed:      {missed_jobs(result, scheduler.windows) or 'none'}")
    print(f"avg ad-hoc turnaround:     {adhoc_turnaround_seconds(result):.0f} s")


if __name__ == "__main__":
    main()
