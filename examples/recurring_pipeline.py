#!/usr/bin/env python3
"""A recurring pipeline across days: history accumulates, Morpheus learns.

Deadline workflows recur (daily ETL); FlowTime uses the DAG so it is right
from day one, while Morpheus infers per-job deadlines from whatever history
exists — cold-started on day 0, learning from each executed instance.

Run:  python examples/recurring_pipeline.py
"""

from repro import ClusterCapacity, RecurringWorkflow, RunHistory, Simulation, record_run
from repro.schedulers import make_scheduler
from repro.simulator.metrics import missed_workflows
from repro.workloads.dag_generators import fork_join_workflow


def main() -> None:
    cluster = ClusterCapacity.uniform(cpu=48, mem=96)
    recurring = RecurringWorkflow(
        skeleton=fork_join_workflow("etl", 4, 0, 140),
        period_slots=160,
        template_name="daily-etl",
    )
    history = RunHistory()

    print("day  scheduler  deadline  earliest inferred job deadline")
    for day in range(4):
        instance = recurring.instance(day)
        for label, scheduler in (
            ("FlowTime", make_scheduler("FlowTime")),
            ("Morpheus", make_scheduler("Morpheus", history=history)),
        ):
            result = Simulation(cluster, scheduler, workflows=[instance]).run()
            met = "met " if not missed_workflows(result) else "MISS"
            if label == "Morpheus":
                earliest = min(
                    w.deadline_slot for w in scheduler.windows.values()
                ) - instance.start_slot
                print(f"{day:>3}  {label:<9} {met:>8}  {earliest:>4} slots "
                      f"({'cold start' if day == 0 else 'learned from history'})")
                record_run(history, recurring, day, result)
            else:
                print(f"{day:>3}  {label:<9} {met:>8}     - (DAG-based)")
    print("\nMorpheus's inferred windows tighten after the first observed run;")
    print("FlowTime never needed the history — it decomposes the DAG directly.")


if __name__ == "__main__":
    main()
