#!/usr/bin/env python3
"""The paper's Fig. 1 motivating example, reproduced exactly.

Workflow W1 = J1 -> J2 with a loose deadline of 200; ad-hoc jobs A1
(arrives at 0) and A2 (arrives at 100).  EDF runs the workflow first and
averages 150 = (200 + 100) / 2 ad-hoc turnaround; FlowTime spreads the
workflow thinly across its window and averages 100 = (100 + 100) / 2 —
while both meet the workflow deadline.

Run:  python examples/motivating_example.py
"""

from repro import (
    CPU,
    MEM,
    ClusterCapacity,
    Job,
    JobKind,
    ResourceVector,
    Simulation,
    SimulationConfig,
    TaskSpec,
    Workflow,
    make_scheduler,
)
from repro.simulator.metrics import adhoc_turnaround_seconds, missed_workflows


def build_scenario():
    cluster = ClusterCapacity.uniform(cpu=4, mem=8)
    w_spec = TaskSpec(
        count=2, duration_slots=50, demand=ResourceVector({CPU: 2, MEM: 2})
    )
    jobs = [Job(job_id=f"W1-J{i}", tasks=w_spec, workflow_id="W1") for i in (1, 2)]
    workflow = Workflow.from_jobs("W1", jobs, [("W1-J1", "W1-J2")], 0, 200)
    a_spec = TaskSpec(
        count=2, duration_slots=100, demand=ResourceVector({CPU: 1, MEM: 1})
    )
    adhoc = [
        Job(job_id="A1", tasks=a_spec, kind=JobKind.ADHOC, arrival_slot=0),
        Job(job_id="A2", tasks=a_spec, kind=JobKind.ADHOC, arrival_slot=100),
    ]
    return cluster, workflow, adhoc


def run(scheduler):
    cluster, workflow, adhoc = build_scenario()
    result = Simulation(
        cluster,
        scheduler,
        workflows=[workflow],
        adhoc_jobs=adhoc,
        config=SimulationConfig(slot_seconds=1.0),
    ).run()
    return result


def main() -> None:
    print("Fig. 1 motivating example (time units = slots):\n")
    for label, scheduler, expected in (
        ("EDF", make_scheduler("EDF"), 150),
        ("FlowTime", make_scheduler("FlowTime", planner={"slack_slots": 0}), 100),
    ):
        result = run(scheduler)
        turnaround = adhoc_turnaround_seconds(result)
        deadline_ok = "met" if not missed_workflows(result) else "MISSED"
        print(f"{label:<9}  W1 deadline {deadline_ok}")
        for job_id in ("A1", "A2"):
            record = result.jobs[job_id]
            print(
                f"           {job_id}: arrived {record.arrival_slot:>3}, "
                f"finished {record.completion_slot + 1:>3}, "
                f"turnaround {record.turnaround_slots():>3}"
            )
        print(
            f"           avg ad-hoc turnaround = {turnaround:.0f} "
            f"(paper: {expected})\n"
        )


if __name__ == "__main__":
    main()
