#!/usr/bin/env python3
"""Robustness to estimation errors (Sec. III desired feature).

Deadline-aware workflows recur, so their task runtimes are *estimated* from
prior runs — and "the input data or the code may have changed".  This
example injects multiplicative duration errors (under- and over-estimates)
and shows how FlowTime's event-driven re-planning absorbs them: misses stay
at zero through ~10% underestimation and ad-hoc turnaround barely moves.

Run:  python examples/estimation_robustness.py
"""

from repro import ClusterCapacity, ErrorModel, generate_trace
from repro.analysis.experiments import run_one
from repro.estimation.errors import apply_workflow_estimation_errors
from repro.workloads.traces import SyntheticTrace


def main() -> None:
    cluster = ClusterCapacity.uniform(cpu=64, mem=128)
    base = generate_trace(
        n_workflows=4,
        jobs_per_workflow=12,
        n_adhoc=30,
        capacity=cluster,
        looseness=(4.0, 8.0),
        adhoc_rate_per_slot=0.7,
        workflow_spread_slots=50,
        seed=15,
    )

    print(f"{'error factor':>12}  {'jobs missed':>11}  {'workflows missed':>16}  "
          f"{'ad-hoc turnaround (s)':>21}")
    for factor in (0.5, 0.8, 1.0, 1.1, 1.3, 1.5):
        workflows = tuple(
            apply_workflow_estimation_errors(
                wf, ErrorModel(low=factor, high=factor), seed=i
            )
            for i, wf in enumerate(base.workflows)
        )
        trace = SyntheticTrace(workflows=workflows, adhoc_jobs=base.adhoc_jobs)
        outcome = run_one("FlowTime", trace, cluster)
        print(
            f"{factor:>12.2f}  {outcome.n_missed_jobs:>11d}  "
            f"{outcome.n_missed_workflows:>16d}  "
            f"{outcome.adhoc_turnaround_s:>21.1f}"
        )
    print("\n(true duration = estimated duration x factor; factor > 1 means "
          "the scheduler underestimated)")


if __name__ == "__main__":
    main()
