#!/usr/bin/env python3
"""Admission control: should the cluster accept another deadline workflow?

An extension beyond the paper (DESIGN.md, S-extensions): before admitting a
workflow, solve the max-placement LP over the already-committed deadline
work plus the candidate's decomposed windows.  If any work provably cannot
be placed before its deadline, reject — better than accepting a workload
that is doomed to miss.

Run:  python examples/admission_control.py
"""

from repro import ClusterCapacity, JobDemand, ResourceVector
from repro.core.admission import check_admission
from repro.workloads.dag_generators import fork_join_workflow


def main() -> None:
    cluster = ClusterCapacity.uniform(cpu=32, mem=64)

    # The cluster already committed to one heavy job until slot 30.
    commitments = [
        JobDemand(
            job_id="nightly-etl",
            release_slot=0,
            deadline_slot=30,
            units=200,
            unit_demand=ResourceVector(cpu=2, mem=4),
            max_parallel=10,
        )
    ]

    print(f"cluster: 32 cores / 64 GB, existing commitment: 200 task-slots by slot 30\n")
    for window, label in ((120, "loose (deadline slot 120)"), (18, "tight (deadline slot 18)")):
        candidate = fork_join_workflow("candidate", 4, 0, window)
        decision = check_admission(candidate, commitments, cluster, now_slot=0)
        verdict = "ADMIT" if decision.admit else "REJECT"
        print(f"candidate with {label}: {verdict}")
        print(f"  projected peak utilisation: {decision.utilisation:.0%}")
        if not decision.admit:
            for job_id, units in sorted(decision.shortfall_units.items()):
                print(f"  cannot place {units} task-slots of {job_id} in time")
        print()


if __name__ == "__main__":
    main()
