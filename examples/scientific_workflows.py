#!/usr/bin/env python3
"""Scheduling scientific workflows (Bharathi et al. shapes) with FlowTime.

Builds one workflow of each classic shape — Montage, CyberShake,
Epigenomics, LIGO Inspiral, SIPHT — gives each a deadline 4x its critical
path, runs them concurrently with an ad-hoc stream, and compares FlowTime
with EDF and Fair on the paper's metrics.

Run:  python examples/scientific_workflows.py
"""

from repro import ClusterCapacity, make_scientific_workflow
from repro.analysis.experiments import run_comparison
from repro.analysis.reporting import format_comparison_table
from repro.core.critical_path import critical_path_length
from repro.workloads.arrivals import adhoc_stream
from repro.workloads.scientific import SCIENTIFIC_SHAPES
from repro.workloads.traces import SyntheticTrace


def main() -> None:
    cluster = ClusterCapacity.uniform(cpu=96, mem=192)

    workflows = []
    for i, shape in enumerate(sorted(SCIENTIFIC_SHAPES)):
        start = i * 15
        skeleton = make_scientific_workflow(shape, f"{shape}", start, start + 10_000, width=4)
        cp = critical_path_length(skeleton, cluster, cluster_aware=True)
        workflow = make_scientific_workflow(
            shape, f"{shape}", start, start + 4 * cp, width=4
        )
        workflows.append(workflow)
        print(
            f"{shape:<13} {len(workflow):>3} jobs, critical path {cp:>3} slots, "
            f"deadline slot {workflow.deadline_slot}"
        )

    horizon = max(wf.deadline_slot for wf in workflows)
    adhoc = adhoc_stream(30, rate_per_slot=0.4, horizon_slots=horizon, seed=1)
    trace = SyntheticTrace(workflows=tuple(workflows), adhoc_jobs=tuple(adhoc))

    print(f"\n{trace.n_deadline_jobs} deadline jobs + {len(adhoc)} ad-hoc jobs "
          f"on {cluster.base['cpu']} cores\n")
    comparison = run_comparison(trace, cluster, ("FlowTime", "EDF", "Fair"))
    print(format_comparison_table(comparison))


if __name__ == "__main__":
    main()
