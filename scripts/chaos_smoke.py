#!/usr/bin/env python3
"""CI chaos gate: solver faults + SIGKILL + restart must lose nothing.

Runs the real ``repro serve`` process twice over the same workload:

1. **Baseline** — fault-free, graceful SIGTERM drain; records which
   workflows met their deadlines.
2. **Chaos** — 30% seeded solver faults (``--chaos-fault-prob``) with a
   write-ahead journal; the process is SIGKILLed mid-run, restarted on
   the same journal (same chaos flags), and must finish with **every
   accepted submission completed** and deadline hits no worse than the
   baseline.

The fault seed is chosen so the very first solve attempt faults (and its
alternate-backend retry, via the burst), so the degraded-mode path is
exercised deterministically, not probabilistically.

Run:  python scripts/chaos_smoke.py
Exits non-zero with a diagnostic on any failure.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
import uuid

TIMEOUT_S = 60
N_WORKFLOWS = 3
N_ADHOC = 2
N_JOBS = N_WORKFLOWS * 3 + N_ADHOC

# Seed 7 at prob 0.3 faults on the first two solve attempts: chaos bites
# immediately and deterministically (see ChaosInjector's seeded RNG).
CHAOS_ARGS = ["--chaos-fault-prob", "0.3", "--chaos-seed", "7"]


def fail(message: str, proc: subprocess.Popen | None = None) -> None:
    print(f"CHAOS SMOKE FAIL: {message}", file=sys.stderr)
    if proc is not None and proc.poll() is None:
        proc.kill()
    sys.exit(1)


def request(url: str, payload: dict | None = None) -> dict:
    data = json.dumps(payload).encode() if payload is not None else None
    headers = {"Content-Type": "application/json"} if data else {}
    if data:
        headers["Idempotency-Key"] = str(uuid.uuid4())
    req = urllib.request.Request(url, data=data, headers=headers)
    with urllib.request.urlopen(req, timeout=TIMEOUT_S) as response:
        return json.loads(response.read())


def start_server(extra: list[str]) -> tuple[subprocess.Popen, str]:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(root, "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--batch-window", "0.05", "--no-admission",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.time() + TIMEOUT_S
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            fail(f"server exited early (code {proc.returncode})", proc)
        match = re.search(r"on (http://\S+)", line)
        if match:
            return proc, match.group(1)
    fail("server never printed its URL", proc)
    raise AssertionError  # unreachable


def submit_workload(url: str) -> None:
    task = {"count": 4, "duration_slots": 2, "demand": {"cpu": 2, "mem": 4}}
    for w in range(N_WORKFLOWS):
        wid = f"chaos-wf{w}"
        workflow = {
            "workflow_id": wid, "name": "chaos", "start_slot": 0,
            "deadline_slot": 120,
            "jobs": [
                {"job_id": f"{wid}-j{i}", "kind": "deadline",
                 "arrival_slot": 0, "workflow_id": wid, "name": "",
                 "tasks": task}
                for i in range(3)
            ],
            "edges": [[f"{wid}-j0", f"{wid}-j1"], [f"{wid}-j1", f"{wid}-j2"]],
        }
        decision = request(url + "/workflows", workflow)
        if not decision.get("accepted"):
            fail(f"workflow {wid} not accepted: {decision}")
    for a in range(N_ADHOC):
        job = {
            "job_id": f"chaos-adhoc{a}", "kind": "adhoc", "arrival_slot": 0,
            "workflow_id": None, "name": "",
            "tasks": {"count": 2, "duration_slots": 1,
                      "demand": {"cpu": 1, "mem": 2}},
        }
        decision = request(url + "/jobs", job)
        if not decision.get("accepted"):
            fail(f"ad-hoc chaos-adhoc{a} not accepted: {decision}")


def wait_done(url: str, proc: subprocess.Popen) -> None:
    deadline = time.time() + TIMEOUT_S
    while time.time() < deadline:
        status = request(url + "/status")
        if status["n_jobs"] == N_JOBS and status["remaining_jobs"] == 0:
            return
        time.sleep(0.2)
    fail("submitted work never completed", proc)


def drain(proc: subprocess.Popen) -> str:
    proc.send_signal(signal.SIGTERM)
    try:
        output, _ = proc.communicate(timeout=TIMEOUT_S)
    except subprocess.TimeoutExpired:
        fail("server did not drain within the timeout", proc)
    if proc.returncode != 0:
        fail(f"server exited {proc.returncode}:\n{output}")
    return output


def missed_deadlines(output: str) -> int:
    match = re.search(r"(\d+) missed deadline", output)
    if match is None:
        fail(f"no drain summary in output:\n{output}")
    return int(match.group(1))


def main() -> None:
    # Phase 1: fault-free baseline.
    proc, url = start_server([])
    submit_workload(url)
    wait_done(url, proc)
    baseline_missed = missed_deadlines(drain(proc))
    print(f"baseline: drained clean, {baseline_missed} missed deadline(s)")

    # Phase 2: chaos — faults + journal + SIGKILL + restart.
    journal = os.path.join(tempfile.mkdtemp(prefix="chaos-smoke-"), "wal.jsonl")
    proc, url = start_server(["--journal", journal, *CHAOS_ARGS])
    submit_workload(url)
    proc.kill()  # SIGKILL: no drain, no flush — only the journal survives
    proc.wait(timeout=TIMEOUT_S)
    if not os.path.exists(journal):
        fail("journal file missing after SIGKILL")
    print(f"killed server mid-run; journal at {journal}")

    proc, url = start_server(["--journal", journal, *CHAOS_ARGS])
    status = request(url + "/status")
    if status["accepted_workflows"] != N_WORKFLOWS:
        fail(f"recovery lost workflows: {status}", proc)
    if status["accepted_adhoc"] != N_ADHOC:
        fail(f"recovery lost ad-hoc jobs: {status}", proc)
    print(
        f"restart recovered {status['accepted_workflows']} workflows "
        f"+ {status['accepted_adhoc']} ad-hoc jobs from the journal"
    )
    wait_done(url, proc)

    metrics = request(url + "/metrics")
    solver_errors = sum(
        entry["value"] for name, entry in metrics.items()
        if name.startswith("lp.solve.errors.")
    )
    output = drain(proc)
    chaos_missed = missed_deadlines(output)
    if solver_errors == 0:
        fail(f"chaos never bit: no solver errors in metrics\n{output}")
    print(f"chaos bit: {int(solver_errors)} injected solver errors survived")
    if chaos_missed > baseline_missed:
        fail(
            f"deadline regression under chaos: {chaos_missed} missed "
            f"vs baseline {baseline_missed}\n{output}"
        )
    print(f"chaos run: drained clean, {chaos_missed} missed deadline(s)")
    print("CHAOS SMOKE PASSED")


if __name__ == "__main__":
    main()
