#!/usr/bin/env python3
"""CI smoke test for `repro serve`: the real process, socket, and signal.

Starts the server as a subprocess on an ephemeral port, submits one
deadline workflow and one ad-hoc job over HTTP, checks the admission
decision and the resulting plan, then sends SIGTERM and asserts a clean
graceful drain (exit 0, drain summary printed) within a timeout.

Run:  python scripts/service_smoke.py
Exits non-zero with a diagnostic on any failure.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

TIMEOUT_S = 60


def fail(message: str, proc: subprocess.Popen | None = None) -> None:
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    if proc is not None and proc.poll() is None:
        proc.kill()
    sys.exit(1)


def request(url: str, payload: dict | None = None) -> dict:
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(req, timeout=TIMEOUT_S) as response:
        return json.loads(response.read())


def main() -> None:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(root, "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--batch-window", "0.05",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )

    # The server prints its ephemeral URL on the first line.
    url = None
    deadline = time.time() + TIMEOUT_S
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            fail(f"server exited early (code {proc.returncode})", proc)
        match = re.search(r"on (http://\S+)", line)
        if match:
            url = match.group(1)
            break
    if url is None:
        fail("server never printed its URL", proc)
    print(f"server up at {url}")

    # One 3-job chain workflow, one ad-hoc job — the trace wire format.
    task = {"count": 4, "duration_slots": 2, "demand": {"cpu": 2, "mem": 4}}
    workflow = {
        "workflow_id": "smoke-wf", "name": "smoke", "start_slot": 0,
        "deadline_slot": 60,
        "jobs": [
            {"job_id": f"smoke-j{i}", "kind": "deadline", "arrival_slot": 0,
             "workflow_id": "smoke-wf", "name": "", "tasks": task}
            for i in range(3)
        ],
        "edges": [["smoke-j0", "smoke-j1"], ["smoke-j1", "smoke-j2"]],
    }
    decision = request(url + "/workflows", workflow)
    if not decision.get("accepted") or decision.get("reason") != "admitted":
        fail(f"workflow not admitted: {decision}", proc)
    print(f"workflow admitted (utilisation {decision.get('utilisation')})")

    job = {
        "job_id": "smoke-adhoc", "kind": "adhoc", "arrival_slot": 0,
        "workflow_id": None, "name": "",
        "tasks": {"count": 2, "duration_slots": 1, "demand": {"cpu": 1, "mem": 2}},
    }
    decision = request(url + "/jobs", job)
    if not decision.get("accepted"):
        fail(f"ad-hoc job not queued: {decision}", proc)
    print("ad-hoc job queued")

    # The service runs in virtual time; the work completes almost at once.
    plan = None
    deadline = time.time() + TIMEOUT_S
    while time.time() < deadline:
        status = request(url + "/status")
        if status["remaining_jobs"] == 0 and status["n_jobs"] == 4:
            plan = request(url + "/plan")
            break
        time.sleep(0.2)
    if plan is None:
        fail("submitted work never completed", proc)
    if plan.get("origin_slot") is None:
        fail(f"no plan was ever produced: {plan}", proc)
    print(f"plan produced (origin slot {plan['origin_slot']})")

    metrics = request(url + "/metrics")
    if "service.replan.batch_size" not in metrics:
        fail("service.replan.batch_size missing from /metrics", proc)

    # Graceful drain on SIGTERM, within the timeout.
    proc.send_signal(signal.SIGTERM)
    try:
        output, _ = proc.communicate(timeout=TIMEOUT_S)
    except subprocess.TimeoutExpired:
        fail("server did not drain within the timeout", proc)
    if proc.returncode != 0:
        fail(f"server exited {proc.returncode}:\n{output}")
    if "drained after" not in output:
        fail(f"no drain summary in output:\n{output}")
    if "0 missed deadline" not in output:
        fail(f"drain lost accepted work:\n{output}")
    print("graceful drain OK")
    print("SERVICE SMOKE PASSED")


if __name__ == "__main__":
    main()
