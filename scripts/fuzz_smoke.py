#!/usr/bin/env python3
"""CI fuzz gate: random workloads through every path, validated end to end.

Runs the seeded fuzz harness (:mod:`repro.verify.fuzz`): each seed's
random workload is pushed through the cold batch path, the cached/warm-
started re-planning path, the chaos-degraded path, and the journal
kill/replay service path, and every result is checked by the independent
schedule validator (capacity, precedence, conservation, windows, metric
recomputation).

The seed corpus (``--seed-corpus``, JSON ``{"seeds": [...]}``) always
runs first — it pins previously interesting seeds — then fresh seeds are
drawn until the ``--budget`` is spent.  Failing cases are shrunk and
persisted under ``--out-dir`` as self-contained JSON repros (CI uploads
them as artifacts).

Run:  PYTHONPATH=src python scripts/fuzz_smoke.py --budget 60s \\
          --seed-corpus tests/golden/seeds.json
Exits 1 with a diagnostic per failure; 0 when every case validates clean.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.verify.fuzz import FUZZ_PATHS, run_fuzz  # noqa: E402


def parse_budget(text: str) -> float:
    """``"60s"``, ``"2m"``, ``"90"`` -> wall seconds."""
    match = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([smh]?)\s*", text)
    if not match:
        raise argparse.ArgumentTypeError(
            f"bad budget {text!r}; expected e.g. 60s, 2m, 90"
        )
    value = float(match.group(1))
    return value * {"": 1.0, "s": 1.0, "m": 60.0, "h": 3600.0}[match.group(2)]


def load_seed_corpus(path: str | None) -> list[int]:
    if path is None:
        return []
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    seeds = data["seeds"] if isinstance(data, dict) else data
    return [int(seed) for seed in seeds]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--budget",
        type=parse_budget,
        default=parse_budget("60s"),
        help="wall-clock budget, e.g. 60s / 2m (default 60s)",
    )
    parser.add_argument(
        "--seed-corpus",
        default=None,
        help="JSON file of seeds to always run first",
    )
    parser.add_argument(
        "--out-dir",
        default="fuzz-failures",
        help="directory for shrunk failure repros (default fuzz-failures)",
    )
    parser.add_argument(
        "--paths",
        nargs="+",
        default=list(FUZZ_PATHS),
        choices=list(FUZZ_PATHS),
        help="production paths to exercise",
    )
    parser.add_argument(
        "--start-seed",
        type=int,
        default=1000,
        help="first fresh seed after the corpus (default 1000)",
    )
    parser.add_argument(
        "--max-seeds",
        type=int,
        default=None,
        help="optional hard cap on seeds (besides the budget)",
    )
    args = parser.parse_args(argv)

    corpus = load_seed_corpus(args.seed_corpus)
    print(
        f"fuzz-smoke: budget {args.budget:.0f}s, corpus {len(corpus)} seeds, "
        f"paths {'/'.join(args.paths)}"
    )
    result = run_fuzz(
        budget_s=args.budget,
        max_seeds=args.max_seeds,
        corpus_seeds=corpus,
        start_seed=args.start_seed,
        paths=args.paths,
        out_dir=args.out_dir,
        log=print,
    )
    print(result.summary())
    if result.failures:
        for failure in result.failures:
            print(f"FAIL {failure.describe()}", file=sys.stderr)
            for violation in failure.violations[:10]:
                print(f"  {violation}", file=sys.stderr)
        print(f"repros written to {args.out_dir}/", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
