#!/usr/bin/env python3
"""CI smoke test for the telemetry subsystem, end to end and out of process.

Starts ``repro serve`` as a subprocess with a JSONL trace sink, drives it
with the load generator (every submission correlation-id-stamped), then
checks the full observability surface while the server is live:

* ``GET /metrics`` is strict JSON (no bare NaN tokens),
* ``GET /metrics?format=prometheus`` passes the strict text-format parser,
* ``GET /slo`` serves the error-budget snapshot,
* SIGTERM drains gracefully,
* ``repro trace query RUN.jsonl --request <id>`` reconstructs a submitted
  workflow's timeline from the trace the server wrote.

Run:  PYTHONPATH=src python scripts/obs_smoke.py
Exits non-zero with a diagnostic on any failure.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

TIMEOUT_S = 60

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))


def fail(message: str, proc: subprocess.Popen | None = None) -> None:
    print(f"OBS SMOKE FAIL: {message}", file=sys.stderr)
    if proc is not None and proc.poll() is None:
        proc.kill()
    sys.exit(1)


def get(url: str) -> tuple[str, str]:
    with urllib.request.urlopen(url, timeout=TIMEOUT_S) as response:
        return (
            response.read().decode("utf-8"),
            response.headers.get("Content-Type", ""),
        )


def main() -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    trace_path = os.path.join(tempfile.mkdtemp(prefix="obs-smoke-"), "run.jsonl")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--batch-window", "0.05",
            "--trace-out", trace_path,
            "--trace-rotate-mb", "64",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=ROOT,
    )

    url = None
    deadline = time.time() + TIMEOUT_S
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            fail(f"server exited early (code {proc.returncode})", proc)
        match = re.search(r"on (http://\S+)", line)
        if match:
            url = match.group(1)
            break
    if url is None:
        fail("server never printed its URL", proc)
    print(f"server up at {url} (trace -> {trace_path})")

    # -- drive it with the load generator -------------------------------------
    from loadgen import run_load

    summary = run_load(url, rate=20.0, duration_s=3.0, workflow_every=4)
    if summary["accepted"] == 0:
        fail(f"loadgen got nothing accepted: {summary}", proc)
    workflow_ids = [
        rid for rid, kind in summary["request_ids"].items()
        if kind == "workflow"
    ]
    if not workflow_ids:
        fail("loadgen submitted no workflows", proc)
    probe_id = workflow_ids[0]

    # -- strict JSON metrics ---------------------------------------------------
    body, _ = get(url + "/metrics")
    if "NaN" in body:
        fail("/metrics leaked a bare NaN token", proc)
    json.loads(body)
    print(f"/metrics strict JSON OK ({len(json.loads(body))} metrics)")

    # -- Prometheus exposition, strictly parsed -------------------------------
    from repro.obs import parse_prometheus

    text, content_type = get(url + "/metrics?format=prometheus")
    if not content_type.startswith("text/plain; version=0.0.4"):
        fail(f"wrong Prometheus content type: {content_type}", proc)
    try:
        families = parse_prometheus(text)
    except ValueError as error:
        fail(f"Prometheus output rejected by strict parser: {error}", proc)
    for needed in (
        "repro_service_submit_workflow_accepted_total",
        "repro_http_requests_total",
        "repro_http_request_seconds",
    ):
        if needed not in families:
            fail(f"{needed} missing from Prometheus exposition", proc)
    print(f"Prometheus exposition OK ({len(families)} families)")

    # -- SLO endpoint ----------------------------------------------------------
    slo = json.loads(get(url + "/slo")[0])
    if set(slo) != {"config", "deadline", "decide_latency", "healthy"}:
        fail(f"unexpected /slo shape: {sorted(slo)}", proc)
    print(
        f"/slo OK (healthy={slo['healthy']}, "
        f"workflows total={slo['deadline']['total']})"
    )

    # -- graceful drain --------------------------------------------------------
    proc.send_signal(signal.SIGTERM)
    try:
        output, _ = proc.communicate(timeout=TIMEOUT_S)
    except subprocess.TimeoutExpired:
        fail("server did not drain within the timeout", proc)
    if proc.returncode != 0:
        fail(f"server exited {proc.returncode}:\n{output}")
    print("graceful drain OK")

    # -- timeline reconstruction from the written trace ------------------------
    query = subprocess.run(
        [
            sys.executable, "-m", "repro", "trace", "query", trace_path,
            "--request", probe_id, "--json",
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=ROOT,
        timeout=TIMEOUT_S,
    )
    if query.returncode != 0:
        fail(
            f"trace query for {probe_id} failed "
            f"({query.returncode}):\n{query.stdout}\n{query.stderr}"
        )
    timeline = json.loads(query.stdout)
    if timeline["admission"] != "accept" or not timeline["workflow_ids"]:
        fail(f"timeline incomplete for {probe_id}: {timeline}")
    print(
        f"trace query OK: request {probe_id} -> "
        f"workflow {timeline['workflow_ids']}, "
        f"{timeline['n_events']} events, admission {timeline['admission']}"
    )
    print("OBS SMOKE PASSED")


if __name__ == "__main__":
    main()
