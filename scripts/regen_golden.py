#!/usr/bin/env python3
"""Regenerate (or check) the golden-trace regression corpus.

The corpus under ``tests/golden/`` pins full normalised event traces and
reported metrics for a few small deterministic workloads (see
:mod:`repro.verify.golden` and docs/VERIFICATION.md).  After an
*intentional* scheduler/engine behaviour change, regenerate and review
the diff like any other code change:

    PYTHONPATH=src python scripts/regen_golden.py
    git diff tests/golden/

CI runs the check mode, which re-runs every case and diffs against the
pinned files without writing anything:

    PYTHONPATH=src python scripts/regen_golden.py --check

Exits 1 on any drift (check) or validator violation (both modes).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.verify.golden import (  # noqa: E402
    GOLDEN_CASES,
    check_corpus,
    write_corpus,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "cases",
        nargs="*",
        choices=[[], *sorted(GOLDEN_CASES)],
        help="cases to regenerate/check (default: all)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-run and diff against the pinned corpus; write nothing",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="corpus directory (default: tests/golden)",
    )
    args = parser.parse_args(argv)
    names = args.cases or None

    if args.check:
        problems = check_corpus(args.root, names)
        if problems:
            for problem in problems:
                print(f"DRIFT {problem}", file=sys.stderr)
            return 1
        print(f"golden: {len(names or GOLDEN_CASES)} case(s) match the corpus")
        return 0

    written = write_corpus(args.root, names)
    for case_dir in written:
        print(f"wrote {case_dir}")
    print("review with: git diff tests/golden/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
