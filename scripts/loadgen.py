#!/usr/bin/env python3
"""Rate-driven load generator for a running scheduler service.

Submits a mixed stream — small deadline workflows and ad-hoc jobs — to one
HTTP frontend at a target request rate, each submission carrying its own
``X-Request-Id``, and reports what came back: accept/reject/shed counts,
client-observed latency quantiles, and the request ids used (so a trace
written with ``repro serve --trace-out`` can be queried afterwards with
``repro trace query``).

Run against a live server::

    PYTHONPATH=src python scripts/loadgen.py --url http://127.0.0.1:8080 \
        --rate 20 --duration 10

or import :func:`run_load` (the CI obs-smoke and shard-smoke jobs do
both).

``--concurrency N`` spreads the target rate over N sender threads (each
paced at rate/N with its own HTTP connection pool), which is how the
throughput benchmark saturates the asyncio frontend — one thread tops out
at the client's own request round-trip rate long before the server does.
Submission indices stay globally unique across senders, so ids and
request ids never collide.

The generator is shard-router aware (docs/SHARDING.md): pointing
``--url`` at a ``repro serve --shards N`` frontend needs no flags — every
answer carries the deciding shard's name, tallied into the summary's
``by_shard`` breakdown.  ``--tenants K`` prefixes workflow ids with
``tK/`` so the router's tenant-prefix hashing co-locates each simulated
tenant on one shard (0, the default, leaves ids unprefixed).
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import threading
import time

from repro.model.cluster import ClusterCapacity  # noqa: F401  (re-export for callers)
from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.model.workflow import Workflow
from repro.service import HttpServiceClient, QueueFullError, ServiceError


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


def _workflow(
    index: int, *, deadline_slots: int = 200, tenants: int = 0
) -> Workflow:
    spec = TaskSpec(
        count=1, duration_slots=2, demand=ResourceVector({CPU: 1, MEM: 1})
    )
    prefix = f"t{index % tenants}/" if tenants > 0 else ""
    wid = f"{prefix}lg-w{index}"
    jobs = [
        Job(job_id=f"{wid}-j{j}", tasks=spec, workflow_id=wid)
        for j in range(2)
    ]
    return Workflow.from_jobs(
        wid, jobs, [(f"{wid}-j0", f"{wid}-j1")], 0, deadline_slots
    )


def _adhoc(index: int) -> Job:
    spec = TaskSpec(
        count=1, duration_slots=1, demand=ResourceVector({CPU: 1, MEM: 1})
    )
    return Job(
        job_id=f"lg-a{index}", tasks=spec, kind=JobKind.ADHOC, arrival_slot=0
    )


def run_load(
    url: str,
    *,
    rate: float = 10.0,
    duration_s: float = 5.0,
    workflow_every: int = 5,
    tenants: int = 0,
    concurrency: int = 1,
    quiet: bool = False,
) -> dict:
    """Drive *url* at ``rate`` submissions/s for ``duration_s`` seconds.

    Every ``workflow_every``-th submission is a deadline workflow; the
    rest are ad-hoc jobs (the paper's mixed regime).  ``workflow_every=0``
    sends ad-hoc jobs only — the overload regime the throughput benchmark
    measures, where every submission is one queue decision with no
    admission LP in the way.  ``concurrency`` spreads the rate over that
    many sender threads (each paced at ``rate / concurrency``); tallies
    and indices are shared, so the summary is identical in shape to a
    single-threaded run.  Returns a summary dict; ``request_ids`` maps
    every submission to the correlation id it carried, and ``by_shard``
    breaks acceptance down by the shard that answered (single-service
    targets report under the ``""`` shard).
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    if workflow_every < 0:
        raise ValueError(f"workflow_every must be >= 0, got {workflow_every}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    started = time.monotonic()
    deadline = started + duration_s
    summary = {
        "url": url,
        "rate": rate,
        "duration_s": duration_s,
        "concurrency": concurrency,
        "submitted": 0,
        "accepted": 0,
        "rejected": 0,
        "shed": 0,
        "errors": 0,
        "request_ids": {},
        "by_shard": {},
        # Workflow ids whose submission was answered accepted: the
        # client-side ledger a cross-shard conservation check runs against.
        "accepted_workflow_ids": [],
    }
    lock = threading.Lock()
    indices = itertools.count()
    latencies: list[float] = []

    def tally_shard(shard: str, accepted: bool) -> None:
        entry = summary["by_shard"].setdefault(
            shard, {"accepted": 0, "rejected": 0}
        )
        entry["accepted" if accepted else "rejected"] += 1

    def sender() -> None:
        client = HttpServiceClient(url, max_retries=1)
        interval = concurrency / rate
        next_send = time.monotonic()
        while time.monotonic() < deadline:
            now = time.monotonic()
            if now < next_send:
                time.sleep(min(next_send - now, interval))
                continue
            next_send += interval
            index = next(indices)
            request_id = f"loadgen-{index}"
            is_workflow = workflow_every > 0 and index % workflow_every == 0
            outcome = "ok"
            result = None
            workflow = None
            t0 = time.monotonic()
            try:
                if is_workflow:
                    workflow = _workflow(index, tenants=tenants)
                    result = client.submit_workflow(
                        workflow, request_id=request_id
                    )
                else:
                    result = client.submit_adhoc(
                        _adhoc(index), request_id=request_id
                    )
            except QueueFullError:
                outcome = "shed"
            except (ServiceError, OSError):
                outcome = "error"
            elapsed = time.monotonic() - t0
            with lock:
                summary["submitted"] += 1
                latencies.append(elapsed)
                if outcome == "shed":
                    summary["shed"] += 1
                elif outcome == "error":
                    summary["errors"] += 1
                else:
                    summary["accepted" if result.accepted else "rejected"] += 1
                    tally_shard(result.shard, result.accepted)
                    if result.accepted and workflow is not None:
                        summary["accepted_workflow_ids"].append(
                            workflow.workflow_id
                        )
                    summary["request_ids"][request_id] = (
                        "workflow" if is_workflow else "adhoc"
                    )

    if concurrency == 1:
        sender()
    else:
        threads = [
            threading.Thread(target=sender, name=f"loadgen-{i}", daemon=True)
            for i in range(concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    latencies.sort()
    summary["latency"] = {
        "p50_ms": round(_quantile(latencies, 0.50) * 1e3, 3),
        "p95_ms": round(_quantile(latencies, 0.95) * 1e3, 3),
        "p99_ms": round(_quantile(latencies, 0.99) * 1e3, 3),
    }
    summary["achieved_rate"] = round(
        summary["submitted"] / max(time.monotonic() - started, 1e-9), 2
    )
    if not quiet:
        print(
            f"loadgen: {summary['submitted']} submitted "
            f"({summary['accepted']} accepted, {summary['rejected']} rejected, "
            f"{summary['shed']} shed, {summary['errors']} errors) at "
            f"{summary['achieved_rate']}/s; "
            f"p50 {summary['latency']['p50_ms']} ms "
            f"p99 {summary['latency']['p99_ms']} ms"
        )
        named_shards = {
            shard: counts
            for shard, counts in sorted(summary["by_shard"].items())
            if shard
        }
        if named_shards:
            breakdown = "  ".join(
                f"{shard}={counts['accepted']}+{counts['rejected']}rej"
                for shard, counts in named_shards.items()
            )
            print(f"loadgen: per-shard accepts: {breakdown}")
    return summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", required=True, help="server root URL")
    parser.add_argument(
        "--rate", type=float, default=10.0, help="submissions per second"
    )
    parser.add_argument(
        "--duration", type=float, default=5.0, metavar="SECONDS",
        help="how long to generate load",
    )
    parser.add_argument(
        "--workflow-every", type=int, default=5, metavar="N",
        help="every Nth submission is a deadline workflow, rest ad-hoc "
        "(0: ad-hoc only)",
    )
    parser.add_argument(
        "--tenants", type=int, default=0, metavar="K",
        help="spread workflows over K tenant id prefixes (tK/...) so a "
        "shard router co-locates each tenant; 0 leaves ids unprefixed",
    )
    parser.add_argument(
        "--concurrency", type=int, default=1, metavar="N",
        help="spread the rate over N sender threads (saturation testing)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full summary as JSON instead of one line",
    )
    args = parser.parse_args(argv)
    summary = run_load(
        args.url,
        rate=args.rate,
        duration_s=args.duration,
        workflow_every=args.workflow_every,
        tenants=args.tenants,
        concurrency=args.concurrency,
        quiet=args.json,
    )
    if args.json:
        print(json.dumps(summary, indent=2))
    # Zero successful submissions against a live URL means the load never
    # arrived — fail loudly so CI catches a dead server.
    return 0 if summary["accepted"] > 0 else 1


if __name__ == "__main__":
    sys.exit(main())
