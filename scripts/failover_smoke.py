#!/usr/bin/env python3
"""CI failover gate: SIGKILL a shard mid-burst; the fleet must re-home
its work with zero loss.

Boots three real ``repro serve`` processes (one journal each), fronts
them with a router + failure detector + supervisor, and then:

1. drives a loadgen burst through the router and **SIGKILLs one shard
   mid-burst** — and, unlike ``shard_smoke.py``, does *not* restart it;
2. asserts the failure detector declares the victim ``dead`` within the
   configured detection window;
3. asserts the supervisor re-homes every workflow the victim had
   committed (read from its journal) into the survivors, and that the
   cross-shard conservation check over the survivors is clean — zero
   lost, zero duplicated, placement map consistent;
4. restarts the victim on its journal (the *zombie* case): its replay
   re-claims the moved workflows, and the supervisor must fence it —
   withdraw every re-homed workflow it still claims — leaving exactly
   one owner per workflow fleet-wide;
5. gates on ``GET /shards`` exposing detector state and the supervisor
   snapshot, and on a final conservation check over all three shards.

Run:  python scripts/failover_smoke.py
Exits non-zero with a diagnostic on any failure.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))
sys.path.insert(0, ROOT)

from repro.cluster import (  # noqa: E402
    DetectorConfig,
    FailureDetector,
    RemoteShard,
    RouterHTTPServer,
    ShardRouter,
    Supervisor,
    SupervisorConfig,
)
from repro.model.job import Job, TaskSpec  # noqa: E402
from repro.model.resources import ResourceVector  # noqa: E402
from repro.model.workflow import Workflow  # noqa: E402
from repro.service.client import HttpServiceClient  # noqa: E402
from repro.verify import check_cross_shard_conservation  # noqa: E402
from scripts.loadgen import run_load  # noqa: E402

N_SHARDS = 3
TIMEOUT_S = 60
LOAD_RATE = 25.0
LOAD_DURATION_S = 6.0
KILL_AFTER_S = 2.0
VICTIM = 0
PROBE_INTERVAL_S = 0.3
DEAD_AFTER_S = 1.5
FAILOVER_AFTER_S = 0.5
#: Kill-to-dead budget the detector must meet: the failure streak must
#: age past DEAD_AFTER_S, plus probe quantisation and HTTP timeouts.
DETECTION_BUDGET_S = DEAD_AFTER_S + 4 * PROBE_INTERVAL_S + 5.0
#: Workflows deterministically pinned to the victim before the kill, so
#: the journal-driven failover path always has work to re-home (the
#: loadgen tenant rotation can alias away from any one shard).
N_PINNED = 4
#: Far enough out that the racing virtual clock cannot start these
#: workflows while the supervisor re-homes them.
FUTURE_SLOT = 10**8

_procs: list[subprocess.Popen | None] = []


def fail(message: str) -> None:
    print(f"FAILOVER SMOKE FAIL: {message}", file=sys.stderr)
    for proc in _procs:
        if proc is not None and proc.poll() is None:
            proc.kill()
    sys.exit(1)


def start_shard(index: int, journal: str, port: int = 0) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port), "--batch-window", "0.05",
            "--no-admission", "--journal", journal,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.time() + TIMEOUT_S
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            fail(f"shard {index} exited early (code {proc.returncode})")
        match = re.search(r"on (http://\S+)", line)
        if match:
            return proc, match.group(1)
    fail(f"shard {index} never printed its URL")
    raise AssertionError  # unreachable


def future_workflow(wid: str) -> Workflow:
    spec = TaskSpec(
        count=1, duration_slots=2, demand=ResourceVector(cpu=1, mem=1)
    )
    jobs = [Job(job_id=f"{wid}-j0", tasks=spec, workflow_id=wid)]
    return Workflow.from_jobs(wid, jobs, [], FUTURE_SLOT, FUTURE_SLOT + 60)


def wait_until(predicate, what: str, timeout_s: float = TIMEOUT_S) -> float:
    """Poll until *predicate*; returns how long it took."""
    started = time.monotonic()
    deadline = started + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return time.monotonic() - started
        time.sleep(0.1)
    fail(f"timed out waiting for {what}")
    raise AssertionError  # unreachable


def survivors_conservation(router, detector, accepted) -> None:
    owned = {
        name: ids
        for name, ids in router.owned_by_shard().items()
        if detector.is_live(name)
    }
    orphans = {
        name: list(entries)
        for name, entries in router.orphans_by_shard().items()
        if detector.is_live(name)
    }
    report = check_cross_shard_conservation(
        accepted, owned, orphans, placement=router.placement_overrides
    )
    if not report.ok:
        fail(f"conservation violated:\n{report.render()}")
    print(f"conservation: {report.summary()} over {len(accepted)} accepted")


def main() -> None:
    tmp = tempfile.mkdtemp(prefix="failover-smoke-")
    journals = [os.path.join(tmp, f"shard{i}.jsonl") for i in range(N_SHARDS)]
    urls: list[str] = []
    for i in range(N_SHARDS):
        proc, url = start_shard(i, journals[i])
        _procs.append(proc)
        urls.append(url)
        print(f"shard{i}: {url} journal={journals[i]}")

    router = ShardRouter([
        RemoteShard(f"shard{i}", urls[i], journal_path=journals[i])
        for i in range(N_SHARDS)
    ])
    shards = router.shards
    detector = FailureDetector(
        shards,
        DetectorConfig(
            probe_interval_s=PROBE_INTERVAL_S,
            suspect_after=2,
            dead_after_s=DEAD_AFTER_S,
        ),
        obs=router.obs,
    ).start()
    router.attach_detector(detector)
    supervisor = Supervisor(
        router,
        detector,
        SupervisorConfig(failover_after_s=FAILOVER_AFTER_S),
    ).start(PROBE_INTERVAL_S)
    router.start_reconcile_loop(1.0)
    server = RouterHTTPServer(router, supervisor=supervisor)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    print(f"router: {server.url}")

    # -- 0: pin workflows onto the victim-to-be ----------------------------
    victim = shards[VICTIM]
    pinned: list[str] = []
    tenant_index = 0
    while len(pinned) < N_PINNED:
        tenant = f"vt{tenant_index}"
        tenant_index += 1
        if router.home_shard(f"{tenant}/w") is not victim:
            continue
        wid = f"{tenant}/pin{len(pinned)}"
        result = router.submit_workflow(
            future_workflow(wid), idempotency_key=f"key-{wid}"
        )
        if not result.accepted or result.shard != victim.name:
            fail(f"pinned workflow did not land on the victim: {result}")
        pinned.append(wid)
    print(f"pinned {len(pinned)} workflows on {victim.name}: {pinned}")

    # -- 1: loadgen burst with a SIGKILL (no restart) mid-run --------------
    killed_at = [0.0]

    def kill_victim() -> None:
        print(f"SIGKILL shard{VICTIM} (no restart — supervisor's problem)",
              flush=True)
        killed_at[0] = time.monotonic()
        _procs[VICTIM].kill()
        _procs[VICTIM].wait(timeout=TIMEOUT_S)

    killer = threading.Timer(KILL_AFTER_S, kill_victim)
    killer.start()
    summary = run_load(
        server.url,
        rate=LOAD_RATE,
        duration_s=LOAD_DURATION_S,
        workflow_every=4,
        tenants=6,
    )
    killer.join()
    accepted = pinned + list(summary["accepted_workflow_ids"])
    if len(accepted) <= len(pinned):
        fail("loadgen got no workflow accepted through the router")
    print(
        f"loadgen: {summary['accepted']} accepted / "
        f"{summary['submitted']} submitted across "
        f"{sorted(set(summary['by_shard']) - {''})}"
    )

    # -- 2: detection window ----------------------------------------------
    waited = wait_until(
        lambda: detector.state(victim.name) == "dead",
        f"{victim.name} declared dead",
        timeout_s=DETECTION_BUDGET_S,
    )
    detection_s = time.monotonic() - killed_at[0]
    if detection_s > DETECTION_BUDGET_S:
        fail(
            f"detection took {detection_s:.2f}s, "
            f"budget {DETECTION_BUDGET_S:.2f}s"
        )
    print(f"detection: {victim.name} dead {detection_s:.2f}s after SIGKILL "
          f"(waited {waited:.2f}s)")

    # -- 3: journal-driven re-homing into the survivors --------------------
    def all_rehomed() -> bool:
        owned = set()
        for shard in shards:
            if shard is victim:
                continue
            try:
                owned.update(shard.workflow_ids())
            except (RuntimeError, TimeoutError, OSError):
                return False
        return owned >= set(accepted)

    waited = wait_until(all_rehomed, "every accepted workflow re-homed")
    failover_s = time.monotonic() - killed_at[0]
    print(f"failover: all {len(accepted)} workflows on survivors "
          f"{failover_s:.2f}s after SIGKILL")
    survivors_conservation(router, detector, accepted)

    rehomed = [
        wid for wid, shard in router.placement_overrides.items()
        if shard != victim.name
    ]
    snapshot = supervisor.snapshot()
    moved = snapshot["failed_over"].get(victim.name, [])
    if not set(moved) >= set(pinned):
        fail(
            f"supervisor did not re-home the pinned workflows: "
            f"moved={moved} pinned={pinned}"
        )
    print(f"supervisor: {len(moved)} re-homed from {victim.name}, "
          f"{len(rehomed)} placement pins")

    # -- 4: zombie return is fenced ----------------------------------------
    port = int(urls[VICTIM].rsplit(":", 1)[1])
    proc, url = start_shard(VICTIM, journals[VICTIM], port)
    _procs[VICTIM] = proc
    print(f"zombie: shard{VICTIM} restarted on {url}")
    wait_until(
        lambda: detector.state(victim.name) == "live",
        f"{victim.name} probed live again",
    )
    wait_until(
        lambda: not any(victim.owns(wid) for wid in moved),
        "zombie fenced off every re-homed workflow",
    )
    wait_until(
        lambda: not supervisor.snapshot()["failed_over"],
        "supervisor fencing ledger drained",
    )
    print(f"fence: {victim.name} no longer claims any re-homed workflow")

    # Final conservation over the whole fleet, zombie included.
    owned = router.owned_by_shard()
    orphans = {
        name: list(entries)
        for name, entries in router.orphans_by_shard().items()
    }
    report = check_cross_shard_conservation(
        accepted, owned, orphans, placement=router.placement_overrides
    )
    if not report.ok:
        fail(f"post-zombie conservation violated:\n{report.render()}")
    print(f"post-zombie conservation: {report.summary()}")

    # -- 5: operator surface ------------------------------------------------
    client = HttpServiceClient(server.url, max_retries=1)
    shards_view = client.request_json("GET", "/shards")
    states = {
        entry["name"]: entry.get("state") for entry in shards_view["shards"]
    }
    if states.get(victim.name) != "live":
        fail(f"/shards does not show the zombie live: {states}")
    if "supervisor" not in shards_view:
        fail(f"/shards missing supervisor snapshot: {shards_view}")
    prom = client.request_text("GET", "/metrics?format=prometheus") if hasattr(
        client, "request_text"
    ) else None
    if prom is not None and "cluster_shard_state" not in prom:
        fail("prometheus export missing detector state gauges")
    status = router.status()
    if status["running_shards"] != N_SHARDS:
        fail(f"expected {N_SHARDS} running shards: {status}")
    print(f"/shards: {states}")

    # -- graceful shutdown -------------------------------------------------
    server.shutdown()
    supervisor.stop()
    detector.stop()
    router.stop_reconcile_loop()
    for proc in _procs:
        proc.send_signal(signal.SIGTERM)
    for i, proc in enumerate(_procs):
        try:
            proc.wait(timeout=TIMEOUT_S)
        except subprocess.TimeoutExpired:
            fail(f"shard {i} did not drain after SIGTERM")
        if proc.returncode != 0:
            print(proc.stdout.read(), file=sys.stderr)
            fail(f"shard {i} drain exited {proc.returncode}")
    print("FAILOVER SMOKE PASS")


if __name__ == "__main__":
    main()
