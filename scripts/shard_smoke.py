#!/usr/bin/env python3
"""CI shard gate: router + 3 shard processes + SIGKILL must lose nothing.

Boots three real ``repro serve`` processes (one journal each), fronts
them with an in-process :class:`ShardRouter` + HTTP frontend, and then:

1. drives a mixed loadgen burst through the router (tenant-prefixed
   workflow ids, so tenants co-locate per shard);
2. **SIGKILLs one shard mid-burst** and restarts it on the same port and
   journal — the write-ahead journal must hand the restarted process
   every workflow it had accepted;
3. exercises the migration protocol over HTTP: a full two-phase handoff
   between shards, then an *interrupted* one (tombstone only) that the
   router's reconcile pass must restore;
4. gates on the cross-shard conservation check — every workflow accepted
   by a client answer is owned by exactly one shard, zero lost, zero
   duplicated, zero unsettled orphans — plus aggregate-metrics sanity
   (router /status totals cover the client ledger; /metrics and /slo
   answer with per-shard breakdowns).

Run:  python scripts/shard_smoke.py
Exits non-zero with a diagnostic on any failure.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))
sys.path.insert(0, ROOT)

from repro.cluster import RemoteShard, RouterHTTPServer, ShardRouter  # noqa: E402
from repro.model.job import Job, TaskSpec  # noqa: E402
from repro.model.resources import ResourceVector  # noqa: E402
from repro.model.workflow import Workflow  # noqa: E402
from repro.verify import check_cross_shard_conservation  # noqa: E402
from scripts.loadgen import run_load  # noqa: E402

N_SHARDS = 3
TIMEOUT_S = 60
LOAD_RATE = 25.0
LOAD_DURATION_S = 6.0
KILL_AFTER_S = 2.0
KILLED_SHARD = 0
# Far enough out that the racing virtual clock cannot start these
# workflows while the smoke migrates them.
FUTURE_SLOT = 10**8

_procs: list[subprocess.Popen | None] = []


def fail(message: str) -> None:
    print(f"SHARD SMOKE FAIL: {message}", file=sys.stderr)
    for proc in _procs:
        if proc is not None and proc.poll() is None:
            proc.kill()
    sys.exit(1)


def start_shard(index: int, journal: str, port: int = 0) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port), "--batch-window", "0.05",
            "--no-admission", "--journal", journal,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.time() + TIMEOUT_S
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            fail(f"shard {index} exited early (code {proc.returncode})")
        match = re.search(r"on (http://\S+)", line)
        if match:
            return proc, match.group(1)
    fail(f"shard {index} never printed its URL")
    raise AssertionError  # unreachable


def future_workflow(wid: str) -> Workflow:
    spec = TaskSpec(
        count=1, duration_slots=2, demand=ResourceVector(cpu=1, mem=1)
    )
    jobs = [Job(job_id=f"{wid}-j0", tasks=spec, workflow_id=wid)]
    return Workflow.from_jobs(wid, jobs, [], FUTURE_SLOT, FUTURE_SLOT + 60)


def wait_until(predicate, what: str, timeout_s: float = TIMEOUT_S) -> None:
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.2)
    fail(f"timed out waiting for {what}")


def main() -> None:
    tmp = tempfile.mkdtemp(prefix="shard-smoke-")
    journals = [os.path.join(tmp, f"shard{i}.jsonl") for i in range(N_SHARDS)]
    urls: list[str] = []
    for i in range(N_SHARDS):
        proc, url = start_shard(i, journals[i])
        _procs.append(proc)
        urls.append(url)
        print(f"shard{i}: {url} journal={journals[i]}")

    shards = [
        RemoteShard(f"shard{i}", urls[i]) for i in range(N_SHARDS)
    ]
    router = ShardRouter(shards)
    server = RouterHTTPServer(router)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    print(f"router: {server.url}")

    # -- 1+2: loadgen burst with a SIGKILL + same-journal restart mid-run --
    def kill_and_restart() -> None:
        victim = _procs[KILLED_SHARD]
        port = int(urls[KILLED_SHARD].rsplit(":", 1)[1])
        print(f"SIGKILL shard{KILLED_SHARD} (port {port})", flush=True)
        victim.kill()  # no drain, no flush: only the journal survives
        victim.wait(timeout=TIMEOUT_S)
        proc, url = start_shard(KILLED_SHARD, journals[KILLED_SHARD], port)
        if url != urls[KILLED_SHARD]:
            fail(f"restarted shard came up on {url}, expected {urls[KILLED_SHARD]}")
        _procs[KILLED_SHARD] = proc
        print(f"shard{KILLED_SHARD} restarted on {url}", flush=True)

    killer = threading.Timer(KILL_AFTER_S, kill_and_restart)
    killer.start()
    summary = run_load(
        server.url,
        rate=LOAD_RATE,
        duration_s=LOAD_DURATION_S,
        workflow_every=4,
        tenants=6,
    )
    killer.join()
    accepted = list(summary["accepted_workflow_ids"])
    if not accepted:
        fail("loadgen got no workflow accepted through the router")
    shard_names = set(summary["by_shard"]) - {""}
    if not shard_names:
        fail("no answer carried a shard name — router not stamping results")
    wait_until(
        lambda: all(shard.alive() for shard in shards), "all shards alive"
    )

    # -- 3a: full two-phase migration over the /shard/* HTTP surface ------
    mig = future_workflow("mig/full")
    result = router.submit_workflow(mig)
    if not result.accepted:
        fail(f"future workflow rejected: {result}")
    accepted.append(mig.workflow_id)
    source = router.shard_for_workflow(mig.workflow_id)
    dest = next(s for s in shards if s is not source)
    handoff = source.migrate_out(mig.workflow_id, dest=dest.name, epoch=1)
    landed = dest.migrate_in(
        handoff["workflow"], key=handoff["key"], epoch=1
    )
    if not landed.accepted:
        fail(f"migrate_in rejected: {landed}")
    source.confirm(mig.workflow_id, epoch=1)
    if source.owns(mig.workflow_id) or not dest.owns(mig.workflow_id):
        fail("migration did not move ownership")
    router.record_placement(mig.workflow_id, dest.name)
    print(f"migration: {mig.workflow_id} {source.name} -> {dest.name} ok")

    # -- 3b: interrupted migration; reconcile must restore the orphan -----
    orphan = future_workflow("mig/orphaned")
    result = router.submit_workflow(orphan)
    if not result.accepted:
        fail(f"second future workflow rejected: {result}")
    accepted.append(orphan.workflow_id)
    source = router.shard_for_workflow(orphan.workflow_id)
    dest = next(s for s in shards if s is not source)
    source.migrate_out(orphan.workflow_id, dest=dest.name, epoch=2)
    if orphan.workflow_id not in source.orphans():
        fail("tombstone did not leave an orphan")
    reconciled = router.reconcile()
    if reconciled["restored"] != 1:
        fail(f"reconcile did not restore the orphan: {reconciled}")
    if not source.owns(orphan.workflow_id):
        fail("restored workflow not owned by its source shard")
    print(f"reconcile: restored {orphan.workflow_id} on {source.name}")

    # -- 4: conservation + aggregate sanity gates --------------------------
    owned = router.owned_by_shard()
    orphans = {
        name: list(entries)
        for name, entries in router.orphans_by_shard().items()
    }
    report = check_cross_shard_conservation(accepted, owned, orphans)
    if not report.ok:
        fail(f"conservation violated:\n{report.render()}")
    print(f"conservation: {report.summary()} over {len(accepted)} accepted")

    status = router.status()
    aggregate = status["aggregate"]
    if status["running_shards"] != N_SHARDS:
        fail(f"expected {N_SHARDS} running shards: {status}")
    # Journal replay re-counts recovered workflows on the restarted shard,
    # so the fleet total is a ceiling-consistent superset of the client
    # ledger — never smaller.
    if aggregate["accepted_workflows"] < len(set(accepted)):
        fail(
            f"aggregate accepted_workflows {aggregate['accepted_workflows']} "
            f"< client-observed {len(set(accepted))}"
        )
    metrics = router.metrics()
    if not metrics["aggregate"] or set(metrics["shards"]) != {
        s.name for s in shards
    }:
        fail("aggregated metrics missing shards")
    slo = router.slo()
    if slo["aggregate"]["unreachable_shards"] != 0:
        fail(f"slo reports unreachable shards: {slo['aggregate']}")
    print(
        f"aggregate: {aggregate['accepted_workflows']} workflows, "
        f"{aggregate['accepted_adhoc']} ad-hoc across "
        f"{status['running_shards']} shards"
    )

    # -- graceful shutdown -------------------------------------------------
    server.shutdown()
    for proc in _procs:
        proc.send_signal(signal.SIGTERM)
    for i, proc in enumerate(_procs):
        try:
            proc.wait(timeout=TIMEOUT_S)
        except subprocess.TimeoutExpired:
            fail(f"shard {i} did not drain after SIGTERM")
        if proc.returncode != 0:
            print(proc.stdout.read(), file=sys.stderr)
            fail(f"shard {i} drain exited {proc.returncode}")
    print("SHARD SMOKE PASS")


if __name__ == "__main__":
    main()
