"""EXT-6 — robustness to runtime failures (progress setbacks).

The paper's robustness discussion (Sec. III) centres on estimation errors,
but the same event-driven re-planning also has to absorb the cluster's
ordinary failures: crashed containers redo work.  This bench sweeps the
per-slot setback probability and reports FlowTime's misses and ad-hoc
turnaround, with EDF alongside for reference.

Shape expectation: with loose deadlines, re-planning absorbs moderate
failure rates without any misses; ad-hoc turnaround rises only mildly (the
redone work eats leftover capacity).
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_one
from repro.analysis.reporting import format_series
from repro.simulator.engine import SimulationConfig
from repro.simulator.failures import FailureModel

from benchmarks.conftest import build_mixed_cluster_setup

RATES = (0.0, 0.1, 0.3, 0.5)


def run_sweep():
    setup = build_mixed_cluster_setup()
    rows = {"FlowTime": ([], []), "EDF": ([], [])}
    for rate in RATES:
        config = SimulationConfig(
            failures=FailureModel(setback_prob=rate, max_setback_units=4, seed=9),
            max_slots=20_000,
        )
        for name, (misses, turns) in rows.items():
            outcome = run_one(name, setup.trace, setup.cluster, config=config)
            assert outcome.result.finished, (name, rate)
            misses.append(outcome.n_missed_jobs)
            turns.append(outcome.adhoc_turnaround_s)
    return rows


@pytest.mark.benchmark(group="ext6")
def test_ext6_failure_robustness(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print(
        "\n"
        + format_series(
            "EXT-6: deadline misses & ad-hoc turnaround vs setback probability",
            RATES,
            {
                "FT misses": rows["FlowTime"][0],
                "FT turn (s)": rows["FlowTime"][1],
                "EDF misses": rows["EDF"][0],
                "EDF turn (s)": rows["EDF"][1],
            },
            x_label="p(setback)",
            fmt="{:.1f}",
        )
    )
    ft_misses, ft_turns = rows["FlowTime"]
    # Failure-free and low-rate runs miss nothing.
    assert ft_misses[0] == 0
    assert ft_misses[1] == 0
    # Degradation is graceful: misses stay bounded even at a 50% per-slot
    # setback probability, and turnaround grows sub-linearly.
    assert ft_misses[-1] <= 20
    assert ft_turns[-1] <= ft_turns[0] * 5 + 60.0
