"""Solver-backend benchmark: fastsolve vs the LP backends on round LPs.

ISSUE 7's tentpole claim is that the round subproblem of the lexmin ladder
does not need a general-purpose LP solver: Lemma 2's interval structure
lets a parametric max-flow solve it 10-100x faster at scale.  This harness
measures that claim three ways:

* **structured microbench** — seeded single-resource round LPs from tiny
  to thousands of jobs, timed per backend (``fastsolve``, ``highs``, and
  ``simplex`` where the dense solver is tractable), reporting p50/p99 per
  solve and the fastsolve speedup over HiGHS;
* **differential gate** — every timed instance is solved by both fastsolve
  and HiGHS and the objectives compared at 1e-9 relative tolerance, plus a
  slice of the brute-force oracle (:mod:`repro.verify.oracle`) is run with
  ``backend="fastsolve"``; any disagreement is dumped as a JSON repro
  under ``--repro-dir`` and fails ``--check``;
* **end-to-end plan latency** — a cold-planner single-resource simulation
  run under each backend, reporting ``sched.plan`` / ``lp.solve``
  percentiles and the structure-hit counters.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_solver.py --quick

Writes ``BENCH_solver.json`` (see ``--out``).  With ``--check`` the exit
code is non-zero unless the largest measured scale meets ``--min-speedup``
and there are zero disagreements (the CI ``solver-bench`` job's gate).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.analysis.experiments import canonical_windows, run_one
from repro.core.lexmin import build_round_lp
from repro.core.lp_formulation import ScheduleEntry, build_schedule_problem
from repro.lp import LinearProgram, LPStatus, solve_lp
from repro.model.cluster import ClusterCapacity
from repro.model.job import TaskSpec
from repro.model.resources import ResourceVector
from repro.obs import Observability, use_obs
from repro.simulator.engine import SimulationConfig
from repro.simulator.metrics import summarize
from repro.verify.oracle import run_oracle
from repro.workloads.dag_generators import chain_workflow, fork_join_workflow
from repro.workloads.recurring import RecurringWorkflow
from repro.workloads.traces import SyntheticTrace

#: Objective agreement required between fastsolve and HiGHS (relative).
_OBJ_TOL = 1e-9
#: Dense simplex is O(rounds * m * n) with dense tableaus; keep it honest.
_SIMPLEX_VAR_LIMIT = 400

#: (name, n_jobs, horizon_slots, instances, repeats) for the microbench.
#: The largest scale is the thousands-of-workflows regime the ISSUE names:
#: every job is one deadline workflow's aggregate demand to the round LP.
MICRO_SCALES: tuple[tuple[str, int, int, int, int], ...] = (
    ("xs", 20, 12, 3, 5),
    ("small", 100, 30, 3, 5),
    ("medium", 500, 60, 3, 3),
    ("large", 2000, 120, 2, 2),
)


def structured_round_instance(
    seed: int, n_jobs: int, horizon: int
) -> LinearProgram:
    """A seeded single-resource coupled round LP (theta-form interval)."""
    rng = np.random.default_rng(seed)
    release = rng.integers(0, horizon - 1, size=n_jobs)
    deadline = release + rng.integers(
        1, np.maximum(2, horizon - release), size=n_jobs
    )
    deadline = np.minimum(deadline, horizon)
    max_parallel = rng.integers(1, 8, size=n_jobs)
    demand = rng.integers(1, 4, size=n_jobs)
    window = deadline - release
    units = 1 + rng.integers(0, window * max_parallel, size=n_jobs)
    entries = [
        ScheduleEntry(
            job_id=f"b{seed}-j{j}",
            release=int(release[j]),
            deadline=int(deadline[j]),
            units=int(units[j]),
            unit_demand=ResourceVector({"cpu": int(demand[j])}),
            max_parallel=int(max_parallel[j]),
        )
        for j in range(n_jobs)
    ]
    # Size the cluster so the optimum lands mid-range (theta* ~ 0.5): the
    # parametric search then does real work instead of stopping at a bound.
    total = float(np.sum(units * demand))
    cpu = max(8.0, np.ceil(2.0 * total / horizon))
    problem = build_schedule_problem(
        entries, np.full((horizon, 1), cpu), ("cpu",)
    )
    n_cells = len(problem.util_cells)
    return build_round_lp(
        problem, range(n_cells), np.full(n_cells, np.inf), problem.cell_caps()
    )


def _fresh(lp: LinearProgram) -> LinearProgram:
    """A new LinearProgram sharing arrays: defeats the per-object detection
    cache so every timed fastsolve call pays detection, like production."""
    return LinearProgram(
        c=lp.c,
        a_ub=lp.a_ub,
        b_ub=lp.b_ub,
        a_eq=lp.a_eq,
        b_eq=lp.b_eq,
        lb=lp.lb,
        ub=lp.ub,
    )


def _percentiles(samples: list[float]) -> dict:
    arr = np.asarray(samples)
    return {
        "samples": len(samples),
        "p50_ms": round(float(np.percentile(arr, 50)) * 1e3, 4),
        "p99_ms": round(float(np.percentile(arr, 99)) * 1e3, 4),
    }


def run_micro_scale(
    name: str,
    n_jobs: int,
    horizon: int,
    instances: int,
    repeats: int,
    repro_dir: Path,
) -> dict:
    """Time every backend on one scale and diff fastsolve against HiGHS."""
    lps = [
        structured_round_instance(1000 + i, n_jobs, horizon)
        for i in range(instances)
    ]
    backends = ["fastsolve", "highs"]
    if lps[0].n_variables <= _SIMPLEX_VAR_LIMIT:
        backends.append("simplex")

    obs = Observability()
    timings: dict[str, list[float]] = {b: [] for b in backends}
    objectives: dict[str, list[float]] = {b: [] for b in backends}
    disagreements = []
    with use_obs(obs):
        for index, lp in enumerate(lps):
            for backend in backends:
                for _ in range(repeats):
                    fresh = _fresh(lp)
                    start = time.perf_counter()
                    solution = solve_lp(fresh, backend=backend)
                    timings[backend].append(time.perf_counter() - start)
                if solution.status is not LPStatus.OPTIMAL:
                    raise RuntimeError(
                        f"{name}/{backend}: unexpected {solution.status}"
                    )
                objectives[backend].append(float(solution.objective))
            gap = abs(objectives["fastsolve"][-1] - objectives["highs"][-1])
            bound = _OBJ_TOL * max(1.0, abs(objectives["highs"][-1]))
            if gap > bound:
                disagreements.append(
                    _dump_repro(
                        repro_dir,
                        scale=name,
                        seed=1000 + index,
                        n_jobs=n_jobs,
                        horizon=horizon,
                        fastsolve=objectives["fastsolve"][-1],
                        highs=objectives["highs"][-1],
                    )
                )

    snapshot = obs.registry.snapshot()
    hits = snapshot.get("lp.fastsolve.hit", {"value": 0})["value"]
    bailouts = snapshot.get("lp.fastsolve.bailout", {"value": 0})["value"]
    misses = snapshot.get("lp.fastsolve.miss", {"value": 0})["value"]
    fast_p50 = float(np.percentile(timings["fastsolve"], 50))
    highs_p50 = float(np.percentile(timings["highs"], 50))
    return {
        "scale": name,
        "n_jobs": n_jobs,
        "horizon_slots": horizon,
        "n_variables": lps[0].n_variables,
        "n_constraints": lps[0].n_constraints,
        "instances": instances,
        "repeats": repeats,
        "backends": {b: _percentiles(timings[b]) for b in backends},
        "speedup_p50_vs_highs": round(highs_p50 / fast_p50, 2),
        "structure_hit_rate": round(
            hits / max(hits + misses + bailouts, 1), 4
        ),
        "bailouts": int(bailouts),
        "disagreements": len(disagreements),
        "repros": disagreements,
    }


def _dump_repro(repro_dir: Path, **payload) -> str:
    repro_dir.mkdir(parents=True, exist_ok=True)
    path = repro_dir / f"disagree_{payload['scale']}_{payload['seed']}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"DISAGREEMENT: {payload} -> {path}", file=sys.stderr)
    return str(path)


def _e2e_trace() -> tuple[SyntheticTrace, ClusterCapacity]:
    """A recurring single-resource workload (the structured e2e regime)."""
    spec = TaskSpec(
        count=6, duration_slots=2, demand=ResourceVector({"cpu": 2})
    )
    join = TaskSpec(
        count=4, duration_slots=2, demand=ResourceVector({"cpu": 1})
    )
    workflows = []
    for skeleton in (
        chain_workflow("e2e-chain", 4, 0, 20, spec),
        fork_join_workflow("e2e-fj", 4, 0, 20, join),
    ):
        workflows.extend(RecurringWorkflow(skeleton, 26).instances(4))
    capacity = ClusterCapacity(base=ResourceVector({"cpu": 48}))
    return SyntheticTrace(workflows=tuple(workflows), adhoc_jobs=()), capacity


def run_e2e(lp_backend: str | None) -> dict:
    """One cold-planner run; plan/solve latency plus outcome metrics."""
    trace, capacity = _e2e_trace()
    obs = Observability()
    outcome = run_one(
        "FlowTime",
        trace,
        capacity,
        config=SimulationConfig(lp_backend=lp_backend),
        # Cold planner: no plan cache, no warm starts — every replan pays
        # full ladder price, which is what the backend comparison measures.
        scheduler_kwargs={
            "planner": {"plan_cache": False, "warm_start": False},
            "work_conserving": False,
        },
        obs=obs,
    )
    result = outcome.result
    summary = summarize(result, canonical_windows(trace, capacity))
    snapshot = obs.registry.snapshot()

    def stat(name: str) -> dict:
        data = result.phase_stats(name)
        if data is None:
            return {"count": 0, "p50_ms": 0.0, "p95_ms": 0.0}
        return {
            "count": int(data.get("count", 0)),
            "p50_ms": round(data.get("p50", 0.0) * 1e3, 4),
            "p95_ms": round(data.get("p95", 0.0) * 1e3, 4),
        }

    def counter(name: str) -> int:
        return int(snapshot.get(name, {"value": 0})["value"])

    hits = counter("lp.fastsolve.hit")
    misses = counter("lp.fastsolve.miss")
    bailouts = counter("lp.fastsolve.bailout")
    return {
        "lp_backend": lp_backend or "default",
        "sched_plan": stat("sched.plan"),
        "lp_solve": stat("lp.solve"),
        "fastsolve_counters": {
            "hit": hits,
            "miss": misses,
            "bailout": bailouts,
            "hit_rate": round(hits / max(hits + misses + bailouts, 1), 4),
        },
        "outcome": {
            "jobs_missed": summary["jobs_missed"],
            "n_slots": result.n_slots,
        },
    }


def run_oracle_slice(n_seeds: int) -> dict:
    """The differential oracle on fastsolve over its structured slice."""
    outcomes = run_oracle(
        range(n_seeds), backend="fastsolve", single_resource=True
    )
    by_status: dict[str, int] = {}
    for item in outcomes:
        by_status[item.status] = by_status.get(item.status, 0) + 1
    disagreements = [
        {
            "seed": item.seed,
            "oracle_theta": item.oracle_theta,
            "production_theta": item.production_theta,
            "detail": item.detail,
        }
        for item in outcomes
        if item.status == "disagree"
    ]
    return {
        "seeds": n_seeds,
        "by_status": by_status,
        "disagreements": disagreements,
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small microbench scales and a short oracle slice (CI smoke)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless speedup and agreement gates pass",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="--check: required fastsolve p50 speedup over HiGHS at the "
        "largest measured scale (default: 10, or 1.5 with --quick, whose "
        "largest scale is far below the crossover regime)",
    )
    parser.add_argument(
        "--oracle-seeds",
        type=int,
        default=None,
        metavar="N",
        help="oracle slice size (default: 60, or 30 with --quick)",
    )
    parser.add_argument(
        "--repro-dir",
        default="bench_solver_repros",
        help="directory for disagreement repro dumps (default: %(default)s)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_solver.json",
        help="output JSON path (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    if args.min_speedup is None:
        args.min_speedup = 1.5 if args.quick else 10.0

    scales = MICRO_SCALES[:2] if args.quick else MICRO_SCALES
    repro_dir = Path(args.repro_dir)
    micro = []
    for name, n_jobs, horizon, instances, repeats in scales:
        print(f"[micro/{name}] {n_jobs} jobs x {horizon} slots ...", flush=True)
        row = run_micro_scale(
            name, n_jobs, horizon, instances, repeats, repro_dir
        )
        micro.append(row)
        print(
            f"[micro/{name}] fastsolve p50 "
            f"{row['backends']['fastsolve']['p50_ms']}ms vs highs "
            f"{row['backends']['highs']['p50_ms']}ms -> "
            f"{row['speedup_p50_vs_highs']}x, hit rate "
            f"{row['structure_hit_rate']:.0%}",
            flush=True,
        )

    n_oracle = args.oracle_seeds
    if n_oracle is None:
        n_oracle = 30 if args.quick else 60
    print(f"[oracle] {n_oracle} seeds under fastsolve ...", flush=True)
    oracle = run_oracle_slice(n_oracle)
    print(f"[oracle] {oracle['by_status']}", flush=True)

    print("[e2e] cold-planner runs (default vs fastsolve) ...", flush=True)
    e2e = [run_e2e(None), run_e2e("fastsolve")]
    for row in e2e:
        print(
            f"[e2e/{row['lp_backend']}] plan p50 "
            f"{row['sched_plan']['p50_ms']}ms, lp.solve p50 "
            f"{row['lp_solve']['p50_ms']}ms, missed "
            f"{row['outcome']['jobs_missed']}",
            flush=True,
        )

    total_disagreements = sum(row["disagreements"] for row in micro) + len(
        oracle["disagreements"]
    )
    largest = micro[-1]
    report = {
        "benchmark": "solver",
        "quick": args.quick,
        "micro": micro,
        "oracle": oracle,
        "e2e": e2e,
        "summary": {
            "largest_scale": largest["scale"],
            "speedup_p50_at_largest_scale": largest["speedup_p50_vs_highs"],
            "min_structure_hit_rate": min(
                row["structure_hit_rate"] for row in micro
            ),
            "total_bailouts": sum(row["bailouts"] for row in micro),
            "total_disagreements": total_disagreements,
            "e2e_outcomes_equivalent": (
                e2e[0]["outcome"] == e2e[1]["outcome"]
            ),
        },
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        failed = []
        if total_disagreements:
            failed.append(
                f"{total_disagreements} disagreement(s); repros in "
                f"{repro_dir}/"
            )
        speedup = report["summary"]["speedup_p50_at_largest_scale"]
        if speedup < args.min_speedup:
            failed.append(
                f"speedup {speedup}x at {largest['scale']} scale < required "
                f"{args.min_speedup}x"
            )
        if report["summary"]["min_structure_hit_rate"] < 1.0:
            failed.append("structure detection missed a round LP")
        if failed:
            for reason in failed:
                print(f"FAIL: {reason}", file=sys.stderr)
            return 1
        print(
            f"CHECK OK: {speedup}x speedup at {largest['scale']} scale, "
            "0 disagreements"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
