"""EXT-12 — the Fig. 4 shape replicated across seeds.

One seed shows a shape; this bench replicates the mixed-cluster comparison
over several workload seeds (same generator, same parameters) and checks
the paper's ordering holds in the *mean*, not just in a lucky draw:

* FlowTime's mean miss count stays at (or negligibly above) zero;
* every baseline's mean ad-hoc turnaround exceeds FlowTime's;
* EDF is the worst mean turnaround of the set.
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import replicate
from repro.model.cluster import ClusterCapacity
from repro.workloads.traces import generate_trace

SEEDS = (1, 9, 15)
ALGORITHMS = ("FlowTime", "EDF", "Fair", "FIFO")


def factory(seed: int):
    cluster = ClusterCapacity.uniform(cpu=64, mem=128)
    trace = generate_trace(
        n_workflows=4,
        jobs_per_workflow=12,
        n_adhoc=30,
        capacity=cluster,
        looseness=(4.0, 8.0),
        adhoc_rate_per_slot=0.7,
        workflow_spread_slots=50,
        seed=seed,
    )
    return trace, cluster


@pytest.mark.benchmark(group="ext12")
def test_ext12_multi_seed_replication(benchmark):
    result = benchmark.pedantic(
        replicate, args=(factory, SEEDS, ALGORITHMS), rounds=1, iterations=1
    )
    print(f"\nEXT-12: {len(SEEDS)} seeds x {len(ALGORITHMS)} algorithms")
    print(result.format_table("jobs_missed"))
    print()
    print(result.format_table("adhoc_turnaround_s"))

    flowtime_missed = result.summary("FlowTime", "jobs_missed")
    assert flowtime_missed.mean == 0.0  # every seed
    flowtime_turn = result.summary("FlowTime", "adhoc_turnaround_s")
    for name in ("EDF", "Fair", "FIFO"):
        assert result.summary(name, "adhoc_turnaround_s").mean > flowtime_turn.mean
    edf_turn = result.summary("EDF", "adhoc_turnaround_s").mean
    assert edf_turn == max(
        result.summary(n, "adhoc_turnaround_s").mean for n in ALGORITHMS
    )
