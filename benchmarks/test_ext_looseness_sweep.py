"""EXT-9 — deadline looseness sweep (where the Fig. 4 trade-off lives).

The paper's core narrative is parameterised by deadline looseness (their
trace: a 24 h deadline on a ~2 h workflow).  Sweeping the deadline/critical-
path ratio makes the trade-off visible as curves:

* as deadlines loosen, every algorithm's miss count falls toward zero —
  but deadline-oblivious baselines (FIFO) need far more slack to get there
  than FlowTime, which is already at zero on tight-but-feasible deadlines;
* EDF's ad-hoc turnaround penalty does *not* improve with looseness (it
  front-loads deadline work regardless — exactly the Fig. 1 pathology),
  while FlowTime's turnaround improves as the skyline flattens.
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import format_series
from repro.analysis.sweeps import sweep
from repro.model.cluster import ClusterCapacity
from repro.workloads.traces import generate_trace

LOOSENESS = (2.0, 3.0, 5.0, 8.0)
ALGORITHMS = ("FlowTime", "EDF", "FIFO")


def factory(looseness: float):
    cluster = ClusterCapacity.uniform(cpu=64, mem=128)
    trace = generate_trace(
        n_workflows=4,
        jobs_per_workflow=10,
        n_adhoc=25,
        capacity=cluster,
        looseness=(looseness, looseness + 1.0),
        adhoc_rate_per_slot=0.6,
        workflow_spread_slots=40,
        seed=15,
    )
    return trace, cluster


@pytest.mark.benchmark(group="ext9")
def test_ext9_looseness_sweep(benchmark):
    result = benchmark.pedantic(
        sweep,
        args=("looseness", LOOSENESS, factory, ALGORITHMS),
        rounds=1,
        iterations=1,
    )
    misses = result.series("jobs_missed")
    turns = result.series("adhoc_turnaround_s")
    print(
        "\n"
        + format_series(
            "EXT-9: jobs missed vs deadline looseness (x = deadline/CP)",
            LOOSENESS,
            misses,
            x_label="looseness",
            fmt="{:.0f}",
        )
    )
    print(
        format_series(
            "EXT-9: ad-hoc turnaround (s) vs deadline looseness",
            LOOSENESS,
            turns,
            x_label="looseness",
            fmt="{:.0f}",
        )
    )
    # The crossover: at looseness 2-3 the joint workload is over-committed
    # (several workflows' windows cannot all be honoured) and greedy EDF
    # triage drops fewer deadlines than the LP pipeline — outside the
    # paper's regime, and honestly reported.  Once the workload is feasible
    # (looseness >= 5 here) FlowTime misses nothing.
    assert misses["FlowTime"][-2] == 0 and misses["FlowTime"][-1] == 0
    assert misses["FlowTime"][0] > 0  # the overload end of the sweep
    # FIFO's misses shrink as deadlines loosen but remain the worst tail —
    # deadline-obliviousness needs far more slack to be forgiven.
    assert misses["FIFO"][0] >= misses["FIFO"][-1]
    assert misses["FIFO"][-1] > 0
    # EDF's ad-hoc turnaround stays several times FlowTime's across the
    # whole sweep — looseness does not cure the Fig. 1 pathology.
    for ft, edf in zip(turns["FlowTime"], turns["EDF"]):
        assert edf > 3 * ft
