"""Observability-overhead benchmark: the instrumented hot path must be cheap.

The telemetry subsystem (metrics registry, windowed SLO feeds, trace
stamping) rides the engine's per-slot hot path.  This harness proves the
toll stays small: it runs the *identical* mixed workload twice per repeat —

* ``null`` — :data:`repro.obs.NULL_OBS` explicitly installed (every metric
  call hits the frozen no-op; spans and events vanish),
* ``instrumented`` — a live :class:`repro.obs.Observability` (metrics
  recorded, SLO counters fed; no trace sink, which is the serving default)

— interleaved A/B over ``--repeats`` rounds, and compares *median*
wall-clock times (medians because CI machines are noisy; a single outlier
round must not decide the verdict).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --check

Writes ``BENCH_obs_overhead.json`` (see ``--out``); with ``--check`` exits
non-zero when the median overhead exceeds ``--max-overhead`` (default 5%).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from typing import Sequence

from repro.model.cluster import ClusterCapacity
from repro.obs import NULL_OBS, Observability
from repro.schedulers.registry import make_scheduler
from repro.simulator.engine import Simulation
from repro.workloads.traces import generate_trace


def build_workload(seed: int, capacity: ClusterCapacity):
    """A mixed deadline + ad-hoc trace, the regime the service runs."""
    return generate_trace(
        n_workflows=4,
        jobs_per_workflow=10,
        n_adhoc=30,
        capacity=capacity,
        looseness=(4.0, 8.0),
        adhoc_rate_per_slot=0.7,
        workflow_spread_slots=50,
        seed=seed,
    )


def run_once(trace, capacity: ClusterCapacity, obs) -> float:
    """One full simulation under *obs*; returns wall-clock seconds."""
    simulation = Simulation(
        capacity,
        make_scheduler("FlowTime"),
        workflows=trace.workflows,
        adhoc_jobs=trace.adhoc_jobs,
        obs=obs,
    )
    start = time.perf_counter()
    result = simulation.run()
    elapsed = time.perf_counter() - start
    assert result.finished, "benchmark workload did not finish"
    return elapsed


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="A/B rounds; medians are compared (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload seed"
    )
    parser.add_argument(
        "--max-overhead", type=float, default=0.05, metavar="FRACTION",
        help="with --check, fail when instrumented/null - 1 exceeds this "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when the overhead bound is exceeded",
    )
    parser.add_argument(
        "--out", default="BENCH_obs_overhead.json",
        help="output JSON path (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    capacity = ClusterCapacity.uniform(cpu=64, mem=128)
    trace = build_workload(args.seed, capacity)

    # Warm-up: JIT-free Python still pays import/alloc warmup on round one.
    run_once(trace, capacity, NULL_OBS)

    null_times: list[float] = []
    instrumented_times: list[float] = []
    for round_no in range(args.repeats):
        # Interleaved A/B: thermal drift hits both arms equally.
        null_times.append(run_once(trace, capacity, NULL_OBS))
        instrumented_times.append(
            run_once(trace, capacity, Observability())
        )
        print(
            f"[round {round_no + 1}/{args.repeats}] "
            f"null {null_times[-1] * 1e3:.1f} ms, "
            f"instrumented {instrumented_times[-1] * 1e3:.1f} ms",
            flush=True,
        )

    null_median = statistics.median(null_times)
    instrumented_median = statistics.median(instrumented_times)
    overhead = instrumented_median / null_median - 1.0

    report = {
        "benchmark": "obs_overhead",
        "workload": {
            "n_workflows": len(trace.workflows),
            "n_deadline_jobs": trace.n_deadline_jobs,
            "n_adhoc": len(trace.adhoc_jobs),
            "seed": args.seed,
        },
        "repeats": args.repeats,
        "null_ms": [round(t * 1e3, 3) for t in null_times],
        "instrumented_ms": [round(t * 1e3, 3) for t in instrumented_times],
        "null_median_ms": round(null_median * 1e3, 3),
        "instrumented_median_ms": round(instrumented_median * 1e3, 3),
        "overhead_fraction": round(overhead, 4),
        "max_overhead": args.max_overhead,
        "within_bound": overhead <= args.max_overhead,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(
        f"median null {null_median * 1e3:.1f} ms, instrumented "
        f"{instrumented_median * 1e3:.1f} ms -> overhead {overhead:+.2%} "
        f"(bound {args.max_overhead:.0%})"
    )
    print(f"wrote {args.out}")

    if args.check and overhead > args.max_overhead:
        print(
            f"FAIL: observability overhead {overhead:.2%} exceeds "
            f"{args.max_overhead:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
