"""Failover benchmark: kill a shard under load, measure the blast radius.

docs/ROBUSTNESS.md claims the supervision stack turns a shard loss from
"stranded commitments" into a bounded, measurable event.  This harness
quantifies that claim on an in-process 3-shard fleet (no subprocess or
network noise — the latencies below are the detector's and supervisor's
own):

* **kill under load** — workflows stream through the router while one
  shard is hard-killed mid-stream.  Measured: *detection latency* (kill
  → the detector's ``dead`` verdict), *failover duration* (kill → every
  accepted workflow owned by a survivor), and the cross-shard
  conservation check over the survivors.  The victim is then restarted
  on its journal — the *zombie return* — and the run is only clean if
  the supervisor fences it back to zero re-homed claims with
  conservation still violation-free.
* **deadline delta** — the same mixed workflow + ad-hoc stream run twice
  in virtual time and drained to completion: once undisturbed, once with
  a mid-stream shard kill and journal-driven failover.  The difference
  in deadline-miss rate is the *price of the failure*, which the
  supervision stack is supposed to keep bounded (re-homed workflows
  restart on their new shard; workflows that cannot be re-admitted
  anywhere count as missed).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_failover.py --check

Writes ``BENCH_failover.json`` (see ``--out``).  ``--check`` enforces
the gates: detection within ``--max-detect-s``, full re-homing within
``--max-failover-s``, both conservation checks clean, and the
deadline-miss delta within ``--max-miss-delta`` (absolute).  ``--quick``
runs a reduced workload for CI smoke (gates still apply to what ran).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from typing import Sequence

from repro.cluster import (
    DetectorConfig,
    FailureDetector,
    LocalShard,
    ShardRouter,
    Supervisor,
    SupervisorConfig,
    slice_capacity,
)
from repro.model.cluster import ClusterCapacity
from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.model.workflow import Workflow
from repro.service import ServiceConfig
from repro.verify import check_cross_shard_conservation

N_SHARDS = 3
#: Tenants the workflow stream is spread over (routing co-locates each).
TENANTS = 8
#: Detector/supervisor cadence for the kill-under-load phase: tight, so
#: the measured latencies reflect the machinery, not the configuration.
PROBE_INTERVAL_S = 0.05
DEAD_AFTER_S = 0.25
FAILOVER_AFTER_S = 0.1
WAIT_TIMEOUT_S = 30.0


def _workflow(index: int, window_slots: int, start_slot: int = 0) -> Workflow:
    wid = f"t{index % TENANTS}/fw{index}"
    spec = TaskSpec(
        count=1, duration_slots=4, demand=ResourceVector({CPU: 1, MEM: 2})
    )
    jobs = [
        Job(job_id=f"{wid}-j{j}", tasks=spec, workflow_id=wid)
        for j in range(2)
    ]
    return Workflow.from_jobs(
        wid,
        jobs,
        [(f"{wid}-j0", f"{wid}-j1")],
        start_slot,
        start_slot + window_slots,
    )


def _adhoc(index: int) -> Job:
    spec = TaskSpec(
        count=1, duration_slots=1, demand=ResourceVector({CPU: 1, MEM: 1})
    )
    return Job(
        job_id=f"fa{index}", tasks=spec, kind=JobKind.ADHOC, arrival_slot=0
    )


def make_fleet(
    cluster: ClusterCapacity,
    *,
    frozen_clock: bool,
    journal_dir: str | None = None,
) -> list[LocalShard]:
    shards = []
    for i, capacity in enumerate(slice_capacity(cluster, N_SHARDS)):
        config = ServiceConfig(
            admission=True,
            batch_window_s=0.0,
            journal_fsync=False,
            journal_path=(
                f"{journal_dir}/shard{i}.jsonl" if journal_dir else None
            ),
            realtime=frozen_clock,
            slot_seconds=3600.0 if frozen_clock else 1.0,
        )
        shards.append(LocalShard(f"s{i}", capacity, config).start())
    return shards


def _wait(predicate, what: str) -> float:
    started = time.monotonic()
    deadline = started + WAIT_TIMEOUT_S
    while time.monotonic() < deadline:
        if predicate():
            return time.monotonic() - started
        time.sleep(0.01)
    raise RuntimeError(f"timed out waiting for {what}")


def run_kill_under_load(cluster: ClusterCapacity, n_workflows: int) -> dict:
    """Stream submissions, kill a shard mid-stream, time the recovery."""
    tmp = tempfile.mkdtemp(prefix="bench-failover-")
    shards = make_fleet(cluster, frozen_clock=True, journal_dir=tmp)
    router = ShardRouter(shards)
    detector = FailureDetector(
        shards,
        DetectorConfig(
            probe_interval_s=PROBE_INTERVAL_S,
            suspect_after=2,
            dead_after_s=DEAD_AFTER_S,
        ),
        obs=router.obs,
    ).start()
    router.attach_detector(detector)
    supervisor = Supervisor(
        router,
        detector,
        SupervisorConfig(
            auto_restart=False, failover_after_s=FAILOVER_AFTER_S
        ),
    ).start(PROBE_INTERVAL_S)
    victim = shards[0]
    accepted: list[str] = []
    killed_at = 0.0
    #: Stamped by the watcher thread the moment each milestone is seen,
    #: so detection/failover latency is measured concurrently with the
    #: still-running submission stream, not after it.
    milestones: dict[str, float] = {}

    def watch(stranded: set[str]) -> None:
        deadline = time.monotonic() + WAIT_TIMEOUT_S
        while time.monotonic() < deadline:
            if detector.state(victim.name) == "dead":
                milestones["detected_s"] = time.monotonic() - killed_at
                break
            time.sleep(0.005)
        while time.monotonic() < deadline:
            owned: set[str] = set()
            for shard in shards:
                if shard is victim:
                    continue
                owned.update(shard.workflow_ids())
            if owned >= stranded:
                milestones["rehomed_s"] = time.monotonic() - killed_at
                return
            time.sleep(0.005)

    try:
        kill_index = n_workflows // 2
        watcher: threading.Thread | None = None
        for index in range(n_workflows):
            if index == kill_index:
                victim.kill()
                killed_at = time.monotonic()
                watcher = threading.Thread(
                    target=watch, args=(set(accepted),), daemon=True
                )
                watcher.start()
            workflow = _workflow(index, window_slots=600)
            try:
                result = router.submit_workflow(
                    workflow, idempotency_key=f"key-{workflow.workflow_id}"
                )
            except (RuntimeError, TimeoutError, OSError):
                continue
            if result.accepted:
                accepted.append(workflow.workflow_id)

        watcher.join(timeout=WAIT_TIMEOUT_S)
        if "detected_s" not in milestones or "rehomed_s" not in milestones:
            raise RuntimeError(f"recovery never completed: {milestones}")
        detection_s = milestones["detected_s"]
        failover_s = milestones["rehomed_s"]

        def rehomed() -> bool:
            owned = set()
            for shard in shards:
                if shard is victim:
                    continue
                owned.update(shard.workflow_ids())
            return owned >= set(accepted)

        _wait(rehomed, "all accepted workflows on survivors")
        survivors = {
            name: ids
            for name, ids in router.owned_by_shard().items()
            if name != victim.name
        }
        orphans = {
            name: list(entries)
            for name, entries in router.orphans_by_shard().items()
            if name != victim.name
        }
        before = check_cross_shard_conservation(
            accepted, survivors, orphans,
            placement=router.placement_overrides,
        )
        moved = supervisor.snapshot()["failed_over"].get(victim.name, [])

        # Zombie return: journal replay re-claims; fencing must strip it.
        victim.restart()
        _wait(
            lambda: detector.state(victim.name) == "live", "zombie live"
        )
        fence_started = time.monotonic()
        _wait(
            lambda: not supervisor.snapshot()["failed_over"],
            "fencing ledger drained",
        )
        fence_s = time.monotonic() - fence_started
        after = check_cross_shard_conservation(
            accepted,
            router.owned_by_shard(),
            {
                name: list(entries)
                for name, entries in router.orphans_by_shard().items()
            },
            placement=router.placement_overrides,
        )
    finally:
        supervisor.stop()
        detector.stop()
        for shard in shards:
            shard.kill()
    return {
        "n_submitted": n_workflows,
        "n_accepted": len(accepted),
        "n_rehomed": len(moved),
        "detection_s": round(detection_s, 4),
        "failover_s": round(failover_s, 4),
        "fence_s": round(fence_s, 4),
        "probe_interval_s": PROBE_INTERVAL_S,
        "dead_after_s": DEAD_AFTER_S,
        "failover_after_s": FAILOVER_AFTER_S,
        "conservation_survivors_ok": before.ok,
        "conservation_after_zombie_ok": after.ok,
        "violations": [str(v) for v in (*before.violations, *after.violations)][:10],
    }


def run_deadline_stream(
    cluster: ClusterCapacity,
    n_workflows: int,
    adhoc_per_workflow: int,
    window_slots: int,
    *,
    interrupted: bool,
) -> dict:
    """Mixed stream in virtual time, drained; optionally kill + fail over."""
    tmp = tempfile.mkdtemp(prefix="bench-failover-dl-")
    shards = make_fleet(cluster, frozen_clock=False, journal_dir=tmp)
    router = ShardRouter(shards)
    detector = FailureDetector(
        shards,
        DetectorConfig(suspect_after=1, dead_after_s=0.0),
        obs=router.obs,
    )
    router.attach_detector(detector)
    supervisor = Supervisor(
        router,
        detector,
        SupervisorConfig(auto_restart=False, failover_after_s=0.0),
    )
    detector.probe_all()
    victim = shards[0]
    accepted = rejected = unplaced = 0
    adhoc_index = 0
    try:
        kill_index = n_workflows // 2
        for index in range(n_workflows):
            if interrupted and index == kill_index:
                victim.kill()
                detector.probe_all()
                outcome = supervisor.cycle()
                unplaced = len(
                    outcome["failed_over"]
                    .get(victim.name, {})
                    .get("unplaced", [])
                )
            now_slot = max(
                (s.status().slot for s in shards if s.alive()), default=0
            )
            workflow = _workflow(index, window_slots, start_slot=now_slot + 1)
            try:
                result = router.submit_workflow(workflow)
            except (RuntimeError, TimeoutError, OSError):
                rejected += 1
                continue
            accepted += result.accepted
            rejected += not result.accepted
            for _ in range(adhoc_per_workflow):
                try:
                    router.submit_adhoc(_adhoc(adhoc_index))
                except (RuntimeError, TimeoutError, OSError):
                    pass
                adhoc_index += 1
        missed = unplaced  # a workflow nobody could re-admit is a miss
        for shard in shards:
            if not shard.alive():
                continue
            result = shard.drain()
            missed += sum(
                not w.met_deadline for w in result.workflows.values()
            )
    finally:
        for shard in shards:
            shard.kill()
    return {
        "interrupted": interrupted,
        "accepted_workflows": accepted,
        "rejected_workflows": rejected,
        "unplaced_workflows": unplaced,
        "missed_workflows": missed,
        "miss_rate": round(missed / accepted, 4) if accepted else 0.0,
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced workload for CI smoke (gates still apply)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when any acceptance gate fails",
    )
    parser.add_argument(
        "--max-detect-s", type=float, default=2.0,
        help="gate: kill-to-dead detection latency ceiling",
    )
    parser.add_argument(
        "--max-failover-s", type=float, default=10.0,
        help="gate: kill-to-fully-rehomed duration ceiling",
    )
    parser.add_argument(
        "--max-miss-delta", type=float, default=0.35,
        help="gate: absolute deadline-miss-rate delta vs uninterrupted",
    )
    parser.add_argument("--out", default="BENCH_failover.json")
    args = parser.parse_args(argv)

    cluster = ClusterCapacity.uniform(cpu=120, mem=240)
    n_kill = 40 if args.quick else 120
    n_deadline = 24 if args.quick else 60
    window = 40

    print(f"kill-under-load: {n_kill} workflows, kill at {n_kill // 2} ...")
    kill = run_kill_under_load(cluster, n_kill)
    print(
        f"  detection {kill['detection_s']}s  failover {kill['failover_s']}s"
        f"  rehomed {kill['n_rehomed']}  fence {kill['fence_s']}s"
    )

    print(f"deadline stream: {n_deadline} workflows, uninterrupted ...")
    baseline = run_deadline_stream(
        cluster, n_deadline, adhoc_per_workflow=2, window_slots=window,
        interrupted=False,
    )
    print(f"  baseline miss rate {baseline['miss_rate']}")
    print(f"deadline stream: {n_deadline} workflows, shard killed ...")
    disturbed = run_deadline_stream(
        cluster, n_deadline, adhoc_per_workflow=2, window_slots=window,
        interrupted=True,
    )
    print(f"  interrupted miss rate {disturbed['miss_rate']}")
    miss_delta = round(disturbed["miss_rate"] - baseline["miss_rate"], 4)

    gates = {
        "detection_ok": kill["detection_s"] <= args.max_detect_s,
        "failover_ok": kill["failover_s"] <= args.max_failover_s,
        "conservation_ok": (
            kill["conservation_survivors_ok"]
            and kill["conservation_after_zombie_ok"]
        ),
        "miss_delta_ok": miss_delta <= args.max_miss_delta,
    }
    report = {
        "benchmark": "failover",
        "quick": args.quick,
        "n_shards": N_SHARDS,
        "kill_under_load": kill,
        "deadline": {
            "baseline": baseline,
            "interrupted": disturbed,
            "miss_delta": miss_delta,
        },
        "gates": {
            **gates,
            "max_detect_s": args.max_detect_s,
            "max_failover_s": args.max_failover_s,
            "max_miss_delta": args.max_miss_delta,
        },
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    failed = [name for name, ok in gates.items() if ok is False]
    if failed:
        print(f"GATES FAILED: {failed}", file=sys.stderr)
        return 1 if args.check else 0
    print("all gates pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
