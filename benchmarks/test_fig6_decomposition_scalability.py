"""FIG6 — runtime of the deadline decomposition algorithm.

The paper sweeps DAGs of 10-200 nodes and up to ~6000 edges and reports the
decomposition returning "within 3 seconds" even at the top of the range (on
a 2012 laptop).  We regenerate the same sweep: layered random DAGs at five
edge densities per node count, decomposition timed by pytest-benchmark.

Shape expectation: runtime grows mildly with nodes and edges and stays far
under the paper's 3 s ceiling at 200 nodes / ~6000 edges.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decomposition import decompose_deadline
from repro.model.cluster import ClusterCapacity
from repro.model.job import Job, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.model.workflow import Workflow
from repro.workloads.dag_generators import random_dag_edges

CLUSTER = ClusterCapacity.uniform(cpu=500, mem=1024)


def dag_workflow(n_nodes: int, n_edges: int, seed: int) -> Workflow:
    rng = np.random.default_rng(seed)
    spec = TaskSpec(
        count=8, duration_slots=3, demand=ResourceVector({CPU: 2, MEM: 4})
    )
    jobs = [
        Job(job_id=f"w-j{i}", tasks=spec, workflow_id="w") for i in range(n_nodes)
    ]
    edges = [
        (f"w-j{a}", f"w-j{b}") for a, b in random_dag_edges(n_nodes, n_edges, rng)
    ]
    return Workflow.from_jobs("w", jobs, edges, 0, n_nodes * 20)


CASES = [
    (10, 20),
    (50, 300),
    (100, 1500),
    (150, 3000),
    (200, 6000),
]


@pytest.mark.parametrize("n_nodes,n_edges", CASES, ids=[f"n{n}-e{e}" for n, e in CASES])
@pytest.mark.benchmark(group="fig6")
def test_fig6_decomposition_runtime(benchmark, n_nodes, n_edges):
    workflow = dag_workflow(n_nodes, n_edges, seed=n_nodes)
    result = benchmark(decompose_deadline, workflow, CLUSTER)
    assert set(result.windows) == set(workflow.job_ids)
    # The paper's ceiling: 3 s at 200 nodes / 6000 edges; our substrate is
    # decades newer, so we assert a conservative fraction of it.
    assert benchmark.stats["mean"] < 3.0
    print(
        f"\nFIG6 nodes={n_nodes} edges={len(workflow.edges)} "
        f"mean={benchmark.stats['mean'] * 1000:.2f} ms (paper ceiling: 3000 ms)"
    )
