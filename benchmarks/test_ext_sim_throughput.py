"""EXT-8 — simulator substrate throughput.

Not a paper figure: this measures the *substrate's* own overhead so the
latency numbers elsewhere can be interpreted (Fig. 7's LP latency matters
because the rest of the scheduling stack is cheap).  One greedy scheduler
over a large mixed workload; the metric is engine slots per second.
"""

from __future__ import annotations

import pytest

from repro.model.cluster import ClusterCapacity
from repro.schedulers.fifo import FifoScheduler
from repro.simulator.engine import Simulation
from repro.workloads.traces import generate_trace


def run_big_simulation():
    cluster = ClusterCapacity.uniform(cpu=256, mem=512)
    trace = generate_trace(
        n_workflows=8,
        jobs_per_workflow=15,
        n_adhoc=80,
        capacity=cluster,
        looseness=(4.0, 8.0),
        adhoc_rate_per_slot=1.0,
        workflow_spread_slots=80,
        seed=3,
    )
    result = Simulation(
        cluster,
        FifoScheduler(),
        workflows=trace.workflows,
        adhoc_jobs=trace.adhoc_jobs,
    ).run()
    assert result.finished
    return result


@pytest.mark.benchmark(group="ext8")
def test_ext8_engine_throughput(benchmark):
    result = benchmark.pedantic(run_big_simulation, rounds=1, iterations=1)
    n_jobs = len(result.jobs)
    slots_per_second = result.n_slots / benchmark.stats["mean"]
    print(
        f"\nEXT-8: {result.n_slots} slots x {n_jobs} jobs in "
        f"{benchmark.stats['mean']:.2f} s -> {slots_per_second:.0f} slots/s"
    )
    # The engine itself is never the bottleneck: hundreds of slots per
    # second even with ~200 jobs live.
    assert slots_per_second > 50
