"""Shared benchmark fixtures.

The benchmarks regenerate every figure of the paper's evaluation
(Sec. VII).  Set ``FLOWTIME_BENCH_SCALE=full`` to run the paper-size
workload (5 workflows x 18 jobs = 90 deadline jobs); the default "quick"
scale uses the same generator and cluster shape at reduced size so the
whole suite finishes in a few minutes.

Every bench prints the same rows/series the corresponding figure reports;
run with ``-s`` to see them inline (EXPERIMENTS.md records a full run).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.model.cluster import ClusterCapacity
from repro.workloads.traces import SyntheticTrace, generate_trace

FULL_SCALE = os.environ.get("FLOWTIME_BENCH_SCALE", "quick") == "full"


@dataclass(frozen=True)
class MixedClusterSetup:
    """The Fig. 4/5 experimental setup: cluster + trace + metadata."""

    cluster: ClusterCapacity
    trace: SyntheticTrace
    n_deadline_jobs: int


def build_mixed_cluster_setup(seed: int = 15) -> MixedClusterSetup:
    """The paper's mixed workload: recurring workflows with loose deadlines
    sharing the cluster with a Poisson ad-hoc stream (Sec. VII-A).

    The parameters put the cluster in the paper's regime: deadline windows
    4-8x the critical path (loose, like the 24 h deadline on a ~2 h
    workflow the paper cites), enough overlap that deadline-oblivious
    baselines miss job windows, and a steady ad-hoc stream that EDF-style
    deadline-first scheduling visibly starves.
    """
    if FULL_SCALE:
        cluster = ClusterCapacity.uniform(cpu=96, mem=192)
        trace = generate_trace(
            n_workflows=5,
            jobs_per_workflow=18,
            n_adhoc=40,
            capacity=cluster,
            looseness=(4.0, 8.0),
            adhoc_rate_per_slot=0.7,
            workflow_spread_slots=70,
            seed=seed,
        )
    else:
        cluster = ClusterCapacity.uniform(cpu=64, mem=128)
        trace = generate_trace(
            n_workflows=4,
            jobs_per_workflow=12,
            n_adhoc=30,
            capacity=cluster,
            looseness=(4.0, 8.0),
            adhoc_rate_per_slot=0.7,
            workflow_spread_slots=50,
            seed=seed,
        )
    return MixedClusterSetup(
        cluster=cluster, trace=trace, n_deadline_jobs=trace.n_deadline_jobs
    )


@pytest.fixture(scope="session")
def mixed_setup() -> MixedClusterSetup:
    return build_mixed_cluster_setup()
