"""EXT-7 — recurring instances over time (the trace-driven regime).

The paper's workflows are "typically recurring, running on a daily, weekly
or monthly basis" (Sec. I); the trace-driven simulations replay many
occurrences.  This bench runs several instances of a recurring workflow
back to back with an ad-hoc background and measures, per instance:

* FlowTime's per-instance deadline performance (stable — it uses the DAG,
  so it never needed the history);
* Morpheus's, with history that *accumulates from the actually executed
  instances* (cold start on instance 0, observed windows afterwards) —
  the learning loop the real system runs.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import canonical_windows
from repro.estimation.history import RunHistory
from repro.model.cluster import ClusterCapacity
from repro.schedulers.flowtime_sched import FlowTimeScheduler
from repro.schedulers.morpheus import MorpheusScheduler
from repro.simulator.engine import Simulation
from repro.simulator.metrics import missed_workflows
from repro.workloads.arrivals import adhoc_stream
from repro.workloads.dag_generators import fork_join_workflow
from repro.workloads.recurring import RecurringWorkflow, record_run
from repro.workloads.traces import SyntheticTrace

N_INSTANCES = 4


def make_recurring() -> RecurringWorkflow:
    skeleton = fork_join_workflow("nightly", 4, 0, 140)
    return RecurringWorkflow(
        skeleton=skeleton, period_slots=160, template_name="nightly"
    )


def run_instances():
    cluster = ClusterCapacity.uniform(cpu=48, mem=96)
    recurring = make_recurring()
    history = RunHistory()
    per_instance = {"FlowTime": [], "Morpheus": []}
    inferred_window_spans = []
    for index in range(N_INSTANCES):
        instance = recurring.instance(index)
        adhoc = adhoc_stream(
            8,
            rate_per_slot=0.2,
            horizon_slots=instance.window_slots,
            seed=100 + index,
            prefix=f"adhoc{index}",
        )
        # Shift arrivals into the instance's own window.
        adhoc = [
            type(j)(
                job_id=j.job_id,
                tasks=j.tasks,
                kind=j.kind,
                arrival_slot=j.arrival_slot + instance.start_slot,
            )
            for j in adhoc
        ]
        for name, scheduler in (
            ("FlowTime", FlowTimeScheduler()),
            ("Morpheus", MorpheusScheduler(history=history)),
        ):
            result = Simulation(
                cluster, scheduler, workflows=[instance], adhoc_jobs=adhoc
            ).run()
            assert result.finished, (name, index)
            per_instance[name].append(len(missed_workflows(result)))
            if name == "Morpheus":
                windows = scheduler.windows
                # The tightest inferred deadline (relative to the instance
                # start): the cold start pins every job at the whole window,
                # real history pulls early jobs' deadlines forward.
                earliest = min(
                    w.deadline_slot for w in windows.values()
                ) - instance.start_slot
                inferred_window_spans.append(earliest)
                record_run(history, recurring, index, result)
    return per_instance, inferred_window_spans


@pytest.mark.benchmark(group="ext7")
def test_ext7_recurring_instances(benchmark):
    per_instance, spans = benchmark.pedantic(run_instances, rounds=1, iterations=1)
    print(f"\nEXT-7: workflow-deadline misses per instance over {N_INSTANCES} runs")
    print(f"  FlowTime: {per_instance['FlowTime']}")
    print(f"  Morpheus: {per_instance['Morpheus']} (history accumulates)")
    print(f"  Morpheus earliest inferred job deadline per instance: {spans}")

    # FlowTime is stable from day one (DAG-based, needs no history).
    assert per_instance["FlowTime"] == [0] * N_INSTANCES
    # Morpheus meets the (loose) workflow deadlines throughout...
    assert per_instance["Morpheus"] == [0] * N_INSTANCES
    # ...and once history exists its inferred per-job windows tighten from
    # the cold-start whole-window spread: early jobs' deadlines move well
    # before the workflow deadline.
    recurring = make_recurring()
    whole = recurring.skeleton.window_slots
    assert spans[0] == whole  # cold start: everything gets the full window
    assert all(span < whole for span in spans[1:])
    assert spans[-1] <= whole // 2
