"""FIG4 — deadline-aware workflows sharing the cluster with ad-hoc jobs.

Regenerates all three panels of Fig. 4 plus the workflow-level count from
Sec. VII-B-1 as one table per algorithm:

* (a) the distribution of (completion time - deadline) for deadline jobs —
  FlowTime keeps every delta <= 0;
* (b) the number of jobs missing their (decomposed) deadlines — paper:
  FlowTime 0, CORA 10, EDF 5, Fair 8, FIFO 13;
* (c) the average ad-hoc job turnaround — paper: FlowTime 522.5 s; Fair
  1.36x, CORA 2x, FIFO 3x, EDF 10x that.

Shape expectations asserted here: FlowTime misses nothing and EDF is the
best baseline on misses; every baseline's ad-hoc turnaround exceeds
FlowTime's, with EDF the worst.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_comparison
from repro.analysis.reporting import format_comparison_table, turnaround_ratios

ALGORITHMS = ("FlowTime", "CORA", "EDF", "Fair", "FIFO")


@pytest.mark.benchmark(group="fig4")
def test_fig4_mixed_cluster(benchmark, mixed_setup):
    comparison = benchmark.pedantic(
        run_comparison,
        args=(mixed_setup.trace, mixed_setup.cluster, ALGORITHMS),
        rounds=1,
        iterations=1,
    )
    print(f"\nFIG4 ({mixed_setup.n_deadline_jobs} deadline jobs)")
    print(format_comparison_table(comparison))
    ratios = turnaround_ratios(comparison)
    print("turnaround vs FlowTime: " + ", ".join(
        f"{name} {ratio:.2f}x" for name, ratio in ratios.items()
    ))

    for outcome in comparison.outcomes:
        assert outcome.result.finished, f"{outcome.name} did not finish"

    flowtime = comparison.outcome("FlowTime")
    # Panel (a)/(b): FlowTime meets every decomposed job deadline...
    assert flowtime.n_missed_jobs == 0
    assert max(flowtime.deltas_seconds.values()) <= 0.0
    # ...and every workflow deadline (Sec. VII-B-1).
    assert flowtime.n_missed_workflows == 0
    # EDF is the best baseline on misses.
    edf_missed = comparison.outcome("EDF").n_missed_jobs
    for name in ("CORA", "Fair", "FIFO"):
        assert edf_missed <= comparison.outcome(name).n_missed_jobs
    # Panel (c): everyone is slower than FlowTime for ad-hoc jobs, EDF worst.
    for name in ("CORA", "EDF", "Fair", "FIFO"):
        assert ratios[name] > 1.0, f"{name} should trail FlowTime"
    assert ratios["EDF"] == max(ratios[n] for n in ("CORA", "EDF", "Fair", "FIFO"))


@pytest.mark.benchmark(group="fig4")
def test_fig4_extended_with_morpheus(benchmark, mixed_setup):
    """The paper's baseline list also names Morpheus (Sec. VII-A); the
    extended run adds it (history synthesised from prior-run replays)."""
    comparison = benchmark.pedantic(
        run_comparison,
        args=(mixed_setup.trace, mixed_setup.cluster, ("FlowTime", "Morpheus")),
        rounds=1,
        iterations=1,
    )
    print("\nFIG4-extended (Morpheus)")
    print(format_comparison_table(comparison))
    morpheus = comparison.outcome("Morpheus")
    flowtime = comparison.outcome("FlowTime")
    assert morpheus.result.finished
    # Morpheus infers windows without DAG knowledge: never better than
    # FlowTime on misses on this workload.
    assert flowtime.n_missed_jobs <= morpheus.n_missed_jobs
