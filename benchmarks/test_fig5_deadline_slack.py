"""FIG5 — the effectiveness of deadline slack.

The paper compares FlowTime against FlowTime_no_ds (no deadline slack):
(a/b) without slack some jobs are "allocated resources at the very last
minute" and estimation noise turns that into deadline misses — 5 of 90 jobs
in the paper — while the 60 s slack removes them all; (c) ad-hoc turnaround
is barely affected (522.5 s vs 531.1 s).

The scenario that exposes the effect: workflows whose job windows are
moderately tight (1.8x the minimum runtime), pure *under*-estimation noise
(true durations up to 1.15x the estimates — "the input data or the code may
have changed", Sec. III), and the paper-faithful planner configuration
(``front_load=False``, no work-conserving boost) where only the slack
stands between a last-minute allocation and a miss.  Our library's default
configuration adds front-loading and work conservation, which absorb this
failure mode on their own — see the EXT-1 robustness bench.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_comparison
from repro.analysis.reporting import format_comparison_table
from repro.core.critical_path import critical_path_length
from repro.estimation.errors import ErrorModel, apply_workflow_estimation_errors
from repro.model.cluster import ClusterCapacity
from repro.model.job import TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.workloads.arrivals import adhoc_stream
from repro.workloads.dag_generators import chain_workflow
from repro.workloads.traces import SyntheticTrace

#: Paper-faithful planner: no front-loading tie-break, no work-conserving
#: boost — the configurations Fig. 5 contrasts differ only in the slack.
PAPER_FAITHFUL = {"planner": {"front_load": False}, "work_conserving": False}


def slack_scenario():
    """Four staggered 4-job chains with windows 1.8x their critical path and
    up to 15% duration under-estimation, plus a light ad-hoc stream."""
    cluster = ClusterCapacity.uniform(cpu=128, mem=256)
    spec = TaskSpec(
        count=16, duration_slots=10, demand=ResourceVector({CPU: 2, MEM: 4})
    )
    workflows = []
    for i in range(4):
        start = i * 20
        skeleton = chain_workflow(f"wf{i}", 4, start, start + 10_000, spec_of=spec)
        cp = critical_path_length(skeleton, cluster, cluster_aware=True)
        workflow = chain_workflow(
            f"wf{i}", 4, start, start + int(cp * 1.8), spec_of=spec
        )
        workflow = apply_workflow_estimation_errors(
            workflow, ErrorModel(low=1.0, high=1.15), seed=i
        )
        workflows.append(workflow)
    adhoc = adhoc_stream(
        25,
        rate_per_slot=0.3,
        horizon_slots=max(w.deadline_slot for w in workflows),
        seed=99,
    )
    return cluster, SyntheticTrace(workflows=tuple(workflows), adhoc_jobs=tuple(adhoc))


@pytest.mark.benchmark(group="fig5")
def test_fig5_deadline_slack(benchmark):
    cluster, trace = slack_scenario()
    comparison = benchmark.pedantic(
        run_comparison,
        args=(trace, cluster, ("FlowTime", "FlowTime_no_ds")),
        kwargs={
            "scheduler_kwargs": {
                "FlowTime": dict(PAPER_FAITHFUL),
                "FlowTime_no_ds": dict(PAPER_FAITHFUL),
            }
        },
        rounds=1,
        iterations=1,
    )
    print("\nFIG5 (under-estimation noise up to 1.15x, paper-faithful planner)")
    print(format_comparison_table(comparison))

    with_ds = comparison.outcome("FlowTime")
    without = comparison.outcome("FlowTime_no_ds")
    assert with_ds.result.finished and without.result.finished
    # (a)/(b): the slack removes every miss; without it, last-minute
    # allocations plus under-estimation cause several (paper: 0 vs 5).
    assert with_ds.n_missed_jobs == 0
    assert without.n_missed_jobs >= 3
    assert max(with_ds.deltas_seconds.values()) <= max(
        without.deltas_seconds.values()
    )
    # (c): ad-hoc turnaround is essentially unchanged by the slack
    # (paper: 522.5 s vs 531.1 s).
    assert with_ds.adhoc_turnaround_s == pytest.approx(
        without.adhoc_turnaround_s, rel=0.15
    )
