"""FIG1 — the motivating example (Fig. 1 of the paper).

Paper numbers, in time units: with EDF the two ad-hoc jobs average
150 = (200 + 100) / 2 turnaround; with FlowTime's approach 100 =
(100 + 100) / 2, while the workflow deadline (200) is met either way.
Our reconstruction reproduces those numbers *exactly* (slot = 1 time unit).
"""

from __future__ import annotations

import pytest

from repro.core.flowtime import PlannerConfig
from repro.model.cluster import ClusterCapacity
from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.model.workflow import Workflow
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.flowtime_sched import FlowTimeScheduler
from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.metrics import adhoc_turnaround_seconds, missed_workflows


def fig1_scenario():
    cluster = ClusterCapacity.uniform(cpu=4, mem=8)
    w_spec = TaskSpec(
        count=2, duration_slots=50, demand=ResourceVector({CPU: 2, MEM: 2})
    )
    jobs = [Job(job_id=f"W1-J{i}", tasks=w_spec, workflow_id="W1") for i in (1, 2)]
    workflow = Workflow.from_jobs("W1", jobs, [("W1-J1", "W1-J2")], 0, 200)
    a_spec = TaskSpec(
        count=2, duration_slots=100, demand=ResourceVector({CPU: 1, MEM: 1})
    )
    adhoc = [
        Job(job_id="A1", tasks=a_spec, kind=JobKind.ADHOC, arrival_slot=0),
        Job(job_id="A2", tasks=a_spec, kind=JobKind.ADHOC, arrival_slot=100),
    ]
    return cluster, workflow, adhoc


def run_scenario(scheduler) -> float:
    cluster, workflow, adhoc = fig1_scenario()
    result = Simulation(
        cluster,
        scheduler,
        workflows=[workflow],
        adhoc_jobs=adhoc,
        config=SimulationConfig(slot_seconds=1.0),
    ).run()
    assert result.finished
    assert missed_workflows(result) == []
    return adhoc_turnaround_seconds(result)


@pytest.mark.benchmark(group="fig1")
def test_fig1_edf(benchmark):
    turnaround = benchmark.pedantic(
        run_scenario, args=(EdfScheduler(),), rounds=1, iterations=1
    )
    print(f"\nFIG1 EDF        avg ad-hoc turnaround = {turnaround:.0f}  (paper: 150)")
    assert turnaround == pytest.approx(150.0)


@pytest.mark.benchmark(group="fig1")
def test_fig1_flowtime(benchmark):
    turnaround = benchmark.pedantic(
        run_scenario,
        args=(FlowTimeScheduler(PlannerConfig(slack_slots=0)),),
        rounds=1,
        iterations=1,
    )
    print(f"\nFIG1 FlowTime   avg ad-hoc turnaround = {turnaround:.0f}  (paper: 100)")
    assert turnaround == pytest.approx(100.0)
