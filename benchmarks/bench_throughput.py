#!/usr/bin/env python3
"""Service throughput benchmark: asyncio vs threaded frontend, event core.

ISSUE 10's tentpole replaces the slot-stepped hot loop with an event-queue
core and pairs it with an asyncio JSON-over-HTTP frontend.  This harness
measures both halves:

* **sustained submissions/sec** — ``repro serve`` booted as a subprocess
  (so client and server GIL-contend like real deployments, not inside one
  interpreter), once with the threaded frontend and once with ``--async``,
  each driven through a rate ramp by :func:`scripts.loadgen.run_load`.
  The *sustained* rate is the highest achieved rate over the ramp at
  which the server answered every request (zero transport errors) with a
  bounded client p99 — a frontend that answers a burst at 900/s but with
  second-long tail latencies and connection resets is not sustaining it.
  The threaded frontend's thread-per-connection model hits its accept-
  backlog wall early; the asyncio frontend keeps answering cleanly.
* **overload behaviour** — the async server with a deliberately small
  ad-hoc queue, driven well past capacity: shed rate (429s / submitted)
  and the *server-side* decide-latency p99 from ``GET /slo``, which must
  stay under the SLO ceiling while the queue sheds — backpressure, not
  collapse.
* **event-core wall clock** — the same sparse batch workload run
  in-process on ``engine="slots"`` and ``engine="events"``; outcomes are
  asserted identical while the event core skips the idle gaps.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_throughput.py --quick

Writes ``BENCH_throughput.json`` (see ``--out``).  With ``--check`` the
exit code is non-zero unless the async frontend sustains at least
``--min-ratio`` times the threaded baseline, the overload decide p99
stays under ``--max-decide-p99``, and both engines agree (the CI
``throughput-smoke`` job's gate).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
import urllib.request
from pathlib import Path
from typing import Sequence

ROOT = str(Path(__file__).resolve().parents[1])
sys.path.insert(0, ROOT)
sys.path.insert(0, str(Path(ROOT) / "src"))

from repro.model.cluster import ClusterCapacity  # noqa: E402
from repro.model.job import Job, JobKind, TaskSpec  # noqa: E402
from repro.model.resources import CPU, MEM, ResourceVector  # noqa: E402
from repro.schedulers.registry import make_scheduler  # noqa: E402
from repro.service import HttpServiceClient  # noqa: E402
from repro.simulator.engine import Simulation, SimulationConfig  # noqa: E402
from scripts.loadgen import run_load  # noqa: E402

#: Client p99 above this is not "sustained", it is queueing collapse.
_CLEAN_P99_MS = 250.0
#: Offered-rate ramp (submissions/s) for the sustained-rate search.
_RATES = (200, 400, 600, 900, 1300, 1800)
_RATES_QUICK = (200, 600, 1300)
#: Seconds of load per ramp point.
_BURST_S = 3.0
_BURST_S_QUICK = 1.5


class _Server:
    """One ``repro serve`` subprocess bound to an ephemeral port."""

    def __init__(self, *extra_flags: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(ROOT) / "src")
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--engine", "events", "--no-admission",
                *extra_flags,
            ],
            cwd=ROOT, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True,
        )
        self.url = self._await_url()

    def _await_url(self) -> str:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line and self.proc.poll() is not None:
                raise RuntimeError("repro serve exited before binding")
            if " on http://" in line:
                url = line.split(" on ", 1)[1].split()[0].rstrip("/")
                self._await_healthy(url)
                return url
        raise RuntimeError("repro serve never printed its URL")

    @staticmethod
    def _await_healthy(url: str) -> None:
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            try:
                with urllib.request.urlopen(url + "/healthz", timeout=2):
                    return
            except OSError:
                time.sleep(0.1)
        raise RuntimeError(f"{url} never became healthy")

    def stop(self) -> None:
        self.proc.terminate()
        try:
            self.proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=15)


def _ramp(url: str, rates: Sequence[int], burst_s: float) -> list[dict]:
    rows = []
    for rate in rates:
        summary = run_load(
            url,
            rate=float(rate),
            duration_s=burst_s,
            workflow_every=0,  # ad-hoc only: one queue decision per request
            concurrency=min(32, max(4, rate // 50)),
            quiet=True,
        )
        rows.append(
            {
                "offered_per_s": rate,
                "achieved_per_s": summary["achieved_rate"],
                "errors": summary["errors"],
                "shed": summary["shed"],
                "p50_ms": summary["latency"]["p50_ms"],
                "p99_ms": summary["latency"]["p99_ms"],
            }
        )
    return rows


def _sustained(rows: list[dict]) -> float:
    """Highest achieved rate with zero errors and a bounded client p99."""
    clean = [
        row["achieved_per_s"]
        for row in rows
        if row["errors"] == 0 and row["p99_ms"] <= _CLEAN_P99_MS
    ]
    return max(clean, default=0.0)


def bench_frontends(rates: Sequence[int], burst_s: float) -> dict:
    out = {}
    for frontend, flags in (("threaded", ()), ("async", ("--async",))):
        server = _Server("--queue-limit", "100000", *flags)
        try:
            rows = _ramp(server.url, rates, burst_s)
        finally:
            server.stop()
        out[frontend] = {
            "ramp": rows,
            "sustained_per_s": _sustained(rows),
        }
        print(
            f"{frontend:8s} sustained {out[frontend]['sustained_per_s']:8.1f}/s "
            f"(ramp to {rates[-1]}/s)",
            flush=True,
        )
    threaded = out["threaded"]["sustained_per_s"]
    out["async_over_threaded"] = (
        round(out["async"]["sustained_per_s"] / threaded, 2) if threaded else None
    )
    return out


def bench_overload(burst_s: float) -> dict:
    """Drive the async frontend far past a tiny queue; shed, don't stall."""
    server = _Server("--async", "--queue-limit", "64")
    try:
        summary = run_load(
            server.url,
            rate=1500.0,
            duration_s=max(burst_s * 2, 3.0),
            workflow_every=0,
            concurrency=32,
            quiet=True,
        )
        slo = HttpServiceClient(server.url).slo()
    finally:
        server.stop()
    submitted = summary["submitted"]
    return {
        "offered_per_s": 1500.0,
        "submitted": submitted,
        "accepted": summary["accepted"],
        "shed": summary["shed"],
        "errors": summary["errors"],
        "shed_rate": round(summary["shed"] / submitted, 4) if submitted else None,
        "client_p99_ms": summary["latency"]["p99_ms"],
        "decide_p99_s": slo["decide_latency"]["p99_s"],
        "decide_objective_s": slo["decide_latency"]["objective_p99_s"],
    }


def _sparse_adhoc(n: int = 40, gap: int = 25) -> list[Job]:
    spec = TaskSpec(
        count=2, duration_slots=3, demand=ResourceVector({CPU: 2, MEM: 4})
    )
    return [
        Job(
            job_id=f"sp{i}", tasks=spec, kind=JobKind.ADHOC,
            arrival_slot=i * gap,
        )
        for i in range(n)
    ]


def bench_engines() -> dict:
    """Wall-clock of the same sparse batch run on both engine cores."""
    out: dict = {}
    results = {}
    for engine in ("slots", "events"):
        adhoc = _sparse_adhoc()
        sim = Simulation(
            cluster=ClusterCapacity.uniform(cpu=16, mem=32),
            scheduler=make_scheduler("FlowTime"),
            adhoc_jobs=adhoc,
            config=SimulationConfig(engine=engine),
        )
        t0 = time.perf_counter()
        result = sim.run()
        elapsed = time.perf_counter() - t0
        results[engine] = result
        out[engine] = {
            "wall_s": round(elapsed, 4),
            "n_slots": result.n_slots,
            "slot_spans": result.metrics["sim.slot"]["count"],
            "slots_skipped": result.counter_value("sim.slots.skipped") or 0,
        }
    a, b = results["slots"], results["events"]
    out["outcomes_equal"] = (
        a.n_slots == b.n_slots
        and a.finished == b.finished
        and all(a.jobs[j] == b.jobs[j] for j in a.jobs)
    )
    out["speedup"] = (
        round(out["slots"]["wall_s"] / out["events"]["wall_s"], 2)
        if out["events"]["wall_s"]
        else None
    )
    print(
        f"engines: slots {out['slots']['wall_s']}s vs events "
        f"{out['events']['wall_s']}s ({out['events']['slots_skipped']} slots "
        f"skipped, equal={out['outcomes_equal']})",
        flush=True,
    )
    return out


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="shorter bursts and a coarser ramp (CI smoke)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the gates below hold",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=2.0,
        help="--check: minimum async/threaded sustained-rate ratio "
        "(default: 2.0)",
    )
    parser.add_argument(
        "--max-decide-p99", type=float, default=1.0, metavar="SECONDS",
        help="--check: decide-latency p99 ceiling under overload",
    )
    parser.add_argument(
        "--out", default=str(Path(ROOT) / "BENCH_throughput.json"),
        help="result JSON path",
    )
    args = parser.parse_args(argv)

    rates = _RATES_QUICK if args.quick else _RATES
    burst_s = _BURST_S_QUICK if args.quick else _BURST_S
    report = {
        "benchmark": "service throughput: asyncio vs threaded frontend",
        "quick": args.quick,
        "clean_p99_ms": _CLEAN_P99_MS,
        "frontends": bench_frontends(rates, burst_s),
        "overload": bench_overload(burst_s),
        "engines": bench_engines(),
    }
    Path(args.out).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.out}")

    if not args.check:
        return 0
    failures = []
    ratio = report["frontends"]["async_over_threaded"]
    if ratio is None or ratio < args.min_ratio:
        failures.append(
            f"async sustained only {ratio}x threaded (< {args.min_ratio}x)"
        )
    overload = report["overload"]
    if overload["errors"]:
        failures.append(
            f"{overload['errors']} transport errors under overload"
        )
    if not overload["shed"]:
        failures.append("overload shed nothing: queue bound not exercised")
    decide_p99 = overload["decide_p99_s"]
    if decide_p99 is not None and decide_p99 > args.max_decide_p99:
        failures.append(
            f"decide p99 {decide_p99}s under overload "
            f"(> {args.max_decide_p99}s)"
        )
    if not report["engines"]["outcomes_equal"]:
        failures.append("slot and event engines disagreed on the batch run")
    if not report["engines"]["events"]["slots_skipped"]:
        failures.append("event engine skipped nothing on a sparse workload")
    for failure in failures:
        print(f"CHECK FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
