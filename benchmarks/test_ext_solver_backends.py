"""EXT-4 — LP backend ablation: HiGHS vs the from-scratch simplex.

The paper used CPLEX; DESIGN.md substitutes scipy's HiGHS plus a
from-scratch dense two-phase simplex so the reproduction does not hinge on
any external solver.  This bench checks the two backends find the same
minimax optimum on the scheduling LP and reports the (large, expected)
latency gap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lexmin import lexmin_schedule
from repro.core.lp_formulation import ScheduleEntry, build_schedule_problem
from repro.model.resources import CPU, MEM, ResourceVector

RES = (CPU, MEM)


def small_problem(seed: int = 3):
    rng = np.random.default_rng(seed)
    entries = []
    for i in range(4):
        release = int(rng.integers(0, 3))
        length = int(rng.integers(2, 5))
        parallel = int(rng.integers(2, 4))
        units = int(rng.integers(2, length * parallel + 1))
        entries.append(
            ScheduleEntry(
                job_id=f"j{i}",
                release=release,
                deadline=release + length,
                units=units,
                unit_demand=ResourceVector({CPU: 1, MEM: 2}),
                max_parallel=parallel,
            )
        )
    horizon = max(e.deadline for e in entries)
    caps = np.zeros((horizon, 2))
    caps[:, 0], caps[:, 1] = 20, 40
    return build_schedule_problem(entries, caps, RES)


@pytest.mark.parametrize("backend", ["highs", "simplex"])
@pytest.mark.benchmark(group="ext4")
def test_ext4_backend_latency(benchmark, backend):
    problem = small_problem()
    result = benchmark(lexmin_schedule, problem, backend=backend, max_rounds=2)
    assert result.is_optimal
    print(
        f"\nEXT-4 backend={backend} minimax={result.minimax:.4f} "
        f"mean={benchmark.stats['mean'] * 1000:.1f} ms"
    )


@pytest.mark.benchmark(group="ext4")
def test_ext4_backends_agree(benchmark):
    def agree():
        values = []
        for seed in range(5):
            problem = small_problem(seed)
            highs = lexmin_schedule(problem, backend="highs", max_rounds=2)
            simplex = lexmin_schedule(problem, backend="simplex", max_rounds=2)
            assert highs.is_optimal and simplex.is_optimal
            values.append((highs.minimax, simplex.minimax))
        return values

    values = benchmark.pedantic(agree, rounds=1, iterations=1)
    for highs_minimax, simplex_minimax in values:
        assert highs_minimax == pytest.approx(simplex_minimax, abs=1e-6)
    print(f"\nEXT-4: {len(values)} instances, backends agree on the minimax")
