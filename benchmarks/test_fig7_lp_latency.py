"""FIG7 — latency of the LP-based scheduler.

The paper times its CPLEX solve on a cluster of 500 CPU cores / 1 TB of
memory with 100 time slots (10 s each), sweeping the number of
deadline-aware jobs, and reports the latency staying low enough to re-solve
on every task/job completion.  We regenerate the sweep on the same cluster
shape with the HiGHS backend and the executable (coupled) formulation —
plus one paper-formulation point for reference.

Shape expectation: latency grows roughly linearly with the number of jobs
(variables = jobs x window slots) and stays well under one slot (10 s).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lexmin import lexmin_schedule
from repro.core.lp_formulation import ScheduleEntry, build_schedule_problem
from repro.model.resources import CPU, MEM, ResourceVector

N_SLOTS = 100
RES = (CPU, MEM)


def make_entries(n_jobs: int, seed: int) -> list[ScheduleEntry]:
    """Random jobs whose aggregate demand targets ~60% of the cluster, so
    every sweep point is feasible (the paper's latency sweep holds the
    cluster fixed and scales only the job count)."""
    rng = np.random.default_rng(seed)
    total_cpu_budget = 0.6 * 500 * N_SLOTS
    per_job_cpu = total_cpu_budget / n_jobs
    entries = []
    for i in range(n_jobs):
        release = int(rng.integers(0, 50))
        deadline = int(rng.integers(release + 10, N_SLOTS + 1))
        parallel = int(rng.integers(4, 16))
        cores = int(rng.integers(1, 4))
        target_units = max(int(per_job_cpu * rng.uniform(0.5, 1.5) / cores), 1)
        units = min(target_units, (deadline - release) * parallel)
        entries.append(
            ScheduleEntry(
                job_id=f"j{i}",
                release=release,
                deadline=deadline,
                units=units,
                unit_demand=ResourceVector(
                    {CPU: cores, MEM: int(rng.integers(2, 8))}
                ),
                max_parallel=parallel,
            )
        )
    return entries


def caps_500_cores() -> np.ndarray:
    caps = np.zeros((N_SLOTS, 2))
    caps[:, 0] = 500  # CPU cores
    caps[:, 1] = 1024  # GB (1 TB)
    return caps


def solve(entries, mode: str):
    problem = build_schedule_problem(entries, caps_500_cores(), RES, mode=mode)
    result = lexmin_schedule(problem, max_rounds=1)
    assert result.is_optimal
    return result


@pytest.mark.parametrize("n_jobs", [10, 50, 100, 200])
@pytest.mark.benchmark(group="fig7")
def test_fig7_lp_latency(benchmark, n_jobs):
    entries = make_entries(n_jobs, seed=n_jobs)
    result = benchmark(solve, entries, "coupled")
    assert 0.0 < result.minimax <= 1.0
    mean_ms = benchmark.stats["mean"] * 1000
    print(f"\nFIG7 jobs={n_jobs} mean={mean_ms:.1f} ms")
    # Usable for event-driven re-planning: far below one 10 s slot.
    assert benchmark.stats["mean"] < 10.0


@pytest.mark.benchmark(group="fig7")
def test_fig7_paper_formulation_reference(benchmark):
    """One point with the paper's exact per-resource formulation (more
    variables: jobs x slots x resources) for comparison."""
    entries = make_entries(50, seed=50)
    result = benchmark(solve, entries, "paper")
    assert 0.0 < result.minimax <= 1.0
    print(
        f"\nFIG7 (paper formulation) jobs=50 "
        f"mean={benchmark.stats['mean'] * 1000:.1f} ms"
    )
    assert benchmark.stats["mean"] < 10.0
