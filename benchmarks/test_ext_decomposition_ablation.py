"""EXT-2 — resource-demand decomposition vs critical-path decomposition.

This ablates the paper's key Stage-1 design choice (Sec. IV-B, Fig. 3): on
a fork-join DAG the critical-path method gives the wide parallel level
``1/3`` of the deadline regardless of fan-out, while the resource-demand
method gives it ``(n-1)/(n+1)``.  On a finite cluster the critical-path
windows become infeasible as the fan-out grows — the parallel level simply
cannot finish that fast — so schedules driven by those windows miss them.

We sweep the fan-out and count, for each decomposition, how many of its own
windows a window-driven EDF execution can actually meet.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reporting import format_series
from repro.core.allocation import greedy_fill
from repro.core.critical_path import critical_path_windows
from repro.core.decomposition import decompose_deadline
from repro.core.lp_formulation import ScheduleEntry
from repro.model.cluster import ClusterCapacity
from repro.model.job import TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.workloads.dag_generators import fork_join_workflow

CLUSTER = ClusterCapacity.uniform(cpu=64, mem=128)
SPEC = TaskSpec(count=8, duration_slots=3, demand=ResourceVector({CPU: 2, MEM: 4}))
FAN_OUTS = (4, 8, 16, 32)


def windows_feasible(workflow, windows) -> int:
    """How many windows an EDF water-fill within the windows can meet."""
    entries = []
    for job in workflow.jobs:
        window = windows[job.job_id]
        entries.append(
            ScheduleEntry(
                job_id=job.job_id,
                release=window.release_slot,
                deadline=window.deadline_slot,
                units=job.tasks.total_task_slots,
                unit_demand=job.tasks.demand,
                max_parallel=job.tasks.count,
            )
        )
    horizon = max(w.deadline_slot for w in windows.values()) + 1
    caps = np.zeros((horizon, 2))
    caps[:, 0] = CLUSTER.base[CPU]
    caps[:, 1] = CLUSTER.base[MEM]
    grants = greedy_fill(entries, caps, (CPU, MEM), extend_past_deadline=False)
    met = 0
    for entry in entries:
        if grants[entry.job_id].sum() >= entry.units:
            met += 1
    return met


def run_sweep():
    demand_met, cp_met, totals = [], [], []
    from repro.core.decomposition import _set_min_runtime
    from repro.core.toposort import grouped_topological_sets

    for fan_out in FAN_OUTS:
        # Window = 2x the sum of cluster-aware level minimums: loose enough
        # that the resource-demand decomposition never falls back, but the
        # wide middle level still needs far more than the 1/3 of the window
        # the critical-path method hands it.
        skeleton = fork_join_workflow("f", fan_out, 0, 1, spec_of=SPEC)
        levels = grouped_topological_sets(skeleton)
        total_min = sum(
            _set_min_runtime(skeleton, level, CLUSTER, cluster_aware=True)
            for level in levels
        )
        workflow = fork_join_workflow("f", fan_out, 0, 2 * total_min, spec_of=SPEC)

        ours = decompose_deadline(workflow, CLUSTER)
        assert not ours.used_fallback
        classic = critical_path_windows(workflow, CLUSTER, cluster_aware=False)
        demand_met.append(windows_feasible(workflow, ours.windows))
        cp_met.append(windows_feasible(workflow, classic))
        totals.append(len(workflow))
    return demand_met, cp_met, totals


@pytest.mark.benchmark(group="ext2")
def test_ext2_decomposition_ablation(benchmark):
    demand_met, cp_met, totals = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print(
        "\n"
        + format_series(
            "EXT-2: per-job windows met by an EDF fill (out of n+2 jobs)",
            FAN_OUTS,
            {
                "resource-demand": demand_met,
                "critical-path": cp_met,
                "total": totals,
            },
            x_label="fan-out n",
            fmt="{:.0f}",
        )
    )
    # The resource-demand windows are always jointly feasible.
    for met, total in zip(demand_met, totals):
        assert met == total
    # The critical-path windows break down as the fan-out grows (the middle
    # level gets 1/3 of the deadline no matter how wide it is).
    assert cp_met[-1] < totals[-1]
    # And the gap widens with the fan-out.
    gaps = [total - met for met, total in zip(cp_met, totals)]
    assert gaps[-1] >= gaps[0]
