"""Sharded-fleet benchmark: aggregate throughput, deadline quality, safety.

FlowTime's admission check and re-planning LP both price a submission
against *every* workflow the scheduler has already committed to, so
per-submission cost grows with committed state and a single service's
aggregate throughput falls as it fills.  Sharding (docs/SHARDING.md)
splits the cluster into N capacity slices, each owning 1/N of the
committed set — the same total work arrives, but every admission prices
against a fraction of the state.  This harness measures exactly that
effect, plus what sharding costs in schedule quality, on one process and
one core (no thread-parallelism flattery: the speedup below is
algorithmic, from smaller per-shard LPs, not from extra CPUs).

Three phases per run:

* **throughput** — a saturated admission regime: the service clock is
  frozen (``realtime`` with an hour-long slot) so nothing ever starts
  and the committed set grows monotonically, exactly the worst case for
  admission pricing.  The 10x workload is submitted through the router
  at fleet sizes 1, 2 and 4 and aggregate accepted submissions/sec is
  compared.
* **quality** — the same generator in virtual time (work executes while
  submissions land), mixed with an ad-hoc stream, drained to completion:
  deadline-miss rate of the 4-shard fleet vs the monolith.  Slicing
  capacity must not cost deadlines beyond the relative tolerance.
* **safety** — on the 4-shard fleet from the throughput phase: SIGKILL
  simulation (hard-stop one shard, restart it on its journal) followed
  by the cross-shard conservation check over every workflow the clients
  saw accepted — zero lost, zero duplicated.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_sharding.py --check

Writes ``BENCH_sharding.json`` (see ``--out``).  ``--check`` enforces
the acceptance gates: 4-shard aggregate throughput >= ``--min-speedup``
x the monolith on the 10x workload, deadline-miss rate within
``--max-miss-delta`` relative, conservation clean.  ``--quick`` runs a
reduced workload for CI smoke (gates still apply to what ran).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from typing import Sequence

from repro.cluster import LocalShard, ShardRouter, slice_capacity
from repro.model.cluster import ClusterCapacity
from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.model.workflow import Workflow
from repro.service import ServiceConfig
from repro.verify import check_cross_shard_conservation

#: Fleet sizes compared in the throughput phase (1 is the monolith).
FLEET_SIZES = (1, 2, 4)
#: Tenants the workflow stream is spread over (routing co-locates each).
TENANTS = 8


def _workflow(
    index: int, window_slots: int, start_slot: int = 0
) -> Workflow:
    wid = f"t{index % TENANTS}/bw{index}"
    spec = TaskSpec(
        count=1, duration_slots=4, demand=ResourceVector({CPU: 1, MEM: 2})
    )
    jobs = [
        Job(job_id=f"{wid}-j{j}", tasks=spec, workflow_id=wid)
        for j in range(2)
    ]
    return Workflow.from_jobs(
        wid,
        jobs,
        [(f"{wid}-j0", f"{wid}-j1")],
        start_slot,
        start_slot + window_slots,
    )


def _adhoc(index: int) -> Job:
    spec = TaskSpec(
        count=1, duration_slots=1, demand=ResourceVector({CPU: 1, MEM: 1})
    )
    return Job(
        job_id=f"ba{index}", tasks=spec, kind=JobKind.ADHOC, arrival_slot=0
    )


def make_fleet(
    cluster: ClusterCapacity,
    n_shards: int,
    *,
    frozen_clock: bool,
    journal_dir: str | None = None,
) -> list[LocalShard]:
    """N started shards over equal capacity slices.

    ``frozen_clock`` pins the realtime clock with an hour-long slot so no
    workflow ever starts — the saturated-admission regime.  A journal per
    shard (needed by the safety phase) is written when ``journal_dir`` is
    given; fsync stays off so the disk doesn't become the variable under
    measurement.
    """
    shards = []
    for i, capacity in enumerate(slice_capacity(cluster, n_shards)):
        config = ServiceConfig(
            admission=True,
            batch_window_s=0.0,
            journal_fsync=False,
            journal_path=(
                f"{journal_dir}/shard{i}.jsonl" if journal_dir else None
            ),
            realtime=frozen_clock,
            slot_seconds=3600.0 if frozen_clock else 1.0,
        )
        shards.append(LocalShard(f"s{i}", capacity, config).start())
    return shards


def run_throughput(
    cluster: ClusterCapacity,
    n_shards: int,
    n_workflows: int,
    deadline_slot: int,
    journal_dir: str | None = None,
) -> tuple[dict, list[LocalShard], ShardRouter, list[str]]:
    """Submit the workflow stream against a frozen fleet; measure rate."""
    shards = make_fleet(
        cluster, n_shards, frozen_clock=True, journal_dir=journal_dir
    )
    router = ShardRouter(shards)
    accepted_ids: list[str] = []
    rejected = 0
    started = time.monotonic()
    for index in range(n_workflows):
        workflow = _workflow(index, deadline_slot)
        result = router.submit_workflow(workflow)  # frozen clock: slot 0
        if result.accepted:
            accepted_ids.append(workflow.workflow_id)
        else:
            rejected += 1
    elapsed = time.monotonic() - started
    summary = {
        "n_shards": n_shards,
        "submitted": n_workflows,
        "accepted": len(accepted_ids),
        "rejected": rejected,
        "elapsed_s": round(elapsed, 3),
        "submissions_per_s": round(n_workflows / elapsed, 2),
    }
    return summary, shards, router, accepted_ids


def run_quality(
    cluster: ClusterCapacity,
    n_shards: int,
    n_workflows: int,
    n_adhoc: int,
    deadline_slot: int,
) -> dict:
    """Mixed stream in virtual time, drained: the deadline outcome."""
    shards = make_fleet(cluster, n_shards, frozen_clock=False)
    try:
        router = ShardRouter(shards)
        accepted = rejected = adhoc_ok = adhoc_shed = 0
        adhoc_per_workflow = n_adhoc // max(n_workflows, 1)
        adhoc_index = 0
        for index in range(n_workflows):
            # Anchor each window at the fleet's current virtual slot so
            # every workflow faces the same *relative* deadline pressure
            # regardless of how far the racing clock has advanced — an
            # absolute deadline would make late submissions infeasible.
            now_slot = max(
                (s.status().slot for s in shards if s.alive()), default=0
            )
            result = router.submit_workflow(
                _workflow(index, deadline_slot, start_slot=now_slot + 1)
            )
            accepted += result.accepted
            rejected += not result.accepted
            for _ in range(adhoc_per_workflow):
                answer = router.submit_adhoc(_adhoc(adhoc_index))
                adhoc_index += 1
                adhoc_ok += answer.accepted
                adhoc_shed += not answer.accepted
        missed = 0
        for shard in shards:
            result = shard.drain()
            missed += sum(
                not w.met_deadline for w in result.workflows.values()
            )
    finally:
        for shard in shards:
            shard.kill()
    return {
        "n_shards": n_shards,
        "accepted_workflows": accepted,
        "rejected_workflows": rejected,
        "adhoc_accepted": adhoc_ok,
        "adhoc_shed": adhoc_shed,
        "missed_workflows": missed,
        "miss_rate": round(missed / accepted, 4) if accepted else 0.0,
    }


def run_safety(
    shards: list[LocalShard], router: ShardRouter, accepted_ids: list[str]
) -> dict:
    """Crash one shard, replay its journal, check conservation."""
    victim = shards[0]
    owned_before = len(victim.workflow_ids())
    victim.kill()
    victim.restart()
    owned_after = len(victim.workflow_ids())
    orphans = {
        name: list(entries)
        for name, entries in router.orphans_by_shard().items()
    }
    report = check_cross_shard_conservation(
        accepted_ids, router.owned_by_shard(), orphans
    )
    return {
        "killed_shard": victim.name,
        "owned_before_crash": owned_before,
        "owned_after_replay": owned_after,
        "conservation_ok": report.ok,
        "conservation": report.summary(),
        "violations": [str(v) for v in report.violations[:10]],
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced workload (CI smoke; ~4x fewer submissions)",
    )
    parser.add_argument(
        "--workflows", type=int, default=160, metavar="N",
        help="workflows in the 10x stream (default: %(default)s = 10x the "
        "16-workflow base unit)",
    )
    parser.add_argument(
        "--adhoc", type=int, default=320, metavar="N",
        help="ad-hoc jobs mixed into the quality phase (default: %(default)s)",
    )
    parser.add_argument(
        "--deadline", type=int, default=120, metavar="SLOT",
        help="absolute deadline slot for every workflow (default: %(default)s)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="--check: minimum 4-shard vs monolith aggregate throughput "
        "ratio (default: 3.0, or 1.5 under --quick — a 4x smaller "
        "committed set gives admission less state to save on)",
    )
    parser.add_argument(
        "--max-miss-delta", type=float, default=0.10, metavar="FRAC",
        help="--check: maximum relative deadline-miss-rate increase of the "
        "4-shard fleet over the monolith (default: %(default)s)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="enforce the acceptance gates (exit 1 on violation)",
    )
    parser.add_argument(
        "--out", default="BENCH_sharding.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument("--cpu", type=int, default=64, help="cluster CPU cores")
    parser.add_argument("--mem", type=int, default=128, help="cluster memory (GB)")
    args = parser.parse_args(argv)

    n_workflows = args.workflows // 4 if args.quick else args.workflows
    n_adhoc = args.adhoc // 4 if args.quick else args.adhoc
    if args.min_speedup is None:
        args.min_speedup = 1.5 if args.quick else 3.0
    cluster = ClusterCapacity.uniform(cpu=args.cpu, mem=args.mem)

    throughput: list[dict] = []
    safety: dict = {}
    for n_shards in FLEET_SIZES:
        journal_dir = (
            tempfile.mkdtemp(prefix="bench-sharding-")
            if n_shards == FLEET_SIZES[-1]
            else None
        )
        summary, shards, router, accepted_ids = run_throughput(
            cluster, n_shards, n_workflows, args.deadline, journal_dir
        )
        throughput.append(summary)
        print(
            f"[throughput] shards={n_shards} "
            f"{summary['submissions_per_s']}/s "
            f"({summary['accepted']} accepted in {summary['elapsed_s']}s)",
            flush=True,
        )
        try:
            if n_shards == FLEET_SIZES[-1]:
                safety = run_safety(shards, router, accepted_ids)
                print(
                    f"[safety] replayed {safety['owned_after_replay']} "
                    f"workflows on {safety['killed_shard']}; "
                    f"{safety['conservation']}",
                    flush=True,
                )
        finally:
            for shard in shards:
                shard.kill()

    base_rate = throughput[0]["submissions_per_s"]
    for entry in throughput:
        entry["speedup_vs_monolith"] = round(
            entry["submissions_per_s"] / base_rate, 2
        )

    quality = [
        run_quality(cluster, n, n_workflows, n_adhoc, args.deadline)
        for n in (1, FLEET_SIZES[-1])
    ]
    for entry in quality:
        print(
            f"[quality] shards={entry['n_shards']} "
            f"miss_rate={entry['miss_rate']} "
            f"({entry['missed_workflows']}/{entry['accepted_workflows']})",
            flush=True,
        )
    mono_miss, sharded_miss = (entry["miss_rate"] for entry in quality)
    # Relative increase of the sharded fleet over the monolith; a fleet
    # that misses *fewer* deadlines never fails the gate.
    miss_delta = (
        max(0.0, sharded_miss - mono_miss) / mono_miss
        if mono_miss
        else (1.0 if sharded_miss else 0.0)
    )

    report = {
        "benchmark": "sharding",
        "quick": args.quick,
        "cluster": {"cpu": args.cpu, "mem": args.mem},
        "workload": {
            "n_workflows": n_workflows,
            "n_adhoc": n_adhoc,
            "tenants": TENANTS,
            "deadline_slot": args.deadline,
        },
        "throughput": throughput,
        "quality": quality,
        "safety": safety,
        "summary": {
            "speedup_4_shards": throughput[-1]["speedup_vs_monolith"],
            "monolith_miss_rate": mono_miss,
            "sharded_miss_rate": sharded_miss,
            "relative_miss_increase": round(miss_delta, 4),
            "conservation_ok": safety.get("conservation_ok", False),
        },
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if not args.check:
        return 0
    failures = []
    if report["summary"]["speedup_4_shards"] < args.min_speedup:
        failures.append(
            f"4-shard speedup {report['summary']['speedup_4_shards']}x < "
            f"required {args.min_speedup}x"
        )
    if miss_delta > args.max_miss_delta:
        failures.append(
            f"sharded miss rate {sharded_miss} vs monolith {mono_miss} "
            f"(+{miss_delta:.0%} relative) exceeds {args.max_miss_delta:.0%}"
        )
    if not report["summary"]["conservation_ok"]:
        failures.append(f"conservation violated: {safety.get('violations')}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
