"""EXT-11 — cluster-aware vs paper-plain minimum runtimes in decomposition.

Sec. IV-B computes each node set's minimum runtime from its *jobs'* minimum
runtimes; our default adds a cluster-aware aggregate bound (a set whose
total demand exceeds the cluster needs multiple waves).

The sweep shows two things:

1. **In the feasible regime the paper's demand-proportional split already
   compensates**: the wide level's weight is proportional to its demand, so
   even the plain decomposition hands it a window close to the aggregate
   minimum — a nice property of the paper's design that this ablation
   quantifies (both variants meet everything).
2. **The aware bound is what detects infeasibility**: when the workflow
   window is smaller than the honest total minimum, the aware decomposition
   falls back to the critical-path scheme (footnote 1) while the plain one
   happily emits windows the cluster provably cannot honour.
"""

from __future__ import annotations

import pytest

from repro.core.decomposition import _set_min_runtime, decompose_deadline
from repro.core.toposort import grouped_topological_sets
from repro.model.cluster import ClusterCapacity
from repro.model.job import TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.schedulers.flowtime_sched import FlowTimeScheduler
from repro.simulator.engine import Simulation
from repro.simulator.metrics import missed_jobs
from repro.workloads.dag_generators import fork_join_workflow

CLUSTER = ClusterCapacity.uniform(cpu=32, mem=64)
SPEC = TaskSpec(count=8, duration_slots=4, demand=ResourceVector({CPU: 2, MEM: 4}))
FAN_OUT = 8  # middle level wants 8 x 8 x 2 = 128 cores on a 32-core cluster


def honest_total_min() -> int:
    skeleton = fork_join_workflow("f", FAN_OUT, 0, 1, spec_of=SPEC)
    levels = grouped_topological_sets(skeleton)
    return sum(
        _set_min_runtime(skeleton, level, CLUSTER, cluster_aware=True)
        for level in levels
    )


def middle_aggregate_min() -> int:
    skeleton = fork_join_workflow("f", FAN_OUT, 0, 1, spec_of=SPEC)
    levels = grouped_topological_sets(skeleton)
    middle = next(level for level in levels if len(level) == FAN_OUT)
    return _set_min_runtime(skeleton, middle, CLUSTER, cluster_aware=True)


def run_variant(window: int, cluster_aware: bool):
    workflow = fork_join_workflow("f", FAN_OUT, 0, window, spec_of=SPEC)
    decomposition = decompose_deadline(workflow, CLUSTER, cluster_aware=cluster_aware)
    scheduler = FlowTimeScheduler(cluster_aware_decomposition=cluster_aware)
    result = Simulation(CLUSTER, scheduler, workflows=[workflow]).run()
    assert result.finished
    missed = len(missed_jobs(result, scheduler.windows))
    return missed, decomposition


@pytest.mark.benchmark(group="ext11")
def test_ext11_cluster_aware_decomposition(benchmark):
    total_min = honest_total_min()
    feasible_window = int(total_min * 1.2)
    infeasible_window = int(total_min * 0.8)

    def run_all():
        return (
            run_variant(feasible_window, True),
            run_variant(feasible_window, False),
            run_variant(infeasible_window, True),
            run_variant(infeasible_window, False),
        )

    (
        (aware_ok_missed, aware_ok),
        (naive_ok_missed, naive_ok),
        (aware_tight_missed, aware_tight),
        (naive_tight_missed, naive_tight),
    ) = benchmark.pedantic(run_all, rounds=1, iterations=1)

    middle = "f-j1"
    print(
        f"\nEXT-11 (fan-out {FAN_OUT}, 32 cores, honest minimum {total_min} slots)"
    )
    print(
        f"  feasible window ({feasible_window}): aware missed={aware_ok_missed} "
        f"mid={aware_ok.windows[middle].length_slots} | plain "
        f"missed={naive_ok_missed} mid={naive_ok.windows[middle].length_slots}"
    )
    print(
        f"  infeasible window ({infeasible_window}): aware fallback="
        f"{aware_tight.used_fallback} missed={aware_tight_missed} | plain "
        f"fallback={naive_tight.used_fallback} missed={naive_tight_missed}"
    )

    # (1) Feasible regime: the demand-proportional split keeps even the
    # plain variant at or above the aggregate minimum, and both meet all.
    agg_min = middle_aggregate_min()
    assert aware_ok.windows[middle].length_slots >= agg_min
    assert naive_ok.windows[middle].length_slots >= agg_min - 1
    assert aware_ok_missed == 0 and naive_ok_missed == 0
    # (2) Infeasible regime: only the aware variant *detects* it and takes
    # the paper's critical-path fallback.
    assert aware_tight.used_fallback
    assert not naive_tight.used_fallback
    # Either way the window is impossible, so misses occur in both.
    assert aware_tight_missed > 0 and naive_tight_missed > 0
