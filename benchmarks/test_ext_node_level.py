"""EXT-10 — aggregate model vs node-level placement (fragmentation).

The paper's formulation (and our default engine) treats capacity as one
pool ``C_t^r``; a real cluster is machines, and multi-core tasks fragment.
This bench runs the same mixed workload twice — aggregate and node-level
(8-core nodes, 2-3-core tasks) — and reports what fragmentation costs:
wasted grant units, deadline misses, and ad-hoc turnaround.

Shape expectation: fragmentation waste is non-zero but small (best-fit
packing of 2-3-core tasks on 8-core nodes loses a few percent), and with
loose deadlines FlowTime's re-planning absorbs it without new misses.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import canonical_windows
from repro.schedulers.registry import make_scheduler
from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.metrics import (
    adhoc_turnaround_seconds,
    missed_jobs,
)
from repro.simulator.nodes import NodeCluster
from repro.workloads.traces import generate_trace

N_NODES = 16


def run_study():
    nodes = NodeCluster.uniform(N_NODES, cpu=4, mem=8)
    capacity = nodes.as_capacity()
    trace = generate_trace(
        n_workflows=3,
        jobs_per_workflow=10,
        n_adhoc=20,
        capacity=capacity,
        looseness=(4.0, 8.0),
        adhoc_rate_per_slot=0.5,
        workflow_spread_slots=40,
        seed=15,
    )
    windows = canonical_windows(trace, capacity)
    out = {}
    for mode, node_cluster in (("aggregate", None), ("node-level", nodes)):
        scheduler = make_scheduler("FlowTime")
        result = Simulation(
            capacity,
            scheduler,
            workflows=trace.workflows,
            adhoc_jobs=trace.adhoc_jobs,
            config=SimulationConfig(node_cluster=node_cluster, max_slots=20_000),
        ).run()
        assert result.finished, mode
        out[mode] = {
            "missed": len(missed_jobs(result, windows)),
            "turnaround": adhoc_turnaround_seconds(result),
            "waste": result.fragmentation_waste_units,
            "slots": result.n_slots,
        }
    return out


@pytest.mark.benchmark(group="ext10")
def test_ext10_node_level_placement(benchmark):
    out = benchmark.pedantic(run_study, rounds=1, iterations=1)
    print(f"\nEXT-10 (FlowTime on {N_NODES} x 4-core nodes vs one aggregate pool)")
    for mode, stats in out.items():
        print(
            f"  {mode:<11} missed={stats['missed']} "
            f"turnaround={stats['turnaround']:.1f}s "
            f"fragmentation_waste={stats['waste']} units "
            f"({stats['slots']} slots)"
        )
    # The aggregate run wastes nothing by construction.
    assert out["aggregate"]["waste"] == 0
    # Node-level placement is a strict subset of the aggregate grant, so a
    # loose-deadline workload still meets everything...
    assert out["node-level"]["missed"] == out["aggregate"]["missed"] == 0
    # ...and the run takes at least as long end to end.
    assert out["node-level"]["slots"] >= out["aggregate"]["slots"]
