"""Plan-latency trajectory benchmark for the incremental re-planning layer.

FlowTime re-solves its lexicographic-minimax LP on every event that changes
the deadline-job mix, and the paper identifies LP latency as the scalability
bottleneck (Fig. 7).  The recurring workloads it targets (Sec. I: "daily,
weekly or monthly") make most of those solves *repeats*: once workflow
instance ``i`` has been planned, instance ``i+1`` presents the planner with
the same demands shifted in time.  This harness measures what the plan
cache and warm-started lexmin buy on exactly that steady-state regime.

For each workload scale it runs the identical recurring trace three times:

* ``cached``   — default planner (plan cache + warm start on),
* ``no-cache`` — ``plan_cache=False`` (the ``repro run --no-plan-cache``
  ablation; warm start still on),
* ``cold``     — ``plan_cache=False, warm_start=False`` (the pre-1.2
  behaviour: every replan runs the full lexmin ladder).

and records ``sched.plan`` / ``lp.solve`` latency percentiles, LP solve
counts, cache hit rates, and the end-to-end metrics (missed deadlines,
slots) so plan equivalence across modes is visible in the artifact.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_plan_latency.py --quick

Writes ``BENCH_plan_latency.json`` (see ``--out``) and exits non-zero if
the steady-state cache hit rate falls below ``--min-hit-rate``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.experiments import run_one
from repro.model.cluster import ClusterCapacity
from repro.simulator.engine import SimulationConfig
from repro.model.job import TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.workloads.dag_generators import chain_workflow, fork_join_workflow
from repro.workloads.recurring import RecurringWorkflow
from repro.workloads.traces import SyntheticTrace

#: The three planner configurations compared at every scale.
MODES: dict[str, dict] = {
    "cached": {},
    "no-cache": {"plan_cache": False},
    "cold": {"plan_cache": False, "warm_start": False},
}


@dataclass(frozen=True)
class Scale:
    """One steady-state recurring workload size."""

    name: str
    #: (kind, n_jobs_knob, task_spec) per recurring template; all templates
    #: share one period so the combined demand pattern recurs exactly.
    templates: tuple[tuple[str, int, TaskSpec], ...]
    instances: int
    window_slots: int
    period_slots: int
    #: Planner modes compared at this scale (the xlarge scenario drops the
    #: cold mode: a full-ladder replan per event at that size is pointless
    #: to measure and multiplies the runtime).
    modes: tuple[str, ...] = ("cached", "no-cache", "cold")


def _spec(count: int, duration: int, cpu: int, mem: int) -> TaskSpec:
    return TaskSpec(
        count=count,
        duration_slots=duration,
        demand=ResourceVector({CPU: cpu, MEM: mem}),
    )


SCALES: tuple[Scale, ...] = (
    Scale(
        name="small",
        templates=(
            ("chain", 3, _spec(6, 2, 2, 4)),
            ("fork_join", 3, _spec(4, 2, 2, 4)),
        ),
        instances=4,
        window_slots=18,
        period_slots=24,
    ),
    Scale(
        name="medium",
        templates=(
            ("chain", 4, _spec(8, 2, 2, 4)),
            ("fork_join", 4, _spec(6, 2, 2, 4)),
            ("chain", 2, _spec(10, 3, 2, 2)),
        ),
        instances=5,
        window_slots=24,
        period_slots=30,
    ),
    Scale(
        name="large",
        templates=(
            ("chain", 5, _spec(8, 2, 2, 4)),
            ("fork_join", 6, _spec(6, 2, 2, 4)),
            ("chain", 3, _spec(12, 3, 2, 2)),
            ("fork_join", 4, _spec(8, 2, 1, 2)),
        ),
        instances=6,
        window_slots=30,
        period_slots=36,
    ),
)


def _cpu_spec(count: int, duration: int, cpu: int) -> TaskSpec:
    return TaskSpec(
        count=count,
        duration_slots=duration,
        demand=ResourceVector({CPU: cpu}),
    )


def xlarge_scale() -> Scale:
    """The thousands-of-workflows scenario (opt-in via ``--xlarge``).

    32 distinct templates stamped out 32 times each: 1024 workflows, with
    a whole template generation live concurrently every period.  Demands
    are cpu-only, which keeps every lexmin round subproblem inside the
    interval-structured class — run with ``--lp-backend fastsolve`` to
    measure what the combinatorial solver buys end to end at a scale where
    the general-purpose LP path dominates plan latency.
    """
    templates = tuple(
        (
            "chain" if index % 2 == 0 else "fork_join",
            3 + index % 3,
            _cpu_spec(3 + index % 2, 1 + index % 2, 1 + index % 2),
        )
        for index in range(32)
    )
    return Scale(
        name="xlarge",
        templates=templates,
        instances=32,
        window_slots=24,
        period_slots=30,
        modes=("cached", "no-cache"),
    )


def build_trace(scale: Scale) -> SyntheticTrace:
    """The steady-state recurring workload for one scale.

    Every template is anchored at slot 0 and stamped out ``instances``
    times with a shared period longer than the deadline window, so
    occurrences never overlap their predecessors and each period presents
    the planner with a time-shifted copy of the same demand set.  No
    ad-hoc stream: ad-hoc arrivals are Poisson and would perturb the
    deadline jobs' progress differently per period, turning exact repeats
    into near-repeats (that regime is what warm starts are for; the cache
    targets the exact one).
    """
    workflows = []
    for index, (kind, size, spec) in enumerate(scale.templates):
        wid = f"{scale.name}-t{index}"
        if kind == "chain":
            skeleton = chain_workflow(wid, size, 0, scale.window_slots, spec)
        elif kind == "fork_join":
            skeleton = fork_join_workflow(
                wid, size, 0, scale.window_slots, spec
            )
        else:
            raise ValueError(f"unknown template kind {kind!r}")
        recurring = RecurringWorkflow(skeleton, scale.period_slots)
        workflows.extend(recurring.instances(scale.instances))
    return SyntheticTrace(workflows=tuple(workflows), adhoc_jobs=())


def _histogram(stats) -> dict:
    if stats is None:
        return {"count": 0, "p50_ms": 0.0, "p95_ms": 0.0, "total_ms": 0.0}
    return {
        "count": int(stats.get("count", 0)),
        "p50_ms": round(stats.get("p50", 0.0) * 1e3, 4),
        "p95_ms": round(stats.get("p95", 0.0) * 1e3, 4),
        "total_ms": round(stats.get("sum", 0.0) * 1e3, 4),
    }


def run_scale(
    scale: Scale,
    capacity: ClusterCapacity,
    lp_backend: str | None = None,
) -> dict:
    """Run the scale's modes over its trace and collect the comparison."""
    trace = build_trace(scale)
    runs: dict[str, dict] = {}
    for mode in scale.modes:
        outcome = run_one(
            "FlowTime",
            trace,
            capacity,
            config=SimulationConfig(lp_backend=lp_backend),
            # work_conserving soak depends on leftover capacity, which an
            # ad-hoc-free steady state keeps periodic anyway; disabling it
            # removes the one coupling that could differ across modes.
            scheduler_kwargs={
                "planner": MODES[mode],
                "work_conserving": False,
            },
        )
        result = outcome.result
        hits = result.counter_value("sched.plan.cache.hit")
        misses = result.counter_value("sched.plan.cache.miss")
        lookups = hits + misses
        runs[mode] = {
            "sched_plan": _histogram(result.phase_stats("sched.plan")),
            "lp_solve": _histogram(result.phase_stats("lp.solve")),
            "cache": {
                "hits": int(hits),
                "misses": int(misses),
                "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
                "warm_solves": int(result.counter_value("sched.plan.warm")),
                "warm_fallbacks": int(
                    result.counter_value("lexmin.warm.fallback")
                ),
            },
            "outcome": {
                "n_slots": result.n_slots,
                "finished": result.finished,
                "missed_jobs": outcome.n_missed_jobs,
                "missed_workflows": outcome.n_missed_workflows,
            },
        }
    cached_p50 = runs["cached"]["sched_plan"]["p50_ms"]
    baseline_p50 = runs["no-cache"]["sched_plan"]["p50_ms"]
    outcomes = [run["outcome"] for run in runs.values()]
    return {
        "scale": scale.name,
        "lp_backend": lp_backend or "default",
        "n_workflows": len(trace.workflows),
        "n_deadline_jobs": trace.n_deadline_jobs,
        "period_slots": scale.period_slots,
        "instances": scale.instances,
        "runs": runs,
        "p50_speedup_vs_no_cache": (
            round(baseline_p50 / cached_p50, 2) if cached_p50 else None
        ),
        "hit_rate": runs["cached"]["cache"]["hit_rate"],
        # identical deadline outcomes across all three modes = the cache
        # and warm start changed latency, not the plan
        "modes_equivalent": all(o == outcomes[0] for o in outcomes),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the small scale only (CI smoke mode)",
    )
    parser.add_argument(
        "--xlarge",
        action="store_true",
        help="also run the opt-in thousands-of-workflows scenario (long; "
        "pair with --lp-backend fastsolve to measure the flow path)",
    )
    parser.add_argument(
        "--lp-backend",
        default=None,
        metavar="NAME",
        help="planner LP backend for every run (default: the registry "
        "default; e.g. fastsolve)",
    )
    parser.add_argument(
        "--min-hit-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="fail (exit 1) if the steady-state cache hit rate at any "
        "scale is below RATE (e.g. 0.5)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_plan_latency.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument("--cpu", type=int, default=64, help="cluster CPU cores")
    parser.add_argument("--mem", type=int, default=128, help="cluster memory (GB)")
    args = parser.parse_args(argv)

    capacity = ClusterCapacity.uniform(cpu=args.cpu, mem=args.mem)
    scales = SCALES[:1] if args.quick else SCALES
    if args.xlarge:
        scales = tuple(scales) + (xlarge_scale(),)
    scenarios = []
    for scale in scales:
        print(f"[{scale.name}] running {', '.join(scale.modes)} ...", flush=True)
        scenario = run_scale(scale, capacity, lp_backend=args.lp_backend)
        scenarios.append(scenario)
        print(
            f"[{scale.name}] hit_rate={scenario['hit_rate']:.0%} "
            f"p50 speedup vs no-cache={scenario['p50_speedup_vs_no_cache']}x "
            f"equivalent={scenario['modes_equivalent']}",
            flush=True,
        )

    speedups = [
        s["p50_speedup_vs_no_cache"]
        for s in scenarios
        if s["p50_speedup_vs_no_cache"] is not None
    ]
    report = {
        "benchmark": "plan_latency",
        "quick": args.quick,
        "lp_backend": args.lp_backend or "default",
        "cluster": {"cpu": args.cpu, "mem": args.mem},
        "scenarios": scenarios,
        "summary": {
            "min_hit_rate": min(s["hit_rate"] for s in scenarios),
            "min_p50_speedup_vs_no_cache": min(speedups) if speedups else None,
            "all_modes_equivalent": all(
                s["modes_equivalent"] for s in scenarios
            ),
        },
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if args.min_hit_rate is not None:
        worst = report["summary"]["min_hit_rate"]
        if worst < args.min_hit_rate:
            print(
                f"FAIL: steady-state cache hit rate {worst:.0%} < "
                f"required {args.min_hit_rate:.0%}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
