"""EXT-1 — robustness to estimation errors (Sec. III desired feature).

The corresponding evaluation page is missing from the available scan, so
this bench reconstructs the experiment from the paper's description: the
estimates come from prior runs, "both underestimations or overestimations
are possible", and the dynamic re-planning loop should absorb them.

We sweep a deterministic multiplicative duration error (true = estimate x
factor) on the Fig. 4 workload and report miss counts and ad-hoc turnaround
for the full FlowTime configuration.  Expectation: overestimation
(factor < 1) is harmless, and moderate underestimation is absorbed by
re-planning — misses only appear once the extra (unplanned) work starts to
genuinely exceed what the windows can hold.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_one
from repro.analysis.reporting import format_series
from repro.estimation.errors import ErrorModel, apply_workflow_estimation_errors
from repro.workloads.traces import SyntheticTrace

from benchmarks.conftest import build_mixed_cluster_setup

FACTORS = (0.5, 0.8, 1.0, 1.1, 1.3, 1.5)


def run_sweep():
    setup = build_mixed_cluster_setup()
    misses = []
    turnarounds = []
    for factor in FACTORS:
        workflows = tuple(
            apply_workflow_estimation_errors(
                wf, ErrorModel(low=factor, high=factor), seed=i
            )
            for i, wf in enumerate(setup.trace.workflows)
        )
        trace = SyntheticTrace(
            workflows=workflows, adhoc_jobs=setup.trace.adhoc_jobs
        )
        outcome = run_one("FlowTime", trace, setup.cluster)
        assert outcome.result.finished
        misses.append(outcome.n_missed_jobs)
        turnarounds.append(outcome.adhoc_turnaround_s)
    return misses, turnarounds


@pytest.mark.benchmark(group="ext1")
def test_ext1_estimation_error_sweep(benchmark):
    misses, turnarounds = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print(
        "\n"
        + format_series(
            "EXT-1: FlowTime vs estimation error (true = estimate x factor)",
            FACTORS,
            {"jobs_missed": misses, "adhoc_turnaround_s": turnarounds},
            x_label="factor",
            fmt="{:.1f}",
        )
    )
    by_factor = dict(zip(FACTORS, misses))
    # Overestimation and exact estimates never cause misses.
    assert by_factor[0.5] == 0
    assert by_factor[0.8] == 0
    assert by_factor[1.0] == 0
    # Moderate underestimation is absorbed by the dynamic re-plan loop.
    assert by_factor[1.1] == 0
    # Beyond that the extra (never planned for) work genuinely exceeds what
    # the windows can hold; misses appear and grow monotonically with the
    # error, but the system keeps running rather than collapsing.
    assert all(a <= b for a, b in zip(misses, misses[1:]))
    # Ad-hoc turnaround stays essentially flat across the whole sweep: the
    # deadline-work skyline absorbs the error, not the ad-hoc jobs.
    assert max(turnarounds) <= 2 * min(turnarounds) + 30.0
