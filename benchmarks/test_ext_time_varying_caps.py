"""EXT-5 — time-varying resource caps (constraint (4) of the paper).

"The resource cap could vary with time to provide more flexibility to
different situations."  This bench carves a maintenance dip out of the
cluster (capacity drops to a quarter for a stretch of slots) underneath a
deadline workload whose window spans the dip, and checks:

* the engine enforces the reduced caps in every slot, for every scheduler;
* FlowTime — whose LP sees the whole future capacity skyline — still meets
  every deadline by shifting work around the dip;
* deadline-oblivious sharing (Fair) does not, because it burns the pre-dip
  capacity on fair shares instead of banking deadline work.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import run_comparison
from repro.analysis.reporting import format_comparison_table
from repro.model.cluster import ClusterCapacity
from repro.model.job import TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.workloads.arrivals import adhoc_stream
from repro.workloads.dag_generators import chain_workflow
from repro.workloads.traces import SyntheticTrace

DIP_SLOTS = range(18, 36)


def dip_cluster() -> ClusterCapacity:
    base = ResourceVector({CPU: 64, MEM: 128})
    low = ResourceVector({CPU: 16, MEM: 32})
    return ClusterCapacity(base=base, overrides={s: low for s in DIP_SLOTS})


def dip_workload():
    """Two chains whose windows span the dip; the deadline work only fits
    when most of it is banked outside the dip, and a steady ad-hoc stream
    competes for exactly that pre-dip capacity."""
    spec = TaskSpec(count=16, duration_slots=10, demand=ResourceVector({CPU: 2, MEM: 4}))
    workflows = []
    for i in range(2):
        workflows.append(
            chain_workflow(f"wf{i}", 2, i * 4, 52 + i * 4, spec_of=spec)
        )
    adhoc = adhoc_stream(20, rate_per_slot=0.8, horizon_slots=52, seed=5)
    return SyntheticTrace(workflows=tuple(workflows), adhoc_jobs=tuple(adhoc))


@pytest.mark.benchmark(group="ext5")
def test_ext5_time_varying_caps(benchmark):
    cluster = dip_cluster()
    trace = dip_workload()
    comparison = benchmark.pedantic(
        run_comparison,
        args=(trace, cluster, ("FlowTime", "EDF", "Fair")),
        rounds=1,
        iterations=1,
    )
    print("\nEXT-5 (capacity dips to 16/64 cores in slots 18-35)")
    print(format_comparison_table(comparison))

    for outcome in comparison.outcomes:
        result = outcome.result
        assert result.finished, outcome.name
        # The engine held every slot to the (possibly reduced) cap.
        for slot in range(result.n_slots):
            cap = cluster.at(slot)
            for r, name in enumerate(result.resources):
                assert result.usage[slot, r] <= cap[name] + 1e-9, (
                    f"{outcome.name} used {result.usage[slot, r]} {name} "
                    f"in slot {slot} (cap {cap[name]})"
                )

    flowtime = comparison.outcome("FlowTime")
    assert flowtime.n_missed_jobs == 0
    assert flowtime.n_missed_workflows == 0
    # Fair, which cannot anticipate the dip, loses deadline work to fair
    # shares before it and misses.
    assert comparison.outcome("Fair").n_missed_jobs >= 1
    # And FlowTime still beats EDF on ad-hoc turnaround by a wide margin.
    assert flowtime.adhoc_turnaround_s < comparison.outcome("EDF").adhoc_turnaround_s / 3
