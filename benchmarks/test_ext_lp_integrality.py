"""EXT-3 — Lemma 2 in practice: LP integrality and repair distance.

The paper's Lemma 2 argues the constraint matrix is totally unimodular, so
an LP solver returns integral vertex optima and the ILP can be solved as an
LP.  This bench measures that empirically:

* **paper formulation, fixed caps** — random instances solved with a plain
  LP (integral caps, no theta variable): vertex solutions should be
  integral essentially always (the TU case the Lemma covers);
* **full lexmin pipeline** — the iterative minimax introduces fractional
  frozen caps (theta* C), so solutions can be fractional; we measure how
  far they are from integral and confirm the quantiser always repairs them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.allocation import quantize_coupled
from repro.core.lexmin import lexmin_schedule
from repro.core.lp_formulation import ScheduleEntry, build_schedule_problem
from repro.lp.problem import LinearProgram
from repro.lp.solver import solve_lp
from repro.lp.unimodular import max_fractionality
from repro.model.resources import CPU, MEM, ResourceVector

RES = (CPU, MEM)
N_INSTANCES = 20


def random_instance(seed: int):
    rng = np.random.default_rng(seed)
    entries = []
    for i in range(6):
        release = int(rng.integers(0, 4))
        length = int(rng.integers(2, 6))
        parallel = int(rng.integers(2, 5))
        units = int(rng.integers(1, length * parallel + 1))
        entries.append(
            ScheduleEntry(
                job_id=f"j{i}",
                release=release,
                deadline=release + length,
                units=units,
                unit_demand=ResourceVector(
                    {CPU: int(rng.integers(1, 3)), MEM: int(rng.integers(1, 4))}
                ),
                max_parallel=parallel,
            )
        )
    horizon = max(e.deadline for e in entries)
    caps = np.zeros((horizon, 2))
    caps[:, 0], caps[:, 1] = 40, 80
    return entries, caps


def paper_lp_fractionality(seed: int) -> float | None:
    """Solve the paper formulation with *integral* caps; return the max
    fractionality of the vertex solution (None when infeasible)."""
    entries, caps = random_instance(seed)
    problem = build_schedule_problem(entries, caps, RES, mode="paper")
    cap_rows = np.array(
        [problem.cap_of_cell(k) for k in range(len(problem.util_cells))]
    )
    # min total load under integral caps: TU matrix + integral rhs.
    lp = LinearProgram(
        c=np.ones(problem.n_vars),
        a_ub=problem.a_util,
        b_ub=cap_rows,
        a_eq=problem.a_eq,
        b_eq=problem.b_eq,
        lb=np.zeros(problem.n_vars),
        ub=problem.var_ub,
    )
    sol = solve_lp(lp)
    if not sol.is_optimal:
        return None
    return max_fractionality(sol.x)


def run_study():
    tu_fractionalities = []
    lexmin_fractionalities = []
    repaired = 0
    attempted = 0
    for seed in range(N_INSTANCES):
        frac = paper_lp_fractionality(seed)
        if frac is not None:
            tu_fractionalities.append(frac)
        entries, caps = random_instance(seed)
        problem = build_schedule_problem(entries, caps, RES, mode="coupled")
        result = lexmin_schedule(problem, max_rounds=3)
        if result.is_optimal:
            attempted += 1
            lexmin_fractionalities.append(max_fractionality(result.x))
            grants = quantize_coupled(problem, result.x)
            if all(
                grants[e.job_id].sum() == e.units for e in problem.entries
            ):
                repaired += 1
    return tu_fractionalities, lexmin_fractionalities, repaired, attempted


@pytest.mark.benchmark(group="ext3")
def test_ext3_lp_integrality(benchmark):
    tu_frac, lex_frac, repaired, attempted = benchmark.pedantic(
        run_study, rounds=1, iterations=1
    )
    print(
        f"\nEXT-3: paper-LP vertex max fractionality: "
        f"max={max(tu_frac):.2e} over {len(tu_frac)} instances"
    )
    print(
        f"EXT-3: lexmin-pipeline max fractionality: "
        f"max={max(lex_frac):.3f}, quantiser exact on {repaired}/{attempted}"
    )
    # Lemma 2: the paper formulation with integral rhs gives integral
    # vertex optima (up to solver tolerance).
    assert max(tu_frac) < 1e-6
    # The full pipeline may be fractional, but repair is always exact.
    assert attempted > 0
    assert repaired == attempted
