"""Workflows: DAGs of inter-dependent jobs with a start time and a deadline.

The paper (Sec. II-A) writes a workflow as ``W_i = {Q_i, ws_i, wd_i, P_i}``
where ``Q_i`` is the job set, ``ws_i``/``wd_i`` the start and deadline, and
``P_i`` the dependency sets (``P_i^j`` = jobs that depend on job ``j``).  Here
dependencies are stored as explicit parent->child edges; :meth:`dependents_of`
recovers the ``P_i^j`` view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.model.job import Job, JobKind


class WorkflowValidationError(ValueError):
    """Raised when a workflow's jobs or edges are inconsistent."""


@dataclass(frozen=True)
class Workflow:
    """An immutable workflow DAG.

    Attributes:
        workflow_id: unique identifier.
        jobs: the constituent jobs (all ``JobKind.DEADLINE``, all tagged with
            this workflow's id).
        edges: ``(parent_id, child_id)`` dependency pairs; the child may only
            start after the parent completes.
        start_slot: the workflow's submission/start slot (``ws_i``).
        deadline_slot: the workflow's deadline (``wd_i``), exclusive — all
            work must be done in slots ``< deadline_slot``.
    """

    workflow_id: str
    jobs: tuple[Job, ...]
    edges: tuple[tuple[str, str], ...]
    start_slot: int
    deadline_slot: int
    name: str = ""
    _children: Mapping[str, tuple[str, ...]] = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )
    _parents: Mapping[str, tuple[str, ...]] = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        if not self.workflow_id:
            raise WorkflowValidationError("workflow_id must be non-empty")
        if self.start_slot < 0:
            raise WorkflowValidationError("start_slot must be >= 0")
        if self.deadline_slot <= self.start_slot:
            raise WorkflowValidationError(
                f"deadline_slot ({self.deadline_slot}) must be after "
                f"start_slot ({self.start_slot})"
            )
        if not self.jobs:
            raise WorkflowValidationError("a workflow needs at least one job")

        ids = [job.job_id for job in self.jobs]
        if len(set(ids)) != len(ids):
            raise WorkflowValidationError("duplicate job ids in workflow")
        id_set = set(ids)
        for job in self.jobs:
            if job.kind is not JobKind.DEADLINE:
                raise WorkflowValidationError(
                    f"job {job.job_id} is not a DEADLINE job"
                )
            if job.workflow_id != self.workflow_id:
                raise WorkflowValidationError(
                    f"job {job.job_id} is tagged workflow_id={job.workflow_id!r}, "
                    f"expected {self.workflow_id!r}"
                )

        children: dict[str, list[str]] = {job_id: [] for job_id in ids}
        parents: dict[str, list[str]] = {job_id: [] for job_id in ids}
        seen_edges: set[tuple[str, str]] = set()
        for parent, child in self.edges:
            if parent not in id_set or child not in id_set:
                raise WorkflowValidationError(
                    f"edge ({parent!r}, {child!r}) references unknown jobs"
                )
            if parent == child:
                raise WorkflowValidationError(f"self-loop on job {parent!r}")
            if (parent, child) in seen_edges:
                raise WorkflowValidationError(
                    f"duplicate edge ({parent!r}, {child!r})"
                )
            seen_edges.add((parent, child))
            children[parent].append(child)
            parents[child].append(parent)

        object.__setattr__(
            self, "_children", {k: tuple(v) for k, v in children.items()}
        )
        object.__setattr__(
            self, "_parents", {k: tuple(v) for k, v in parents.items()}
        )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        indegree = {job_id: len(self._parents[job_id]) for job_id in self._parents}
        frontier = [job_id for job_id, deg in indegree.items() if deg == 0]
        visited = 0
        while frontier:
            node = frontier.pop()
            visited += 1
            for child in self._children[node]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    frontier.append(child)
        if visited != len(self.jobs):
            raise WorkflowValidationError(
                f"workflow {self.workflow_id} contains a dependency cycle"
            )

    # -- queries -------------------------------------------------------------

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __len__(self) -> int:
        return len(self.jobs)

    def job(self, job_id: str) -> Job:
        for job in self.jobs:
            if job.job_id == job_id:
                return job
        raise KeyError(job_id)

    @property
    def job_ids(self) -> tuple[str, ...]:
        return tuple(job.job_id for job in self.jobs)

    @property
    def window_slots(self) -> int:
        """Length of the scheduling window (``wd_i - ws_i``)."""
        return self.deadline_slot - self.start_slot

    def parents_of(self, job_id: str) -> tuple[str, ...]:
        """Jobs that must complete before *job_id* may start."""
        return self._parents[job_id]

    def dependents_of(self, job_id: str) -> tuple[str, ...]:
        """The paper's ``P_i^j``: jobs that depend on *job_id*."""
        return self._children[job_id]

    def roots(self) -> tuple[str, ...]:
        return tuple(j for j in self.job_ids if not self._parents[j])

    def sinks(self) -> tuple[str, ...]:
        return tuple(j for j in self.job_ids if not self._children[j])

    # -- construction helpers --------------------------------------------------

    @staticmethod
    def from_jobs(
        workflow_id: str,
        jobs: Iterable[Job],
        edges: Iterable[Sequence[str]],
        start_slot: int,
        deadline_slot: int,
        name: str = "",
    ) -> "Workflow":
        """Build a workflow from any iterables (normalises to tuples)."""
        return Workflow(
            workflow_id=workflow_id,
            jobs=tuple(jobs),
            edges=tuple((str(p), str(c)) for p, c in edges),
            start_slot=start_slot,
            deadline_slot=deadline_slot,
            name=name,
        )
