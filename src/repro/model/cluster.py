"""Cluster capacity, possibly varying over time.

The paper's constraint (4) uses a per-slot resource cap ``C_t^r`` ("the
resource cap could vary with time to provide more flexibility"): a slice of
the cluster may be carved out for other tenants in some slots.
:class:`ClusterCapacity` models a base capacity plus sparse per-slot
overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.model.resources import ResourceVector


@dataclass(frozen=True)
class ClusterCapacity:
    """Time-varying multi-resource capacity.

    Attributes:
        base: capacity in every slot without an override.
        overrides: sparse map ``slot -> capacity`` for slots whose cap
            differs from :attr:`base` (e.g. a maintenance window).
    """

    base: ResourceVector
    overrides: Mapping[int, ResourceVector] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.base.is_zero():
            raise ValueError("cluster base capacity must not be zero")
        for slot, cap in self.overrides.items():
            if slot < 0:
                raise ValueError(f"override slot must be >= 0, got {slot}")
            for resource in cap:
                if resource not in self.base:
                    raise ValueError(
                        f"override at slot {slot} introduces unknown resource "
                        f"{resource!r}"
                    )

    @property
    def resources(self) -> tuple[str, ...]:
        """The resource types this cluster offers, in sorted order."""
        return tuple(sorted(self.base))

    def at(self, slot: int) -> ResourceVector:
        """Capacity ``C_t`` in the given slot."""
        return self.overrides.get(slot, self.base)

    def amount(self, slot: int, resource: str) -> int:
        """The paper's ``C_t^r``."""
        return self.at(slot)[resource]

    @staticmethod
    def uniform(**amounts: int) -> "ClusterCapacity":
        """Convenience: a cluster whose capacity never changes.

        >>> ClusterCapacity.uniform(cpu=500, mem=1024).amount(7, "cpu")
        500
        """
        return ClusterCapacity(base=ResourceVector(amounts))
