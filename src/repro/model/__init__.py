"""Workload and cluster model shared by every scheduler in the library.

This package defines the vocabulary of the FlowTime paper's system model
(Sec. II): multi-resource vectors, tasks, jobs, workflows (DAGs of jobs with a
start time and a deadline), time-varying cluster capacity, and the event types
the simulator emits.
"""

from repro.model.cluster import ClusterCapacity
from repro.model.events import (
    Event,
    EventKind,
    JobArrived,
    JobCompleted,
    JobReady,
    JobSetback,
    WorkflowArrived,
    WorkflowCompleted,
)
from repro.model.job import Job, JobKind, TaskSpec
from repro.model.resources import CPU, MEM, ResourceVector
from repro.model.workflow import Workflow, WorkflowValidationError

__all__ = [
    "CPU",
    "MEM",
    "ClusterCapacity",
    "Event",
    "EventKind",
    "Job",
    "JobArrived",
    "JobCompleted",
    "JobKind",
    "JobReady",
    "JobSetback",
    "ResourceVector",
    "TaskSpec",
    "Workflow",
    "WorkflowArrived",
    "WorkflowCompleted",
    "WorkflowValidationError",
]
