"""Multi-resource quantities.

The paper schedules an arbitrary set of resource types ``R`` (the YARN
deployment used CPU cores and memory).  :class:`ResourceVector` is an
immutable mapping from resource name to a non-negative integer amount with
the elementwise arithmetic the schedulers need.

Amounts are integers throughout, matching the paper's constraint (5)
(``x_it^r ∈ N_0``): YARN allocates whole cores and whole MB of memory.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from typing import Union

#: Canonical resource names used by the built-in workload generators.
CPU = "cpu"
MEM = "mem"

_Number = Union[int, float]


class ResourceVector(Mapping[str, int]):
    """An immutable, hashable vector of per-resource integer amounts.

    Missing resources are treated as zero, so vectors over different
    resource sets combine naturally::

        >>> a = ResourceVector(cpu=4, mem=8)
        >>> b = ResourceVector(cpu=1)
        >>> (a + b)[CPU], (a + b)[MEM]
        (5, 8)
    """

    __slots__ = ("_amounts",)

    def __init__(self, amounts: Mapping[str, _Number] | None = None, **kwargs: _Number):
        merged: dict[str, int] = {}
        for source in (amounts or {}), kwargs:
            for name, value in source.items():
                ivalue = int(value)
                if ivalue != value:
                    raise ValueError(
                        f"resource amounts must be integral, got {name}={value!r}"
                    )
                if ivalue < 0:
                    raise ValueError(
                        f"resource amounts must be non-negative, got {name}={value!r}"
                    )
                merged[name] = merged.get(name, 0) + ivalue
        # Drop explicit zeros so equality/hash ignore them.
        object.__setattr__(
            self, "_amounts", tuple(sorted((k, v) for k, v in merged.items() if v))
        )

    # -- Mapping protocol --------------------------------------------------

    def __getitem__(self, name: str) -> int:
        for key, value in self._amounts:
            if key == name:
                return value
        return 0

    def __iter__(self) -> Iterator[str]:
        return (key for key, _ in self._amounts)

    def __len__(self) -> int:
        return len(self._amounts)

    def __contains__(self, name: object) -> bool:
        return any(key == name for key, _ in self._amounts)

    # -- identity ----------------------------------------------------------

    def __hash__(self) -> int:
        return hash(self._amounts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ResourceVector):
            return self._amounts == other._amounts
        if isinstance(other, Mapping):
            return self == ResourceVector(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self._amounts)
        return f"ResourceVector({inner})"

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ResourceVector is immutable")

    # -- arithmetic ----------------------------------------------------------

    def _binary(self, other: Mapping[str, _Number], op) -> "ResourceVector":
        other_vec = other if isinstance(other, ResourceVector) else ResourceVector(other)
        names = set(self) | set(other_vec)
        return ResourceVector({n: op(self[n], other_vec[n]) for n in names})

    def __add__(self, other: Mapping[str, _Number]) -> "ResourceVector":
        return self._binary(other, lambda a, b: a + b)

    def __sub__(self, other: Mapping[str, _Number]) -> "ResourceVector":
        return self._binary(other, lambda a, b: a - b)

    def __mul__(self, factor: int) -> "ResourceVector":
        if not isinstance(factor, int):
            raise TypeError("ResourceVector can only be scaled by an int")
        return ResourceVector({n: v * factor for n, v in self.items()})

    __rmul__ = __mul__

    def saturating_sub(self, other: Mapping[str, _Number]) -> "ResourceVector":
        """Elementwise ``max(self - other, 0)``."""
        other_vec = other if isinstance(other, ResourceVector) else ResourceVector(other)
        names = set(self) | set(other_vec)
        return ResourceVector({n: max(self[n] - other_vec[n], 0) for n in names})

    def elementwise_min(self, other: Mapping[str, _Number]) -> "ResourceVector":
        other_vec = other if isinstance(other, ResourceVector) else ResourceVector(other)
        names = set(self) | set(other_vec)
        return ResourceVector({n: min(self[n], other_vec[n]) for n in names})

    # -- comparisons ---------------------------------------------------------

    def fits_in(self, capacity: Mapping[str, _Number]) -> bool:
        """True if every amount is <= the corresponding amount of *capacity*."""
        cap = capacity if isinstance(capacity, ResourceVector) else ResourceVector(capacity)
        return all(value <= cap[name] for name, value in self.items())

    def is_zero(self) -> bool:
        return not self._amounts

    # -- derived quantities ----------------------------------------------------

    def units_fitting(self, capacity: Mapping[str, _Number]) -> int:
        """How many copies of this vector fit in *capacity* simultaneously.

        The limiting resource decides (``min_r floor(C_r / self_r)``).  A zero
        demand vector fits arbitrarily often; callers must bound the result
        by their own task counts.

        Raises :class:`ValueError` on a zero vector to avoid silent infinities.
        """
        if self.is_zero():
            raise ValueError("units_fitting is undefined for a zero demand vector")
        cap = capacity if isinstance(capacity, ResourceVector) else ResourceVector(capacity)
        return min(cap[name] // value for name, value in self.items())

    def dominant_share(self, capacity: Mapping[str, _Number]) -> float:
        """DRF-style dominant share: ``max_r self_r / C_r`` (0.0 for empty)."""
        cap = capacity if isinstance(capacity, ResourceVector) else ResourceVector(capacity)
        shares = []
        for name, value in self.items():
            total = cap[name]
            if total <= 0:
                raise ValueError(f"capacity for {name!r} is zero but demand is {value}")
            shares.append(value / total)
        return max(shares, default=0.0)

    @staticmethod
    def sum(vectors: Iterable["ResourceVector"]) -> "ResourceVector":
        total = ResourceVector()
        for vec in vectors:
            total = total + vec
        return total
