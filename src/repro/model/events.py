"""Events the simulator emits and schedulers react to.

FlowTime re-plans "whenever a task/job completes" (Sec. VII-4); arrivals and
dependency releases also change the active job set, so the simulator raises
one of these events for each and passes them to the scheduler's
``on_events`` hook before asking for the next slot's allocation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class EventKind(enum.Enum):
    WORKFLOW_ARRIVED = "workflow_arrived"
    JOB_ARRIVED = "job_arrived"
    JOB_READY = "job_ready"
    JOB_COMPLETED = "job_completed"
    JOB_SETBACK = "job_setback"
    WORKFLOW_COMPLETED = "workflow_completed"
    WORKFLOW_WITHDRAWN = "workflow_withdrawn"


@dataclass(frozen=True)
class Event:
    """Base event: something happened at the start of ``slot``."""

    slot: int

    @property
    def kind(self) -> EventKind:
        raise NotImplementedError


@dataclass(frozen=True)
class WorkflowArrived(Event):
    workflow_id: str

    @property
    def kind(self) -> EventKind:
        return EventKind.WORKFLOW_ARRIVED


@dataclass(frozen=True)
class JobArrived(Event):
    """An ad-hoc job was submitted (its size is unknown to schedulers)."""

    job_id: str

    @property
    def kind(self) -> EventKind:
        return EventKind.JOB_ARRIVED


@dataclass(frozen=True)
class JobReady(Event):
    """All of a workflow job's parents completed; it may now run."""

    job_id: str
    workflow_id: Optional[str] = None

    @property
    def kind(self) -> EventKind:
        return EventKind.JOB_READY


@dataclass(frozen=True)
class JobCompleted(Event):
    job_id: str
    workflow_id: Optional[str] = None

    @property
    def kind(self) -> EventKind:
        return EventKind.JOB_COMPLETED


@dataclass(frozen=True)
class JobSetback(Event):
    """A failure destroyed part of a job's progress (lost task-slots)."""

    job_id: str
    lost_units: int = 0
    workflow_id: Optional[str] = None

    @property
    def kind(self) -> EventKind:
        return EventKind.JOB_SETBACK


@dataclass(frozen=True)
class WorkflowCompleted(Event):
    workflow_id: str

    @property
    def kind(self) -> EventKind:
        return EventKind.WORKFLOW_COMPLETED


@dataclass(frozen=True)
class WorkflowWithdrawn(Event):
    """A not-yet-started workflow was withdrawn (shard migration): its jobs
    left the cluster view and any plan capacity reserved for them is free."""

    workflow_id: str

    @property
    def kind(self) -> EventKind:
        return EventKind.WORKFLOW_WITHDRAWN
