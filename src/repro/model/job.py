"""Jobs and their task structure.

A job is a bag of identical tasks (the paper's model: each node of a workflow
DAG is a Hadoop/Spark job whose resource demand is ``#tasks x task running
time x per-task requirement``, Sec. IV-B).  Two job kinds exist:

* ``DEADLINE`` jobs belong to a recurring workflow; their task structure and
  estimated running times are known a priori, and deadline decomposition
  assigns them a per-job deadline.
* ``ADHOC`` jobs are best-effort; their size is *unknown to the scheduler* at
  submission time (the simulator knows it, schedulers must not peek at
  anything except what :class:`~repro.schedulers.base.Scheduler` exposes).

Time is measured in integral *slots* everywhere (the LP of Sec. V is
slot-indexed; the paper's deployment used 10-second slots).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.model.resources import ResourceVector


class JobKind(enum.Enum):
    """Which of the paper's two workload classes a job belongs to."""

    DEADLINE = "deadline"
    ADHOC = "adhoc"


@dataclass(frozen=True)
class TaskSpec:
    """The homogeneous task structure of one job.

    Attributes:
        count: number of tasks in the job (>= 1).
        duration_slots: estimated running time of one task, in slots (>= 1).
        demand: per-task resource requirement while the task runs.
    """

    count: int
    duration_slots: int
    demand: ResourceVector

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"task count must be >= 1, got {self.count}")
        if self.duration_slots < 1:
            raise ValueError(
                f"task duration must be >= 1 slot, got {self.duration_slots}"
            )
        if self.demand.is_zero():
            raise ValueError("per-task demand must not be zero")

    @property
    def total_task_slots(self) -> int:
        """Total work of the job in task-slot units."""
        return self.count * self.duration_slots

    def total_demand(self, resource: str) -> int:
        """The paper's ``s_i^r``: total amount of *resource* the job needs."""
        return self.total_task_slots * self.demand[resource]

    def per_slot_cap(self, resource: str) -> int:
        """Most of *resource* the job can use in one slot (all tasks running)."""
        return self.count * self.demand[resource]


@dataclass(frozen=True)
class Job:
    """One schedulable job.

    ``arrival_slot`` is the submission slot for ad-hoc jobs and the workflow
    start for workflow jobs before decomposition (decomposition produces
    per-job release times and deadlines; those live in
    :class:`~repro.core.decomposition.JobWindow`, not here — the model object
    is immutable ground truth).

    ``true_tasks`` lets the estimation-error experiments give the scheduler a
    *believed* :attr:`tasks` while the simulator executes the true structure;
    when ``None`` the estimate is exact.
    """

    job_id: str
    tasks: TaskSpec
    kind: JobKind = JobKind.DEADLINE
    arrival_slot: int = 0
    workflow_id: Optional[str] = None
    name: str = ""
    true_tasks: Optional[TaskSpec] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be a non-empty string")
        if self.arrival_slot < 0:
            raise ValueError(f"arrival_slot must be >= 0, got {self.arrival_slot}")
        if self.kind is JobKind.ADHOC and self.workflow_id is not None:
            raise ValueError("ad-hoc jobs cannot belong to a workflow")

    @property
    def execution_tasks(self) -> TaskSpec:
        """The task structure the simulator actually runs."""
        return self.true_tasks if self.true_tasks is not None else self.tasks

    @property
    def is_adhoc(self) -> bool:
        return self.kind is JobKind.ADHOC

    def min_runtime_slots(self, capacity: ResourceVector | None = None) -> int:
        """Shortest possible makespan of this job, in slots.

        With unlimited resources every task runs in parallel, so the minimum
        is one task duration.  Given a cluster *capacity*, parallelism is
        capped by how many task demand vectors fit, and the job needs at least
        ``ceil(count / parallelism)`` waves.
        """
        spec = self.tasks
        if capacity is None:
            return spec.duration_slots
        parallel = min(spec.demand.units_fitting(capacity), spec.count)
        if parallel < 1:
            raise ValueError(
                f"job {self.job_id} has a task that does not fit in the cluster"
            )
        waves = math.ceil(spec.count / parallel)
        return waves * spec.duration_slots

    def demand_vector(self) -> ResourceVector:
        """Total demand ``s_i`` over all resources (estimated structure)."""
        return self.tasks.demand * self.tasks.total_task_slots

    def normalized_demand(self, capacity: ResourceVector) -> float:
        """Capacity-normalised total demand, summed over resource types.

        This is the weight Sec. IV-B's decomposition uses to split the
        remaining time across node sets: demands of different resource types
        are made comparable by dividing by cluster capacity (the same
        normalisation the LP objective applies to ``z_t^r``).
        """
        total = 0.0
        for resource, amount in self.tasks.demand.items():
            cap = capacity[resource]
            if cap <= 0:
                raise ValueError(f"capacity for {resource!r} must be positive")
            total += self.tasks.total_task_slots * amount / cap
        return total
