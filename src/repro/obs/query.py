"""Trace queries: reconstruct one request's timeline from a flat trace.

The trace is a flat stream of events from many concurrent submissions.
Correlation works in two hops, because only events emitted *while the
request context is live* carry the ``request_id`` stamp directly:

1. **Stamped events** — admission decisions, journal writes, spans —
   name the request id and reveal which entities (workflow id, job ids)
   the submission created.
2. **Entity events** — arrivals, readiness, placements, completions,
   deadline outcomes — fire later on the engine loop, keyed by those
   entity ids (and stamped too when the engine knows the mapping; the
   join here does not rely on it).

``request_timeline`` performs that join and distills the lifecycle facts
a "what happened to my submission?" investigation needs: when it was
admitted and with what verdict, which slots placed work for it, and
whether the deadline was met.  ``format_timeline`` renders it for
``repro trace query RUN.jsonl --request <id>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "RequestTimeline",
    "format_timeline",
    "request_timeline",
]

#: Event fields that name a workflow / job entity.
_WORKFLOW_KEYS = ("workflow_id",)
_JOB_KEYS = ("job_id",)


def _sort_key(event: dict):
    return (event.get("ts", 0.0), event.get("seq", 0))


@dataclass
class RequestTimeline:
    """Everything the trace knows about one submission."""

    request_id: str
    #: All correlated events, ordered by (ts, seq).
    events: list[dict] = field(default_factory=list)
    #: Entity ids the submission created.
    workflow_ids: list[str] = field(default_factory=list)
    job_ids: list[str] = field(default_factory=list)
    #: Lifecycle summary (populated from the events).
    admission: str | None = None  # "accept" | "reject" | None
    submitted_slot: int | None = None
    placement_slots: list[int] = field(default_factory=list)
    units_placed: float = 0.0
    completed_slot: int | None = None
    deadline_slot: int | None = None
    deadline_missed: bool | None = None

    @property
    def found(self) -> bool:
        return bool(self.events)

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "n_events": len(self.events),
            "workflow_ids": self.workflow_ids,
            "job_ids": self.job_ids,
            "admission": self.admission,
            "submitted_slot": self.submitted_slot,
            "placement_slots": self.placement_slots,
            "units_placed": self.units_placed,
            "completed_slot": self.completed_slot,
            "deadline_slot": self.deadline_slot,
            "deadline_missed": self.deadline_missed,
            "events": self.events,
        }


def request_timeline(
    events: Iterable[dict], request_id: str
) -> RequestTimeline:
    """Join the events belonging to *request_id* out of a flat trace."""
    all_events = list(events)
    timeline = RequestTimeline(request_id=request_id)

    # Hop 1: directly stamped events reveal the submission's entities.
    workflows: set[str] = set()
    jobs: set[str] = set()
    for event in all_events:
        if event.get("request_id") != request_id:
            continue
        for key in _WORKFLOW_KEYS:
            if event.get(key) is not None:
                workflows.add(str(event[key]))
        for key in _JOB_KEYS:
            if event.get(key) is not None:
                jobs.add(str(event[key]))

    # Hop 2: collect every event touching the request or its entities.
    matched: list[dict] = []
    for event in all_events:
        if event.get("request_id") == request_id:
            matched.append(event)
            continue
        if any(str(event.get(k)) in workflows for k in _WORKFLOW_KEYS if event.get(k) is not None):
            matched.append(event)
            continue
        if any(str(event.get(k)) in jobs for k in _JOB_KEYS if event.get(k) is not None):
            matched.append(event)
    matched.sort(key=_sort_key)

    timeline.events = matched
    timeline.workflow_ids = sorted(workflows)
    timeline.job_ids = sorted(jobs)

    for event in matched:
        kind = event.get("type")
        if kind == "admission_accept":
            timeline.admission = "accept"
            timeline.submitted_slot = event.get("slot")
        elif kind == "admission_reject":
            timeline.admission = "reject"
            timeline.submitted_slot = event.get("slot")
        elif kind in ("workflow_arrived", "job_arrived"):
            if timeline.submitted_slot is None:
                timeline.submitted_slot = event.get("slot")
        elif kind == "task_placement":
            slot = event.get("slot")
            if slot is not None and slot not in timeline.placement_slots:
                timeline.placement_slots.append(slot)
            timeline.units_placed += float(event.get("units", 0.0))
        elif kind == "workflow_completed":
            timeline.completed_slot = event.get("slot")
            if timeline.deadline_missed is None:
                timeline.deadline_missed = False
        elif kind == "job_completed" and not timeline.workflow_ids:
            # ad-hoc submission: the job's completion is the terminal event
            timeline.completed_slot = event.get("slot")
        elif kind == "workflow_deadline_miss":
            timeline.deadline_slot = event.get("deadline_slot")
            timeline.deadline_missed = True
    return timeline


def format_timeline(timeline: RequestTimeline, *, max_events: int = 50) -> str:
    """Human-readable rendering for the ``repro trace query`` CLI."""
    lines = [f"request {timeline.request_id}"]
    if not timeline.found:
        lines.append("  no events found for this request id")
        return "\n".join(lines)
    if timeline.workflow_ids:
        lines.append(f"  workflows: {', '.join(timeline.workflow_ids)}")
    if timeline.job_ids:
        lines.append(f"  jobs:      {', '.join(timeline.job_ids)}")
    if timeline.admission is not None:
        lines.append(
            f"  admission: {timeline.admission}"
            + (
                f" (slot {timeline.submitted_slot})"
                if timeline.submitted_slot is not None
                else ""
            )
        )
    if timeline.placement_slots:
        first, last = timeline.placement_slots[0], timeline.placement_slots[-1]
        lines.append(
            f"  placed:    {timeline.units_placed:g} units across "
            f"{len(timeline.placement_slots)} slots ({first}..{last})"
        )
    if timeline.completed_slot is not None:
        lines.append(f"  completed: slot {timeline.completed_slot}")
    if timeline.deadline_missed is True:
        lines.append(
            f"  deadline:  MISSED (deadline slot {timeline.deadline_slot})"
        )
    elif timeline.deadline_missed is False:
        lines.append("  deadline:  met")
    lines.append(f"  events ({len(timeline.events)}):")
    shown: Sequence[dict] = timeline.events[:max_events]
    for event in shown:
        slot = event.get("slot")
        prefix = f"slot {slot:>4}" if slot is not None else " " * 9
        detail = _event_detail(event)
        lines.append(f"    {prefix}  {event.get('type', '?'):<24}{detail}")
    if len(timeline.events) > len(shown):
        lines.append(f"    ... {len(timeline.events) - len(shown)} more")
    return "\n".join(lines)


def _event_detail(event: dict) -> str:
    parts = []
    for key in ("workflow_id", "job_id", "units", "deadline_slot", "name",
                "seconds", "reason"):
        if key in event and event[key] is not None:
            value = event[key]
            if isinstance(value, float):
                value = f"{value:.6g}"
            parts.append(f"{key}={value}")
    return "  " + " ".join(parts) if parts else ""
