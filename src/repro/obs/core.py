"""The observability handle: spans + metrics + trace, context-propagated.

One :class:`Observability` object bundles the three instruments a run
needs:

* a :class:`~repro.obs.metrics.MetricsRegistry` (counters/gauges/histograms),
* a trace sink (:mod:`repro.obs.trace`),
* a log level controlling how chatty the instrumented layers are.

The stack's pure algorithm layers (decomposition, LP build/solve,
admission) cannot be handed an ``obs`` argument without threading it
through every signature, so the *current* observability is carried in a
:class:`contextvars.ContextVar`:

* the default is :data:`NULL_OBS`, a frozen no-op whose spans cost a few
  hundred nanoseconds and whose registry drops every write — code can
  instrument unconditionally;
* a simulation (or a test) activates its own handle for the duration of a
  run with ``with use_obs(obs): ...``; the token-based reset guarantees
  nothing leaks across runs, even when runs nest or interleave.

Span names used by the instrumented stack (``seconds`` histograms of the
same name): ``decompose``, ``lp.build``, ``lp.presolve``, ``lp.solve``,
``sched.plan``, ``sched.decide``, ``sim.slot``, ``admission.check``.
"""

from __future__ import annotations

import logging
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import NullSink, TraceSink
from repro.obs.windowed import WindowedCounter, WindowedHistogram

__all__ = [
    "NULL_OBS",
    "Observability",
    "Span",
    "current_obs",
    "current_request_id",
    "new_request_id",
    "use_obs",
    "use_request_id",
]

_logger = logging.getLogger("repro.obs")

#: The request id of the submission currently being processed, carried in
#: a context variable next to the obs handle.  Trace events emitted while
#: it is set (admission checks, journal appends, plan calls triggered by a
#: submission) are stamped with it, so a request's timeline can be joined
#: back out of the flat event stream (``repro trace query --request``).
_REQUEST_ID: ContextVar[str | None] = ContextVar("repro_request_id", default=None)


def current_request_id() -> str | None:
    """The request id in flight, or None outside request handling."""
    return _REQUEST_ID.get()


def new_request_id() -> str:
    """Mint a fresh request id (128-bit random, hex)."""
    return uuid.uuid4().hex


@contextmanager
def use_request_id(request_id: str | None) -> Iterator[str | None]:
    """Stamp trace events emitted in this block with *request_id*."""
    token = _REQUEST_ID.set(request_id)
    try:
        yield request_id
    finally:
        _REQUEST_ID.reset(token)


class Span:
    """A wall-clock timer for one named phase (use via ``obs.span(name)``).

    On exit the elapsed seconds are observed into the histogram of the
    same name; ``elapsed`` stays readable afterwards for callers that need
    the value (e.g. the engine's slowest-slot tracking).  When the owning
    handle has ``trace_spans`` on, exit additionally emits a ``span`` trace
    event — stamped, like every event, with the in-flight request id — so
    phase timings can be joined to the submission that caused them.
    """

    __slots__ = ("name", "_histogram", "_obs", "_start", "elapsed")

    def __init__(
        self,
        name: str,
        histogram: Histogram | None,
        obs: "Observability | None" = None,
    ):
        self.name = name
        self._histogram = histogram
        self._obs = obs
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        if self._histogram is not None:
            self._histogram.observe(self.elapsed)
        if self._obs is not None:
            self._obs.event("span", name=self.name, seconds=self.elapsed)


class _NullSpan:
    """Shared, reusable no-op span (the disabled fast path)."""

    __slots__ = ()
    name = ""
    elapsed = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Observability:
    """Bundle of metrics registry, trace sink, and verbosity for one run."""

    __slots__ = ("registry", "sink", "level", "tracing", "trace_spans")

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        sink: TraceSink | None = None,
        level: int = logging.INFO,
        trace_spans: bool = False,
    ):
        self.registry = MetricsRegistry() if registry is None else registry
        self.sink = NullSink() if sink is None else sink
        self.level = level
        #: True when the sink records events; emitters consult this before
        #: building payloads so the disabled path does no dict work.
        self.tracing = self.sink.enabled
        #: Also emit a ``span`` trace event per phase span (chatty; off by
        #: default even when tracing).
        self.trace_spans = trace_spans and self.tracing

    # -- timing ----------------------------------------------------------------

    def span(self, name: str) -> Span:
        """Time a phase: ``with obs.span("lp.solve"): ...``."""
        return Span(
            name,
            self.registry.histogram(name),
            self if self.trace_spans else None,
        )

    # -- metrics pass-throughs ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        return self.registry.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(name)

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(name)

    def windowed_counter(self, name: str, **kwargs) -> WindowedCounter:
        return self.registry.windowed_counter(name, **kwargs)

    def windowed_histogram(self, name: str, **kwargs) -> WindowedHistogram:
        return self.registry.windowed_histogram(name, **kwargs)

    # -- tracing -----------------------------------------------------------------

    def event(self, event_type: str, **fields) -> None:
        """Emit one structured trace event (no-op when tracing is off).

        Events emitted while a request id is in flight (``use_request_id``)
        are stamped with it unless the emitter supplied its own.
        """
        if not self.tracing:
            return
        request_id = _REQUEST_ID.get()
        if request_id is not None:
            fields.setdefault("request_id", request_id)
        fields["type"] = event_type
        self.sink.emit(fields)

    def log(self, level: int, message: str, *args) -> None:
        """Route an instrumentation log line, gated by this handle's level."""
        if level >= self.level:
            _logger.log(level, message, *args)

    def close(self) -> None:
        self.sink.close()

    def __enter__(self) -> "Observability":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _NullObservability(Observability):
    """The inert default: spans are shared no-ops, metrics are dropped.

    A fresh throwaway registry would still accumulate state between runs
    that never installed their own handle, so every metric accessor
    returns a detached object and ``snapshot()`` of the shared registry
    stays empty.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(registry=MetricsRegistry(), sink=NullSink(),
                         level=logging.CRITICAL)

    def span(self, name: str) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def counter(self, name: str) -> Counter:
        return Counter(name)  # detached: writes go nowhere observable

    def gauge(self, name: str) -> Gauge:
        return Gauge(name)

    def histogram(self, name: str) -> Histogram:
        return Histogram(name)

    def windowed_counter(self, name: str, **kwargs) -> WindowedCounter:
        return WindowedCounter(name, **kwargs)

    def windowed_histogram(self, name: str, **kwargs) -> WindowedHistogram:
        return WindowedHistogram(name, **kwargs)

    def event(self, event_type: str, **fields) -> None:
        pass

    def log(self, level: int, message: str, *args) -> None:
        pass


#: Process-wide inert handle; the context variable's default.
NULL_OBS = _NullObservability()

_CURRENT: ContextVar[Observability] = ContextVar(
    "repro_observability", default=NULL_OBS
)


def current_obs() -> Observability:
    """The active observability handle (:data:`NULL_OBS` unless installed)."""
    return _CURRENT.get()


@contextmanager
def use_obs(obs: Observability) -> Iterator[Observability]:
    """Install *obs* as the current handle for the duration of the block."""
    token = _CURRENT.set(obs)
    try:
        yield obs
    finally:
        _CURRENT.reset(token)
