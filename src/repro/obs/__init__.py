"""Observability: metrics registry, phase spans, and structured tracing.

The instrumentation layer behind ``Simulation(obs=...)``, ``repro run
--trace-out run.jsonl --metrics`` and the report's per-phase latency
table.  See docs/OBSERVABILITY.md for the API guide and event schema.
"""

from repro.obs.core import (
    NULL_OBS,
    Observability,
    Span,
    current_obs,
    use_obs,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    EVENT_TYPES,
    JsonlSink,
    MemorySink,
    NullSink,
    TraceSink,
    count_by_type,
    read_trace,
)

__all__ = [
    "EVENT_TYPES",
    "NULL_OBS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "Observability",
    "Span",
    "TraceSink",
    "count_by_type",
    "current_obs",
    "read_trace",
    "use_obs",
]
