"""Observability: metrics, spans, tracing, request correlation, SLOs.

The instrumentation layer behind ``Simulation(obs=...)``, ``repro run
--trace-out run.jsonl --metrics``, the service's ``/metrics`` (JSON and
Prometheus text) and ``/slo`` endpoints, and ``repro trace query``'s
per-request timeline reconstruction.  See docs/OBSERVABILITY.md for the
API guide and event schema.
"""

from repro.obs.core import (
    NULL_OBS,
    Observability,
    Span,
    current_obs,
    current_request_id,
    new_request_id,
    use_obs,
    use_request_id,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    json_safe,
)
from repro.obs.prometheus import (
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
)
from repro.obs.prometheus import (
    parse_prometheus,
    render_prometheus,
)
from repro.obs.query import RequestTimeline, format_timeline, request_timeline
from repro.obs.slo import SLOConfig, SLOTracker
from repro.obs.trace import (
    EVENT_SCHEMA,
    EVENT_TYPES,
    JsonlSink,
    MemorySink,
    NullSink,
    TraceSink,
    count_by_type,
    read_trace,
)
from repro.obs.windowed import (
    DEFAULT_LATENCY_BOUNDS,
    WindowedCounter,
    WindowedHistogram,
)

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "EVENT_SCHEMA",
    "EVENT_TYPES",
    "NULL_OBS",
    "PROMETHEUS_CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "Observability",
    "RequestTimeline",
    "SLOConfig",
    "SLOTracker",
    "Span",
    "TraceSink",
    "WindowedCounter",
    "WindowedHistogram",
    "count_by_type",
    "current_obs",
    "current_request_id",
    "format_timeline",
    "json_safe",
    "new_request_id",
    "parse_prometheus",
    "read_trace",
    "render_prometheus",
    "request_timeline",
    "use_obs",
    "use_request_id",
]
