"""Prometheus text-format (0.0.4) exposition and a strict parser.

``render_prometheus`` walks a :class:`~repro.obs.metrics.MetricsRegistry`
and emits the plain-text exposition format every Prometheus-compatible
scraper understands:

* :class:`~repro.obs.metrics.Counter` and
  :class:`~repro.obs.windowed.WindowedCounter` → ``counter`` families with
  the conventional ``_total`` suffix (all-time totals — windowed state is
  a query-side concern; scrapers derive rates themselves).
* :class:`~repro.obs.metrics.Gauge` → ``gauge`` (never-set gauges are
  omitted: there is no NaN in a well-behaved exposition).
* :class:`~repro.obs.metrics.Histogram` (exact, all samples retained) →
  ``summary`` with ``quantile`` labels plus ``_sum``/``_count``.
* :class:`~repro.obs.windowed.WindowedHistogram` (fixed buckets) → a real
  ``histogram``: cumulative ``_bucket{le="..."}`` series ending in
  ``+Inf``, plus ``_sum``/``_count``.

Metric names are sanitised (``lp.solve`` → ``repro_lp_solve``) and the
whole exposition is deterministic (sorted by name) so diffs are stable.

``parse_prometheus`` is the matching *strict* parser used by tests and the
CI obs-smoke job: it rejects undeclared families, malformed labels,
non-monotone histogram buckets, missing ``+Inf`` buckets, and
``_count``/``+Inf`` disagreements — if it accepts the output, a real
scraper will too.
"""

from __future__ import annotations

import math
import re
from typing import Mapping

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.windowed import WindowedCounter, WindowedHistogram

__all__ = [
    "CONTENT_TYPE",
    "parse_prometheus",
    "render_prometheus",
    "sanitize_metric_name",
]

#: The content type Prometheus scrapers expect for text format 0.0.4.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: Quantiles exposed for exact (summary-style) histograms.
_SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def sanitize_metric_name(name: str, prefix: str = "repro") -> str:
    """Map a registry name onto the Prometheus name grammar.

    Dots and other illegal characters become underscores and the exposition
    namespace prefix is prepended: ``service.queue.depth`` →
    ``repro_service_queue_depth``.
    """
    cleaned = _NAME_BAD_CHARS.sub("_", name)
    if prefix:
        cleaned = f"{prefix}_{cleaned}"
    if not _NAME_OK.match(cleaned):
        cleaned = f"_{cleaned}"
    return cleaned


def _fmt(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    registry: MetricsRegistry, *, prefix: str = "repro"
) -> str:
    """Render *registry* as Prometheus text format 0.0.4.

    Unknown metric kinds and never-set gauges are skipped; two registry
    names colliding after sanitisation raise ``ValueError`` (a silent
    merge would corrupt both series).
    """
    lines: list[str] = []
    seen: dict[str, str] = {}
    for name, metric in registry.items():
        base = sanitize_metric_name(name, prefix)
        family = (
            f"{base}_total"
            if isinstance(metric, (Counter, WindowedCounter))
            else base
        )
        if family in seen:
            raise ValueError(
                f"metric names {seen[family]!r} and {name!r} both sanitise "
                f"to {family!r}"
            )
        seen[family] = name
        if isinstance(metric, (Counter, WindowedCounter)):
            lines.append(f"# TYPE {family} counter")
            lines.append(f"{family} {_fmt(metric.value)}")
        elif isinstance(metric, Gauge):
            if math.isnan(metric.value):
                continue  # never set: omit rather than exposing NaN
            lines.append(f"# TYPE {family} gauge")
            lines.append(f"{family} {_fmt(metric.value)}")
        elif isinstance(metric, WindowedHistogram):
            lines.append(f"# TYPE {family} histogram")
            for bound, cumulative in metric.cumulative_buckets():
                lines.append(
                    f'{family}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
                )
            lines.append(f"{family}_sum {_fmt(metric.sum)}")
            lines.append(f"{family}_count {metric.count}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {family} summary")
            if metric.count:
                for q in _SUMMARY_QUANTILES:
                    lines.append(
                        f'{family}{{quantile="{_fmt(q)}"}} '
                        f"{_fmt(metric.quantile(q))}"
                    )
            lines.append(f"{family}_sum {_fmt(metric.sum if metric.count else 0.0)}")
            lines.append(f"{family}_count {metric.count}")
        # other kinds: not exposable; skip silently
    return "\n".join(lines) + ("\n" if lines else "")


# -- strict parsing --------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')
_SUFFIXES = ("_bucket", "_sum", "_count")


def _parse_value(text: str, line_no: int) -> float:
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"line {line_no}: unparseable value {text!r}") from None


def _family_of(sample_name: str, families: Mapping[str, str]) -> str | None:
    if sample_name in families:
        return sample_name
    for suffix in _SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families:
                return base
    return None


def parse_prometheus(text: str) -> dict[str, dict]:
    """Strictly parse text-format 0.0.4; raise ``ValueError`` on violations.

    Returns ``{family: {"type": str, "samples": [(name, labels, value)]}}``.
    Enforced beyond the line grammar: every sample belongs to a declared
    family; ``histogram`` families have monotone cumulative buckets ending
    in ``le="+Inf"`` whose count equals ``_count``.
    """
    families: dict[str, dict] = {}
    types: dict[str, str] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {line_no}: malformed TYPE comment")
            _, _, family, kind = parts
            if not _NAME_OK.match(family):
                raise ValueError(f"line {line_no}: bad family name {family!r}")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {line_no}: unknown type {kind!r}")
            if family in types:
                raise ValueError(f"line {line_no}: duplicate TYPE for {family!r}")
            types[family] = kind
            families[family] = {"type": kind, "samples": []}
            continue
        if line.startswith("#"):
            continue  # HELP / free comments
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_no}: malformed sample {line!r}")
        name = match.group("name")
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for pair in raw_labels.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                label_match = _LABEL_RE.match(pair)
                if label_match is None:
                    raise ValueError(
                        f"line {line_no}: malformed label {pair!r}"
                    )
                labels[label_match.group("key")] = label_match.group("value")
        value = _parse_value(match.group("value"), line_no)
        family = _family_of(name, families)
        if family is None:
            raise ValueError(
                f"line {line_no}: sample {name!r} has no TYPE declaration"
            )
        kind = types[family]
        if kind == "histogram" and name == f"{family}_bucket" and "le" not in labels:
            raise ValueError(f"line {line_no}: histogram bucket without le label")
        families[family]["samples"].append((name, labels, value))

    for family, data in families.items():
        if data["type"] != "histogram":
            continue
        buckets = [
            (_parse_value(labels["le"], 0), value)
            for name, labels, value in data["samples"]
            if name == f"{family}_bucket"
        ]
        if not buckets:
            raise ValueError(f"histogram {family!r} has no buckets")
        bounds = [b for b, _ in buckets]
        if bounds != sorted(bounds):
            raise ValueError(f"histogram {family!r}: le bounds out of order")
        if not math.isinf(bounds[-1]):
            raise ValueError(f"histogram {family!r}: missing +Inf bucket")
        counts = [c for _, c in buckets]
        if any(b > a for b, a in zip(counts, counts[1:])):
            raise ValueError(
                f"histogram {family!r}: cumulative bucket counts decrease"
            )
        total = [
            value
            for name, _, value in data["samples"]
            if name == f"{family}_count"
        ]
        if total and total[0] != counts[-1]:
            raise ValueError(
                f"histogram {family!r}: _count {total[0]} != +Inf bucket "
                f"{counts[-1]}"
            )
    return families
