"""Metrics primitives: counters, gauges, histograms, and their registry.

Production schedulers answer "why did this run miss its deadline?" with
numbers, not log archaeology; this module is the numeric half of the
observability layer (the trace emitter in :mod:`repro.obs.trace` is the
other).  Design constraints, in order:

1. **No global mutable state.**  Every :class:`MetricsRegistry` is an
   isolated container; two :class:`~repro.simulator.engine.Simulation`
   instances never see each other's samples.  The "current" registry is
   selected per run via a context variable (:mod:`repro.obs.core`), never
   via module-level singletons.
2. **Near-zero overhead.**  ``observe``/``inc`` are attribute appends and
   float adds; quantiles are computed lazily at snapshot time.
3. **Test-friendly.**  ``snapshot()`` returns plain dicts so assertions
   never need to reach into metric internals.
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping

from repro.obs.windowed import WindowedCounter, WindowedHistogram

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "json_safe",
]


class Counter:
    """A monotonically increasing count (events, calls, rejects)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, float | str]:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A last-write-wins value (current queue depth, slowest slot index)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = math.nan

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, float | str | None]:
        # A never-set gauge serialises as null, not NaN: bare NaN is not
        # valid strict JSON and breaks standard parsers of /metrics.
        value = None if math.isnan(self._value) else self._value
        return {"type": "gauge", "value": value}


class Histogram:
    """A distribution of observed values with lazy quantiles.

    All samples are retained (a simulation run observes at most a few
    hundred thousand floats, far below reservoir-sampling territory) so
    quantiles are exact.  The sorted view is cached and invalidated on the
    next ``observe``.
    """

    __slots__ = ("name", "_values", "_sorted")

    def __init__(self, name: str):
        self.name = name
        self._values: list[float] = []
        self._sorted: list[float] | None = None

    def observe(self, value: float) -> None:
        self._values.append(float(value))
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return math.fsum(self._values)

    @property
    def mean(self) -> float:
        return self.sum / len(self._values) if self._values else math.nan

    @property
    def max(self) -> float:
        return max(self._values) if self._values else math.nan

    @property
    def min(self) -> float:
        return min(self._values) if self._values else math.nan

    def quantile(self, q: float) -> float:
        """Exact linear-interpolated quantile, ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._values:
            return math.nan
        if self._sorted is None:
            self._sorted = sorted(self._values)
        values = self._sorted
        position = q * (len(values) - 1)
        low = int(math.floor(position))
        high = int(math.ceil(position))
        if low == high:
            return values[low]
        frac = position - low
        return values[low] * (1.0 - frac) + values[high] * frac

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def snapshot(self) -> dict[str, float | str]:
        return {
            "type": "histogram",
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class MetricsRegistry:
    """An isolated, injectable collection of named metrics.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    with a name creates the metric, later calls return the same object.  A
    name is bound to exactly one metric kind; mixing kinds raises.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[
            str, Counter | Gauge | Histogram | WindowedCounter | WindowedHistogram
        ] = {}

    def _get_or_create(self, name: str, kind, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def windowed_counter(self, name: str, **kwargs) -> WindowedCounter:
        """Get-or-create a rolling-window counter (kwargs bind on create)."""
        return self._get_or_create(name, WindowedCounter, **kwargs)

    def windowed_histogram(self, name: str, **kwargs) -> WindowedHistogram:
        """Get-or-create a rolling-window histogram (kwargs bind on create)."""
        return self._get_or_create(name, WindowedHistogram, **kwargs)

    def get(self, name: str):
        """The metric object under *name*, or None (exposition layers)."""
        return self._metrics.get(name)

    def items(self):
        """Sorted ``(name, metric)`` view (Prometheus exposition walks it)."""
        return sorted(self._metrics.items())

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[str]:
        return iter(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, Mapping[str, float | str]]:
        """Plain-dict view of every metric (the hand-off to results/reports)."""
        return {name: m.snapshot() for name, m in sorted(self._metrics.items())}


def json_safe(value):
    """Recursively replace non-finite floats with None (strict-JSON safety).

    ``json.dumps`` happily emits bare ``NaN``/``Infinity`` — tokens that are
    not JSON and that strict parsers reject.  Every snapshot that crosses a
    serialisation boundary (the HTTP ``/metrics`` body, report artefacts)
    goes through here first: empty-histogram stats and unset gauges become
    ``null``, which every parser understands.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    return value
