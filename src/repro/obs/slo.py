"""SLO tracking: deadline-miss error budget and decide-latency objective.

A FlowTime deployment promises two things its operators can page on:

1. **Deadline SLO** — at least ``deadline_objective`` of admitted
   workflows finish by their deadline (the paper's headline guarantee:
   admission control exists precisely so this holds).  The complement,
   ``1 - objective``, is the *error budget*; the **burn rate** is how fast
   the last window is spending it (observed miss rate / allowed miss
   rate).  Burn rate 1.0 = spending exactly on budget; sustained > 1.0 =
   the SLO will be violated; SRE practice pages on high burn (e.g. > 10).
2. **Decide-latency SLO** — the per-slot scheduling decision p99 stays
   under ``decide_p99_s``.  A scheduler that can't decide inside a slot
   is a scheduler that falls behind real time.

:class:`SLOTracker` is a pure *reader*: the engine writes the windowed
metrics (``slo.workflows.total`` / ``slo.workflows.missed`` counters,
``slo.decide.seconds`` histogram) at the source, and the tracker computes
budget arithmetic at query time (``GET /slo``, ``repro top``,
``run_report``).  It holds no state of its own, so batch and service runs
get identical SLO math from the same registry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry
from repro.obs.windowed import WindowedCounter, WindowedHistogram

__all__ = [
    "DECIDE_LATENCY_METRIC",
    "SLOConfig",
    "SLOTracker",
    "WORKFLOWS_MISSED_METRIC",
    "WORKFLOWS_TOTAL_METRIC",
]

#: Registry names of the SLO feed metrics (written by the engine).
WORKFLOWS_TOTAL_METRIC = "slo.workflows.total"
WORKFLOWS_MISSED_METRIC = "slo.workflows.missed"
DECIDE_LATENCY_METRIC = "slo.decide.seconds"


@dataclass(frozen=True)
class SLOConfig:
    """The two service-level objectives and the evaluation window."""

    #: Fraction of admitted workflows that must meet their deadline.
    deadline_objective: float = 0.99
    #: Per-slot decide-latency p99 ceiling, in seconds.
    decide_p99_s: float = 1.0
    #: Rolling evaluation window in seconds (burn rate, rolling p99).
    window_s: float = 300.0

    def __post_init__(self) -> None:
        if not 0.0 < self.deadline_objective < 1.0:
            raise ValueError(
                f"deadline_objective must be in (0, 1), got "
                f"{self.deadline_objective}"
            )
        if self.decide_p99_s <= 0:
            raise ValueError(
                f"decide_p99_s must be > 0, got {self.decide_p99_s}"
            )
        if self.window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {self.window_s}")

    def to_dict(self) -> dict:
        return {
            "deadline_objective": self.deadline_objective,
            "decide_p99_s": self.decide_p99_s,
            "window_s": self.window_s,
        }


class SLOTracker:
    """Compute SLO status from the windowed metrics the engine feeds.

    All reads are best-effort: before any workflow has completed, rates
    and burn are reported as ``None`` (unknown) rather than 0 (falsely
    healthy) or NaN (not JSON).
    """

    def __init__(self, registry: MetricsRegistry, config: SLOConfig | None = None):
        self.registry = registry
        self.config = config or SLOConfig()

    # -- metric access ------------------------------------------------------------

    def _windowed_counter(self, name: str) -> WindowedCounter | None:
        metric = self.registry.get(name)
        return metric if isinstance(metric, WindowedCounter) else None

    def _windowed_histogram(self, name: str) -> WindowedHistogram | None:
        metric = self.registry.get(name)
        return metric if isinstance(metric, WindowedHistogram) else None

    # -- deadline SLO --------------------------------------------------------------

    def deadline_status(self) -> dict:
        """Error-budget arithmetic for the deadline objective.

        Keys: ``objective``, all-time ``total``/``missed``/``compliance``/
        ``budget_remaining`` (fraction of the all-time budget left, may go
        negative), and windowed ``window_total``/``window_missed``/
        ``burn_rate`` over ``config.window_s``.
        """
        total_c = self._windowed_counter(WORKFLOWS_TOTAL_METRIC)
        missed_c = self._windowed_counter(WORKFLOWS_MISSED_METRIC)
        total = total_c.value if total_c is not None else 0.0
        missed = missed_c.value if missed_c is not None else 0.0
        budget = 1.0 - self.config.deadline_objective
        compliance = None
        budget_remaining = None
        if total > 0:
            compliance = 1.0 - missed / total
            budget_remaining = 1.0 - (missed / total) / budget
        window = self.config.window_s
        window_total = total_c.delta(window) if total_c is not None else 0.0
        window_missed = missed_c.delta(window) if missed_c is not None else 0.0
        burn_rate = None
        if window_total > 0:
            burn_rate = (window_missed / window_total) / budget
        return {
            "objective": self.config.deadline_objective,
            "total": total,
            "missed": missed,
            "compliance": compliance,
            "budget_remaining": budget_remaining,
            "window_s": window,
            "window_total": window_total,
            "window_missed": window_missed,
            "burn_rate": burn_rate,
        }

    # -- decide-latency SLO --------------------------------------------------------

    def decide_latency_status(self) -> dict:
        """Rolling decide-latency p99 against the configured ceiling."""
        hist = self._windowed_histogram(DECIDE_LATENCY_METRIC)
        p99 = None
        window_count = 0
        if hist is not None:
            window = min(self.config.window_s, hist.window_s)
            window_count = hist.window_count(window)
            value = hist.quantile(0.99, window)
            if not math.isnan(value):
                p99 = value
        return {
            "objective_p99_s": self.config.decide_p99_s,
            "p99_s": p99,
            "window_count": window_count,
            "ok": None if p99 is None else p99 <= self.config.decide_p99_s,
        }

    # -- combined ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """The full SLO view served at ``GET /slo`` and shown by ``repro top``."""
        deadline = self.deadline_status()
        decide = self.decide_latency_status()
        deadline_ok = None
        if deadline["compliance"] is not None:
            deadline_ok = (
                deadline["compliance"] >= self.config.deadline_objective
            )
        healthy = None
        known = [ok for ok in (deadline_ok, decide["ok"]) if ok is not None]
        if known:
            healthy = all(known)
        return {
            "config": self.config.to_dict(),
            "deadline": {**deadline, "ok": deadline_ok},
            "decide_latency": decide,
            "healthy": healthy,
        }
