"""Bounded windowed metrics: O(1)-memory rolling counters and histograms.

The exact metrics of :mod:`repro.obs.metrics` retain every sample — the
right trade for a finite batch run, and an unbounded memory leak for a
service that runs for weeks.  This module is the service-path complement:

* :class:`WindowedCounter` — a monotonic total plus a ring of per-slice
  sub-totals, answering "how many in the last minute / five minutes" and
  "at what rate" without retaining events.
* :class:`WindowedHistogram` — fixed bucket boundaries (Prometheus-style
  cumulative ``le`` semantics) with the same slice ring, answering rolling
  quantiles (estimated by linear interpolation inside a bucket) and
  feeding the Prometheus ``_bucket`` exposition from its all-time totals.

Both are O(bounds x slices) memory forever, regardless of traffic.  The
slice ring is advanced lazily on write/read (no background threads): slice
``i`` holds data for tick ``t`` iff ``t % n_slices == i`` and is zeroed the
first time a newer tick touches it.  The clock is injectable so tests can
drive time deterministically.

Thread-safety matches the exact metrics: CPython attribute updates under
the GIL — racy increments may rarely be lost, never corrupt structure.
"""

from __future__ import annotations

import bisect
import math
import time
from typing import Callable, Sequence

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "WindowedCounter",
    "WindowedHistogram",
]

#: Default latency bucket upper bounds in seconds (Prometheus' classic
#: ladder).  The final +Inf bucket is implicit.
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class _SliceRing:
    """Shared slice bookkeeping: ``window_s`` split into ``n_slices``."""

    __slots__ = ("window_s", "n_slices", "slice_s", "_clock", "_ticks")

    def __init__(
        self, window_s: float, n_slices: int, clock: Callable[[], float]
    ):
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        if n_slices < 2:
            raise ValueError(f"n_slices must be >= 2, got {n_slices}")
        self.window_s = float(window_s)
        self.n_slices = int(n_slices)
        self.slice_s = self.window_s / self.n_slices
        self._clock = clock
        # The tick each slice currently holds; -1 = never written.
        self._ticks = [-1] * self.n_slices

    def tick(self) -> int:
        return int(self._clock() // self.slice_s)

    def slot_for(self, tick: int) -> int:
        return tick % self.n_slices

    def live_slots(self, tick: int, window_s: float | None) -> list[int]:
        """Slice indices whose data falls inside the trailing window."""
        window = self.window_s if window_s is None else float(window_s)
        if window > self.window_s:
            raise ValueError(
                f"window {window}s exceeds retained {self.window_s}s"
            )
        need = max(int(math.ceil(window / self.slice_s)), 1)
        oldest = tick - need + 1
        return [
            i
            for i, t in enumerate(self._ticks)
            if oldest <= t <= tick
        ]


class WindowedCounter:
    """A monotonic counter with a rolling-window view.

    ``value`` is the all-time total (what Prometheus scrapes); ``delta`` /
    ``rate`` answer over the trailing window.  Memory is fixed:
    ``n_slices`` floats.
    """

    __slots__ = ("name", "_ring", "_slices", "_total")

    def __init__(
        self,
        name: str,
        *,
        window_s: float = 300.0,
        n_slices: int = 60,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.name = name
        self._ring = _SliceRing(window_s, n_slices, clock)
        self._slices = [0.0] * self._ring.n_slices
        self._total = 0.0

    @property
    def window_s(self) -> float:
        return self._ring.window_s

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        tick = self._ring.tick()
        slot = self._ring.slot_for(tick)
        if self._ring._ticks[slot] != tick:
            self._ring._ticks[slot] = tick
            self._slices[slot] = 0.0
        self._slices[slot] += amount
        self._total += amount

    @property
    def value(self) -> float:
        """All-time total (monotonic; survives window rotation)."""
        return self._total

    def delta(self, window_s: float | None = None) -> float:
        """Sum of increments inside the trailing window."""
        tick = self._ring.tick()
        return sum(
            self._slices[i] for i in self._ring.live_slots(tick, window_s)
        )

    def rate(self, window_s: float | None = None) -> float:
        """Mean per-second rate over the trailing window."""
        window = self._ring.window_s if window_s is None else float(window_s)
        return self.delta(window) / window

    def snapshot(self) -> dict[str, float | str]:
        return {
            "type": "windowed_counter",
            "value": self._total,
            "window_s": self._ring.window_s,
            "delta_1m": self.delta(min(60.0, self._ring.window_s)),
            "rate_1m": self.rate(min(60.0, self._ring.window_s)),
            "rate_window": self.rate(),
        }


class WindowedHistogram:
    """Fixed-bucket histogram with a rolling window and all-time totals.

    ``bounds`` are bucket *upper* bounds (ascending); an implicit +Inf
    bucket catches the tail.  Rolling quantiles merge the live slices'
    bucket counts and interpolate linearly inside the selected bucket —
    bounded error, zero retained samples.  All-time cumulative bucket
    counts feed the Prometheus ``histogram`` exposition directly.
    """

    __slots__ = (
        "name", "bounds", "_ring", "_counts", "_sums", "_ns",
        "_total_counts", "_total_sum", "_total_n",
    )

    def __init__(
        self,
        name: str,
        *,
        bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS,
        window_s: float = 300.0,
        n_slices: int = 60,
        clock: Callable[[], float] = time.monotonic,
    ):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("bounds must not be empty")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bounds must be strictly ascending: {bounds}")
        if not all(math.isfinite(b) for b in bounds):
            raise ValueError("bounds must be finite (+Inf bucket is implicit)")
        self.name = name
        self.bounds = bounds
        self._ring = _SliceRing(window_s, n_slices, clock)
        n_buckets = len(bounds) + 1  # final slot is the +Inf bucket
        self._counts = [[0] * n_buckets for _ in range(self._ring.n_slices)]
        self._sums = [0.0] * self._ring.n_slices
        self._ns = [0] * self._ring.n_slices
        self._total_counts = [0] * n_buckets
        self._total_sum = 0.0
        self._total_n = 0

    @property
    def window_s(self) -> float:
        return self._ring.window_s

    def observe(self, value: float) -> None:
        value = float(value)
        bucket = bisect.bisect_left(self.bounds, value)
        tick = self._ring.tick()
        slot = self._ring.slot_for(tick)
        if self._ring._ticks[slot] != tick:
            self._ring._ticks[slot] = tick
            counts = self._counts[slot]
            for i in range(len(counts)):
                counts[i] = 0
            self._sums[slot] = 0.0
            self._ns[slot] = 0
        self._counts[slot][bucket] += 1
        self._sums[slot] += value
        self._ns[slot] += 1
        self._total_counts[bucket] += 1
        self._total_sum += value
        self._total_n += 1

    # -- all-time (Prometheus exposition) -----------------------------------------

    @property
    def count(self) -> int:
        return self._total_n

    @property
    def sum(self) -> float:
        return self._total_sum

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """All-time ``(le, cumulative_count)`` pairs, +Inf last."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self._total_counts):
            running += n
            pairs.append((bound, running))
        pairs.append((math.inf, running + self._total_counts[-1]))
        return pairs

    # -- rolling window ------------------------------------------------------------

    def window_count(self, window_s: float | None = None) -> int:
        tick = self._ring.tick()
        return sum(self._ns[i] for i in self._ring.live_slots(tick, window_s))

    def rate(self, window_s: float | None = None) -> float:
        window = self._ring.window_s if window_s is None else float(window_s)
        return self.window_count(window) / window

    def quantile(self, q: float, window_s: float | None = None) -> float:
        """Estimated quantile over the trailing window (NaN when empty).

        Linear interpolation inside the chosen bucket; values landing in
        the +Inf bucket report the largest finite bound (a floor — the
        honest answer for an estimator with bounded buckets).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        tick = self._ring.tick()
        live = self._ring.live_slots(tick, window_s)
        merged = [0] * (len(self.bounds) + 1)
        total = 0
        for i in live:
            counts = self._counts[i]
            total += self._ns[i]
            for b, n in enumerate(counts):
                merged[b] += n
        if total == 0:
            return math.nan
        target = q * total
        running = 0
        for b, n in enumerate(merged):
            if n == 0:
                continue
            if running + n >= target:
                if b >= len(self.bounds):  # +Inf bucket
                    return self.bounds[-1]
                low = self.bounds[b - 1] if b > 0 else 0.0
                high = self.bounds[b]
                frac = (target - running) / n
                return low + (high - low) * frac
            running += n
        return self.bounds[-1]

    def snapshot(self) -> dict[str, float | str]:
        one_m = min(60.0, self._ring.window_s)
        return {
            "type": "windowed_histogram",
            "count": float(self._total_n),
            "sum": self._total_sum,
            "window_s": self._ring.window_s,
            "window_count": float(self.window_count()),
            "rate_1m": self.window_count(one_m) / one_m,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }
