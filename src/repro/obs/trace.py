"""Structured trace emission: JSON-lines event sinks.

A trace is a flat stream of dict events — one JSON object per line when
written to disk — mirroring what the simulator and the algorithm layers
did: job arrivals, readiness transitions, task placements, preemptions,
completions, deadline misses, admission decisions, failure injections.

Every event carries at least ``ts`` (wall-clock seconds), ``seq`` (a
per-sink monotonic sequence number, so interleaved readers can re-order)
and ``type`` (one of :data:`EVENT_TYPES` for engine-emitted events; other
layers may add their own).  Everything else is event-specific payload.

Sinks are tiny and injectable:

* :class:`NullSink` — the default; ``enabled`` is False so emitting layers
  can skip building payload dicts entirely.
* :class:`MemorySink` — collects events in a list (tests, notebooks).
* :class:`JsonlSink` — appends JSON lines to a file.

``read_trace`` parses a JSONL file back into event dicts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO, Iterable

__all__ = [
    "EVENT_TYPES",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "TraceSink",
    "read_trace",
]

#: Event types the instrumented stack emits (see docs/OBSERVABILITY.md for
#: each type's payload fields).  Other layers may emit additional types;
#: consumers should ignore types they do not know.
EVENT_TYPES: tuple[str, ...] = (
    "run_start",
    "workflow_arrived",
    "job_arrived",
    "job_ready",
    "task_placement",
    "job_preempted",
    "job_completed",
    "job_setback",
    "workflow_completed",
    "workflow_deadline_miss",
    "admission_accept",
    "admission_reject",
    "plan_fallback",
    "plan_recovered",
    "run_end",
)


class TraceSink:
    """Base sink: receives event dicts; subclasses decide where they go."""

    #: False only for :class:`NullSink`; emitters consult this to skip all
    #: trace work (payload construction included) on the disabled path.
    enabled: bool = True

    def __init__(self) -> None:
        self._seq = 0

    def emit(self, event: dict) -> None:
        """Stamp ``ts``/``seq`` (when absent) and hand off to ``write``."""
        event.setdefault("ts", time.time())
        event["seq"] = self._seq
        self._seq += 1
        self.write(event)

    def write(self, event: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""

    def flush(self) -> None:
        """Force buffered events to their destination (default: no-op)."""

    @property
    def n_events(self) -> int:
        return self._seq

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullSink(TraceSink):
    """The disabled sink: emitting is a no-op and ``enabled`` is False."""

    enabled = False

    def emit(self, event: dict) -> None:  # pragma: no cover - trivial
        pass

    def write(self, event: dict) -> None:  # pragma: no cover - trivial
        pass


class MemorySink(TraceSink):
    """Collects events in ``self.events`` (tests and interactive use)."""

    def __init__(self) -> None:
        super().__init__()
        self.events: list[dict] = []

    def write(self, event: dict) -> None:
        self.events.append(event)

    def of_type(self, event_type: str) -> list[dict]:
        return [e for e in self.events if e.get("type") == event_type]


class JsonlSink(TraceSink):
    """Appends one JSON object per line to *path* (created/truncated)."""

    def __init__(self, path: str | Path):
        super().__init__()
        self.path = Path(path)
        self._file: IO[str] | None = self.path.open("w")

    def write(self, event: dict) -> None:
        if self._file is None:
            raise ValueError(f"trace sink for {self.path} is closed")
        json.dump(event, self._file, separators=(",", ":"), default=str)
        self._file.write("\n")

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()


def read_trace(path: str | Path) -> list[dict]:
    """Parse a JSONL trace file back into a list of event dicts."""
    events = []
    with Path(path).open() as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_no}: malformed trace line: {error}"
                ) from None
    return events


def count_by_type(events: Iterable[dict]) -> dict[str, int]:
    """Event-type histogram of a parsed trace (reporting convenience)."""
    counts: dict[str, int] = {}
    for event in events:
        kind = event.get("type", "?")
        counts[kind] = counts.get(kind, 0) + 1
    return counts
