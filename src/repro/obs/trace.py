"""Structured trace emission: JSON-lines event sinks.

A trace is a flat stream of dict events — one JSON object per line when
written to disk — mirroring what the simulator and the algorithm layers
did: job arrivals, readiness transitions, task placements, preemptions,
completions, deadline misses, admission decisions, failure injections.

Every event carries at least ``ts`` (wall-clock seconds), ``seq`` (a
per-sink monotonic sequence number, so interleaved readers can re-order)
and ``type`` (one of :data:`EVENT_TYPES` for engine-emitted events; other
layers may add their own).  Everything else is event-specific payload.

Sinks are tiny and injectable:

* :class:`NullSink` — the default; ``enabled`` is False so emitting layers
  can skip building payload dicts entirely.
* :class:`MemorySink` — collects events in a list (tests, notebooks).
* :class:`JsonlSink` — appends JSON lines to a file.

``read_trace`` parses a JSONL file back into event dicts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO, Iterable

__all__ = [
    "EVENT_SCHEMA",
    "EVENT_TYPES",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "TraceSink",
    "read_trace",
]

#: Required payload fields per event type — the trace schema contract.
#: Every event type emitted anywhere in the stack MUST be declared here
#: with the fields a consumer may rely on (events may carry more, e.g. the
#: optional ``request_id`` correlation stamp and ``workflow_id`` on job
#: events).  tests/test_trace_schema.py enforces both directions: every
#: emission site uses a declared type, and every emitted event carries its
#: type's required fields — schema drift fails CI instead of silently
#: breaking downstream consumers.
EVENT_SCHEMA: dict[str, tuple[str, ...]] = {
    # engine lifecycle
    "run_start": ("scheduler", "n_jobs", "n_workflows", "slot_seconds"),
    "run_end": ("n_slots", "finished"),
    # engine-emitted workload events
    "workflow_arrived": ("slot", "workflow_id"),
    "job_arrived": ("slot", "job_id"),
    "job_ready": ("slot", "job_id", "workflow_id"),
    "task_placement": ("slot", "job_id", "units"),
    "job_preempted": ("slot", "job_id"),
    "job_completed": ("slot", "job_id"),
    "job_setback": ("slot", "job_id", "lost_units"),
    "workflow_completed": ("slot", "workflow_id"),
    "workflow_withdrawn": ("slot", "workflow_id"),
    "workflow_deadline_miss": ("slot", "workflow_id", "deadline_slot"),
    # admission control
    "admission_accept": ("workflow_id", "slot", "utilisation"),
    "admission_reject": ("workflow_id", "slot", "shortfall_units", "utilisation"),
    # planner degradation
    "plan_fallback": ("slot", "reason", "backend"),
    "plan_recovered": ("slot",),
    # service lifecycle
    "service_start": ("scheduler", "realtime"),
    "service_stop": ("slot", "killed"),
    "service_drain_start": ("slot",),
    "service_recovered": ("journal", "n_recovered", "n_skipped"),
    # cluster supervision (failure detector + supervisor)
    "shard_state_changed": ("shard", "was", "now"),
    "shard_restarted": ("shard",),
    "shard_failed_over": ("shard", "n_rehomed", "n_unplaced"),
    "shard_fenced": ("shard", "n_fenced"),
    # opt-in per-phase span records (Observability(trace_spans=True))
    "span": ("name", "seconds"),
}

#: Event types the instrumented stack emits (see docs/OBSERVABILITY.md for
#: each type's payload fields).  Other layers may emit additional types;
#: consumers should ignore types they do not know.
EVENT_TYPES: tuple[str, ...] = tuple(EVENT_SCHEMA)


class TraceSink:
    """Base sink: receives event dicts; subclasses decide where they go."""

    #: False only for :class:`NullSink`; emitters consult this to skip all
    #: trace work (payload construction included) on the disabled path.
    enabled: bool = True

    def __init__(self) -> None:
        self._seq = 0

    def emit(self, event: dict) -> None:
        """Stamp ``ts``/``seq`` (when absent) and hand off to ``write``."""
        event.setdefault("ts", time.time())
        event["seq"] = self._seq
        self._seq += 1
        self.write(event)

    def write(self, event: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""

    def flush(self) -> None:
        """Force buffered events to their destination (default: no-op)."""

    @property
    def n_events(self) -> int:
        return self._seq

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullSink(TraceSink):
    """The disabled sink: emitting is a no-op and ``enabled`` is False."""

    enabled = False

    def emit(self, event: dict) -> None:  # pragma: no cover - trivial
        pass

    def write(self, event: dict) -> None:  # pragma: no cover - trivial
        pass


class MemorySink(TraceSink):
    """Collects events in ``self.events`` (tests and interactive use)."""

    def __init__(self) -> None:
        super().__init__()
        self.events: list[dict] = []

    def write(self, event: dict) -> None:
        self.events.append(event)

    def of_type(self, event_type: str) -> list[dict]:
        return [e for e in self.events if e.get("type") == event_type]


class JsonlSink(TraceSink):
    """Appends one JSON object per line to *path* (created/truncated).

    With ``max_bytes`` set the file is size-capped: when the next line
    would push past the cap, the current file rotates to ``path.1`` (older
    generations shift to ``path.2`` ... ``path.<backups>``, the oldest is
    dropped) and writing restarts on a fresh file.  A long-running
    ``repro serve --trace-out ... --trace-rotate-mb N`` therefore occupies
    at most ``(backups + 1) * max_bytes`` on disk instead of filling it.
    Sequence numbers keep counting across rotations, so readers stitching
    generations back together can re-order and detect gaps.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        max_bytes: int | None = None,
        backups: int = 3,
    ):
        super().__init__()
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if backups < 0:
            raise ValueError(f"backups must be >= 0, got {backups}")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self.rotations = 0
        self._bytes = 0
        self._file: IO[str] | None = self.path.open("w")

    def write(self, event: dict) -> None:
        if self._file is None:
            raise ValueError(f"trace sink for {self.path} is closed")
        line = json.dumps(event, separators=(",", ":"), default=str) + "\n"
        if (
            self.max_bytes is not None
            and self._bytes > 0
            and self._bytes + len(line) > self.max_bytes
        ):
            self._rotate()
        self._file.write(line)
        self._bytes += len(line)

    def _rotate(self) -> None:
        """Shift path -> path.1 -> ... -> path.<backups>; reopen fresh."""
        assert self._file is not None
        self._file.close()
        if self.backups > 0:
            oldest = self.path.with_name(f"{self.path.name}.{self.backups}")
            oldest.unlink(missing_ok=True)
            for i in range(self.backups - 1, 0, -1):
                src = self.path.with_name(f"{self.path.name}.{i}")
                if src.exists():
                    src.rename(self.path.with_name(f"{self.path.name}.{i + 1}"))
            self.path.rename(self.path.with_name(f"{self.path.name}.1"))
        self._file = self.path.open("w")
        self._bytes = 0
        self.rotations += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()


def read_trace(path: str | Path) -> list[dict]:
    """Parse a JSONL trace file back into a list of event dicts."""
    events = []
    with Path(path).open() as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_no}: malformed trace line: {error}"
                ) from None
    return events


def count_by_type(events: Iterable[dict]) -> dict[str, int]:
    """Event-type histogram of a parsed trace (reporting convenience)."""
    counts: dict[str, int] = {}
    for event in events:
        kind = event.get("type", "?")
        counts[kind] = counts.get(kind, 0) + 1
    return counts
