"""Estimators over prior-run history."""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.estimation.history import RunHistory


def quantile_estimate(samples: np.ndarray, quantile: float = 0.95) -> float:
    """Robust quantile estimate (Morpheus-style SLO inference uses high
    quantiles so that the inferred deadline covers most historical runs)."""
    if samples.size == 0:
        raise ValueError("cannot estimate from an empty sample")
    if not 0.0 <= quantile <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {quantile}")
    return float(np.quantile(samples, quantile))


def estimate_job_offsets(
    history: RunHistory,
    template: str,
    job_ids: list[str],
    *,
    quantile: float = 0.95,
) -> Mapping[str, tuple[float, float]]:
    """Per-job (start, completion) offset estimates, in slots.

    Offsets are relative to the workflow start, normalised by nothing —
    callers scale by the current deadline window over the historical
    makespan estimate.  Raises KeyError when the template has no history.
    """
    if not history.has(template):
        raise KeyError(f"no history for template {template!r}")
    estimates: dict[str, tuple[float, float]] = {}
    for job_id in job_ids:
        starts = history.start_offsets(template, job_id)
        completions = history.completion_offsets(template, job_id)
        if starts.size == 0 or completions.size == 0:
            raise KeyError(f"no observations for job {job_id!r} in {template!r}")
        # Starts use a *low* quantile (earliest the job historically could
        # begin), completions a high one (latest it historically finished).
        estimates[job_id] = (
            float(np.quantile(starts, 1.0 - quantile)),
            quantile_estimate(completions, quantile),
        )
    return estimates


def estimated_makespan(
    history: RunHistory, template: str, *, quantile: float = 0.95
) -> float:
    makespans = history.makespans(template)
    if makespans.size == 0:
        raise KeyError(f"no history for template {template!r}")
    return quantile_estimate(makespans, quantile)
