"""Prior-run observations of recurring workflows.

Morpheus [5] infers per-job deadlines from the completion times observed in
prior runs of the same recurring workflow — without consulting the DAG.
:class:`RunHistory` is that observation store; :func:`synthesize_history`
fabricates plausible prior runs for a workflow (level-by-level execution
with multiplicative noise), standing in for the production logs we do not
have (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.decomposition import _set_min_runtime  # shared level timing
from repro.core.toposort import grouped_topological_sets
from repro.model.cluster import ClusterCapacity
from repro.model.workflow import Workflow


def local_job_id(workflow_id: str, job_id: str) -> str:
    """Instance-independent job key.

    Recurring instances prefix job ids with the instance workflow id
    (``wf@3-extract``); history must be keyed by the part that is stable
    across runs.  Strips a leading ``"{workflow_id}-"`` when present.
    """
    prefix = f"{workflow_id}-"
    return job_id[len(prefix):] if job_id.startswith(prefix) else job_id


@dataclass(frozen=True)
class JobObservation:
    """One job's timing within one historical workflow run (slot offsets)."""

    job_id: str
    start_offset: int
    completion_offset: int

    def __post_init__(self) -> None:
        if self.start_offset < 0 or self.completion_offset <= self.start_offset:
            raise ValueError(
                f"bad observation for {self.job_id}: "
                f"[{self.start_offset}, {self.completion_offset}]"
            )


@dataclass(frozen=True)
class WorkflowRun:
    """One full historical run: per-job observations plus the makespan."""

    observations: Mapping[str, JobObservation]
    makespan: int

    def __post_init__(self) -> None:
        if self.makespan < 1:
            raise ValueError("makespan must be >= 1 slot")


@dataclass
class RunHistory:
    """Observed prior runs, keyed by recurring-workflow template name."""

    runs: dict[str, list[WorkflowRun]] = field(default_factory=dict)

    def add(self, template: str, run: WorkflowRun) -> None:
        self.runs.setdefault(template, []).append(run)

    def runs_for(self, template: str) -> list[WorkflowRun]:
        return list(self.runs.get(template, []))

    def has(self, template: str) -> bool:
        return bool(self.runs.get(template))

    def completion_offsets(self, template: str, job_id: str) -> np.ndarray:
        values = [
            run.observations[job_id].completion_offset
            for run in self.runs.get(template, [])
            if job_id in run.observations
        ]
        return np.asarray(values, dtype=float)

    def start_offsets(self, template: str, job_id: str) -> np.ndarray:
        values = [
            run.observations[job_id].start_offset
            for run in self.runs.get(template, [])
            if job_id in run.observations
        ]
        return np.asarray(values, dtype=float)

    def makespans(self, template: str) -> np.ndarray:
        return np.asarray(
            [run.makespan for run in self.runs.get(template, [])], dtype=float
        )


def synthesize_history(
    workflow: Workflow,
    capacity: ClusterCapacity,
    *,
    template: str | None = None,
    runs: int = 5,
    noise: float = 0.15,
    seed: int = 0,
) -> RunHistory:
    """Fabricate prior-run observations by replaying the workflow's levels.

    Each synthetic run executes the grouped topological levels back to back,
    each level taking its cluster-aware minimum runtime scaled by a
    log-normal-ish multiplicative noise factor — the signature a solo run of
    the workflow on the cluster would leave in the logs.

    Args:
        workflow: the recurring workflow.
        capacity: cluster it historically ran on.
        template: history key (default: the workflow's name or id).
        runs: number of synthetic prior runs.
        noise: relative noise on each level's duration (0 = deterministic).
        seed: RNG seed for reproducibility.
    """
    if runs < 1:
        raise ValueError("need at least one synthetic run")
    rng = np.random.default_rng(seed)
    key = template or workflow.name or workflow.workflow_id
    levels = grouped_topological_sets(workflow)
    base_durations = [
        _set_min_runtime(workflow, level, capacity, cluster_aware=True)
        for level in levels
    ]
    history = RunHistory()
    for _ in range(runs):
        offset = 0
        observations: dict[str, JobObservation] = {}
        for level, base in zip(levels, base_durations):
            factor = max(1.0 + rng.normal(0.0, noise), 0.25)
            duration = max(int(round(base * factor)), 1)
            for job_id in level:
                local = local_job_id(workflow.workflow_id, job_id)
                observations[local] = JobObservation(
                    job_id=local,
                    start_offset=offset,
                    completion_offset=offset + duration,
                )
            offset += duration
        history.add(key, WorkflowRun(observations=observations, makespan=offset))
    return history
