"""Estimation-error injection (Sec. III, "robustness to estimation errors").

"The input data or the code may have changed in different runs of the same
jobs, which will lead to estimation errors ... Both underestimations or
overestimations are possible."  We reproduce this by keeping the scheduler's
*believed* task structure (``Job.tasks``) and replacing the structure the
simulator *executes* (``Job.true_tasks``) with a perturbed copy: a
multiplicative factor on task duration (the dominant error source for
recurring jobs — input sizes drift, code changes).

``factor > 1`` means the job truly runs longer than estimated
(underestimation by the scheduler); ``factor < 1`` the opposite.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

import numpy as np

from repro.model.job import Job, TaskSpec
from repro.model.workflow import Workflow


@dataclass(frozen=True)
class ErrorModel:
    """Multiplicative duration error: true = estimate * factor.

    Factors are drawn uniformly from ``[low, high]`` per job.  ``low == high``
    gives a deterministic sweep point (e.g. the 1.3x underestimation of the
    EXT-1 experiment).
    """

    low: float = 1.0
    high: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.low <= self.high:
            raise ValueError(f"need 0 < low <= high, got [{self.low}, {self.high}]")

    def draw(self, rng: np.random.Generator) -> float:
        if self.low == self.high:
            return self.low
        return float(rng.uniform(self.low, self.high))


def perturb_spec(spec: TaskSpec, factor: float) -> TaskSpec:
    """True task structure after a duration error of *factor*."""
    duration = max(int(round(spec.duration_slots * factor)), 1)
    return TaskSpec(count=spec.count, duration_slots=duration, demand=spec.demand)


def apply_estimation_errors(
    jobs: Iterable[Job], model: ErrorModel, *, seed: int = 0
) -> list[Job]:
    """Return copies of *jobs* whose true structure deviates per *model*."""
    rng = np.random.default_rng(seed)
    out = []
    for job in jobs:
        factor = model.draw(rng)
        out.append(replace(job, true_tasks=perturb_spec(job.tasks, factor)))
    return out


def apply_workflow_estimation_errors(
    workflow: Workflow, model: ErrorModel, *, seed: int = 0
) -> Workflow:
    """A workflow whose jobs truly run per *model* while estimates stay put."""
    perturbed = apply_estimation_errors(workflow.jobs, model, seed=seed)
    return replace(workflow, jobs=tuple(perturbed))
