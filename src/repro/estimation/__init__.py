"""Estimates from prior runs, and the errors they carry.

Deadline-aware workflows recur (Sec. II-A), so task running times and
resource demands are estimated from history.  This package provides:

* :mod:`repro.estimation.history` — a store of per-run job timings plus a
  synthesiser that fabricates plausible prior-run observations for a
  workflow (used by the Morpheus baseline, which infers job deadlines from
  history instead of using DAG structure);
* :mod:`repro.estimation.estimator` — quantile/mean estimators over history;
* :mod:`repro.estimation.errors` — estimation-error injection: give the
  scheduler a *believed* task structure while the simulator executes the
  truth (Sec. III "robustness to estimation errors").
"""

from repro.estimation.errors import ErrorModel, apply_estimation_errors
from repro.estimation.estimator import estimate_job_offsets, quantile_estimate
from repro.estimation.history import JobObservation, RunHistory, WorkflowRun, synthesize_history

__all__ = [
    "ErrorModel",
    "JobObservation",
    "RunHistory",
    "WorkflowRun",
    "apply_estimation_errors",
    "estimate_job_offsets",
    "quantile_estimate",
    "synthesize_history",
]
