"""Skyline rebalancer: move slack work from saturated to idle shards.

Hash routing balances *submissions*, not *demand*: one tenant can pile
heavy workflows onto its home shard while a neighbour idles.  The
rebalancer periodically compares per-shard **demand skylines** — the
committed deadline load over the remaining horizon as a fraction of each
shard's capacity (:meth:`SchedulerService.demand_skyline`) — and when
the spread between the most and least saturated shard exceeds a
threshold, migrates a bounded number of *not-yet-started* workflows from
the saturated shard to the slack one.

Each move runs the two-phase protocol (docs/SHARDING.md):

1. ``migrate_out`` on the source — journals a tombstone embedding the
   workflow and its idempotency key, withdraws it from the engine;
2. ``migrate_in`` on the destination — re-runs admission against the
   destination's slice (a move must never overload the receiver),
   journals on accept with the key pinned;
3. settle: accepted → ``confirm`` on the source; *definitively* rejected
   → ``restore`` on the source (accepted stays accepted, just not moved).

A transport failure in step 2 is the dangerous case: the handoff may or
may not have landed.  The rebalancer then does **nothing** — the
tombstone stays an orphan and the router's ``reconcile`` (run at the top
of every cycle) later asks the destination who owns it.  Restoring
blindly here is exactly how a workflow gets duplicated.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.cluster.router import ShardRouter
from repro.obs import Observability

__all__ = ["RebalanceConfig", "Rebalancer"]

_SHARD_ERRORS = (RuntimeError, TimeoutError, OSError)


@dataclass(frozen=True)
class RebalanceConfig:
    """Rebalancing policy knobs.

    Attributes:
        saturation_gap: minimum spread between the most and least
            saturated shard's skyline before any move is considered —
            below it the fleet counts as balanced.
        min_saturation: the source must be at least this saturated;
            an under-loaded fleet is left alone even if skewed.
        max_moves: migrations per cycle — rebalancing is a trickle, not
            a stampede (each move costs a re-admission on the receiver).
        candidate_factor: how many candidates to fetch per allowed move
            (some will fail re-admission or start running mid-flight).
    """

    saturation_gap: float = 0.25
    min_saturation: float = 0.5
    max_moves: int = 2
    candidate_factor: int = 2

    def __post_init__(self) -> None:
        if self.saturation_gap < 0:
            raise ValueError("saturation_gap must be >= 0")
        if self.max_moves < 1:
            raise ValueError("max_moves must be >= 1")
        if self.candidate_factor < 1:
            raise ValueError("candidate_factor must be >= 1")


class Rebalancer:
    """Drives migration cycles over a :class:`ShardRouter`'s fleet."""

    def __init__(
        self,
        router: ShardRouter,
        config: RebalanceConfig | None = None,
        *,
        obs: Observability | None = None,
    ):
        self.router = router
        self.config = config or RebalanceConfig()
        self.obs = obs if obs is not None else router.obs
        self._epoch = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def epoch(self) -> int:
        """Monotonic migration epoch (stamps every handoff)."""
        return self._epoch

    # -- one cycle ---------------------------------------------------------------

    def cycle(self) -> dict:
        """Reconcile, measure skylines, and migrate at most
        ``max_moves`` workflows from the hottest to the coolest shard."""
        summary: dict = {
            "reconcile": self.router.reconcile(),
            "moved": 0,
            "attempted": 0,
            "moves": [],
        }
        skylines: list[tuple[float, str, object]] = []
        for shard in self.router.shards:
            if not self._alive(shard):
                continue
            try:
                skyline = shard.skyline()
            except _SHARD_ERRORS:
                continue
            skylines.append(
                (float(skyline.get("saturation", 0.0)), shard.name, shard)
            )
        if len(skylines) < 2:
            summary["skipped"] = "fewer than two reachable shards"
            return summary
        skylines.sort(key=lambda entry: entry[:2])
        low_sat, _, dest = skylines[0]
        high_sat, _, source = skylines[-1]
        summary["saturation"] = {"max": high_sat, "min": low_sat}
        if (
            high_sat - low_sat < self.config.saturation_gap
            or high_sat < self.config.min_saturation
        ):
            summary["skipped"] = "balanced"
            return summary
        try:
            candidates = source.candidates(
                self.config.max_moves * self.config.candidate_factor
            )
        except _SHARD_ERRORS:
            summary["skipped"] = "source unreachable"
            return summary
        for candidate in candidates:
            if summary["moved"] >= self.config.max_moves:
                break
            workflow_id = candidate["workflow_id"]
            summary["attempted"] += 1
            moved = self.migrate_workflow(workflow_id, source, dest)
            summary["moves"].append(
                {
                    "workflow_id": workflow_id,
                    "from": source.name,
                    "to": dest.name,
                    "moved": moved,
                }
            )
            if moved:
                summary["moved"] += 1
        return summary

    def migrate_workflow(self, workflow_id: str, source, dest) -> bool:
        """One two-phase handoff; True when the destination owns it."""
        self._epoch += 1
        epoch = self._epoch
        try:
            handoff = source.migrate_out(
                workflow_id, dest=dest.name, epoch=epoch
            )
        except (*_SHARD_ERRORS, ValueError):
            # Unknown, already started, or source gone: nothing moved.
            return False
        workflow, key = handoff["workflow"], handoff["key"]
        try:
            result = dest.migrate_in(workflow, key=key, epoch=epoch)
        except _SHARD_ERRORS:
            result = None
        if result is not None and result.accepted:
            self.router.record_placement(workflow_id, dest.name, epoch=epoch)
            self.obs.counter("rebalance.moved").inc()
            try:
                source.confirm(workflow_id, epoch=epoch)
            except _SHARD_ERRORS:
                pass  # tombstone stays; the next reconcile confirms it
            return True
        if result is not None:
            # Definitive rejection (e.g. infeasible on the destination's
            # slice): the workflow stays accepted on its source shard.
            self.obs.counter("rebalance.rejected").inc()
            try:
                source.restore(workflow, key=key)
                self.router.record_placement(workflow_id, source.name)
            except _SHARD_ERRORS:
                pass  # orphan; reconcile restores it
        else:
            # Transport failure: ownership unknown — do NOT restore (the
            # handoff may have landed).  Reconcile settles the orphan.
            self.obs.counter("rebalance.unsettled").inc()
        return False

    def _alive(self, shard) -> bool:
        # The router knows best: cached failure-detector verdict when one
        # is attached, inline probe otherwise.
        return self.router.shard_alive(shard)

    # -- background loop ---------------------------------------------------------

    def start(self, interval_s: float) -> "Rebalancer":
        """Run :meth:`cycle` every *interval_s* seconds on a daemon thread."""
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if self._thread is not None:
            raise RuntimeError("rebalancer already started")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval_s):
                try:
                    self.cycle()
                except Exception:
                    # A failed cycle must not kill the loop; the next one
                    # starts from reconcile anyway.
                    self.obs.counter("rebalance.cycle_errors").inc()

        self._thread = threading.Thread(
            target=loop, name="repro-rebalancer", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
