"""Shard handles: one uniform surface over local and remote shards.

The router and rebalancer never talk to a :class:`SchedulerService` or an
HTTP client directly — they drive a *shard handle*, which exposes the
submission surface, the migration protocol, and the skyline/candidate
queries behind one duck-typed interface:

* :class:`LocalShard` wraps an in-process service (benchmarks, tests, and
  ``repro serve --shards N``, where all shards live in one process).  It
  also exposes crash simulation: :meth:`LocalShard.kill` hard-stops the
  service mid-flight and :meth:`LocalShard.restart` brings up a fresh
  service on the *same journal*, exactly like a crashed process
  restarting.
* :class:`RemoteShard` speaks JSON-over-HTTP to a ``repro serve`` process
  via :class:`~repro.service.client.HttpServiceClient`, using the
  ``/shard/*`` endpoints for migration traffic.  Its lifecycle (start,
  kill, restart) is owned by whoever runs the process — e.g.
  ``scripts/shard_smoke.py`` SIGKILLs and relaunches real subprocesses.

Both normalise ad-hoc backpressure to a *returned* ``queue_full``
:class:`~repro.service.api.SubmitResult` (never an exception) so the
router's spill logic can treat every shard answer uniformly.
"""

from __future__ import annotations

from typing import Optional
from urllib.parse import quote

from repro.model.cluster import ClusterCapacity
from repro.model.job import Job
from repro.model.workflow import Workflow
from repro.obs import Observability
from repro.service.api import QueueFullError, ServiceConfig, ServiceStatus, SubmitResult
from repro.service.client import CircuitBreaker, HttpServiceClient
from repro.service.core import SchedulerService
from repro.workloads.traces import workflow_from_dict, workflow_to_dict

__all__ = ["LocalShard", "RemoteShard"]


def _shed_to_result(error: QueueFullError, job_id: str) -> SubmitResult:
    return SubmitResult(
        accepted=False,
        kind="adhoc",
        id=job_id,
        reason="queue_full",
        queue_depth=error.queue_depth,
    )


class LocalShard:
    """An in-process scheduler shard owning one capacity slice.

    The shard owns its full service stack — journal, plan cache, solver,
    observability registry — so per-shard metrics never collide and a
    kill/restart replays exactly this shard's journal.
    """

    def __init__(
        self,
        name: str,
        cluster: ClusterCapacity,
        config: ServiceConfig | None = None,
        *,
        obs_factory=Observability,
    ):
        if not name:
            raise ValueError("shard name must be non-empty")
        self.name = name
        self.cluster = cluster
        self.config = config or ServiceConfig()
        self._obs_factory = obs_factory
        self.service: Optional[SchedulerService] = None

    @property
    def journal_path(self) -> str | None:
        """Where this shard's write-ahead journal lives (None when
        unjournaled).  The supervisor reads it to fail over a shard that
        stays dead."""
        return self.config.journal_path

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "LocalShard":
        self.service = SchedulerService(
            self.cluster, self.config, obs=self._obs_factory()
        ).start()
        return self

    def alive(self) -> bool:
        return self.service is not None and self.service.running

    def kill(self) -> None:
        """Crash simulation: hard-stop without drain (journal left as-is)."""
        if self.service is not None:
            self.service.kill()

    def restart(self) -> "LocalShard":
        """Bring up a fresh service on the same config — and therefore the
        same journal, which is replayed (accepted work and unconfirmed
        migration tombstones recovered) exactly as a restarted process
        would."""
        return self.start()

    def drain(self, timeout: float | None = None):
        return self._service().drain(timeout)

    def _service(self) -> SchedulerService:
        if self.service is None:
            raise RuntimeError(f"shard {self.name!r} was never started")
        return self.service

    # -- submission --------------------------------------------------------------

    def submit_workflow(
        self,
        workflow: Workflow,
        *,
        idempotency_key: str | None = None,
        request_id: str | None = None,
    ) -> SubmitResult:
        return self._service().submit_workflow(
            workflow, idempotency_key=idempotency_key, request_id=request_id
        )

    def submit_adhoc(
        self,
        job: Job,
        *,
        idempotency_key: str | None = None,
        request_id: str | None = None,
    ) -> SubmitResult:
        return self._service().submit_adhoc(
            job, idempotency_key=idempotency_key, request_id=request_id
        )

    # -- queries -----------------------------------------------------------------

    def status(self) -> ServiceStatus:
        return self._service().status()

    def metrics(self) -> dict:
        return self._service().metrics_snapshot()

    def slo(self) -> dict:
        return self._service().slo_snapshot()

    def queue_depth(self) -> int:
        return self._service().status().queue_depth

    # -- migration protocol ------------------------------------------------------

    def skyline(self) -> dict:
        return self._service().demand_skyline()

    def candidates(self, max_n: int = 8) -> list[dict]:
        return self._service().migration_candidates(max_n)

    def orphans(self) -> dict[str, dict]:
        return self._service().orphan_info()

    def workflow_ids(self) -> list[str]:
        return self._service().workflow_ids()

    def owns(self, workflow_id: str) -> bool:
        return self._service().owns_workflow(workflow_id)

    def migrate_out(self, workflow_id: str, *, dest: str, epoch: int) -> dict:
        return self._service().migrate_out(workflow_id, dest=dest, epoch=epoch)

    def migrate_in(
        self, workflow: Workflow, *, key: str | None = None, epoch: int = 0
    ) -> SubmitResult:
        return self._service().migrate_in(workflow, key=key, epoch=epoch)

    def restore(
        self, workflow: Workflow, *, key: str | None = None
    ) -> SubmitResult:
        return self._service().restore_workflow(workflow, key=key)

    def restore_orphan(self, workflow_id: str) -> SubmitResult:
        return self._service().restore_orphan(workflow_id)

    def confirm(self, workflow_id: str, *, epoch: int) -> dict:
        return self._service().confirm_migration(workflow_id, epoch=epoch)


class RemoteShard:
    """A shard served by a separate ``repro serve`` process.

    All traffic goes through the retrying HTTP client; migration calls
    use the ``/shard/*`` surface.  ``alive()`` is the liveness probe — a
    SIGKILLed process answers nothing and simply reads as dead until its
    supervisor restarts it on the same journal.

    Args:
        name: shard name (stamped into results by the router).
        url: the shard's server root.
        client: custom :class:`HttpServiceClient`; when omitted, one is
            built with a per-shard :class:`CircuitBreaker` (named after
            the shard, wired to ``obs`` when given) so a hung process
            costs one timeout, not one per call.
        journal_path: where this shard's journal lives *as seen from the
            supervisor's filesystem* — needed only for journal-driven
            failover of shards on shared/local storage.
        obs: observability registry for the default client's breaker
            gauges/counters.
    """

    def __init__(
        self,
        name: str,
        url: str,
        *,
        client: HttpServiceClient | None = None,
        journal_path: str | None = None,
        obs: Observability | None = None,
    ):
        if not name:
            raise ValueError("shard name must be non-empty")
        self.name = name
        self.url = url.rstrip("/")
        self.journal_path = journal_path
        if client is None:
            client = HttpServiceClient(
                self.url,
                breaker=CircuitBreaker(name=name, obs=obs),
            )
        self.client = client

    # -- lifecycle ---------------------------------------------------------------

    def alive(self) -> bool:
        return self.client.healthy()

    # -- submission --------------------------------------------------------------

    def submit_workflow(
        self,
        workflow: Workflow,
        *,
        idempotency_key: str | None = None,
        request_id: str | None = None,
    ) -> SubmitResult:
        return self.client.submit_workflow(
            workflow, idempotency_key=idempotency_key, request_id=request_id
        )

    def submit_adhoc(
        self,
        job: Job,
        *,
        idempotency_key: str | None = None,
        request_id: str | None = None,
    ) -> SubmitResult:
        try:
            return self.client.submit_adhoc(
                job, idempotency_key=idempotency_key, request_id=request_id
            )
        except QueueFullError as error:
            return _shed_to_result(error, job.job_id)

    # -- queries -----------------------------------------------------------------

    def status(self) -> ServiceStatus:
        return self.client.status()

    def metrics(self) -> dict:
        return self.client.metrics()

    def slo(self) -> dict:
        return self.client.slo()

    def queue_depth(self) -> int:
        return self.client.status().queue_depth

    # -- migration protocol ------------------------------------------------------

    def skyline(self) -> dict:
        return self.client.request_json("GET", "/shard/skyline")

    def candidates(self, max_n: int = 8) -> list[dict]:
        body = self.client.request_json(
            "GET", f"/shard/candidates?max={int(max_n)}"
        )
        return list(body.get("candidates", []))

    def orphans(self) -> dict[str, dict]:
        body = self.client.request_json("GET", "/shard/orphans")
        return dict(body.get("orphans", {}))

    def workflow_ids(self) -> list[str]:
        body = self.client.request_json("GET", "/shard/workflows")
        return list(body.get("workflows", []))

    def owns(self, workflow_id: str) -> bool:
        body = self.client.request_json(
            "GET", f"/shard/owns?workflow={quote(workflow_id, safe='')}"
        )
        return bool(body.get("owns"))

    def migrate_out(self, workflow_id: str, *, dest: str, epoch: int) -> dict:
        body = self.client.request_json(
            "POST",
            "/shard/migrate-out",
            {"workflow_id": workflow_id, "dest": dest, "epoch": epoch},
        )
        return {
            "workflow": workflow_from_dict(body["workflow"]),
            "key": body.get("key"),
            "epoch": int(body.get("epoch", epoch)),
        }

    def migrate_in(
        self, workflow: Workflow, *, key: str | None = None, epoch: int = 0
    ) -> SubmitResult:
        body = self.client.request_json(
            "POST",
            "/shard/migrate-in",
            {"workflow": workflow_to_dict(workflow), "key": key, "epoch": epoch},
        )
        return SubmitResult.from_dict(body)

    def restore(
        self, workflow: Workflow, *, key: str | None = None
    ) -> SubmitResult:
        body = self.client.request_json(
            "POST",
            "/shard/restore",
            {"workflow": workflow_to_dict(workflow), "key": key},
        )
        return SubmitResult.from_dict(body)

    def restore_orphan(self, workflow_id: str) -> SubmitResult:
        body = self.client.request_json(
            "POST", "/shard/restore", {"workflow_id": workflow_id}
        )
        return SubmitResult.from_dict(body)

    def confirm(self, workflow_id: str, *, epoch: int) -> dict:
        return self.client.request_json(
            "POST",
            "/shard/confirm",
            {"workflow_id": workflow_id, "epoch": epoch},
        )
