"""Shard router: one submission frontend over N scheduler shards.

Routing is deterministic consistent hashing — ``crc32(route_key) % N``
over the *route key* of the entity id.  Ids of the form
``tenant/anything`` hash on the tenant prefix, so one tenant's workflows
co-locate on one shard (their admission decisions see each other);
everything else hashes on the full id.  A placement map (populated by
migrations) overrides the hash per workflow id, so a rebalanced workflow
keeps resolving to the shard that actually owns it.

Admission is *delegated*: the router never decides, it forwards to the
owning shard and stamps the answering shard's name onto the
:class:`~repro.service.api.SubmitResult`.  Deadline workflows have a
fixed home — if that shard rejects or is merely unreachable, that is the
answer (spilling a workflow would break the placement map's determinism
and double-hash its idempotency key).  The one exception is a home shard
the failure detector has declared **dead**: then the workflow is
*rerouted* to a deterministic fallback shard and its placement pinned
there, so new deadline work keeps landing while the supervisor re-homes
the dead shard's existing commitments (docs/ROBUSTNESS.md).  Ad-hoc jobs
are best-effort leftovers soakers, so they *spill*: on backpressure
(``queue_full``), drain (``draining``), or a dead shard, the router
retries the submission on the live shard with the shallowest ad-hoc
queue.

Liveness: when a :class:`~repro.cluster.failover.FailureDetector` is
attached, every liveness question the router asks — spill order, status,
reconcile — consults the detector's *cached* verdict instead of probing
the shard inline, so one hung remote cannot add a full client timeout to
every submission.  Shards the detector has not probed yet fall back to
the inline probe (cold-start behaves exactly like the detector-less
router).

The router also aggregates ``/status``, ``/metrics`` and ``/slo`` across
shards (sum counters, max slot, per-shard breakdown attached), and owns
:meth:`ShardRouter.reconcile` — the recovery step that settles orphaned
migration tombstones after a crash: if the destination owns the
workflow, confirm; otherwise restore it on the source.  Exactly one side
wins, so an interrupted migration never loses or duplicates a workflow
(see docs/SHARDING.md for the full argument).
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import replace
from typing import Optional, Sequence

from repro.model.job import Job
from repro.model.workflow import Workflow
from repro.obs import Observability, json_safe
from repro.service.api import SubmitResult

__all__ = ["ShardRouter"]

#: Shard-call failures the router treats as "that shard is unavailable":
#: transport errors, retry-budget exhaustion, a stopped service, a stuck
#: event loop.  (ServiceError/ServiceSaturatedError are RuntimeErrors.)
_SHARD_ERRORS = (RuntimeError, TimeoutError, OSError)

#: Ad-hoc rejection reasons worth retrying on a sibling shard.
_SPILLABLE_REASONS = {"queue_full", "draining", "unavailable"}


def _unavailable(kind: str, entity_id: str, shard: str) -> SubmitResult:
    return SubmitResult(
        accepted=False,
        kind=kind,
        id=entity_id,
        reason="unavailable",
        shard=shard,
    )


class ShardRouter:
    """Routes submissions to shard handles and aggregates their views."""

    def __init__(
        self,
        shards: Sequence,
        *,
        obs: Observability | None = None,
        detector=None,
    ):
        if not shards:
            raise ValueError("router needs at least one shard")
        names = [shard.name for shard in shards]
        if len(set(names)) != len(names):
            raise ValueError(f"shard names must be unique, got {names}")
        self._shards = list(shards)
        self._by_name = {shard.name: shard for shard in self._shards}
        #: workflow id -> owning shard name; written by migrations and
        #: reconcile so routing follows the workflow to its new home.
        self._placement: dict[str, str] = {}
        #: workflow id -> migration epoch of the placement write; a write
        #: with a lower epoch than the recorded one is stale and ignored
        #: (a zombie replaying an old handoff cannot move routing back).
        self._placement_epochs: dict[str, int] = {}
        self.obs = obs if obs is not None else Observability()
        self.detector = detector
        self._reconcile_stop = threading.Event()
        self._reconcile_thread: threading.Thread | None = None

    def attach_detector(self, detector) -> None:
        """Use *detector*'s cached verdicts for every liveness question."""
        self.detector = detector

    # -- topology ----------------------------------------------------------------

    @property
    def shards(self) -> list:
        return list(self._shards)

    @property
    def shard_names(self) -> list[str]:
        return [shard.name for shard in self._shards]

    def shard(self, name: str):
        return self._by_name[name]

    @property
    def placement_overrides(self) -> dict[str, str]:
        return dict(self._placement)

    def record_placement(
        self, workflow_id: str, shard_name: str, *, epoch: int = 0
    ) -> None:
        """Pin *workflow_id*'s routing to *shard_name* (post-migration).

        ``epoch`` is the migration epoch of the write; a write older than
        the recorded epoch for this workflow is ignored, so replays of
        stale handoffs (zombie shards) cannot move routing backwards.
        Epoch 0 writes (legacy callers) always apply.
        """
        if shard_name not in self._by_name:
            raise ValueError(f"unknown shard {shard_name!r}")
        if epoch and epoch < self._placement_epochs.get(workflow_id, 0):
            self.obs.counter("router.placement.stale_writes").inc()
            return
        self._placement[workflow_id] = shard_name
        if epoch:
            self._placement_epochs[workflow_id] = epoch

    @staticmethod
    def route_key(entity_id: str) -> str:
        """The hashed portion of an id: tenant prefix before ``/``, else
        the full id — one tenant's submissions co-locate."""
        prefix, sep, _ = entity_id.partition("/")
        return prefix if sep else entity_id

    def home_shard(self, entity_id: str):
        """The hash-determined shard for an entity id."""
        digest = zlib.crc32(self.route_key(entity_id).encode("utf-8"))
        return self._shards[digest % len(self._shards)]

    def shard_for_workflow(self, workflow_id: str):
        """Where this workflow lives: placement override, else hash home."""
        name = self._placement.get(workflow_id)
        if name is not None and name in self._by_name:
            return self._by_name[name]
        return self.home_shard(workflow_id)

    def shard_alive(self, shard) -> bool:
        """Is this shard usable?  Cached detector verdict when available
        (``live``/``suspect`` count as usable), inline probe otherwise."""
        if self.detector is not None and self.detector.probed(shard.name):
            return self.detector.is_live(shard.name)
        return self._alive(shard)

    def _alive(self, shard) -> bool:
        try:
            return bool(shard.alive())
        except _SHARD_ERRORS:
            return False

    def _detector_dead(self, shard) -> bool:
        """Definitively dead per the detector (False without a verdict)."""
        return (
            self.detector is not None
            and self.detector.probed(shard.name)
            and not self.detector.is_live(shard.name)
        )

    # -- submission --------------------------------------------------------------

    def submit_workflow(
        self,
        workflow: Workflow,
        *,
        idempotency_key: str | None = None,
        request_id: str | None = None,
    ) -> SubmitResult:
        shard = self.shard_for_workflow(workflow.workflow_id)
        self.obs.counter("router.submit.workflow").inc()
        if self._detector_dead(shard):
            # The home is *confirmed* dead (not merely unreachable once):
            # reroute to a deterministic live fallback and pin placement
            # there so retries and later queries resolve the same way.
            fallback = self._reroute_target(workflow.workflow_id, shard)
            if fallback is None:
                self.obs.counter("router.shard_unavailable").inc()
                return _unavailable(
                    "workflow", workflow.workflow_id, shard.name
                )
            shard = fallback
        try:
            result = shard.submit_workflow(
                workflow,
                idempotency_key=idempotency_key,
                request_id=request_id,
            )
        except _SHARD_ERRORS:
            self.obs.counter("router.shard_unavailable").inc()
            return _unavailable("workflow", workflow.workflow_id, shard.name)
        if result.accepted and shard is not self.shard_for_workflow(
            workflow.workflow_id
        ):
            self.record_placement(workflow.workflow_id, shard.name)
            self.obs.counter("router.failover.rerouted").inc()
        return replace(result, shard=shard.name)

    def _reroute_target(self, workflow_id: str, dead_home):
        """Deterministic live fallback for a workflow whose home is dead.

        Hash-rotated over the shard list so independent routers pick the
        same target; returns None when nothing is live.
        """
        candidates = [
            shard
            for shard in self._shards
            if shard is not dead_home and self.shard_alive(shard)
        ]
        if not candidates:
            return None
        digest = zlib.crc32(workflow_id.encode("utf-8"))
        return candidates[digest % len(candidates)]

    def submit_adhoc(
        self,
        job: Job,
        *,
        idempotency_key: str | None = None,
        request_id: str | None = None,
    ) -> SubmitResult:
        primary = self.home_shard(job.job_id)
        self.obs.counter("router.submit.adhoc").inc()
        result = self._try_adhoc(
            primary, job, idempotency_key=idempotency_key, request_id=request_id
        )
        if result is not None and (
            result.accepted or result.reason not in _SPILLABLE_REASONS
        ):
            return result
        # Spill: the home shard shed, drained, or is dead — ad-hoc work is
        # leftover-soaking by definition, so any shard's leftovers will do.
        # Least-loaded first (shallowest ad-hoc queue).
        spill_result = result
        for shard in self._spill_order(primary):
            attempt = self._try_adhoc(
                shard,
                job,
                idempotency_key=idempotency_key,
                request_id=request_id,
            )
            if attempt is None:
                continue
            if attempt.accepted:
                self.obs.counter("router.adhoc.spilled").inc()
                return attempt
            spill_result = attempt
            if attempt.reason not in _SPILLABLE_REASONS:
                break
        if spill_result is None:
            self.obs.counter("router.shard_unavailable").inc()
            spill_result = _unavailable("adhoc", job.job_id, primary.name)
        return spill_result

    def _try_adhoc(
        self, shard, job: Job, *, idempotency_key, request_id
    ) -> Optional[SubmitResult]:
        try:
            result = shard.submit_adhoc(
                job, idempotency_key=idempotency_key, request_id=request_id
            )
        except _SHARD_ERRORS:
            return None
        return replace(result, shard=shard.name)

    def _spill_order(self, primary) -> list:
        """Live non-primary shards, shallowest ad-hoc queue first.

        With a detector attached this is pure cache: state and last-known
        queue depth both come from the most recent background probe, so
        ranking the fleet costs zero wire calls per submission.  Without
        one, fall back to inline probes (the pre-detector behaviour).
        """
        ranked = []
        for shard in self._shards:
            if shard is primary:
                continue
            if self.detector is not None and self.detector.probed(shard.name):
                if not self.detector.is_live(shard.name):
                    continue
                hint = self.detector.queue_depth_hint(shard.name)
                ranked.append(
                    (hint if hint is not None else 0, shard.name, shard)
                )
                continue
            if not self._alive(shard):
                continue
            try:
                depth = shard.queue_depth()
            except _SHARD_ERRORS:
                continue
            ranked.append((depth, shard.name, shard))
        ranked.sort(key=lambda entry: entry[:2])
        return [shard for _, _, shard in ranked]

    # -- aggregated views --------------------------------------------------------

    def status(self) -> dict:
        """Fleet status: summed counters plus a per-shard breakdown."""
        per_shard: dict[str, dict] = {}
        totals = {
            "n_workflows": 0,
            "n_jobs": 0,
            "remaining_jobs": 0,
            "queue_depth": 0,
            "accepted_workflows": 0,
            "rejected_workflows": 0,
            "accepted_adhoc": 0,
            "shed_adhoc": 0,
            "replans": 0,
        }
        slot = 0
        running = 0
        for shard in self._shards:
            state = (
                self.detector.state(shard.name)
                if self.detector is not None
                and self.detector.probed(shard.name)
                else None
            )
            if state == "dead":
                # No point burning a timeout on a confirmed-dead shard.
                per_shard[shard.name] = {"alive": False, "state": state}
                continue
            try:
                snapshot = shard.status().to_dict()
            except _SHARD_ERRORS as error:
                per_shard[shard.name] = {"alive": False, "error": str(error)}
                if state is not None:
                    per_shard[shard.name]["state"] = state
                continue
            per_shard[shard.name] = {"alive": True, **snapshot}
            if state is not None:
                per_shard[shard.name]["state"] = state
            if snapshot.get("running"):
                running += 1
            slot = max(slot, int(snapshot.get("slot", 0)))
            for field in totals:
                totals[field] += int(snapshot.get(field, 0))
        return {
            "n_shards": len(self._shards),
            "running_shards": running,
            "slot": slot,
            "placement_overrides": len(self._placement),
            "aggregate": totals,
            "shards": per_shard,
        }

    def metrics(self) -> dict:
        """Fleet metrics: per-shard registry snapshots plus an aggregate
        that sums every counter-style entry present on any shard."""
        per_shard: dict[str, dict] = {}
        aggregate: dict[str, float] = {}
        for shard in self._shards:
            try:
                snapshot = shard.metrics()
            except _SHARD_ERRORS as error:
                per_shard[shard.name] = {"error": str(error)}
                continue
            per_shard[shard.name] = snapshot
            for name, entry in snapshot.items():
                value = (
                    entry.get("value") if isinstance(entry, dict) else None
                )
                if isinstance(value, (int, float)):
                    aggregate[name] = aggregate.get(name, 0) + value
        return {
            "aggregate": aggregate,
            "shards": per_shard,
            # The router's own registry: breaker/detector/reroute/spill
            # counters that exist fleet-side, not on any one shard.
            "router": json_safe(self.obs.registry.snapshot()),
        }

    def slo(self) -> dict:
        """Fleet SLO: healthy only when every answering shard is healthy."""
        per_shard: dict[str, dict] = {}
        known: list[bool] = []
        unreachable = 0
        for shard in self._shards:
            try:
                snapshot = shard.slo()
            except _SHARD_ERRORS as error:
                per_shard[shard.name] = {"error": str(error)}
                unreachable += 1
                continue
            per_shard[shard.name] = snapshot
            healthy = snapshot.get("healthy")
            if healthy is not None:
                known.append(bool(healthy))
        healthy = all(known) if known else None
        return {
            "aggregate": {"healthy": healthy, "unreachable_shards": unreachable},
            "shards": per_shard,
        }

    # -- migration bookkeeping ---------------------------------------------------

    def owned_by_shard(self) -> dict[str, list[str]]:
        """Workflow ids owned per shard (for the conservation check)."""
        owned: dict[str, list[str]] = {}
        for shard in self._shards:
            try:
                owned[shard.name] = sorted(shard.workflow_ids())
            except _SHARD_ERRORS:
                owned[shard.name] = []
        return owned

    def orphans_by_shard(self) -> dict[str, dict[str, dict]]:
        """Unsettled outbound handoffs per shard."""
        orphans: dict[str, dict[str, dict]] = {}
        for shard in self._shards:
            try:
                orphans[shard.name] = shard.orphans()
            except _SHARD_ERRORS:
                orphans[shard.name] = {}
        return orphans

    def reconcile(self) -> dict:
        """Settle orphaned migrations after a crash or failed handoff.

        For every unconfirmed ``migrate_out`` tombstone: ask the
        destination whether it owns the workflow.  Owned → confirm on the
        source (the move completed; only the ack was lost).  Not owned →
        restore on the source (the move never landed).  Either side being
        unreachable holds the orphan for the next pass — holding is safe,
        guessing is not.
        """
        confirmed = restored = held = 0
        for shard in self._shards:
            if not self.shard_alive(shard):
                continue
            try:
                orphans = shard.orphans()
            except _SHARD_ERRORS:
                continue
            for workflow_id, info in sorted(orphans.items()):
                dest = self._by_name.get(info.get("dest", ""))
                if dest is None:
                    owns = False  # destination left the fleet: restore
                elif not self.shard_alive(dest):
                    held += 1
                    continue
                else:
                    try:
                        owns = dest.owns(workflow_id)
                    except _SHARD_ERRORS:
                        held += 1
                        continue
                try:
                    if owns:
                        shard.confirm(
                            workflow_id, epoch=int(info.get("epoch", 0))
                        )
                        self.record_placement(
                            workflow_id,
                            dest.name,
                            epoch=int(info.get("epoch", 0)),
                        )
                        confirmed += 1
                        self.obs.counter("router.reconcile.confirmed").inc()
                    else:
                        shard.restore_orphan(workflow_id)
                        self.record_placement(workflow_id, shard.name)
                        restored += 1
                        self.obs.counter("router.reconcile.restored").inc()
                except (*_SHARD_ERRORS, ValueError):
                    held += 1
        return {"confirmed": confirmed, "restored": restored, "held": held}

    # -- periodic reconcile ------------------------------------------------------

    def start_reconcile_loop(self, interval_s: float) -> None:
        """Run :meth:`reconcile` every ``interval_s`` on a daemon thread,
        so held orphans (unreachable source or destination) settle as
        soon as the missing shard returns — no manual ``POST /reconcile``
        required."""
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if self._reconcile_thread is not None:
            raise RuntimeError("reconcile loop already started")
        self._reconcile_stop.clear()

        def loop() -> None:
            while not self._reconcile_stop.wait(interval_s):
                try:
                    self.reconcile()
                except Exception:
                    self.obs.counter("router.reconcile.loop_errors").inc()

        self._reconcile_thread = threading.Thread(
            target=loop, name="repro-reconcile", daemon=True
        )
        self._reconcile_thread.start()

    def stop_reconcile_loop(self) -> None:
        self._reconcile_stop.set()
        if self._reconcile_thread is not None:
            self._reconcile_thread.join(timeout=5.0)
            self._reconcile_thread = None
