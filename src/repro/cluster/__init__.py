"""Sharded multi-cluster scheduling: router, shard pool, rebalancer.

One scheduler service scales only as far as one event loop and one LP
ladder per replan.  This package horizontally shards the service
(docs/SHARDING.md): :func:`slice_capacity` carves the cluster into N
disjoint slices, each owned by an independent shard
(:class:`LocalShard` in-process, :class:`RemoteShard` over HTTP) with
its own journal and solver stack; the :class:`ShardRouter` hashes
submissions to their home shard (spilling ad-hoc jobs to the least
loaded shard on backpressure) and aggregates fleet status; the
:class:`Rebalancer` compares per-shard demand skylines and migrates
not-yet-started workflows from saturated to slack shards via a
journal-backed two-phase handoff that survives crashes on either side.
:class:`RouterHTTPServer` serves the whole fleet behind the same HTTP
dialect as a single ``repro serve`` (``repro serve --shards N``).

Availability (docs/ROBUSTNESS.md): the :class:`FailureDetector` probes
the fleet on a heartbeat and caches a ``live → suspect → dead`` verdict
per shard; the :class:`Supervisor` restarts dead local shards and, once
a shard stays dead past its grace period, re-homes its committed
workflows from its journal into surviving shards (``repro serve
--shards N --failover``).
"""

from repro.cluster.failover import (
    DetectorConfig,
    FailureDetector,
    Supervisor,
    SupervisorConfig,
)
from repro.cluster.http import RouterHTTPServer, serve_router_http
from repro.cluster.rebalance import RebalanceConfig, Rebalancer
from repro.cluster.router import ShardRouter
from repro.cluster.shards import LocalShard, RemoteShard
from repro.cluster.slicing import slice_capacity

__all__ = [
    "DetectorConfig",
    "FailureDetector",
    "LocalShard",
    "RebalanceConfig",
    "Rebalancer",
    "RemoteShard",
    "RouterHTTPServer",
    "ShardRouter",
    "Supervisor",
    "SupervisorConfig",
    "serve_router_http",
    "slice_capacity",
]
