"""Cluster supervision and failover: failure detector + shard supervisor.

The sharded fleet (docs/SHARDING.md) survives a *process restart* — each
shard replays its own journal — but until this module existed a shard
that stayed down simply stranded its committed deadline workflows.  Two
cooperating pieces close that gap (docs/ROBUSTNESS.md has the full
argument):

* :class:`FailureDetector` — a heartbeat prober with a
  ``live → suspect → dead`` state machine per shard.  One daemon thread
  probes every shard on a configurable interval; everyone else (router
  spill order, rebalancer, reconciler, ``/shards``) consults the
  *cached* verdict instead of re-probing inline, so one hung shard can
  no longer add a full client timeout to every submission.  A shard
  turns ``suspect`` after ``suspect_after`` consecutive failed probes
  and ``dead`` once the failure streak is older than ``dead_after_s``;
  any successful probe snaps it back to ``live``.  States are exported
  as ``cluster.shard.state.<name>`` gauges (0 live / 1 suspect /
  2 dead).

* :class:`Supervisor` — the repair daemon.  Dead :class:`LocalShard`\\ s
  are restarted on their own journal (ordinary crash recovery).  A shard
  that *stays* dead past ``failover_after_s`` has its committed
  workflows **re-homed**: the supervisor reads the dead shard's journal
  from disk, folds it exactly like the shard's own recovery would
  (confirmed migrations gone, unconfirmed tombstones included), and
  replays every still-owed workflow into surviving shards via the
  existing two-phase ``migrate_in`` — original idempotency keys pinned,
  admission re-run against the destination slice, placement map updated,
  all under a migration epoch greater than any the fleet has used.
  Should the dead shard later return (a *zombie* — its journal replay
  re-owns everything that was failed over), the supervisor fences it:
  each re-homed workflow the zombie still claims is withdrawn with a
  fresh ``migrate_out`` + ``confirm`` pair, so the zombie's journal
  durably records that ownership moved and the fleet never double-owns.

Both are deterministic and clock-injectable, so the state machine is
unit-testable without sleeping.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.obs import Observability
from repro.service.journal import SubmissionJournal

__all__ = [
    "DetectorConfig",
    "FailureDetector",
    "LIVE",
    "SUSPECT",
    "DEAD",
    "Supervisor",
    "SupervisorConfig",
]

#: Shard-call failures treated as "that shard is unavailable".
_SHARD_ERRORS = (RuntimeError, TimeoutError, OSError)

LIVE = "live"
SUSPECT = "suspect"
DEAD = "dead"

#: Gauge encoding of the detector states (``cluster.shard.state.*``).
STATE_VALUES = {LIVE: 0.0, SUSPECT: 1.0, DEAD: 2.0}


@dataclass(frozen=True)
class DetectorConfig:
    """Failure-detector policy knobs.

    Attributes:
        probe_interval_s: period of the background probe loop.
        suspect_after: consecutive failed probes before ``live`` turns
            ``suspect`` (1 = suspect on the first miss).
        dead_after_s: once the current failure streak is at least this
            old, ``suspect`` (or ``live``, with sparse probes) turns
            ``dead`` — the point at which the fleet stops waiting.
    """

    probe_interval_s: float = 1.0
    suspect_after: int = 2
    dead_after_s: float = 5.0

    def __post_init__(self) -> None:
        if self.probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be > 0")
        if self.suspect_after < 1:
            raise ValueError("suspect_after must be >= 1")
        if self.dead_after_s < 0:
            raise ValueError("dead_after_s must be >= 0")


class _Health:
    """Mutable probe record for one shard (guarded by the detector lock)."""

    __slots__ = (
        "state",
        "probed",
        "consecutive_failures",
        "first_failure_at",
        "dead_since",
        "last_probe_at",
        "queue_depth",
    )

    def __init__(self) -> None:
        self.state = LIVE
        self.probed = False
        self.consecutive_failures = 0
        self.first_failure_at: Optional[float] = None
        self.dead_since: Optional[float] = None
        self.last_probe_at: Optional[float] = None
        self.queue_depth: Optional[int] = None


class FailureDetector:
    """Caches a ``live``/``suspect``/``dead`` verdict per shard.

    The verdict is *advisory until the first probe*: callers should use
    :meth:`probed` (or the routers' built-in fallback) to distinguish
    "probed live" from "never looked".  ``clock`` is injectable so the
    grace-period arithmetic is unit-testable without sleeping.
    """

    def __init__(
        self,
        shards,
        config: DetectorConfig | None = None,
        *,
        obs: Observability | None = None,
        clock=time.monotonic,
    ):
        self.config = config or DetectorConfig()
        self.obs = obs if obs is not None else Observability()
        self._clock = clock
        self._shards = list(shards)
        self._health = {shard.name: _Health() for shard in self._shards}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- probing -----------------------------------------------------------------

    def probe_all(self) -> dict:
        """One probe pass over the fleet; returns ``{name: state}``."""
        states = {}
        for shard in self._shards:
            states[shard.name] = self.probe(shard)
        return states

    def probe(self, shard) -> str:
        """Probe one shard and fold the outcome into its state machine."""
        ok = False
        depth: Optional[int] = None
        try:
            ok = bool(shard.alive())
            if ok:
                # Last-known queue depth rides the same probe so the
                # router's spill order never has to ask inline.
                try:
                    depth = int(shard.queue_depth())
                except _SHARD_ERRORS:
                    depth = None
        except _SHARD_ERRORS:
            ok = False
        return self._record(shard.name, ok, depth)

    def _record(self, name: str, ok: bool, depth: Optional[int]) -> str:
        now = self._clock()
        with self._lock:
            health = self._health[name]
            health.probed = True
            health.last_probe_at = now
            previous = health.state
            if ok:
                health.state = LIVE
                health.consecutive_failures = 0
                health.first_failure_at = None
                health.dead_since = None
                if depth is not None:
                    health.queue_depth = depth
            else:
                health.consecutive_failures += 1
                if health.first_failure_at is None:
                    health.first_failure_at = now
                self.obs.counter("cluster.detector.probe_failures").inc()
                streak_age = now - health.first_failure_at
                if streak_age >= self.config.dead_after_s:
                    if health.state != DEAD:
                        health.state = DEAD
                        health.dead_since = now
                elif (
                    health.state == LIVE
                    and health.consecutive_failures
                    >= self.config.suspect_after
                ):
                    health.state = SUSPECT
            state = health.state
        if state != previous:
            self.obs.counter("cluster.detector.transitions").inc()
            self.obs.event(
                "shard_state_changed", shard=name, was=previous, now=state
            )
        self.obs.gauge(f"cluster.shard.state.{name}").set(STATE_VALUES[state])
        return state

    # -- cached verdicts ---------------------------------------------------------

    def state(self, name: str) -> str:
        with self._lock:
            return self._health[name].state

    def probed(self, name: str) -> bool:
        """True once at least one probe has run against *name*."""
        with self._lock:
            return self._health[name].probed

    def is_live(self, name: str) -> bool:
        """Usable for routing: ``live`` or ``suspect`` (not yet ``dead``)."""
        return self.state(name) != DEAD

    def dead_for(self, name: str) -> float:
        """Seconds since *name* was declared dead (0.0 while not dead)."""
        with self._lock:
            health = self._health[name]
            if health.state != DEAD or health.dead_since is None:
                return 0.0
            return max(self._clock() - health.dead_since, 0.0)

    def queue_depth_hint(self, name: str) -> Optional[int]:
        """Last-known ad-hoc queue depth (None before a successful probe)."""
        with self._lock:
            return self._health[name].queue_depth

    def force_state(self, name: str, state: str) -> None:
        """Operator/test override: pin a verdict without a probe."""
        if state not in STATE_VALUES:
            raise ValueError(f"unknown state {state!r}")
        now = self._clock()
        with self._lock:
            health = self._health[name]
            health.probed = True
            health.state = state
            health.dead_since = now if state == DEAD else None
            if state == LIVE:
                health.consecutive_failures = 0
                health.first_failure_at = None
        self.obs.gauge(f"cluster.shard.state.{name}").set(STATE_VALUES[state])

    def snapshot(self) -> dict[str, dict]:
        """JSON-friendly view of every shard's health record."""
        now = self._clock()
        with self._lock:
            return {
                name: {
                    "state": health.state,
                    "probed": health.probed,
                    "consecutive_failures": health.consecutive_failures,
                    "dead_for_s": (
                        round(now - health.dead_since, 3)
                        if health.dead_since is not None
                        else None
                    ),
                    "queue_depth": health.queue_depth,
                }
                for name, health in self._health.items()
            }

    # -- background loop ---------------------------------------------------------

    def start(self) -> "FailureDetector":
        """Probe once immediately, then every ``probe_interval_s``."""
        if self._thread is not None:
            raise RuntimeError("detector already started")
        self._stop.clear()
        self.probe_all()

        def loop() -> None:
            while not self._stop.wait(self.config.probe_interval_s):
                try:
                    self.probe_all()
                except Exception:
                    self.obs.counter("cluster.detector.loop_errors").inc()

        self._thread = threading.Thread(
            target=loop, name="repro-failure-detector", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision/repair policy knobs.

    Attributes:
        auto_restart: restart dead shards that expose ``restart()``
            (in-process :class:`LocalShard`\\ s) as soon as the detector
            declares them dead.  Remote shards have external process
            supervisors; this daemon cannot fork them.
        failover_after_s: how long a shard must stay *dead* before its
            committed workflows are re-homed from its journal.  The
            grace period is what separates "blip, wait for restart"
            from "machine is gone, move the work".
        fence_returning: when a shard the supervisor failed over comes
            back live (zombie), withdraw every re-homed workflow it
            still claims via ``migrate_out`` + ``confirm`` so its
            journal durably records the new owner.
    """

    auto_restart: bool = True
    failover_after_s: float = 5.0
    fence_returning: bool = True

    def __post_init__(self) -> None:
        if self.failover_after_s < 0:
            raise ValueError("failover_after_s must be >= 0")


class Supervisor:
    """Repairs the fleet: restart dead shards, re-home stranded work.

    One :meth:`cycle` is a full pass; :meth:`start` runs cycles on a
    daemon thread.  All decisions come from the detector's cached
    verdicts — the supervisor never probes inline.
    """

    def __init__(
        self,
        router,
        detector: FailureDetector,
        config: SupervisorConfig | None = None,
        *,
        rebalancer=None,
        obs: Observability | None = None,
    ):
        self.router = router
        self.detector = detector
        self.config = config or SupervisorConfig()
        self.rebalancer = rebalancer
        self.obs = obs if obs is not None else router.obs
        self._epoch = 0
        #: shard name -> {workflow id: failover epoch} — what we moved
        #: away from each dead shard; consumed by the fencing pass.
        self._failed_over: dict[str, dict[str, int]] = {}
        self._vetoed: set[str] = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- epochs ------------------------------------------------------------------

    def _next_epoch(self) -> int:
        """Strictly greater than anything this fleet has stamped so far.

        Folding in the rebalancer's counter keeps supervisor handoffs
        epoch-monotonic with rebalance handoffs, so a zombie replaying a
        stale rebalance cannot outrank a failover (the shard-side
        ``stale_epoch`` guard compares these numbers).
        """
        floor = self.rebalancer.epoch if self.rebalancer is not None else 0
        with self._lock:
            self._epoch = max(self._epoch, floor) + 1
            return self._epoch

    # -- vetoes (operator runbook) -----------------------------------------------

    def veto(self, shard_name: str, vetoed: bool = True) -> None:
        """Exempt *shard_name* from automatic failover (operator: "it's
        coming back, don't move its work")."""
        with self._lock:
            if vetoed:
                self._vetoed.add(shard_name)
            else:
                self._vetoed.discard(shard_name)

    def vetoes(self) -> set[str]:
        with self._lock:
            return set(self._vetoed)

    # -- one pass ----------------------------------------------------------------

    def cycle(self) -> dict:
        """Restart / fail over / fence as the detector's verdicts demand."""
        summary: dict = {"restarted": [], "failed_over": {}, "fenced": {}}
        for shard in self.router.shards:
            name = shard.name
            state = self.detector.state(name)
            if state == DEAD:
                if name in self.vetoes():
                    continue
                if (
                    self.config.auto_restart
                    and hasattr(shard, "restart")
                    and self._restart(shard)
                ):
                    summary["restarted"].append(name)
                    continue
                if (
                    self.detector.dead_for(name)
                    >= self.config.failover_after_s
                ):
                    summary["failed_over"][name] = self.fail_over(shard)
            elif (
                state == LIVE
                and self.config.fence_returning
                and name in self._failed_over
            ):
                fenced = self.fence(shard)
                if fenced:
                    summary["fenced"][name] = fenced
        return summary

    def _restart(self, shard) -> bool:
        try:
            shard.restart()
        except Exception:
            self.obs.counter("supervisor.restart_failures").inc()
            return False
        self.obs.counter("supervisor.restarts").inc()
        # Re-probe immediately so the rest of this cycle (and the router)
        # sees the recovery without waiting a probe interval.
        self.detector.probe(shard)
        self.obs.event("shard_restarted", shard=shard.name)
        return True

    # -- failover ----------------------------------------------------------------

    def fail_over(self, shard, *, force: bool = False) -> dict:
        """Re-home the committed workflows of a dead shard from its journal.

        Safe to run repeatedly: workflows already owned by a live shard
        (a previous pass, a landed migration, or a rerouted resubmission)
        are only re-pinned in the placement map, never re-admitted — the
        original idempotency keys travel with every handoff, so even a
        concurrent duplicate delivery deduplicates at the destination.

        With ``force=True`` the detector verdict is not consulted (the
        operator's ``POST /failover`` path); the journal fold is the
        same either way.
        """
        out: dict = {
            "shard": shard.name,
            "rehomed": [],
            "already_owned": [],
            "unplaced": [],
        }
        if not force and self.detector.state(shard.name) != DEAD:
            out["skipped"] = "shard is not dead"
            return out
        journal_path = getattr(shard, "journal_path", None)
        if not journal_path:
            out["skipped"] = "no journal path known for shard"
            self.obs.counter("supervisor.failover.no_journal").inc()
            return out
        records, _ = SubmissionJournal.read(journal_path)
        # Final disposition per workflow, exactly as the shard's own
        # recovery folds it: the last workflow/migrate_out record wins,
        # a migrate_confirm settles the id away.  Unconfirmed tombstones
        # are included — the handoff may never have landed, and if it
        # did, the destination's idempotency key / owned check dedupes.
        disposition: dict[str, object] = {}
        for record in records:
            if record.kind in ("workflow", "migrate_out"):
                disposition[record.entity.workflow_id] = record
            elif record.kind == "migrate_confirm":
                disposition.pop(record.workflow_id, None)
        if not disposition:
            return out
        survivors = [
            candidate
            for candidate in self.router.shards
            if candidate is not shard
            and self.detector.state(candidate.name) == LIVE
        ]
        if not survivors:
            out["skipped"] = "no live shards to fail over to"
            self.obs.counter("supervisor.failover.no_survivors").inc()
            return out
        self.obs.counter("supervisor.failover.runs").inc()
        for workflow_id, record in sorted(disposition.items()):
            owner = self._find_owner(workflow_id, survivors)
            if owner is not None:
                self.router.record_placement(workflow_id, owner.name)
                out["already_owned"].append(workflow_id)
                continue
            epoch = self._next_epoch()
            placed = self._place(
                workflow_id, record.entity, record.key, epoch, survivors
            )
            if placed is None:
                out["unplaced"].append(workflow_id)
                self.obs.counter("supervisor.failover.unplaced").inc()
                continue
            with self._lock:
                self._failed_over.setdefault(shard.name, {})[
                    workflow_id
                ] = epoch
            out["rehomed"].append(
                {"workflow_id": workflow_id, "to": placed.name, "epoch": epoch}
            )
            self.obs.counter("supervisor.failover.rehomed").inc()
        self.obs.event(
            "shard_failed_over",
            shard=shard.name,
            n_rehomed=len(out["rehomed"]),
            n_unplaced=len(out["unplaced"]),
        )
        return out

    def _find_owner(self, workflow_id: str, survivors):
        """The live shard that already owns *workflow_id*, if any."""
        # Placement map first (cheap, usually right), then every survivor
        # — failover is rare enough to afford the sweep, and guessing
        # wrong here is how duplicates happen.
        placed = self.router.placement_overrides.get(workflow_id)
        ordered = sorted(
            survivors, key=lambda shard: shard.name != placed
        )
        for candidate in ordered:
            try:
                if candidate.owns(workflow_id):
                    return candidate
            except _SHARD_ERRORS:
                continue
        return None

    def _place(self, workflow_id, workflow, key, epoch, survivors):
        """Admit *workflow* on some survivor; returns the shard or None.

        Candidate order is deterministic (hash-rotated over the live
        list) so repeated passes and independent supervisors converge on
        the same targets.
        """
        start = zlib.crc32(workflow_id.encode("utf-8")) % len(survivors)
        rotation = survivors[start:] + survivors[:start]
        for candidate in rotation:
            try:
                result = candidate.migrate_in(workflow, key=key, epoch=epoch)
            except _SHARD_ERRORS:
                continue
            if result.accepted:
                self.router.record_placement(
                    workflow_id, candidate.name, epoch=epoch
                )
                return candidate
        return None

    # -- zombie fencing ----------------------------------------------------------

    def fence(self, shard) -> list[str]:
        """Strip a returned zombie of workflows that were failed over.

        The zombie replayed its journal, so it honestly believes it owns
        everything the supervisor re-homed while it was dead.  For every
        such workflow the *new* owner still holds, the zombie gets a
        ``migrate_out`` (withdraw + tombstone) immediately settled by a
        ``confirm`` — its journal now durably records the handoff, so
        the next replay will not resurrect the claim.  If the new owner
        lost the workflow meanwhile, the zombie's copy is left alone:
        it is then the only owner, which is the safe outcome.
        """
        with self._lock:
            moved = dict(self._failed_over.get(shard.name, {}))
        fenced: list[str] = []
        for workflow_id in sorted(moved):
            owner_name = self.router.placement_overrides.get(workflow_id)
            if owner_name is None or owner_name == shard.name:
                fenced.append(workflow_id)  # nothing to strip
                continue
            try:
                owner = self.router.shard(owner_name)
                if not shard.owns(workflow_id):
                    fenced.append(workflow_id)
                    continue
                if not owner.owns(workflow_id):
                    continue  # new owner lost it: zombie keeps the work
                epoch = self._next_epoch()
                shard.migrate_out(workflow_id, dest=owner_name, epoch=epoch)
                shard.confirm(workflow_id, epoch=epoch)
                fenced.append(workflow_id)
                self.obs.counter("supervisor.fenced").inc()
            except (*_SHARD_ERRORS, ValueError, KeyError):
                continue  # retried on the next cycle
        if fenced:
            with self._lock:
                remaining = self._failed_over.get(shard.name)
                if remaining is not None:
                    for workflow_id in fenced:
                        remaining.pop(workflow_id, None)
                    if not remaining:
                        self._failed_over.pop(shard.name, None)
            self.obs.event(
                "shard_fenced", shard=shard.name, n_fenced=len(fenced)
            )
        return fenced

    # -- operator surface --------------------------------------------------------

    def force_failover(self, shard_name: str) -> dict:
        """Operator-forced failover regardless of the detector verdict."""
        return self.fail_over(self.router.shard(shard_name), force=True)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "vetoed": sorted(self._vetoed),
                "failed_over": {
                    name: sorted(moved)
                    for name, moved in self._failed_over.items()
                },
                "epoch": self._epoch,
            }

    # -- background loop ---------------------------------------------------------

    def start(self, interval_s: float) -> "Supervisor":
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if self._thread is not None:
            raise RuntimeError("supervisor already started")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval_s):
                try:
                    self.cycle()
                except Exception:
                    self.obs.counter("supervisor.cycle_errors").inc()

        self._thread = threading.Thread(
            target=loop, name="repro-supervisor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
