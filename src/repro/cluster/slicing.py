"""Capacity slicing: carve one cluster into N disjoint shard slices.

Sharded serving (docs/SHARDING.md) runs N independent scheduler services,
each owning a *slice* of the physical cluster.  Slices must partition the
capacity exactly — the sum of the slices equals the original cluster in
every slot, so the sharded deployment can never promise more capacity
than the monolithic one had (the cross-shard conservation argument
starts here).

Integer division cannot always split evenly; the remainder goes to the
low-indexed shards, one unit each, which keeps any two slices within one
unit of each other per resource.
"""

from __future__ import annotations

from repro.model.cluster import ClusterCapacity
from repro.model.resources import ResourceVector

__all__ = ["slice_capacity"]


def _split_amount(amount: int, n: int) -> list[int]:
    """Split *amount* into *n* integer shares differing by at most 1."""
    share, remainder = divmod(amount, n)
    return [share + (1 if i < remainder else 0) for i in range(n)]


def _split_vector(vector: ResourceVector, n: int) -> list[dict[str, int]]:
    shares: list[dict[str, int]] = [{} for _ in range(n)]
    for resource in vector:
        for i, amount in enumerate(_split_amount(vector[resource], n)):
            shares[i][resource] = amount
    return shares


def slice_capacity(cluster: ClusterCapacity, n: int) -> list[ClusterCapacity]:
    """Partition *cluster* into *n* slices that sum back to the original.

    Every resource amount (base and per-slot overrides) is integer-split
    with the remainder assigned to low shard indices.  Raises
    ``ValueError`` when any shard would get zero of some resource the
    cluster offers — such a shard could never place work needing that
    resource, and hash routing would still send it a 1/n share of the
    load.
    """
    if n < 1:
        raise ValueError(f"shard count must be >= 1, got {n}")
    if n == 1:
        return [cluster]
    for resource in cluster.base:
        if cluster.base[resource] < n:
            raise ValueError(
                f"cannot slice {cluster.base[resource]} units of "
                f"{resource!r} into {n} non-empty shards"
            )
    base_shares = _split_vector(cluster.base, n)
    override_shares: dict[int, list[dict[str, int]]] = {
        slot: _split_vector(capacity, n)
        for slot, capacity in cluster.overrides.items()
    }
    slices = []
    for i in range(n):
        overrides = {
            slot: ResourceVector(shares[i])
            for slot, shares in override_shares.items()
        }
        slices.append(
            ClusterCapacity(
                base=ResourceVector(base_shares[i]), overrides=overrides
            )
        )
    return slices
