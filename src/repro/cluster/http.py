"""HTTP frontend for the shard router: one URL over the whole fleet.

Speaks the same submission dialect as a single ``repro serve`` process —
``POST /workflows`` and ``POST /jobs`` in the trace wire format, answers
are :class:`~repro.service.api.SubmitResult` bodies — so every existing
client (``HttpServiceClient``, ``scripts/loadgen.py``, curl) points at
the router unchanged.  Each answer carries the deciding shard's name in
the ``shard`` field.

Fleet views replace the single-service ones: ``GET /status``,
``/metrics`` and ``/slo`` return ``{"aggregate": ..., "shards": {...}}``
(summed counters plus the per-shard breakdown), ``GET /shards`` lists
the fleet with liveness — detector state, time-dead, and per-shard
circuit-breaker state included when available — and ``POST /rebalance``
triggers one rebalancer cycle on demand (the periodic loop still runs if
configured).  ``POST /reconcile`` settles migration orphans; ``POST
/failover`` is the operator's lever on the supervisor: ``{"shard": S}``
forces an immediate journal-driven failover of shard S, ``{"shard": S,
"veto": true}`` exempts S from automatic failover (and ``false`` lifts
the veto).  ``/healthz`` answers while the router process lives;
``/readyz`` is ready while at least one shard is.

Prometheus exposition: ``GET /metrics?format=prometheus`` renders the
*router's own* registry (detector states, breaker opens, reroute/spill
counters) in text exposition 0.0.4 — per-shard engine metrics are still
scraped from each shard's own ``/metrics`` endpoint.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.cluster.rebalance import Rebalancer
from repro.cluster.router import ShardRouter
from repro.obs import PROMETHEUS_CONTENT_TYPE, new_request_id, render_prometheus
from repro.service.api import SubmitResult
from repro.service.http import _REJECT_STATUS
from repro.workloads.traces import job_from_dict, workflow_from_dict

__all__ = ["RouterHTTPServer", "serve_router_http"]

_MAX_BODY_BYTES = 8 * 1024 * 1024
_REQUEST_ID_OK = re.compile(r"^[A-Za-z0-9._:-]{1,128}$")


class _RouterHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-shard-router"

    @property
    def router(self) -> ShardRouter:
        return self.server.router  # type: ignore[attr-defined]

    @property
    def rebalancer(self) -> Rebalancer | None:
        return self.server.rebalancer  # type: ignore[attr-defined]

    @property
    def supervisor(self):
        return self.server.supervisor  # type: ignore[attr-defined]

    # -- routing -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        split = urlsplit(self.path)
        path = split.path.rstrip("/") or "/"
        if path == "/status":
            self._reply(200, self.router.status())
        elif path == "/metrics":
            fmt = parse_qs(split.query).get("format", [""])[0]
            if fmt == "prometheus":
                self._reply_text(
                    200, render_prometheus(self.router.obs.registry)
                )
                return
            self._reply(200, self.router.metrics())
        elif path == "/slo":
            self._reply(200, self.router.slo())
        elif path == "/shards":
            self._reply(200, self._shards())
        elif path == "/healthz":
            self._reply(200, {"ok": True, "role": "router"})
        elif path == "/readyz":
            alive = self.router.status()["running_shards"]
            self._reply(
                200 if alive else 503,
                {"ready": alive > 0, "running_shards": alive},
            )
        else:
            self._reply(404, {"error": f"no such resource: {path}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = urlsplit(self.path).path.rstrip("/")
        if path == "/workflows":
            self._submit(workflow_from_dict, self.router.submit_workflow)
        elif path == "/jobs":
            self._submit(job_from_dict, self.router.submit_adhoc)
        elif path == "/rebalance":
            if self.rebalancer is None:
                self._reply(409, {"error": "no rebalancer configured"})
            else:
                self._reply(200, self.rebalancer.cycle())
        elif path == "/reconcile":
            self._reply(200, self.router.reconcile())
        elif path == "/failover":
            self._failover()
        else:
            self._reply(404, {"error": f"no such resource: {path}"})

    def _failover(self) -> None:
        """Operator lever: force a failover, or set/lift a veto."""
        if self.supervisor is None:
            self._reply(409, {"error": "no supervisor configured"})
            return
        body = self._read_body()
        if body is None:
            return
        name = body.get("shard")
        if not name or name not in self.router.shard_names:
            self._reply(400, {"error": f"unknown shard {name!r}"})
            return
        if "veto" in body:
            self.supervisor.veto(name, bool(body["veto"]))
            self._reply(
                200, {"shard": name, "vetoed": sorted(self.supervisor.vetoes())}
            )
            return
        self._reply(200, self.supervisor.force_failover(name))

    def _shards(self) -> dict:
        detector = getattr(self.router, "detector", None)
        shards = []
        for shard in self.router.shards:
            entry: dict = {"name": shard.name}
            if detector is not None and detector.probed(shard.name):
                state = detector.state(shard.name)
                entry["state"] = state
                entry["alive"] = state != "dead"
                dead_for = detector.dead_for(shard.name)
                if dead_for:
                    entry["dead_for_s"] = round(dead_for, 3)
            else:
                try:
                    entry["alive"] = bool(shard.alive())
                except (RuntimeError, TimeoutError, OSError):
                    entry["alive"] = False
            breaker = getattr(
                getattr(shard, "client", None), "breaker", None
            )
            if breaker is not None:
                entry["breaker"] = breaker.snapshot()
            url = getattr(shard, "url", None)
            if url:
                entry["url"] = url
            shards.append(entry)
        out = {
            "shards": shards,
            "placement_overrides": len(self.router.placement_overrides),
        }
        if self.supervisor is not None:
            out["supervisor"] = self.supervisor.snapshot()
        return out

    def _submit(self, parse, submit) -> None:
        supplied = (self.headers.get("X-Request-Id") or "").strip()
        request_id = (
            supplied
            if supplied and _REQUEST_ID_OK.match(supplied)
            else new_request_id()
        )
        id_header = {"X-Request-Id": request_id}
        body = self._read_body(id_header)
        if body is None:
            return
        try:
            entity = parse(body)
        except (KeyError, TypeError, ValueError) as error:
            self._reply(
                400,
                {"error": f"malformed submission: {error}"},
                headers=id_header,
            )
            return
        key = self.headers.get("Idempotency-Key") or None
        try:
            result: SubmitResult = submit(
                entity, idempotency_key=key, request_id=request_id
            )
        except TimeoutError:
            self._reply(
                504,
                {"error": "shard did not answer in time"},
                headers=id_header,
            )
            return
        status = 200 if result.accepted else _REJECT_STATUS.get(result.reason, 400)
        headers = {"X-Request-Id": result.request_id or request_id}
        if not result.accepted and result.reason in ("queue_full", "unavailable"):
            headers["Retry-After"] = "1"
        self._reply(status, result.to_dict(), headers=headers)

    # -- plumbing -----------------------------------------------------------------

    def _read_body(self, extra_headers: dict | None = None) -> dict | None:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            length = 0
        if length <= 0 or length > _MAX_BODY_BYTES:
            self._reply(
                400,
                {"error": "missing or oversized request body"},
                headers=extra_headers,
            )
            return None
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._reply(
                400,
                {"error": "request body is not valid JSON"},
                headers=extra_headers,
            )
            return None
        if not isinstance(body, dict):
            self._reply(
                400,
                {"error": "request body must be a JSON object"},
                headers=extra_headers,
            )
            return None
        return body

    def _reply(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        data = json.dumps(payload, allow_nan=False).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _reply_text(self, status: int, text: str) -> None:
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:
        import logging

        self.router.obs.log(
            logging.DEBUG,
            "router http %s " + format,
            self.client_address[0],
            *args,
        )


class RouterHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`ShardRouter`.

    ``port=0`` binds an ephemeral port; read it back from :attr:`url`.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        router: ShardRouter,
        *,
        rebalancer: Rebalancer | None = None,
        supervisor=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.router = router
        self.rebalancer = rebalancer
        self.supervisor = supervisor
        super().__init__((host, port), _RouterHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"


def serve_router_http(
    router: ShardRouter,
    *,
    rebalancer: Rebalancer | None = None,
    supervisor=None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> RouterHTTPServer:
    """Start the router frontend on a daemon thread; returns the server."""
    server = RouterHTTPServer(
        router, rebalancer=rebalancer, supervisor=supervisor, host=host, port=port
    )
    thread = threading.Thread(
        target=server.serve_forever, name="repro-router-http", daemon=True
    )
    thread.start()
    return server
