"""Value objects of the scheduler service's submission/query API.

Every transport (the in-process client, the JSON-over-HTTP frontend)
speaks in these types; their ``to_dict`` forms are the HTTP response
bodies, so the in-process and remote views of a decision are identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional

if TYPE_CHECKING:  # imported lazily to keep the value-object module light
    from repro.estimation.errors import ErrorModel
    from repro.simulator.failures import FailureModel

__all__ = [
    "QueueFullError",
    "ServiceConfig",
    "ServiceSaturatedError",
    "ServiceStatus",
    "SubmitResult",
]


class QueueFullError(RuntimeError):
    """An ad-hoc submission was shed because the bounded queue is full.

    Raised by clients (not by the service core, which answers every
    command) so callers can distinguish *shed* from *accepted* without
    inspecting reason strings.  Carries the queue depth at shed time and
    the server's retry hint.
    """

    def __init__(self, message: str, *, queue_depth: int = 0,
                 retry_after_s: float = 1.0):
        super().__init__(message)
        self.queue_depth = queue_depth
        self.retry_after_s = retry_after_s


class ServiceSaturatedError(RuntimeError):
    """The submission command queue is saturated; retry after a backoff.

    The HTTP frontend translates this to ``503`` + ``Retry-After``; the
    in-process client lets it propagate.  Distinct from
    :class:`QueueFullError`: saturation is the *control* path (commands
    not yet looked at), shedding is the *work* queue (jobs admitted but
    bounded).
    """

    def __init__(self, message: str, *, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`~repro.service.core.SchedulerService`.

    Attributes:
        scheduler: registry name of the scheduling policy to run.
        scheduler_kwargs: forwarded to the registry factory (e.g.
            ``{"planner": {"plan_cache": False}}`` for ablations).
        lp_backend: LP solver backend name for planner-based schedulers
            (``repro serve --lp-backend``; see
            ``repro.lp.available_backends``).  Folded into the FlowTime
            planner kwargs at scheduler construction; ``None`` keeps the
            planner's default, and an explicit
            ``scheduler_kwargs["planner"]["backend"]`` wins.
        slot_seconds: modelled duration of one slot (metrics conversion;
            the paper's deployment used 10 s).
        realtime: when True the event loop advances one slot per
            ``slot_seconds`` of wall-clock time (a live server); when False
            time is *virtual* — the clock advances as fast as work exists
            and parks while the system is idle (tests, simulation serving).
        batch_window_s: re-planning batch window in wall seconds.  After a
            submission arrives, the loop holds the (virtual) clock open for
            this long so a burst of N submissions coalesces into a single
            arrival slot — and therefore one LP ladder, not N.  0 batches
            only submissions already queued together.
        adhoc_queue_limit: bound on outstanding (incomplete) ad-hoc jobs;
            submissions beyond it are shed (backpressure) instead of
            growing the queue without bound.
        admission: run the exact max-placement admission check
            (:func:`repro.core.admission.check_admission`) on every
            workflow submission and reject workloads that provably cannot
            meet their deadlines.  False admits everything (paper
            behaviour).
        cluster_aware_decomposition: how admission decomposes candidate
            workflows (matches the FlowTime scheduler's default).
        strict: engine grant validation (see
            :class:`~repro.simulator.engine.SimulationConfig`).
        record_execution: keep per-slot executed-unit rows (Gantt support).
        drain_max_slots: hard stop for the graceful-drain run-out; a drain
            not finished by then reports ``finished=False``.
        submit_timeout_s: how long a synchronous ``submit_*`` call waits
            for the event loop before raising ``TimeoutError``.
        command_queue_limit: bound on *pending* commands (submissions and
            queries not yet picked up by the event loop).  Beyond it,
            submission raises :class:`ServiceSaturatedError` (HTTP: ``503``
            + ``Retry-After``) instead of queueing without bound behind a
            stalled loop.
        journal_path: when set, accepted submissions are appended to this
            write-ahead JSONL journal (fsync before the client sees the
            decision) and replayed on service start, so a crashed service
            restarts with zero lost accepted work.
        journal_fsync: fsync every journal append (durability); turn off
            only in tests/benchmarks where the journal is about replay
            mechanics, not crash safety.
        failures: optional :class:`~repro.simulator.failures.FailureModel`
            injecting progress setbacks into served slots (mirrors
            ``repro run --setback-prob``).
        error_model: optional :class:`~repro.estimation.errors.ErrorModel`;
            when set, submitted workflows are perturbed at admission time —
            the scheduler plans against erroneous estimates while the
            engine executes true demands (mirrors ``repro run
            --error-low/--error-high``).  Perturbation is seeded per
            workflow id (``fault_seed``), so a journal replay reproduces
            the same believed estimates.
        fault_seed: base seed for ``error_model`` perturbation.
        slo_deadline_objective: fraction of admitted workflows that must
            meet their deadline (the ``GET /slo`` error-budget objective).
        slo_decide_p99_s: decide-latency p99 ceiling in seconds.
        slo_window_s: rolling SLO evaluation window in seconds (burn rate,
            rolling p99).
        engine: which engine core steps the clock — ``"slots"`` or
            ``"events"`` (``repro serve --engine``).  The event core
            jumps idle virtual-time gaps and makes drain cost
            proportional to remaining work; under ``realtime=True``
            jumping is disabled so virtual time never races the wall
            clock, leaving the cores behaviourally identical there.
    """

    scheduler: str = "FlowTime"
    scheduler_kwargs: Mapping = field(default_factory=dict)
    lp_backend: Optional[str] = None
    slot_seconds: float = 10.0
    realtime: bool = False
    batch_window_s: float = 0.0
    adhoc_queue_limit: int = 256
    admission: bool = True
    cluster_aware_decomposition: bool = True
    strict: bool = True
    record_execution: bool = False
    drain_max_slots: int = 50_000
    submit_timeout_s: float = 30.0
    command_queue_limit: int = 1024
    journal_path: Optional[str] = None
    journal_fsync: bool = True
    failures: Optional["FailureModel"] = None
    error_model: Optional["ErrorModel"] = None
    fault_seed: int = 0
    slo_deadline_objective: float = 0.99
    slo_decide_p99_s: float = 1.0
    slo_window_s: float = 300.0
    engine: str = "slots"

    def __post_init__(self) -> None:
        if self.engine not in ("slots", "events"):
            raise ValueError("engine must be 'slots' or 'events'")
        if self.slot_seconds <= 0:
            raise ValueError("slot_seconds must be > 0")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if self.adhoc_queue_limit < 1:
            raise ValueError("adhoc_queue_limit must be >= 1")
        if self.drain_max_slots < 1:
            raise ValueError("drain_max_slots must be >= 1")
        if self.command_queue_limit < 1:
            raise ValueError("command_queue_limit must be >= 1")
        if not 0.0 < self.slo_deadline_objective < 1.0:
            raise ValueError("slo_deadline_objective must be in (0, 1)")
        if self.slo_decide_p99_s <= 0:
            raise ValueError("slo_decide_p99_s must be > 0")
        if self.slo_window_s <= 0:
            raise ValueError("slo_window_s must be > 0")


@dataclass(frozen=True)
class SubmitResult:
    """Synchronous outcome of one submission.

    ``reason`` is one of: ``admitted`` (deadline workflow passed the
    admission check), ``queued`` (ad-hoc job accepted into the queue),
    ``infeasible`` (admission proved a deadline shortfall), ``queue_full``
    (ad-hoc backpressure shed), ``draining`` (service no longer admits),
    ``invalid`` (malformed or duplicate submission), ``unavailable``
    (the admission LP solver failed — a retryable condition, HTTP 503).
    """

    accepted: bool
    kind: str  # "workflow" | "adhoc"
    id: str
    reason: str
    utilisation: float = math.nan
    shortfall_units: Mapping[str, int] = field(default_factory=dict)
    queue_depth: int = 0
    #: Correlation id the submission was processed under (minted by the
    #: service when the client sent none); every trace event the
    #: submission generates is stamped with it, so ``repro trace query
    #: RUN.jsonl --request <id>`` reconstructs the full timeline.
    request_id: str = ""
    #: Name of the shard that decided this submission, filled in by the
    #: shard router (empty for a monolithic service).  Lets clients and
    #: the load generator attribute acceptance per shard.
    shard: str = ""

    def to_dict(self) -> dict:
        return {
            "accepted": self.accepted,
            "kind": self.kind,
            "id": self.id,
            "reason": self.reason,
            "utilisation": None if math.isnan(self.utilisation) else self.utilisation,
            "shortfall_units": dict(self.shortfall_units),
            "queue_depth": self.queue_depth,
            "request_id": self.request_id,
            "shard": self.shard,
        }

    @staticmethod
    def from_dict(data: dict) -> "SubmitResult":
        utilisation = data.get("utilisation")
        return SubmitResult(
            accepted=bool(data["accepted"]),
            kind=data.get("kind", ""),
            id=data.get("id", ""),
            reason=data.get("reason", ""),
            utilisation=math.nan if utilisation is None else float(utilisation),
            shortfall_units=dict(data.get("shortfall_units", {})),
            queue_depth=int(data.get("queue_depth", 0)),
            request_id=data.get("request_id", ""),
            shard=data.get("shard", ""),
        )


@dataclass(frozen=True)
class ServiceStatus:
    """One consistent snapshot of the service's externally visible state."""

    running: bool
    draining: bool
    slot: int
    scheduler: str
    n_workflows: int
    n_jobs: int
    remaining_jobs: int
    queue_depth: int
    accepted_workflows: int
    rejected_workflows: int
    accepted_adhoc: int
    shed_adhoc: int
    replans: int

    def to_dict(self) -> dict:
        return {
            "running": self.running,
            "draining": self.draining,
            "slot": self.slot,
            "scheduler": self.scheduler,
            "n_workflows": self.n_workflows,
            "n_jobs": self.n_jobs,
            "remaining_jobs": self.remaining_jobs,
            "queue_depth": self.queue_depth,
            "accepted_workflows": self.accepted_workflows,
            "rejected_workflows": self.rejected_workflows,
            "accepted_adhoc": self.accepted_adhoc,
            "shed_adhoc": self.shed_adhoc,
            "replans": self.replans,
        }

    @staticmethod
    def from_dict(data: dict) -> "ServiceStatus":
        return ServiceStatus(
            running=bool(data["running"]),
            draining=bool(data["draining"]),
            slot=int(data["slot"]),
            scheduler=data.get("scheduler", ""),
            n_workflows=int(data["n_workflows"]),
            n_jobs=int(data["n_jobs"]),
            remaining_jobs=int(data["remaining_jobs"]),
            queue_depth=int(data["queue_depth"]),
            accepted_workflows=int(data["accepted_workflows"]),
            rejected_workflows=int(data["rejected_workflows"]),
            accepted_adhoc=int(data["accepted_adhoc"]),
            shed_adhoc=int(data["shed_adhoc"]),
            replans=int(data["replans"]),
        )
