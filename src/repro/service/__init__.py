"""The online scheduler service: FlowTime as a long-running server.

The batch :class:`~repro.simulator.engine.Simulation` replays a canned
workload; this package serves a *dynamic* one.  A single event-loop thread
(:class:`~repro.service.core.SchedulerService`) owns the clock and the
scheduler; submissions arrive through a thread-safe API — in-process
(:class:`~repro.service.client.InProcessClient`) or over stdlib JSON/HTTP
(:mod:`repro.service.http`, :class:`~repro.service.client.
HttpServiceClient`) — and are admission-checked, batched into shared
re-plans, and backpressured when the ad-hoc queue fills.  ``repro serve``
is the CLI entry point; see docs/ARCHITECTURE.md for how the batch and
service paths share the engine core.

Fault tolerance (docs/ROBUSTNESS.md): accepted submissions are journaled
write-ahead (:mod:`repro.service.journal`) and replayed on restart;
clients retry transient failures with idempotency keys; saturation and
shedding surface as typed errors (:class:`~repro.service.api.
ServiceSaturatedError`, :class:`~repro.service.api.QueueFullError`).
"""

from repro.service.aio import AsyncServiceHTTPServer, serve_http_async
from repro.service.api import (
    QueueFullError,
    ServiceConfig,
    ServiceSaturatedError,
    ServiceStatus,
    SubmitResult,
)
from repro.service.client import (
    HttpServiceClient,
    InProcessClient,
    ServiceError,
    ServiceUnavailableError,
)
from repro.service.core import SchedulerService
from repro.service.http import ServiceHTTPServer, serve_http
from repro.service.journal import JournalRecord, SubmissionJournal, read_journal
from repro.service.top import render_dashboard, run_top

__all__ = [
    "AsyncServiceHTTPServer",
    "HttpServiceClient",
    "InProcessClient",
    "JournalRecord",
    "QueueFullError",
    "SchedulerService",
    "ServiceConfig",
    "ServiceError",
    "ServiceHTTPServer",
    "ServiceSaturatedError",
    "ServiceStatus",
    "ServiceUnavailableError",
    "SubmissionJournal",
    "SubmitResult",
    "read_journal",
    "render_dashboard",
    "run_top",
    "serve_http",
    "serve_http_async",
]
