"""The online scheduler service: FlowTime as a long-running server.

The batch :class:`~repro.simulator.engine.Simulation` replays a canned
workload; this package serves a *dynamic* one.  A single event-loop thread
(:class:`~repro.service.core.SchedulerService`) owns the clock and the
scheduler; submissions arrive through a thread-safe API — in-process
(:class:`~repro.service.client.InProcessClient`) or over stdlib JSON/HTTP
(:mod:`repro.service.http`, :class:`~repro.service.client.
HttpServiceClient`) — and are admission-checked, batched into shared
re-plans, and backpressured when the ad-hoc queue fills.  ``repro serve``
is the CLI entry point; see docs/ARCHITECTURE.md for how the batch and
service paths share the engine core.
"""

from repro.service.api import ServiceConfig, ServiceStatus, SubmitResult
from repro.service.client import HttpServiceClient, InProcessClient, ServiceError
from repro.service.core import SchedulerService
from repro.service.http import ServiceHTTPServer, serve_http

__all__ = [
    "HttpServiceClient",
    "InProcessClient",
    "SchedulerService",
    "ServiceConfig",
    "ServiceError",
    "ServiceHTTPServer",
    "ServiceStatus",
    "SubmitResult",
    "serve_http",
]
