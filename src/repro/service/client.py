"""Clients for the scheduler service: in-process and JSON-over-HTTP.

Both speak the same surface (submit workflow / submit ad-hoc / status /
plan / metrics) and return the same :mod:`repro.service.api` value
objects, so test code and tooling can swap a local service for a remote
one by changing one constructor.

Robustness semantics shared by both clients (docs/ROBUSTNESS.md):

* A shed ad-hoc submission (``queue_full``) raises the typed
  :class:`~repro.service.api.QueueFullError` — backpressure is an
  exceptional outcome the caller must handle, not a decision to eyeball
  out of a reason string.
* The HTTP client retries *transient* failures — connection errors,
  ``503`` saturation/unavailable answers — with capped exponential
  backoff plus jitter, honouring the server's ``Retry-After`` when one is
  sent.  Every submission carries an ``Idempotency-Key`` header
  (auto-generated unless the caller supplies one), so a retry whose
  original attempt actually landed returns the original decision instead
  of double-admitting.
* An optional :class:`CircuitBreaker` sits in front of the retry loop:
  after ``failure_threshold`` consecutive transport failures the breaker
  *opens* and every call fast-fails with :class:`CircuitOpenError`
  instead of eating a full socket timeout; after ``reset_timeout_s`` one
  *half-open* probe is let through, and its outcome decides between
  closing the breaker and re-opening it.  Any answer from the server —
  including a 4xx rejection — counts as success: the breaker tracks the
  *transport*, not the decision.
* An optional :class:`RetryBudget` (token bucket) caps how many retries
  the client spends per unit time across all requests, so a down server
  degrades to roughly one attempt per request instead of multiplying
  every call by ``max_retries``.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request
import uuid

from repro.model.job import Job
from repro.model.workflow import Workflow
from repro.service.api import QueueFullError, ServiceStatus, SubmitResult
from repro.workloads.traces import job_to_dict, workflow_to_dict

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "HttpServiceClient",
    "InProcessClient",
    "RetryBudget",
    "ServiceError",
    "ServiceUnavailableError",
]


class ServiceError(RuntimeError):
    """The service could not process a request (malformed, not a reject)."""


class ServiceUnavailableError(ServiceError):
    """Transient failure that outlived the client's retry budget."""


class CircuitOpenError(ServiceUnavailableError):
    """Fast-fail: the circuit breaker is open, no request was attempted.

    Subclasses :class:`ServiceUnavailableError` so existing callers that
    treat "service unavailable" as a unit (``healthy()``, the shard
    router's ``_SHARD_ERRORS``) need no changes.
    """


class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed → open → half-open).

    * **closed** — requests flow; ``failure_threshold`` *consecutive*
      transport failures open the breaker.
    * **open** — every :meth:`allow` is denied (the client fast-fails
      with :class:`CircuitOpenError`) until ``reset_timeout_s`` has
      elapsed since opening.
    * **half-open** — exactly one probe request is let through; success
      closes the breaker, failure re-opens it for another timeout.

    Thread-safe; the clock is injectable for tests.  When ``obs`` is
    given, state changes maintain a ``router.breaker.state.<name>``
    gauge (0 closed / 1 half-open / 2 open) and a
    ``router.breaker.opens.<name>`` counter.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    _STATE_VALUES = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 2.0,
        *,
        name: str = "",
        obs=None,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.name = name
        self.obs = obs
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_in_flight = False

    def _suffix(self) -> str:
        return f".{self.name}" if self.name else ""

    def _set_state(self, state: str) -> None:
        self._state = state
        if self.obs is not None:
            self.obs.gauge(f"router.breaker.state{self._suffix()}").set(
                self._STATE_VALUES[state]
            )

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a request go out now?  (Claims the half-open probe slot.)"""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                elapsed = self._clock() - (self._opened_at or 0.0)
                if elapsed < self.reset_timeout_s:
                    if self.obs is not None:
                        self.obs.counter(
                            f"router.breaker.fast_fails{self._suffix()}"
                        ).inc()
                    return False
                self._set_state(self.HALF_OPEN)
                self._probe_in_flight = True
                return True
            # half-open: one probe at a time.
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != self.CLOSED:
                self._set_state(self.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            self._consecutive_failures += 1
            if self._state == self.HALF_OPEN or (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._set_state(self.OPEN)
                self._opened_at = self._clock()
                if self.obs is not None:
                    self.obs.counter(
                        f"router.breaker.opens{self._suffix()}"
                    ).inc()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
            }


class RetryBudget:
    """Token-bucket cap on retries (first attempts are always free).

    Each *retry* spends one token; tokens refill at ``refill_per_s`` up
    to ``capacity``.  When the bucket is empty the client gives up
    instead of retrying — during an outage, total traffic degrades to
    ~1x instead of ``max_retries + 1``x.
    """

    def __init__(
        self,
        capacity: float = 10.0,
        refill_per_s: float = 1.0,
        *,
        clock=time.monotonic,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if refill_per_s < 0:
            raise ValueError("refill_per_s must be >= 0")
        self.capacity = capacity
        self.refill_per_s = refill_per_s
        self._clock = clock
        self._tokens = capacity
        self._last_refill = clock()
        self._lock = threading.Lock()

    def spend(self, cost: float = 1.0) -> bool:
        """Take *cost* tokens if available; False means don't retry."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.capacity,
                self._tokens + (now - self._last_refill) * self.refill_per_s,
            )
            self._last_refill = now
            if self._tokens < cost:
                return False
            self._tokens -= cost
            return True

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens


def _raise_if_shed(result: SubmitResult) -> SubmitResult:
    if not result.accepted and result.reason == "queue_full":
        raise QueueFullError(
            f"ad-hoc job {result.id!r} shed: queue full "
            f"(depth {result.queue_depth})",
            queue_depth=result.queue_depth,
        )
    return result


class InProcessClient:
    """Thin client over a :class:`~repro.service.core.SchedulerService`
    running in this process — the reference implementation of the client
    surface."""

    def __init__(self, service):
        self._service = service

    def submit_workflow(
        self,
        workflow: Workflow,
        *,
        idempotency_key: str | None = None,
        request_id: str | None = None,
    ) -> SubmitResult:
        return self._service.submit_workflow(
            workflow, idempotency_key=idempotency_key, request_id=request_id
        )

    def submit_adhoc(
        self,
        job: Job,
        *,
        idempotency_key: str | None = None,
        request_id: str | None = None,
    ) -> SubmitResult:
        return _raise_if_shed(
            self._service.submit_adhoc(
                job, idempotency_key=idempotency_key, request_id=request_id
            )
        )

    def status(self) -> ServiceStatus:
        return self._service.status()

    def plan(self) -> dict:
        return self._service.plan_snapshot()

    def metrics(self) -> dict:
        return self._service.metrics_snapshot()

    def slo(self) -> dict:
        return self._service.slo_snapshot()


class HttpServiceClient:
    """Client for the stdlib HTTP frontend (:mod:`repro.service.http`).

    Submission bodies are the trace wire format
    (:func:`repro.workloads.traces.workflow_to_dict` /
    :func:`~repro.workloads.traces.job_to_dict`), so any trace entry can be
    replayed against a live server verbatim.

    Args:
        base_url: the server root, e.g. ``http://127.0.0.1:8080``.
        timeout: per-request socket timeout in seconds.
        max_retries: transient-failure retries per request (0 disables).
        backoff_s: base of the exponential backoff.
        backoff_cap_s: ceiling on any single sleep (a ``Retry-After``
            above the cap is trusted over it — the server knows best).
        breaker: optional :class:`CircuitBreaker`; when open, requests
            fast-fail with :class:`CircuitOpenError` without touching
            the wire.
        retry_budget: optional :class:`RetryBudget`; an exhausted budget
            turns a would-be retry into an immediate
            :class:`ServiceUnavailableError`.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        *,
        max_retries: int = 4,
        backoff_s: float = 0.2,
        backoff_cap_s: float = 10.0,
        breaker: CircuitBreaker | None = None,
        retry_budget: RetryBudget | None = None,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.breaker = breaker
        self.retry_budget = retry_budget
        self._rng = random.Random()

    # -- submissions ----------------------------------------------------------------

    def submit_workflow(
        self,
        workflow: Workflow,
        *,
        idempotency_key: str | None = None,
        request_id: str | None = None,
    ) -> SubmitResult:
        body = self._request(
            "POST",
            "/workflows",
            workflow_to_dict(workflow),
            idempotency_key=idempotency_key or str(uuid.uuid4()),
            # Minted client-side so every retry of this submission carries
            # the same correlation id.
            request_id=request_id or uuid.uuid4().hex,
        )
        return SubmitResult.from_dict(body)

    def submit_adhoc(
        self,
        job: Job,
        *,
        idempotency_key: str | None = None,
        request_id: str | None = None,
    ) -> SubmitResult:
        body = self._request(
            "POST",
            "/jobs",
            job_to_dict(job),
            idempotency_key=idempotency_key or str(uuid.uuid4()),
            request_id=request_id or uuid.uuid4().hex,
        )
        return _raise_if_shed(SubmitResult.from_dict(body))

    # -- queries -----------------------------------------------------------------------

    def status(self) -> ServiceStatus:
        return ServiceStatus.from_dict(self._request("GET", "/status"))

    def plan(self) -> dict:
        return self._request("GET", "/plan")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def slo(self) -> dict:
        return self._request("GET", "/slo")

    def request_json(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict:
        """One JSON request against an arbitrary path, with the client's
        usual retry/backoff treatment.

        Public passthrough for surfaces beyond the core client methods —
        the shard router drives the ``/shard/*`` migration endpoints
        through this.
        """
        return self._request(method, path, payload)

    def metrics_prometheus(self) -> str:
        """GET /metrics?format=prometheus — raw text exposition 0.0.4."""
        request = urllib.request.Request(
            self.base_url + "/metrics?format=prometheus",
            headers={"Accept": "text/plain"},
            method="GET",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.URLError as error:
            raise ServiceUnavailableError(
                f"GET /metrics?format=prometheus failed: {error}"
            ) from error

    def healthy(self) -> bool:
        """GET /healthz; False on any transport failure (liveness probe)."""
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (ServiceError, OSError):
            return False

    def ready(self) -> bool:
        """GET /readyz; False when not admitting (readiness probe)."""
        try:
            return bool(self._request("GET", "/readyz").get("ready"))
        except (ServiceError, OSError):
            return False

    # -- plumbing -------------------------------------------------------------------

    def _backoff(self, attempt: int, retry_after: float | None) -> float:
        """Sleep duration before retry *attempt* (0-based), with jitter."""
        base = min(self.backoff_s * (2**attempt), self.backoff_cap_s)
        delay = base * (0.5 + 0.5 * self._rng.random())
        if retry_after is not None:
            # The server's hint is a floor: never come back earlier than
            # asked, even if our own backoff would.
            delay = max(delay, retry_after)
        return delay

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        idempotency_key: str | None = None,
        request_id: str | None = None,
    ) -> dict:
        last_error: Exception | None = None
        attempts = 0
        for attempt in range(self.max_retries + 1):
            if self.breaker is not None and not self.breaker.allow():
                raise CircuitOpenError(
                    f"{method} {path}: circuit breaker "
                    f"{self.breaker.name or self.base_url!r} is open"
                ) from last_error
            attempts += 1
            try:
                result = self._request_once(
                    method, path, payload, idempotency_key, request_id
                )
            except _TransientFailure as failure:
                if self.breaker is not None:
                    self.breaker.record_failure()
                last_error = failure.cause
                if attempt >= self.max_retries:
                    break
                if self.retry_budget is not None and not (
                    self.retry_budget.spend()
                ):
                    break  # retry budget exhausted: fail now, cheaply
                time.sleep(self._backoff(attempt, failure.retry_after))
                continue
            except ServiceError:
                # The server answered (even if with an error): the
                # transport is fine, so the breaker counts it a success.
                if self.breaker is not None:
                    self.breaker.record_success()
                raise
            if self.breaker is not None:
                self.breaker.record_success()
            return result
        raise ServiceUnavailableError(
            f"{method} {path}: no answer after {attempts} "
            f"attempt{'s' if attempts != 1 else ''}: {last_error}"
        ) from last_error

    def _request_once(
        self,
        method: str,
        path: str,
        payload: dict | None,
        idempotency_key: str | None,
        request_id: str | None = None,
    ) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if idempotency_key is not None:
            headers["Idempotency-Key"] = idempotency_key
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                raw = response.read()
        except urllib.error.HTTPError as error:
            raw = error.read()
            body = _parse_json(raw)
            # Rejections (infeasible, queue_full, draining, invalid
            # submission) travel as non-2xx with a full SubmitResult body —
            # still a well-formed answer, not a transport failure...
            if isinstance(body, dict) and "accepted" in body:
                # ...except a transient "unavailable": that one is worth
                # retrying (the idempotency key makes the retry safe).
                if body.get("reason") == "unavailable":
                    raise _TransientFailure(error, _retry_after_of(error))
                return body
            if error.code == 503:
                # Saturation / stopped frontends answer 503 without a
                # decision body: transient by definition.
                raise _TransientFailure(error, _retry_after_of(error))
            detail = body.get("error") if isinstance(body, dict) else raw.decode(
                "utf-8", "replace"
            )
            raise ServiceError(f"{method} {path} -> {error.code}: {detail}") from None
        except urllib.error.URLError as error:
            # Connection refused/reset, DNS, timeout: the request may or
            # may not have landed — exactly what idempotency keys are for.
            raise _TransientFailure(error, None)
        body = _parse_json(raw)
        if not isinstance(body, dict):
            raise ServiceError(f"{method} {path}: non-object response")
        return body


class _TransientFailure(Exception):
    """Internal: a failed attempt the retry loop may try again."""

    def __init__(self, cause: Exception, retry_after: float | None):
        super().__init__(str(cause))
        self.cause = cause
        self.retry_after = retry_after


def _retry_after_of(error: urllib.error.HTTPError) -> float | None:
    value = error.headers.get("Retry-After") if error.headers else None
    try:
        return float(value) if value is not None else None
    except ValueError:
        return None


def _parse_json(raw: bytes) -> object:
    try:
        return json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
