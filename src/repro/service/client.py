"""Clients for the scheduler service: in-process and JSON-over-HTTP.

Both speak the same surface (submit workflow / submit ad-hoc / status /
plan / metrics) and return the same :mod:`repro.service.api` value
objects, so test code and tooling can swap a local service for a remote
one by changing one constructor.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.model.job import Job
from repro.model.workflow import Workflow
from repro.service.api import ServiceStatus, SubmitResult
from repro.workloads.traces import job_to_dict, workflow_to_dict

__all__ = ["HttpServiceClient", "InProcessClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The service could not process a request (malformed, not a reject)."""


class InProcessClient:
    """Thin client over a :class:`~repro.service.core.SchedulerService`
    running in this process — the reference implementation of the client
    surface."""

    def __init__(self, service):
        self._service = service

    def submit_workflow(self, workflow: Workflow) -> SubmitResult:
        return self._service.submit_workflow(workflow)

    def submit_adhoc(self, job: Job) -> SubmitResult:
        return self._service.submit_adhoc(job)

    def status(self) -> ServiceStatus:
        return self._service.status()

    def plan(self) -> dict:
        return self._service.plan_snapshot()

    def metrics(self) -> dict:
        return self._service.metrics_snapshot()


class HttpServiceClient:
    """Client for the stdlib HTTP frontend (:mod:`repro.service.http`).

    Submission bodies are the trace wire format
    (:func:`repro.workloads.traces.workflow_to_dict` /
    :func:`~repro.workloads.traces.job_to_dict`), so any trace entry can be
    replayed against a live server verbatim.
    """

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- submissions ----------------------------------------------------------------

    def submit_workflow(self, workflow: Workflow) -> SubmitResult:
        body = self._request("POST", "/workflows", workflow_to_dict(workflow))
        return SubmitResult.from_dict(body)

    def submit_adhoc(self, job: Job) -> SubmitResult:
        body = self._request("POST", "/jobs", job_to_dict(job))
        return SubmitResult.from_dict(body)

    # -- queries -----------------------------------------------------------------------

    def status(self) -> ServiceStatus:
        return ServiceStatus.from_dict(self._request("GET", "/status"))

    def plan(self) -> dict:
        return self._request("GET", "/plan")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    # -- plumbing -------------------------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                raw = response.read()
        except urllib.error.HTTPError as error:
            raw = error.read()
            body = _parse_json(raw)
            # Rejections (infeasible, queue_full, draining, invalid
            # submission) travel as non-2xx with a full SubmitResult body —
            # still a well-formed answer, not a transport failure.
            if isinstance(body, dict) and "accepted" in body:
                return body
            detail = body.get("error") if isinstance(body, dict) else raw.decode(
                "utf-8", "replace"
            )
            raise ServiceError(f"{method} {path} -> {error.code}: {detail}") from None
        body = _parse_json(raw)
        if not isinstance(body, dict):
            raise ServiceError(f"{method} {path}: non-object response")
        return body


def _parse_json(raw: bytes) -> object:
    try:
        return json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
