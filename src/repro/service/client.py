"""Clients for the scheduler service: in-process and JSON-over-HTTP.

Both speak the same surface (submit workflow / submit ad-hoc / status /
plan / metrics) and return the same :mod:`repro.service.api` value
objects, so test code and tooling can swap a local service for a remote
one by changing one constructor.

Robustness semantics shared by both clients (docs/ROBUSTNESS.md):

* A shed ad-hoc submission (``queue_full``) raises the typed
  :class:`~repro.service.api.QueueFullError` — backpressure is an
  exceptional outcome the caller must handle, not a decision to eyeball
  out of a reason string.
* The HTTP client retries *transient* failures — connection errors,
  ``503`` saturation/unavailable answers — with capped exponential
  backoff plus jitter, honouring the server's ``Retry-After`` when one is
  sent.  Every submission carries an ``Idempotency-Key`` header
  (auto-generated unless the caller supplies one), so a retry whose
  original attempt actually landed returns the original decision instead
  of double-admitting.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
import uuid

from repro.model.job import Job
from repro.model.workflow import Workflow
from repro.service.api import QueueFullError, ServiceStatus, SubmitResult
from repro.workloads.traces import job_to_dict, workflow_to_dict

__all__ = [
    "HttpServiceClient",
    "InProcessClient",
    "ServiceError",
    "ServiceUnavailableError",
]


class ServiceError(RuntimeError):
    """The service could not process a request (malformed, not a reject)."""


class ServiceUnavailableError(ServiceError):
    """Transient failure that outlived the client's retry budget."""


def _raise_if_shed(result: SubmitResult) -> SubmitResult:
    if not result.accepted and result.reason == "queue_full":
        raise QueueFullError(
            f"ad-hoc job {result.id!r} shed: queue full "
            f"(depth {result.queue_depth})",
            queue_depth=result.queue_depth,
        )
    return result


class InProcessClient:
    """Thin client over a :class:`~repro.service.core.SchedulerService`
    running in this process — the reference implementation of the client
    surface."""

    def __init__(self, service):
        self._service = service

    def submit_workflow(
        self,
        workflow: Workflow,
        *,
        idempotency_key: str | None = None,
        request_id: str | None = None,
    ) -> SubmitResult:
        return self._service.submit_workflow(
            workflow, idempotency_key=idempotency_key, request_id=request_id
        )

    def submit_adhoc(
        self,
        job: Job,
        *,
        idempotency_key: str | None = None,
        request_id: str | None = None,
    ) -> SubmitResult:
        return _raise_if_shed(
            self._service.submit_adhoc(
                job, idempotency_key=idempotency_key, request_id=request_id
            )
        )

    def status(self) -> ServiceStatus:
        return self._service.status()

    def plan(self) -> dict:
        return self._service.plan_snapshot()

    def metrics(self) -> dict:
        return self._service.metrics_snapshot()

    def slo(self) -> dict:
        return self._service.slo_snapshot()


class HttpServiceClient:
    """Client for the stdlib HTTP frontend (:mod:`repro.service.http`).

    Submission bodies are the trace wire format
    (:func:`repro.workloads.traces.workflow_to_dict` /
    :func:`~repro.workloads.traces.job_to_dict`), so any trace entry can be
    replayed against a live server verbatim.

    Args:
        base_url: the server root, e.g. ``http://127.0.0.1:8080``.
        timeout: per-request socket timeout in seconds.
        max_retries: transient-failure retries per request (0 disables).
        backoff_s: base of the exponential backoff.
        backoff_cap_s: ceiling on any single sleep (a ``Retry-After``
            above the cap is trusted over it — the server knows best).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        *,
        max_retries: int = 4,
        backoff_s: float = 0.2,
        backoff_cap_s: float = 10.0,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self._rng = random.Random()

    # -- submissions ----------------------------------------------------------------

    def submit_workflow(
        self,
        workflow: Workflow,
        *,
        idempotency_key: str | None = None,
        request_id: str | None = None,
    ) -> SubmitResult:
        body = self._request(
            "POST",
            "/workflows",
            workflow_to_dict(workflow),
            idempotency_key=idempotency_key or str(uuid.uuid4()),
            # Minted client-side so every retry of this submission carries
            # the same correlation id.
            request_id=request_id or uuid.uuid4().hex,
        )
        return SubmitResult.from_dict(body)

    def submit_adhoc(
        self,
        job: Job,
        *,
        idempotency_key: str | None = None,
        request_id: str | None = None,
    ) -> SubmitResult:
        body = self._request(
            "POST",
            "/jobs",
            job_to_dict(job),
            idempotency_key=idempotency_key or str(uuid.uuid4()),
            request_id=request_id or uuid.uuid4().hex,
        )
        return _raise_if_shed(SubmitResult.from_dict(body))

    # -- queries -----------------------------------------------------------------------

    def status(self) -> ServiceStatus:
        return ServiceStatus.from_dict(self._request("GET", "/status"))

    def plan(self) -> dict:
        return self._request("GET", "/plan")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def slo(self) -> dict:
        return self._request("GET", "/slo")

    def request_json(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict:
        """One JSON request against an arbitrary path, with the client's
        usual retry/backoff treatment.

        Public passthrough for surfaces beyond the core client methods —
        the shard router drives the ``/shard/*`` migration endpoints
        through this.
        """
        return self._request(method, path, payload)

    def metrics_prometheus(self) -> str:
        """GET /metrics?format=prometheus — raw text exposition 0.0.4."""
        request = urllib.request.Request(
            self.base_url + "/metrics?format=prometheus",
            headers={"Accept": "text/plain"},
            method="GET",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.URLError as error:
            raise ServiceUnavailableError(
                f"GET /metrics?format=prometheus failed: {error}"
            ) from error

    def healthy(self) -> bool:
        """GET /healthz; False on any transport failure (liveness probe)."""
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (ServiceError, OSError):
            return False

    def ready(self) -> bool:
        """GET /readyz; False when not admitting (readiness probe)."""
        try:
            return bool(self._request("GET", "/readyz").get("ready"))
        except (ServiceError, OSError):
            return False

    # -- plumbing -------------------------------------------------------------------

    def _backoff(self, attempt: int, retry_after: float | None) -> float:
        """Sleep duration before retry *attempt* (0-based), with jitter."""
        base = min(self.backoff_s * (2**attempt), self.backoff_cap_s)
        delay = base * (0.5 + 0.5 * self._rng.random())
        if retry_after is not None:
            # The server's hint is a floor: never come back earlier than
            # asked, even if our own backoff would.
            delay = max(delay, retry_after)
        return delay

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        idempotency_key: str | None = None,
        request_id: str | None = None,
    ) -> dict:
        last_error: Exception | None = None
        for attempt in range(self.max_retries + 1):
            try:
                return self._request_once(
                    method, path, payload, idempotency_key, request_id
                )
            except _TransientFailure as failure:
                last_error = failure.cause
                if attempt >= self.max_retries:
                    break
                time.sleep(self._backoff(attempt, failure.retry_after))
        raise ServiceUnavailableError(
            f"{method} {path}: no answer after {self.max_retries + 1} "
            f"attempts: {last_error}"
        ) from last_error

    def _request_once(
        self,
        method: str,
        path: str,
        payload: dict | None,
        idempotency_key: str | None,
        request_id: str | None = None,
    ) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if idempotency_key is not None:
            headers["Idempotency-Key"] = idempotency_key
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                raw = response.read()
        except urllib.error.HTTPError as error:
            raw = error.read()
            body = _parse_json(raw)
            # Rejections (infeasible, queue_full, draining, invalid
            # submission) travel as non-2xx with a full SubmitResult body —
            # still a well-formed answer, not a transport failure...
            if isinstance(body, dict) and "accepted" in body:
                # ...except a transient "unavailable": that one is worth
                # retrying (the idempotency key makes the retry safe).
                if body.get("reason") == "unavailable":
                    raise _TransientFailure(error, _retry_after_of(error))
                return body
            if error.code == 503:
                # Saturation / stopped frontends answer 503 without a
                # decision body: transient by definition.
                raise _TransientFailure(error, _retry_after_of(error))
            detail = body.get("error") if isinstance(body, dict) else raw.decode(
                "utf-8", "replace"
            )
            raise ServiceError(f"{method} {path} -> {error.code}: {detail}") from None
        except urllib.error.URLError as error:
            # Connection refused/reset, DNS, timeout: the request may or
            # may not have landed — exactly what idempotency keys are for.
            raise _TransientFailure(error, None)
        body = _parse_json(raw)
        if not isinstance(body, dict):
            raise ServiceError(f"{method} {path}: non-object response")
        return body


class _TransientFailure(Exception):
    """Internal: a failed attempt the retry loop may try again."""

    def __init__(self, cause: Exception, retry_after: float | None):
        super().__init__(str(cause))
        self.cause = cause
        self.retry_after = retry_after


def _retry_after_of(error: urllib.error.HTTPError) -> float | None:
    value = error.headers.get("Retry-After") if error.headers else None
    try:
        return float(value) if value is not None else None
    except ValueError:
        return None


def _parse_json(raw: bytes) -> object:
    try:
        return json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
