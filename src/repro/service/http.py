"""Stdlib-only JSON-over-HTTP frontend for the scheduler service.

A :class:`http.server.ThreadingHTTPServer` that translates these routes
onto one :class:`~repro.service.core.SchedulerService`:

====== ============ =====================================================
Method Path         Meaning
====== ============ =====================================================
POST   /workflows   submit a deadline workflow (trace wire format);
                    synchronous admission decision in the body
POST   /jobs        submit an ad-hoc job; queued or shed (backpressure)
GET    /plan        the live allocation plan (origin slot, horizon,
                    per-job granted slots)
GET    /status      service snapshot (slot, queue depth, accept counts)
GET    /metrics     full metrics-registry snapshot (counters, gauges,
                    histogram quantiles)
GET    /healthz     liveness: 200 while the process serves requests
GET    /readyz      readiness: 200 only while the event loop is running
                    and admitting (503 when stopped or draining)
====== ============ =====================================================

Handler threads only enqueue commands and read snapshots — every
scheduling decision still happens on the service's single event-loop
thread, so concurrency is bounded by design, not by luck.  No third-party
dependencies: ``http.server`` + ``json`` only.

Robustness affordances (docs/ROBUSTNESS.md): submissions may carry an
``Idempotency-Key`` header — a retried key whose original submission was
accepted returns the original decision, so client retries never
double-admit.  Backpressure answers carry ``Retry-After``: ``429`` when
the ad-hoc queue sheds, ``503`` when the command queue is saturated or
the admission solver is temporarily unavailable.
"""

from __future__ import annotations

import json
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.api import ServiceSaturatedError, SubmitResult
from repro.service.core import SchedulerService
from repro.workloads.traces import job_from_dict, workflow_from_dict

__all__ = ["ServiceHTTPServer", "serve_http"]

#: HTTP status for each rejection reason; accepted submissions are 200.
_REJECT_STATUS = {
    "infeasible": 409,  # admission proved a deadline shortfall
    "invalid": 400,
    "queue_full": 429,  # backpressure: retry later
    "draining": 503,
    "unavailable": 503,  # admission solver failed; transient, retry
}
#: Rejection reasons that are transient — the answer carries Retry-After.
_RETRYABLE_REASONS = {"queue_full", "unavailable"}
_MAX_BODY_BYTES = 8 * 1024 * 1024


def _retry_after(seconds: float) -> str:
    """Retry-After header value: whole seconds, at least 1."""
    return str(max(int(math.ceil(seconds)), 1))


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-scheduler"

    # The bound service, set by ServiceHTTPServer.
    @property
    def service(self) -> SchedulerService:
        return self.server.service  # type: ignore[attr-defined]

    # -- routing -----------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/status":
            self._reply(200, self.service.status().to_dict())
        elif path == "/plan":
            self._reply(200, self.service.plan_snapshot())
        elif path == "/metrics":
            self._reply(200, self.service.metrics_snapshot())
        elif path == "/healthz":
            # Liveness: answering at all is the signal.
            self._reply(200, {"ok": True})
        elif path == "/readyz":
            ready = self.service.running and not self.service.draining
            self._reply(
                200 if ready else 503,
                {
                    "ready": ready,
                    "running": self.service.running,
                    "draining": self.service.draining,
                },
            )
        else:
            self._reply(404, {"error": f"no such resource: {path}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/workflows":
            self._submit(workflow_from_dict, self.service.submit_workflow)
        elif path == "/jobs":
            self._submit(job_from_dict, self.service.submit_adhoc)
        else:
            self._reply(404, {"error": f"no such resource: {path}"})

    def _submit(self, parse, submit) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            entity = parse(body)
        except (KeyError, TypeError, ValueError) as error:
            self._reply(400, {"error": f"malformed submission: {error}"})
            return
        key = self.headers.get("Idempotency-Key") or None
        try:
            result: SubmitResult = submit(entity, idempotency_key=key)
        except ServiceSaturatedError as error:
            # Control-path backpressure: the command queue is full.  Tell
            # the client when to come back instead of queueing it blind.
            self._reply(
                503,
                {"error": str(error), "retry_after_s": error.retry_after_s},
                headers={"Retry-After": _retry_after(error.retry_after_s)},
            )
            return
        except TimeoutError:
            self._reply(504, {"error": "scheduler did not answer in time"})
            return
        except RuntimeError as error:  # service stopped
            self._reply(503, {"error": str(error)})
            return
        status = 200 if result.accepted else _REJECT_STATUS.get(result.reason, 400)
        headers = None
        if not result.accepted and result.reason in _RETRYABLE_REASONS:
            headers = {"Retry-After": _retry_after(1.0)}
        self._reply(status, result.to_dict(), headers=headers)

    # -- plumbing -------------------------------------------------------------------

    def _read_body(self) -> dict | None:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            length = 0
        if length <= 0 or length > _MAX_BODY_BYTES:
            self._reply(400, {"error": "missing or oversized request body"})
            return None
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._reply(400, {"error": "request body is not valid JSON"})
            return None
        if not isinstance(body, dict):
            self._reply(400, {"error": "request body must be a JSON object"})
            return None
        return body

    def _reply(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:
        # Route access logs through the service's obs layer instead of
        # stderr so quiet runs stay quiet.
        import logging

        self.service.obs.log(
            logging.DEBUG, "http %s " + format, self.client_address[0], *args
        )


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one SchedulerService.

    ``port=0`` binds an ephemeral port; read it back from
    :attr:`server_port`.  ``serve_forever()`` blocks, so typical use runs
    it on a thread (see :func:`serve_http`) and calls :meth:`shutdown` from
    the signal handler.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, service: SchedulerService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        super().__init__((host, port), _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"


def serve_http(
    service: SchedulerService, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Start an HTTP frontend on a daemon thread; returns the bound server.

    The caller owns shutdown ordering: ``server.shutdown()`` first (stop
    accepting requests), then ``service.drain()``.
    """
    import threading

    server = ServiceHTTPServer(service, host=host, port=port)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    thread.start()
    return server
