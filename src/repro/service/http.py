"""Stdlib-only JSON-over-HTTP frontend for the scheduler service.

A :class:`http.server.ThreadingHTTPServer` that translates these routes
onto one :class:`~repro.service.core.SchedulerService`:

====== ============ =====================================================
Method Path         Meaning
====== ============ =====================================================
POST   /workflows   submit a deadline workflow (trace wire format);
                    synchronous admission decision in the body
POST   /jobs        submit an ad-hoc job; queued or shed (backpressure)
GET    /plan        the live allocation plan (origin slot, horizon,
                    per-job granted slots)
GET    /status      service snapshot (slot, queue depth, accept counts)
GET    /metrics     full metrics-registry snapshot (counters, gauges,
                    histogram quantiles); ``?format=prometheus`` switches
                    to text exposition format 0.0.4 for scrapers
GET    /slo         SLO status: deadline error budget + burn rate, and
                    decide-latency p99 vs objective
GET    /healthz     liveness: 200 while the process serves requests
GET    /readyz      readiness: 200 only while the event loop is running
                    and admitting (503 when stopped or draining)
====== ============ =====================================================

Shard-to-shard surface (docs/SHARDING.md) — consumed by the
:class:`repro.cluster.router.ShardRouter` and rebalancer, not by end
users: ``GET /shard/skyline`` (committed-demand saturation),
``GET /shard/candidates`` (migratable workflows), ``GET /shard/orphans``
(unsettled outbound handoffs), ``GET /shard/workflows`` (owned ids),
``GET /shard/owns?workflow=ID``, and ``POST /shard/migrate-out``,
``/shard/migrate-in``, ``/shard/restore``, ``/shard/confirm`` driving the
two-phase migration protocol.

Handler threads only enqueue commands and read snapshots — every
scheduling decision still happens on the service's single event-loop
thread, so concurrency is bounded by design, not by luck.  No third-party
dependencies: ``http.server`` + ``json`` only.

Robustness affordances (docs/ROBUSTNESS.md): submissions may carry an
``Idempotency-Key`` header — a retried key whose original submission was
accepted returns the original decision, so client retries never
double-admit.  Backpressure answers carry ``Retry-After``: ``429`` when
the ad-hoc queue sheds, ``503`` when the command queue is saturated or
the admission solver is temporarily unavailable.

Request correlation (docs/OBSERVABILITY.md): every submission is
processed under a request id — taken from the client's ``X-Request-Id``
header when present, minted otherwise — echoed back both as a response
header and in the body, and stamped onto every trace event the
submission generates, so ``repro trace query RUN.jsonl --request <id>``
reconstructs its full timeline.
"""

from __future__ import annotations

import json
import math
import re
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.obs import PROMETHEUS_CONTENT_TYPE, new_request_id, render_prometheus
from repro.service.api import ServiceSaturatedError, SubmitResult
from repro.service.core import SchedulerService
from repro.workloads.traces import (
    job_from_dict,
    workflow_from_dict,
    workflow_to_dict,
)

__all__ = ["ServiceHTTPServer", "serve_http"]

#: HTTP status for each rejection reason; accepted submissions are 200.
_REJECT_STATUS = {
    "infeasible": 409,  # admission proved a deadline shortfall
    "invalid": 400,
    "queue_full": 429,  # backpressure: retry later
    "draining": 503,
    "unavailable": 503,  # admission solver failed; transient, retry
    "stale_epoch": 409,  # handoff superseded by a newer migration epoch
}
#: Rejection reasons that are transient — the answer carries Retry-After.
_RETRYABLE_REASONS = {"queue_full", "unavailable"}
_MAX_BODY_BYTES = 8 * 1024 * 1024

#: Accepted shape of a client-supplied X-Request-Id.  Anything else is
#: replaced with a minted id (never trusted into traces verbatim).
_REQUEST_ID_OK = re.compile(r"^[A-Za-z0-9._:-]{1,128}$")


def _retry_after(seconds: float) -> str:
    """Retry-After header value: whole seconds, at least 1."""
    return str(max(int(math.ceil(seconds)), 1))


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-scheduler"

    # The bound service, set by ServiceHTTPServer.
    @property
    def service(self) -> SchedulerService:
        return self.server.service  # type: ignore[attr-defined]

    # -- routing -----------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._timed(self._get)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._timed(self._post)

    def _timed(self, handler) -> None:
        """Run *handler* and record rolling HTTP request metrics."""
        obs = self.service.obs
        start = time.perf_counter()
        try:
            handler()
        finally:
            obs.windowed_counter("http.requests").inc()
            obs.windowed_histogram("http.request.seconds").observe(
                time.perf_counter() - start
            )

    def _get(self) -> None:
        split = urlsplit(self.path)
        path = split.path.rstrip("/") or "/"
        if path == "/status":
            self._reply(200, self.service.status().to_dict())
        elif path == "/plan":
            self._reply(200, self.service.plan_snapshot())
        elif path == "/metrics":
            query = parse_qs(split.query)
            if query.get("format", [""])[0] == "prometheus":
                self._reply_text(
                    200,
                    render_prometheus(self.service.obs.registry),
                    content_type=PROMETHEUS_CONTENT_TYPE,
                )
            else:
                self._reply(200, self.service.metrics_snapshot())
        elif path == "/slo":
            self._reply(200, self.service.slo_snapshot())
        elif path == "/shard/skyline":
            self._reply(200, self.service.demand_skyline())
        elif path == "/shard/candidates":
            query = parse_qs(split.query)
            try:
                max_n = int(query.get("max", ["8"])[0])
            except ValueError:
                max_n = 8
            self._reply(
                200, {"candidates": self.service.migration_candidates(max_n)}
            )
        elif path == "/shard/orphans":
            self._reply(200, {"orphans": self.service.orphan_info()})
        elif path == "/shard/workflows":
            self._reply(200, {"workflows": sorted(self.service.workflow_ids())})
        elif path == "/shard/owns":
            query = parse_qs(split.query)
            workflow_id = query.get("workflow", [""])[0]
            if not workflow_id:
                self._reply(400, {"error": "missing ?workflow=<id>"})
            else:
                self._reply(
                    200,
                    {
                        "workflow_id": workflow_id,
                        "owns": self.service.owns_workflow(workflow_id),
                    },
                )
        elif path == "/healthz":
            # Liveness: answering at all is the signal.
            self._reply(200, {"ok": True})
        elif path == "/readyz":
            ready = self.service.running and not self.service.draining
            self._reply(
                200 if ready else 503,
                {
                    "ready": ready,
                    "running": self.service.running,
                    "draining": self.service.draining,
                },
            )
        else:
            self._reply(404, {"error": f"no such resource: {path}"})

    def _post(self) -> None:
        path = urlsplit(self.path).path.rstrip("/")
        if path == "/workflows":
            self._submit(workflow_from_dict, self.service.submit_workflow)
        elif path == "/jobs":
            self._submit(job_from_dict, self.service.submit_adhoc)
        elif path.startswith("/shard/"):
            self._shard_post(path)
        else:
            self._reply(404, {"error": f"no such resource: {path}"})

    def _shard_post(self, path: str) -> None:
        """Shard-to-shard migration endpoints (router/rebalancer traffic)."""
        body = self._read_body()
        if body is None:
            return
        try:
            if path == "/shard/migrate-out":
                handoff = self.service.migrate_out(
                    str(body["workflow_id"]),
                    dest=str(body.get("dest", "")),
                    epoch=int(body.get("epoch", 0)),
                )
                self._reply(
                    200,
                    {
                        "workflow": workflow_to_dict(handoff["workflow"]),
                        "key": handoff["key"],
                        "epoch": handoff["epoch"],
                    },
                )
            elif path == "/shard/migrate-in":
                result = self.service.migrate_in(
                    workflow_from_dict(body["workflow"]),
                    key=body.get("key"),
                    epoch=int(body.get("epoch", 0)),
                )
                status = (
                    200
                    if result.accepted
                    else _REJECT_STATUS.get(result.reason, 400)
                )
                self._reply(status, result.to_dict())
            elif path == "/shard/restore":
                if "workflow" in body:
                    result = self.service.restore_workflow(
                        workflow_from_dict(body["workflow"]),
                        key=body.get("key"),
                    )
                else:
                    result = self.service.restore_orphan(
                        str(body["workflow_id"])
                    )
                self._reply(200, result.to_dict())
            elif path == "/shard/confirm":
                self._reply(
                    200,
                    self.service.confirm_migration(
                        str(body["workflow_id"]),
                        epoch=int(body.get("epoch", 0)),
                    ),
                )
            else:
                self._reply(404, {"error": f"no such resource: {path}"})
        except (KeyError, TypeError) as error:
            self._reply(400, {"error": f"malformed shard request: {error}"})
        except ValueError as error:
            # Unknown workflow / already started / no such orphan: the
            # coordinator treats 409 as "this move cannot happen".
            self._reply(409, {"error": str(error)})
        except TimeoutError:
            self._reply(504, {"error": "scheduler did not answer in time"})
        except RuntimeError as error:  # service stopped
            self._reply(503, {"error": str(error)})

    def _request_id(self) -> str:
        """The submission's correlation id: client-supplied or minted."""
        supplied = (self.headers.get("X-Request-Id") or "").strip()
        if supplied and _REQUEST_ID_OK.match(supplied):
            return supplied
        return new_request_id()

    def _submit(self, parse, submit) -> None:
        request_id = self._request_id()
        id_header = {"X-Request-Id": request_id}
        body = self._read_body(extra_headers=id_header)
        if body is None:
            return
        try:
            entity = parse(body)
        except (KeyError, TypeError, ValueError) as error:
            self._reply(
                400,
                {"error": f"malformed submission: {error}"},
                headers=id_header,
            )
            return
        key = self.headers.get("Idempotency-Key") or None
        try:
            result: SubmitResult = submit(
                entity, idempotency_key=key, request_id=request_id
            )
        except ServiceSaturatedError as error:
            # Control-path backpressure: the command queue is full.  Tell
            # the client when to come back instead of queueing it blind.
            self._reply(
                503,
                {"error": str(error), "retry_after_s": error.retry_after_s},
                headers={
                    "Retry-After": _retry_after(error.retry_after_s),
                    **id_header,
                },
            )
            return
        except TimeoutError:
            self._reply(
                504,
                {"error": "scheduler did not answer in time"},
                headers=id_header,
            )
            return
        except RuntimeError as error:  # service stopped
            self._reply(503, {"error": str(error)}, headers=id_header)
            return
        status = 200 if result.accepted else _REJECT_STATUS.get(result.reason, 400)
        # Echo the id the submission was actually processed under (an
        # idempotent replay answers with the original submission's id).
        headers = {"X-Request-Id": result.request_id or request_id}
        if not result.accepted and result.reason in _RETRYABLE_REASONS:
            headers["Retry-After"] = _retry_after(1.0)
        self._reply(status, result.to_dict(), headers=headers)

    # -- plumbing -------------------------------------------------------------------

    def _read_body(self, extra_headers: dict | None = None) -> dict | None:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            length = 0
        if length <= 0 or length > _MAX_BODY_BYTES:
            self._reply(
                400,
                {"error": "missing or oversized request body"},
                headers=extra_headers,
            )
            return None
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._reply(
                400,
                {"error": "request body is not valid JSON"},
                headers=extra_headers,
            )
            return None
        if not isinstance(body, dict):
            self._reply(
                400,
                {"error": "request body must be a JSON object"},
                headers=extra_headers,
            )
            return None
        return body

    def _reply(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        # allow_nan=False is load-bearing: it turns any non-finite float
        # that slipped past json_safe into a loud 500 instead of silently
        # emitting bare NaN that strict parsers reject.
        data = json.dumps(payload, allow_nan=False).encode("utf-8")
        self._send(status, data, "application/json", headers)

    def _reply_text(
        self,
        status: int,
        text: str,
        content_type: str = "text/plain; charset=utf-8",
        headers: dict | None = None,
    ) -> None:
        self._send(status, text.encode("utf-8"), content_type, headers)

    def _send(
        self,
        status: int,
        data: bytes,
        content_type: str,
        headers: dict | None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:
        # Route access logs through the service's obs layer instead of
        # stderr so quiet runs stay quiet.
        import logging

        self.service.obs.log(
            logging.DEBUG, "http %s " + format, self.client_address[0], *args
        )


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one SchedulerService.

    ``port=0`` binds an ephemeral port; read it back from
    :attr:`server_port`.  ``serve_forever()`` blocks, so typical use runs
    it on a thread (see :func:`serve_http`) and calls :meth:`shutdown` from
    the signal handler.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, service: SchedulerService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        super().__init__((host, port), _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"


def serve_http(
    service: SchedulerService, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Start an HTTP frontend on a daemon thread; returns the bound server.

    The caller owns shutdown ordering: ``server.shutdown()`` first (stop
    accepting requests), then ``service.drain()``.
    """
    import threading

    server = ServiceHTTPServer(service, host=host, port=port)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    thread.start()
    return server
