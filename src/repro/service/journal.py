"""Write-ahead submission journal: accepted work survives a crash.

The scheduler service is long-running; before this journal existed, a
process crash lost every accepted workflow and queued ad-hoc job.  The
journal is the durability layer:

* **Append-only JSONL.**  One JSON object per line, written the moment a
  submission is *accepted* (admitted workflow / queued ad-hoc job) and
  before the client sees the decision, then ``flush`` + ``os.fsync`` — a
  positive answer implies the submission is on disk (write-ahead
  semantics).  Rejected submissions are not journaled: they admitted
  nothing, so there is nothing to recover.
* **Public wire format.**  The ``entity`` payload of each record is exactly
  the trace wire format (:func:`repro.workloads.traces.workflow_to_dict` /
  :func:`~repro.workloads.traces.job_to_dict`) — the same bytes a client
  POSTs — so a journal can be inspected, replayed against another service,
  or even spliced into a trace file with standard tooling.
* **Idempotency keys.**  Each record carries the submission's idempotency
  key (when the client sent one); recovery restores the key set, so a
  client that never saw its pre-crash answer can retry the same key
  against the restarted service and get the original decision instead of
  a double admission.

Recovery (:meth:`SubmissionJournal.read` + ``SchedulerService`` replay)
re-registers every journaled submission at service start: admission is
*not* re-run — an accepted submission stays accepted; the service owes it
completion, not a second opinion.  Execution progress is not journaled
(this is a submission log, not a state-machine checkpoint), so recovered
jobs restart from zero executed units — conservative, never lossy.

Shard migration (docs/SHARDING.md) adds two record kinds on top of the
submission records: ``migrate_out`` — a tombstone embedding the full
workflow entity, the receiving shard, and a migration epoch, written when
a not-yet-started workflow is withdrawn for handoff — and
``migrate_confirm``, written once the destination durably owns it.
Recovery folds these in order: a confirmed handoff is simply gone, an
*unconfirmed* one is held as an orphan (never unilaterally re-admitted,
so the destination holding it too cannot produce a duplicate) until the
router's reconcile step settles it.

Records are versioned (``"v": 1``); unknown versions and trailing
truncated lines (a crash mid-append) are skipped with a count, never a
crash.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Optional

from repro.model.job import Job
from repro.model.workflow import Workflow
from repro.workloads.traces import (
    job_from_dict,
    job_to_dict,
    workflow_from_dict,
    workflow_to_dict,
)

__all__ = ["JournalRecord", "SubmissionJournal", "read_journal"]

_VERSION = 1


@dataclass(frozen=True)
class JournalRecord:
    """One recovered journal entry.

    ``kind`` is one of:

    * ``workflow`` / ``adhoc`` — an accepted submission (``entity`` set);
    * ``migrate_out`` — this shard handed ``entity`` (a workflow) to shard
      ``dest`` under migration ``epoch``.  The full entity is embedded so
      an unconfirmed handoff can be restored after a crash without asking
      anyone;
    * ``migrate_confirm`` — the destination durably owns ``workflow_id``;
      the preceding ``migrate_out`` is settled.
    """

    kind: str  # "workflow" | "adhoc" | "migrate_out" | "migrate_confirm"
    key: Optional[str]  # idempotency key, if the client sent one
    entity: "Workflow | Job | None"
    ts: float
    dest: Optional[str] = None  # migrate_out: receiving shard name
    epoch: int = 0  # migrate_out / migrate_confirm: migration epoch
    workflow_id: Optional[str] = None  # migrate_confirm: settled workflow


class SubmissionJournal:
    """Append-only, fsync-on-accept JSONL journal of accepted submissions.

    Opened in append mode: restarting a service on an existing journal
    keeps the old records (they are what recovery replays) and appends new
    accepts after them.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file: IO[str] = open(self.path, "a", encoding="utf-8")
        self.n_appended = 0

    # -- writing -----------------------------------------------------------------

    def append_workflow(self, workflow: Workflow, key: str | None = None) -> None:
        self._append("workflow", workflow_to_dict(workflow), key)

    def append_adhoc(self, job: Job, key: str | None = None) -> None:
        self._append("adhoc", job_to_dict(job), key)

    def append_migrate_out(
        self,
        workflow: Workflow,
        *,
        dest: str,
        epoch: int,
        key: str | None = None,
    ) -> None:
        """Tombstone: *workflow* left this shard for *dest*.

        The full entity (and its idempotency key) is embedded, so an
        unconfirmed handoff survives a crash on this side: recovery holds
        it as an orphan until the coordinator either confirms the
        destination owns it or restores it here.
        """
        self._append(
            "migrate_out",
            workflow_to_dict(workflow),
            key,
            dest=dest,
            epoch=epoch,
        )

    def append_migrate_confirm(self, workflow_id: str, *, epoch: int) -> None:
        """Settle the matching ``migrate_out``: the destination owns it."""
        self._append(
            "migrate_confirm", None, None, workflow_id=workflow_id, epoch=epoch
        )

    def _append(
        self,
        kind: str,
        entity: dict | None,
        key: str | None,
        **extra,
    ) -> None:
        record = {
            "v": _VERSION,
            "type": kind,
            "key": key,
            "ts": time.time(),
            "entity": entity,
            **extra,
        }
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self.n_appended += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "SubmissionJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading -----------------------------------------------------------------

    @staticmethod
    def read(path: str | Path) -> tuple[list[JournalRecord], int]:
        """Parse a journal file into records.

        Returns ``(records, n_skipped)``: malformed lines (typically one
        truncated trailing line from a crash mid-append) and
        unknown-version records are skipped, not fatal — recovery must
        never be blocked by the tail of the very crash it recovers from.
        A missing file is simply an empty journal.
        """
        path = Path(path)
        if not path.exists():
            return [], 0
        records: list[JournalRecord] = []
        skipped = 0
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    raw = json.loads(line)
                    if raw.get("v") != _VERSION:
                        skipped += 1
                        continue
                    kind = raw["type"]
                    if kind in ("workflow", "migrate_out"):
                        entity = workflow_from_dict(raw["entity"])
                    elif kind == "adhoc":
                        entity = job_from_dict(raw["entity"])
                    elif kind == "migrate_confirm":
                        entity = None
                    else:
                        skipped += 1
                        continue
                    records.append(
                        JournalRecord(
                            kind=kind,
                            key=raw.get("key"),
                            entity=entity,
                            ts=float(raw.get("ts", 0.0)),
                            dest=raw.get("dest"),
                            epoch=int(raw.get("epoch", 0)),
                            workflow_id=raw.get("workflow_id"),
                        )
                    )
                except (KeyError, TypeError, ValueError):
                    skipped += 1
        return records, skipped


def read_journal(path: str | Path) -> tuple[list[JournalRecord], int]:
    """Module-level alias for :meth:`SubmissionJournal.read`."""
    return SubmissionJournal.read(path)
