"""``repro top``: a live ANSI dashboard over a running scheduler service.

Polls ``/status``, ``/metrics`` and ``/slo`` of one HTTP frontend and
renders a compact terminal view: service state, throughput, rolling
latencies, queue depth, and the SLO error budget with its burn rate.

Pointed at a *shard router* (``repro serve --shards N``) it renders the
fleet view instead: aggregate counters plus one line per shard with the
failure detector's verdict (``live``/``suspect``/``dead``) and that
shard's circuit-breaker state and open count.

The rendering is a pure function (:func:`render_dashboard`: three JSON
snapshots in, one string out) so tests can exercise the layout without a
server or a terminal; :func:`run_top` owns only the loop — poll, clear,
print, sleep.
"""

from __future__ import annotations

import sys
import time

from repro.service.client import HttpServiceClient, ServiceError

__all__ = ["render_dashboard", "run_top"]

#: ANSI clear-screen + cursor-home (emitted only to real terminals).
_CLEAR = "\x1b[2J\x1b[H"
_BOLD = "\x1b[1m"
_RED = "\x1b[31m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"
_RESET = "\x1b[0m"


def _paint(text: str, code: str, color: bool) -> str:
    return f"{code}{text}{_RESET}" if color else text


def _num(value, fmt: str = "{:g}", missing: str = "-") -> str:
    if value is None:
        return missing
    try:
        return fmt.format(value)
    except (TypeError, ValueError):
        return missing


def _seconds(value) -> str:
    if value is None:
        return "-"
    if value < 0.001:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _health_tag(healthy, color: bool) -> str:
    if healthy is None:
        return _paint("NO DATA", _YELLOW, color)
    if healthy:
        return _paint("OK", _GREEN, color)
    return _paint("VIOLATED", _RED, color)


_BREAKER_STATES = {0: "closed", 1: "half-open", 2: "open"}


def _state_tag(state: str, color: bool) -> str:
    code = {"live": _GREEN, "suspect": _YELLOW}.get(state, _RED)
    return _paint(state, code, color)


def _render_fleet(
    status: dict, metrics: dict, slo: dict, *, color: bool, url: str
) -> str:
    """The router variant: aggregate counters + one line per shard with
    detector verdict and breaker state."""
    lines: list[str] = []
    title = "repro top (fleet)"
    if url:
        title += f" — {url}"
    lines.append(_paint(title, _BOLD, color))
    aggregate = status.get("aggregate", {})
    lines.append(
        f"fleet     {status.get('running_shards', 0)}/"
        f"{status.get('n_shards', 0)} shards running  "
        f"slot {status.get('slot', '-')}  "
        f"placements {status.get('placement_overrides', 0)}"
    )
    lines.append(
        f"work      workflows acc {aggregate.get('accepted_workflows', 0)} / "
        f"rej {aggregate.get('rejected_workflows', 0)}  "
        f"adhoc acc {aggregate.get('accepted_adhoc', 0)} / "
        f"shed {aggregate.get('shed_adhoc', 0)}  "
        f"queue {aggregate.get('queue_depth', 0)}"
    )
    slo_aggregate = (slo or {}).get("aggregate", {})
    lines.append(
        f"slo       {_health_tag(slo_aggregate.get('healthy'), color)}  "
        f"unreachable {slo_aggregate.get('unreachable_shards', 0)}"
    )
    registry = metrics.get("router", {}) if isinstance(metrics, dict) else {}

    def _router_value(name: str):
        entry = registry.get(name)
        return entry.get("value") if isinstance(entry, dict) else None

    for name, snapshot in sorted(status.get("shards", {}).items()):
        if not isinstance(snapshot, dict):
            continue
        state = snapshot.get("state") or (
            "live" if snapshot.get("alive") else "dead"
        )
        breaker_value = _router_value(f"router.breaker.state.{name}")
        opens = _router_value(f"router.breaker.opens.{name}") or 0
        breaker = (
            f"  breaker {_BREAKER_STATES.get(int(breaker_value), '?')}"
            f" (opens {_num(opens, '{:.0f}', '0')})"
            if breaker_value is not None
            else ""
        )
        lines.append(
            f"  {name:<10} {_state_tag(state, color):<8}  "
            f"q {snapshot.get('queue_depth', '-')}  "
            f"wf {snapshot.get('accepted_workflows', 0)}  "
            f"adhoc {snapshot.get('accepted_adhoc', 0)}{breaker}"
        )
    return "\n".join(lines)


def render_dashboard(
    status: dict,
    metrics: dict,
    slo: dict,
    *,
    color: bool = False,
    url: str = "",
) -> str:
    """Render one dashboard frame from the three endpoint snapshots."""
    if "aggregate" in status:
        return _render_fleet(status, metrics, slo, color=color, url=url)
    lines: list[str] = []
    title = "repro top"
    if url:
        title += f" — {url}"
    lines.append(_paint(title, _BOLD, color))

    state = "draining" if status.get("draining") else (
        "running" if status.get("running") else "stopped"
    )
    lines.append(
        f"service   {state}  slot {status.get('slot', '-')}  "
        f"scheduler {status.get('scheduler', '?')}"
    )
    lines.append(
        f"work      workflows {status.get('n_workflows', 0)} "
        f"(acc {status.get('accepted_workflows', 0)} / "
        f"rej {status.get('rejected_workflows', 0)})  "
        f"adhoc acc {status.get('accepted_adhoc', 0)} / "
        f"shed {status.get('shed_adhoc', 0)}  "
        f"remaining {status.get('remaining_jobs', 0)}  "
        f"queue {status.get('queue_depth', 0)}"
    )

    submit = metrics.get("service.submit.seconds") or {}
    http_req = metrics.get("http.request.seconds") or {}
    lines.append(
        f"submit    rate {_num(submit.get('rate_1m'), '{:.2f}')}/s (1m)  "
        f"p50 {_seconds(submit.get('p50'))}  "
        f"p99 {_seconds(submit.get('p99'))}  "
        f"total {_num(submit.get('count'), '{:.0f}', '0')}"
    )
    lines.append(
        f"http      rate {_num(http_req.get('rate_1m'), '{:.2f}')}/s (1m)  "
        f"p50 {_seconds(http_req.get('p50'))}  "
        f"p99 {_seconds(http_req.get('p99'))}  "
        f"total {_num(http_req.get('count'), '{:.0f}', '0')}"
    )

    deadline = slo.get("deadline") or {}
    decide = slo.get("decide_latency") or {}
    lines.append(
        f"slo       {_health_tag(slo.get('healthy'), color)}  "
        f"objective {_num(deadline.get('objective'), '{:.2%}')}"
    )
    lines.append(
        f"deadline  met {_num(deadline.get('compliance'), '{:.2%}')}  "
        f"missed {_num(deadline.get('missed'), '{:.0f}', '0')}"
        f"/{_num(deadline.get('total'), '{:.0f}', '0')}  "
        f"budget left {_num(deadline.get('budget_remaining'), '{:.1%}')}  "
        f"burn {_num(deadline.get('burn_rate'), '{:.2f}')}x"
    )
    lines.append(
        f"decide    p99 {_seconds(decide.get('p99_s'))} "
        f"(objective {_seconds(decide.get('objective_p99_s'))})  "
        f"samples {decide.get('window_count', 0)} in window"
    )
    return "\n".join(lines)


def run_top(
    url: str,
    *,
    interval_s: float = 2.0,
    iterations: int | None = None,
    out=None,
) -> int:
    """Poll *url* and repaint the dashboard every *interval_s* seconds.

    ``iterations=None`` loops until interrupted; a finite count renders
    that many frames (``--once`` in the CLI).  Returns a process exit
    code: 0, or 1 when the final poll failed.
    """
    out = sys.stdout if out is None else out
    color = hasattr(out, "isatty") and out.isatty()
    client = HttpServiceClient(url, max_retries=0)
    frame = 0
    failed = False
    while iterations is None or frame < iterations:
        if frame > 0:
            time.sleep(interval_s)
        try:
            # Raw JSON, not ServiceStatus: a router /status is a fleet
            # document (aggregate + per-shard) the dataclass would strip.
            status = client.request_json("GET", "/status")
            metrics = client.metrics()
            slo = client.slo()
        except (ServiceError, OSError) as error:
            failed = True
            body = f"repro top — {url}\n  unreachable: {error}"
        else:
            failed = False
            body = render_dashboard(
                status, metrics, slo, color=color, url=url
            )
        if color:
            out.write(_CLEAR)
        out.write(body + "\n")
        out.flush()
        frame += 1
    return 1 if failed else 0
